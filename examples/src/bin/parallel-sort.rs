//! Parallel sample sort across all five platforms of the paper's Split-C
//! comparison (§3): the same SPMD program runs over SP Active Messages,
//! SP MPL, and LogGP models of the CM-5, CS-2, and U-Net/ATM cluster.
//!
//! ```text
//! cargo run --release -p sp-examples --bin parallel-sort
//! ```

use sp_splitc::apps::{sample_sort, SampleConfig};
use sp_splitc::{run_spmd, Gas, Platform};

fn main() {
    let nodes = 8;
    let cfg = SampleConfig {
        keys_per_node: 8 * 1024,
        ..SampleConfig::paper(false)
    };
    let (count, checksum) = sample_sort::expected(&cfg, nodes);
    println!(
        "sample sort (fine-grain): {} keys/node on {nodes} processors\n",
        cfg.keys_per_node
    );
    println!(
        "{:>16}  {:>10}  {:>10}  {:>10}",
        "platform", "total (s)", "cpu (s)", "net (s)"
    );
    println!("{}", "-".repeat(56));
    for platform in Platform::all() {
        let cfg2 = cfg.clone();
        let results = run_spmd(platform, nodes, 9, move |g: &mut dyn Gas| {
            sample_sort::run(g, &cfg2)
        });
        // Verify the sort actually sorted.
        let outcomes: Vec<_> = results.iter().map(|(_, o)| *o).collect();
        sp_splitc::apps::verify_sort(&outcomes, count, checksum);
        let worst = results
            .iter()
            .map(|(t, _)| *t)
            .max_by(|a, b| a.total.cmp(&b.total))
            .expect("nodes");
        println!(
            "{:>16}  {:>10.3}  {:>10.3}  {:>10.3}",
            platform.name(),
            worst.total.as_secs(),
            worst.cpu().as_secs(),
            worst.comm.as_secs()
        );
    }
    println!("\nThe fine-grain variant sends one 4-byte store per key: platforms with low");
    println!("per-message overhead (SP AM, CM-5) win on net time; SP MPL pays its heavy");
    println!("software path per key — the paper's §3 conclusion.");
}
