//! Quickstart: a two-node SP machine running Active Messages.
//!
//! ```text
//! cargo run -p sp-examples --bin quickstart
//! ```
//!
//! Node 0 sends a few requests (the handler on node 1 replies), then bulk-
//! stores a megabyte; both nodes print what the protocol did.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};

#[derive(Default)]
struct State {
    replies: u32,
    requests_seen: u32,
    store_done: bool,
}

/// Request handler: add the two argument words and reply with the sum.
fn sum_handler(env: &mut AmEnv<'_, State>, args: AmArgs) {
    env.state.requests_seen += 1;
    env.reply_1(REPLY_SUM, args.a[0] + args.a[1]);
}

/// Reply handler: record the answer.
fn reply_handler(env: &mut AmEnv<'_, State>, args: AmArgs) {
    assert_eq!(args.a[0], 30 + env.state.replies);
    env.state.replies += 1;
}

/// Store-completion handler (runs on the receiver when the data landed).
fn store_handler(env: &mut AmEnv<'_, State>, args: AmArgs) {
    let info = args.info.expect("bulk info");
    println!(
        "[node 1] {} bytes landed at address {:#x} (virtual time {})",
        info.len,
        info.base,
        env.now()
    );
    env.state.store_done = true;
}

const REQ_SUM: u16 = 0;
const REPLY_SUM: u16 = 1;
const STORE_DONE: u16 = 2;

fn main() {
    // A two-thin-node SP partition with the paper's protocol parameters.
    let mut machine = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 7);

    machine.spawn("node0", State::default(), |am: &mut Am<'_, State>| {
        am.register(sum_handler);
        am.register(reply_handler);
        am.register(store_handler);

        // A few request/reply round trips.
        for i in 0..5u32 {
            am.request_2(1, REQ_SUM, 10 + i, 20);
            am.poll_until(move |s| s.replies > i);
        }
        println!(
            "[node 0] 5 round trips done at {} (≈51 us each on the paper's SP)",
            am.now()
        );

        // Bulk store: 1 MB into node 1's memory, chunked per the paper's
        // 8064-byte chunk protocol.
        let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        am.barrier(); // node 1 allocates its landing buffer first
        let t0 = am.now();
        am.store(GlobalPtr { node: 1, addr: 0 }, &data, Some(STORE_DONE), &[]);
        let dt = am.now() - t0;
        println!(
            "[node 0] stored 1 MB in {dt} = {:.2} MB/s (paper r_inf: 34.3)",
            (1 << 20) as f64 / dt.as_secs() / 1e6
        );
        println!("[node 0] protocol stats: {:?}", am.stats());
        am.barrier();
    });

    machine.spawn("node1", State::default(), |am: &mut Am<'_, State>| {
        am.register(sum_handler);
        am.register(reply_handler);
        am.register(store_handler);
        am.alloc(1 << 20); // landing buffer at address 0
        am.barrier();
        am.poll_until(|s| s.store_done);
        am.barrier();
    });

    let report = machine.run().expect("simulation completes");
    println!(
        "simulation: {} engine events, final virtual time {}",
        report.events, report.end_time
    );
    // The stored bytes are inspectable after the run.
    let first = report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, 8);
    println!("first stored bytes on node 1: {first:?}");
}
