//! A 2D Jacobi heat-diffusion stencil over the MPI subset, run on both
//! MPI-over-AM and the MPI-F baseline — the same program, two MPI
//! implementations, identical numerics (§4 of the paper).
//!
//! ```text
//! cargo run --release -p sp-examples --bin mpi-stencil
//! ```

use sp_adapter::SpConfig;
use sp_mpi::runner::{run_mpi, MpiImpl};
use sp_mpi::Mpi;

const N: usize = 64; // local rows per rank
const COLS: usize = 64;
const STEPS: usize = 40;

fn stencil(mpi: &mut dyn Mpi) -> (f64, f64) {
    let (me, p) = (mpi.rank(), mpi.size());
    // Row-block decomposition; fixed hot boundary at the global top.
    let mut grid = vec![0.0f64; N * COLS];
    if me == 0 {
        for cell in grid.iter_mut().take(COLS) {
            *cell = 100.0;
        }
    }
    mpi.barrier();
    let t0 = mpi.now();
    for _ in 0..STEPS {
        // Exchange boundary rows with neighbours.
        let up = (me > 0).then(|| me - 1);
        let down = (me + 1 < p).then(|| me + 1);
        let top_row: Vec<u8> = grid[..COLS].iter().flat_map(|v| v.to_le_bytes()).collect();
        let bot_row: Vec<u8> = grid[(N - 1) * COLS..]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let r_up = up.map(|u| mpi.irecv(Some(u), Some(1)));
        let r_dn = down.map(|d| mpi.irecv(Some(d), Some(1)));
        let s_up = up.map(|u| mpi.isend(&top_row, u, 1));
        let s_dn = down.map(|d| mpi.isend(&bot_row, d, 1));
        let halo_up: Option<Vec<f64>> = r_up.map(|r| {
            mpi.wait(r)
                .expect("halo")
                .0
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        });
        let halo_dn: Option<Vec<f64>> = r_dn.map(|r| {
            mpi.wait(r)
                .expect("halo")
                .0
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        });
        for s in [s_up, s_dn].into_iter().flatten() {
            mpi.wait(s);
        }
        // Jacobi update (keep rank 0's hot boundary fixed).
        let old = grid.clone();
        let first_row = if me == 0 { 1 } else { 0 };
        for r in first_row..N {
            for c in 0..COLS {
                let north = if r > 0 {
                    old[(r - 1) * COLS + c]
                } else {
                    halo_up.as_ref().map_or(old[r * COLS + c], |h| h[c])
                };
                let south = if r + 1 < N {
                    old[(r + 1) * COLS + c]
                } else {
                    halo_dn.as_ref().map_or(old[r * COLS + c], |h| h[c])
                };
                let west = if c > 0 {
                    old[r * COLS + c - 1]
                } else {
                    old[r * COLS + c]
                };
                let east = if c + 1 < COLS {
                    old[r * COLS + c + 1]
                } else {
                    old[r * COLS + c]
                };
                grid[r * COLS + c] = 0.25 * (north + south + west + east);
            }
        }
        // Charge the stencil's flops (4 per point at a sustained 48 MF/s).
        mpi.work(sp_sim::Dur::ns((N * COLS) as u64 * 4 * 1000 / 48));
    }
    let heat: f64 = grid.iter().sum();
    let total = mpi.allreduce_f64(&[heat], |a, b| a + b)[0];
    ((mpi.now() - t0).as_secs(), total)
}

fn main() {
    println!("2D Jacobi stencil: {STEPS} steps, {N}x{COLS} cells/rank, 8 ranks\n");
    let mut results = Vec::new();
    for imp in [MpiImpl::AmOptimized, MpiImpl::AmUnoptimized, MpiImpl::MpiF] {
        let per_rank = run_mpi(imp, SpConfig::thin(8), 3, stencil);
        let time = per_rank.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
        let heat = per_rank[0].1;
        println!(
            "{:>22}: {time:.4} virtual seconds, total heat {heat:.3}",
            imp.name()
        );
        results.push((imp, time, heat));
    }
    let h0 = results[0].2;
    assert!(
        results
            .iter()
            .all(|(_, _, h)| (h - h0).abs() < 1e-9 * h0.abs()),
        "implementations disagree on the physics!"
    );
    println!("\nAll three MPI implementations compute identical heat totals — same program,");
    println!("same numerics, different transport (the paper's §4 point).");
}
