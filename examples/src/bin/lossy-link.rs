//! Active Messages over an unreliable fabric: inject random packet loss
//! and watch the sliding-window/NACK/keep-alive machinery (§2.2) deliver
//! everything exactly once anyway.
//!
//! ```text
//! cargo run -p sp-examples --bin lossy-link
//! ```

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};
use sp_switch::FaultInjector;

#[derive(Default)]
struct St {
    done: bool,
}

fn done_handler(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.done = true;
}

fn main() {
    let loss = 0.03;
    let len = 20 * 8064; // 20 chunks
    println!(
        "storing {len} bytes across a link dropping {:.0}% of packets\n",
        loss * 100.0
    );

    let cfg = AmConfig {
        keepalive_polls: 128,
        ..AmConfig::default()
    }; // probe sooner than the production default
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 1);
    m.configure_world(|w| {
        w.switch
            .set_fault_injector(FaultInjector::bernoulli(loss, 99))
    });
    m.mem().alloc(1, len as u32);

    let data: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
    let expect = data.clone();
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        am.register(done_handler);
        let t0 = am.now();
        am.store(GlobalPtr { node: 1, addr: 0 }, &data, Some(0), &[]);
        let dt = am.now() - t0;
        println!(
            "[sender] transfer complete in {dt} ({:.2} MB/s effective)",
            len as f64 / dt.as_secs() / 1e6
        );
        let s = am.stats();
        println!(
            "[sender] packets sent {} | retransmitted {} | NACKs received {} | probes {}",
            s.packets_sent, s.packets_retransmitted, s.nacks_received, s.probes_sent
        );
    });
    m.spawn("receiver", St::default(), move |am: &mut Am<'_, St>| {
        am.register(done_handler);
        am.poll_until(|s| s.done);
        let s = am.stats();
        println!(
            "[receiver] delivered {} data packets | dup-dropped {} | out-of-order dropped {} | NACKs sent {}",
            s.data_packets_delivered, s.dup_dropped, s.ooo_dropped, s.nacks_sent
        );
        am.drain(sp_sim::Dur::ms(5.0)); // serve the sender's final recovery
    });
    let report = m.run().expect("run completes");
    let dropped = report.world.switch.stats().dropped;
    let got = report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len);
    assert_eq!(got, expect, "corruption!");
    println!("\nfabric dropped {dropped} packets; every byte still arrived exactly once.");
}
