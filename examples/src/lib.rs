//! Runnable examples for `sp-am-rs` (see `src/bin/`):
//!
//! * `quickstart` — a two-node Active Messages session: requests, replies,
//!   a bulk store, and the protocol statistics;
//! * `parallel-sort` — the Split-C sample-sort benchmark run across all
//!   five platforms of the paper's comparison, printing the time and
//!   comm/compute split per platform;
//! * `mpi-stencil` — a 2D Jacobi heat-diffusion stencil written against
//!   the MPI subset, run over both MPI-over-AM and MPI-F;
//! * `lossy-link` — Active Messages riding over an unreliable switch with
//!   injected packet loss, showing the flow-control/keep-alive machinery
//!   recovering (watch the retransmission counters).

#![warn(missing_docs)]
