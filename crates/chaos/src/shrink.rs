//! Greedy 1-minimal shrinking of a failing schedule.

use crate::schedule::Schedule;

/// Shrink `base` (known to satisfy `fails`) to a schedule from which no
/// single fault event can be removed without the failure disappearing.
///
/// Greedy delta-debugging over the event list: repeatedly try removing
/// each event; whenever the failure persists without it, keep the smaller
/// schedule and restart. A non-default reliability configuration is also
/// tried at legacy (one extra candidate per round), so reproducers only
/// mention the adaptive layer when it is actually implicated.
/// Deterministic — `fails` is assumed to be a pure function of the
/// schedule (which [`crate::run::run`] guarantees).
pub fn shrink(base: &Schedule, mut fails: impl FnMut(&Schedule) -> bool) -> Schedule {
    let mut cur = base.clone();
    'outer: loop {
        for i in 0..cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            if fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        if !cur.reliability.is_legacy() {
            let mut cand = cur.clone();
            cand.reliability = Default::default();
            if fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, Workload};

    #[test]
    fn removes_every_irrelevant_event() {
        let mut s = Schedule::new(Workload::PingPong);
        s.events = vec![
            FaultEvent::DelayIndex(1),
            FaultEvent::DropIndex(7),
            FaultEvent::DupIndex(3),
            FaultEvent::DropIndex(9),
        ];
        // "Fails" whenever index 7 is still dropped.
        let min = shrink(&s, |c| c.events.contains(&FaultEvent::DropIndex(7)));
        assert_eq!(min.events, vec![FaultEvent::DropIndex(7)]);
    }

    #[test]
    fn keeps_conjunctions_1_minimal() {
        let mut s = Schedule::new(Workload::Streaming);
        s.events = vec![
            FaultEvent::DropIndex(1),
            FaultEvent::DelayIndex(2),
            FaultEvent::DropIndex(3),
        ];
        // Needs *both* drops to fail.
        let min = shrink(&s, |c| {
            c.events.contains(&FaultEvent::DropIndex(1))
                && c.events.contains(&FaultEvent::DropIndex(3))
        });
        assert_eq!(
            min.events,
            vec![FaultEvent::DropIndex(1), FaultEvent::DropIndex(3)]
        );
    }

    #[test]
    fn drops_uninvolved_reliability_config() {
        let mut s = Schedule::new(Workload::PingPong);
        s.reliability = sp_am::ReliabilityConfig::adaptive();
        s.events = vec![FaultEvent::Crash {
            node: 1,
            at_ns: 5,
            down_ns: 7,
        }];
        // Fails regardless of the reliability mode: the config shrinks away.
        let min = shrink(&s, |c| !c.events.is_empty());
        assert!(min.reliability.is_legacy());
        assert_eq!(min.events.len(), 1);

        // Fails *only* under the adaptive config: it must survive.
        let min = shrink(&s, |c| !c.reliability.is_legacy());
        assert!(!min.reliability.is_legacy());
        assert!(min.events.is_empty());
    }
}
