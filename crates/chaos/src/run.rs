//! Executing one [`Schedule`]: build the machine, install the faults, run
//! the workload, and collect everything the invariant checker needs.

use crate::schedule::{FaultEvent, Schedule, Workload};
use parking_lot::Mutex;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, AmStats, GlobalPtr};
use sp_mpi::{Mpi, MpiAm, MpiAmConfig, MpiSt};
use sp_sim::{Dur, Time};
use sp_splitc::backend::am::{AmGas, SplitcSt};
use sp_splitc::Gas;
use sp_switch::{
    FaultInjector, FaultKind, FaultWindow, PartitionWindow, RoutePolicy, SwitchStats, Topology,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Engine-event ceiling per run: a livelock guard so schedules that wedge
/// the protocol (e.g. keep-alive disabled plus a tail drop under a
/// blocking workload) abort deterministically instead of hanging.
pub const EVENT_BUDGET: u64 = 5_000_000;

/// Per-node end-of-run snapshot, recorded by the node program itself just
/// before it exits.
#[derive(Debug, Clone)]
pub struct NodeEnd {
    /// Node id.
    pub node: usize,
    /// Virtual time the program exited.
    pub end_ns: u64,
    /// All outbound channels fully quiescent (nothing unacked).
    pub all_idle: bool,
    /// All accepted sends emitted (acks may be outstanding).
    pub all_sent: bool,
    /// Protocol counters.
    pub stats: AmStats,
    /// Channel-state residue (empty when idle) — names the stuck channel.
    pub residue: String,
}

/// Everything observable about one schedule execution. Contains only
/// virtual-time and counter state, so two executions of the same schedule
/// produce identical outcomes (and identical formatted reports).
#[derive(Debug)]
pub struct RunOutcome {
    /// The schedule that ran.
    pub schedule: Schedule,
    /// Final virtual time of the whole simulation.
    pub end_ns: u64,
    /// Per-node snapshots, ordered by node id.
    pub nodes: Vec<NodeEnd>,
    /// Named delivery streams in arrival order (sorted by name): ids
    /// observed by handlers / verified round-trips.
    pub streams: Vec<(String, Vec<u64>)>,
    /// Workload-level data corruption reports (wrong value read back).
    pub mismatches: Vec<String>,
    /// Switch fabric statistics.
    pub switch: SwitchStats,
    /// Receive-FIFO overflow drops, summed over adapters.
    pub dropped_overflow: u64,
    /// Per-node receive-FIFO backlog at end of run.
    pub backlog: Vec<usize>,
    /// Packets delivered into receive FIFOs, summed over adapters.
    pub adapter_received: u64,
    /// Delivered-but-unread receive-FIFO entries lost to crash wipes,
    /// summed over adapters.
    pub wiped_recv: u64,
    /// Set when the run aborted (event budget exhausted): the simulation's
    /// deterministic error string. Hardware state is lost on abort.
    pub aborted: Option<String>,
    /// Chrome trace JSON of the run (only when requested).
    pub chrome_json: Option<String>,
    /// Always-on bounded flight recorder: holds the tail of the run's
    /// trace so a failing schedule can dump its last virtual-time slice
    /// ([`sp_trace::FlightRecorder::dump_json`]) without re-running.
    /// Recording is virtual-time-only, so outcomes (and the invariant
    /// report) are byte-identical with or without it.
    pub flight: sp_trace::FlightRecorder,
}

#[derive(Default)]
struct Probe {
    streams: BTreeMap<String, Vec<u64>>,
    mismatches: Vec<String>,
    ends: BTreeMap<usize, NodeEnd>,
}

type SharedProbe = Arc<Mutex<Probe>>;

/// Per-node program state for the AM-level workloads.
struct ChaosSt {
    probe: SharedProbe,
    got: u64,
    pauses: Vec<(Time, Dur)>,
    pause_next: usize,
    crashes: Vec<(Time, Dur)>,
    crash_next: usize,
}

/// Execute `schedule` and collect the outcome.
pub fn run(schedule: &Schedule) -> RunOutcome {
    run_inner(schedule, false, 1)
}

/// Execute `schedule` sharded across `shards` conservative-parallel
/// engine shards. Outcomes (and the formatted invariant report) are
/// byte-identical to the serial [`run`] for any shard count — fault
/// classification happens at each packet's owning shard, so chaos
/// schedules replay identically. The one exception is adaptive routing,
/// which the sharded engine does not support: such schedules silently
/// fall back to a serial run.
pub fn run_sharded(schedule: &Schedule, shards: usize) -> RunOutcome {
    run_inner(schedule, false, shards)
}

/// Execute `schedule` with tracing enabled and attach the Chrome trace.
/// Tracing is virtual-time-invariant, so the outcome is otherwise
/// identical to [`run`].
pub fn run_traced(schedule: &Schedule) -> RunOutcome {
    run_inner(schedule, true, 1)
}

fn run_inner(s: &Schedule, trace: bool, shards: usize) -> RunOutcome {
    let nodes = s.nodes.max(2);
    // Multi-frame schedules spread the nodes over `frames` frames (rounded
    // up to keep frames equal-sized) and run under the schedule's routing
    // policy; `frames 1` is the classic single-frame machine where the
    // policy has nothing to choose between.
    let frames = s.frames.max(1);
    let (nodes, sp) = if let Some((levels, radix, oversub, npf)) = s.fat_tree {
        // A fat-tree header pins the whole machine shape: every leaf frame
        // is fully populated, so `nodes`/`frames` are overridden.
        let topo = sp_switch::Topology::fat_tree_custom(
            levels,
            radix,
            oversub,
            npf,
            sp_switch::DEFAULT_CABLES_PER_PAIR,
        );
        (
            topo.nodes(),
            sp_adapter::SpConfig::with_topology(topo).routed(s.route_policy),
        )
    } else if frames > 1 {
        let per = nodes.div_ceil(frames);
        (
            frames * per,
            sp_adapter::SpConfig::multi_frame(frames, per).routed(s.route_policy),
        )
    } else {
        (nodes, sp_adapter::SpConfig::thin(nodes))
    };
    // Adaptive routing is the one remaining serial-only feature of the
    // sharded engine; schedules exercising it fall back to serial.
    let shards = if s.route_policy == RoutePolicy::Adaptive {
        1
    } else {
        shards
    };
    let sp = sp.parallel(shards);
    let cost = sp.cost.clone();
    let am_cfg = AmConfig {
        keepalive_polls: if s.keepalive_polls == 0 {
            u32::MAX
        } else {
            s.keepalive_polls
        },
        reliability: s.reliability,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(sp, am_cfg, s.seed);
    install_faults(&mut m, s, nodes);
    m.set_event_budget(EVENT_BUDGET);
    let tracer = if trace {
        Some(m.enable_tracing(1 << 14))
    } else {
        None
    };
    // Always-on flight recorder. A full-trace run shares the big rings;
    // otherwise a small bounded ring (2k records/node) is installed, which
    // only ever holds the tail of the run — exactly what a crash dump needs.
    let flight = match &tracer {
        Some(t) => {
            sp_trace::FlightRecorder::from_tracer(t.clone(), sp_trace::flight::DEFAULT_WINDOW_NS)
        }
        None => {
            let f =
                sp_trace::FlightRecorder::new(nodes, 1 << 11, sp_trace::flight::DEFAULT_WINDOW_NS);
            m.install_tracer(f.tracer());
            f
        }
    };

    let probe: SharedProbe = Arc::new(Mutex::new(Probe::default()));
    let pauses = collect_pauses(s, nodes);
    let crashes = collect_crashes(s, nodes);
    match s.workload {
        Workload::PingPong => spawn_pingpong(&mut m, s, nodes, &probe, &pauses, &crashes),
        Workload::Streaming => spawn_streaming(&mut m, s, nodes, &probe, &pauses, &crashes),
        Workload::SplitcRoundtrips => spawn_splitc(&mut m, s, nodes, &probe, &pauses),
        Workload::MpiExchange => spawn_mpi(&mut m, s, nodes, &probe, &pauses, cost),
    }

    let result = m.run();
    let p = match Arc::try_unwrap(probe) {
        Ok(m) => m.into_inner(),
        // Abort paths can leave program threads holding clones; fall back
        // to draining a locked snapshot.
        Err(arc) => std::mem::take(&mut *arc.lock()),
    };
    let mut out = RunOutcome {
        schedule: s.clone(),
        end_ns: 0,
        nodes: p.ends.into_values().collect(),
        streams: p.streams.into_iter().collect(),
        mismatches: p.mismatches,
        switch: SwitchStats::default(),
        dropped_overflow: 0,
        backlog: vec![0; nodes],
        adapter_received: 0,
        wiped_recv: 0,
        aborted: None,
        chrome_json: None,
        flight,
    };
    match result {
        Ok(report) => {
            out.end_ns = report.end_time.as_ns();
            out.switch = report.world.switch.stats().clone();
            out.dropped_overflow = report.dropped_overflow;
            out.backlog = (0..nodes).map(|n| report.world.recv_backlog(n)).collect();
            out.adapter_received = (0..nodes)
                .map(|n| report.world.adapter_stats(n).received)
                .sum();
            out.wiped_recv = (0..nodes)
                .map(|n| report.world.adapter_stats(n).wiped_recv)
                .sum();
        }
        Err(e) => out.aborted = Some(format!("{e:?}")),
    }
    if let Some(t) = tracer {
        out.chrome_json = Some(sp_trace::chrome::to_chrome_json(&t.snapshot()));
    }
    out
}

/// Build the fabric injector and the scheduled hardware mutations.
fn install_faults(m: &mut AmMachine, s: &Schedule, nodes: usize) {
    let mut inj = FaultInjector::with_seed(s.seed);
    for ev in &s.events {
        match *ev {
            FaultEvent::DropIndex(i) => {
                inj.drop_indices.insert(i);
            }
            FaultEvent::DupIndex(i) => {
                inj.dup_indices.insert(i);
            }
            FaultEvent::DelayIndex(i) => {
                inj.delay_indices.insert(i);
            }
            FaultEvent::DropWindow {
                p,
                from_ns,
                until_ns,
            } => inj.windows.push(FaultWindow {
                from: Time(from_ns),
                until: Time(until_ns),
                kind: FaultKind::Drop,
                probability: p,
            }),
            FaultEvent::DupWindow {
                p,
                from_ns,
                until_ns,
            } => inj.windows.push(FaultWindow {
                from: Time(from_ns),
                until: Time(until_ns),
                kind: FaultKind::Duplicate,
                probability: p,
            }),
            FaultEvent::DelayWindow {
                p,
                from_ns,
                until_ns,
            } => inj.windows.push(FaultWindow {
                from: Time(from_ns),
                until: Time(until_ns),
                kind: FaultKind::Delay,
                probability: p,
            }),
            FaultEvent::Partition {
                a,
                b,
                from_ns,
                until_ns,
            } => inj.partitions.push(PartitionWindow {
                a_nodes: a,
                b_nodes: b,
                from: Time(from_ns),
                until: Time(until_ns),
            }),
            _ => {}
        }
    }
    // Cable kills become per-link injectors that drop every packet routed
    // onto the severed lane, for the whole run. Out-of-range pairs (and any
    // kill on a single-frame machine, which has no cables) are ignored.
    let kills: Vec<(usize, usize, usize)> = s
        .events
        .iter()
        .filter_map(|ev| match *ev {
            FaultEvent::CableKill { from, to, lane } => Some((from, to, lane)),
            _ => None,
        })
        .collect();
    m.configure_world(move |w| {
        w.switch.set_fault_injector(inj);
        for &(from, to, lane) in &kills {
            let Topology::MultiFrame {
                frames,
                cables_per_pair,
                ..
            } = *w.switch.topology()
            else {
                continue;
            };
            if from == to || from >= frames || to >= frames || lane >= cables_per_pair {
                continue;
            }
            let link = w.switch.topology().cable(from, to, lane);
            let mut dead = FaultInjector::none();
            dead.drop_every_nth = Some(1);
            w.switch.set_link_fault_injector(link, dead);
        }
    });
    for ev in &s.events {
        match *ev {
            FaultEvent::FifoShrink {
                node,
                capacity,
                from_ns,
                until_ns,
            } if node < nodes => {
                m.schedule_world_at(Time(from_ns), move |w| w.set_recv_capacity(node, capacity));
                m.schedule_world_at(Time(until_ns), move |w| {
                    let cap = w.adapter_config().recv_entries_per_node * w.nodes();
                    w.set_recv_capacity(node, cap);
                });
            }
            FaultEvent::SendStall {
                node,
                at_ns,
                dur_ns,
            } if node < nodes => {
                m.schedule_world_at(Time(at_ns), move |w| {
                    w.stall_send(node, Time(at_ns + dur_ns));
                });
            }
            FaultEvent::RecvStall {
                node,
                at_ns,
                dur_ns,
            } if node < nodes => {
                m.schedule_world_at(Time(at_ns), move |w| {
                    w.stall_recv(node, Time(at_ns + dur_ns));
                });
            }
            _ => {}
        }
    }
}

/// Per-node program pauses, sorted by start time.
fn collect_pauses(s: &Schedule, nodes: usize) -> Vec<Vec<(Time, Dur)>> {
    let mut pauses = vec![Vec::new(); nodes];
    for ev in &s.events {
        if let FaultEvent::Pause {
            node,
            at_ns,
            dur_ns,
        } = *ev
        {
            if node < nodes {
                pauses[node].push((Time(at_ns), Dur(dur_ns)));
            }
        }
    }
    for p in &mut pauses {
        p.sort_by_key(|(at, _)| *at);
    }
    pauses
}

/// Per-node crash/restart events, sorted by crash time. Applied by the
/// AM-level workloads (pingpong, streaming), whose node programs own the
/// port directly; the library-level workloads (splitc, mpi) ignore them.
fn collect_crashes(s: &Schedule, nodes: usize) -> Vec<Vec<(Time, Dur)>> {
    let mut crashes = vec![Vec::new(); nodes];
    for ev in &s.events {
        if let FaultEvent::Crash {
            node,
            at_ns,
            down_ns,
        } = *ev
        {
            if node < nodes {
                crashes[node].push((Time(at_ns), Dur(down_ns)));
            }
        }
    }
    for c in &mut crashes {
        c.sort_by_key(|(at, _)| *at);
    }
    crashes
}

impl ChaosSt {
    fn new(probe: SharedProbe, pauses: Vec<(Time, Dur)>, crashes: Vec<(Time, Dur)>) -> ChaosSt {
        ChaosSt {
            probe,
            got: 0,
            pauses,
            pause_next: 0,
            crashes,
            crash_next: 0,
        }
    }
}

/// Take any due program pause: the node stops polling for the pause
/// length, which the peer observes as silence (keep-alive territory).
fn take_pause(am: &mut Am<'_, ChaosSt>) {
    loop {
        let now = am.now();
        let st = am.state();
        match st.pauses.get(st.pause_next) {
            Some(&(at, dur)) if now >= at => {
                am.state_mut().pause_next += 1;
                am.work(dur);
            }
            _ => return,
        }
    }
}

/// Take any due crash: wipe the node's adapter FIFOs and AM channel state,
/// stay dark for the outage, restart with a bumped incarnation epoch.
fn take_crash(am: &mut Am<'_, ChaosSt>) {
    loop {
        let now = am.now();
        let st = am.state();
        match st.crashes.get(st.crash_next) {
            Some(&(at, down)) if now >= at => {
                am.state_mut().crash_next += 1;
                am.crash_restart(down);
            }
            _ => return,
        }
    }
}

/// Apply every due scheduled program fault (crashes, then pauses).
fn take_faults(am: &mut Am<'_, ChaosSt>) {
    take_crash(am);
    take_pause(am);
}

/// Lossless-tail drain + end-of-run snapshot, shared by every workload:
/// keep polling until a quiet window passes with no arrivals, then give
/// keep-alive a bounded chance to clear unacked residue, then record the
/// node's final protocol state into the probe.
fn settle<S>(
    am: &mut Am<'_, S>,
    tail: Dur,
    probe: &SharedProbe,
    mut hook: impl FnMut(&mut Am<'_, S>),
) {
    let hard = am.now() + tail * 8;
    let mut quiet_until = am.now() + tail;
    while am.now() < quiet_until && am.now() < hard {
        hook(am);
        if am.poll() > 0 {
            quiet_until = am.now() + tail;
        }
    }
    let idle_by = am.now() + tail * 4;
    while !am.port().all_idle() && am.now() < idle_by {
        hook(am);
        am.poll();
    }
    let end = NodeEnd {
        node: am.node(),
        end_ns: am.now().as_ns(),
        all_idle: am.port().all_idle(),
        all_sent: am.port().all_sent(),
        stats: am.stats().clone(),
        residue: am.port().debug_state(),
    };
    probe.lock().ends.insert(end.node, end);
}

// ----- pingpong / streaming handlers (GAM table, same on every node) ----

/// Request handler: record arrival, bounce the id back.
fn h_pingpong_req(env: &mut AmEnv<'_, ChaosSt>, args: AmArgs) {
    let me = env.node();
    env.state.got += 1;
    env.state
        .probe
        .lock()
        .stream(format!("n{me}:req"))
        .push(args.a[0] as u64);
    env.reply_2(args.a[1] as u16, args.a[0], 0);
}

/// Reply handler: record the bounced id.
fn h_pingpong_rep(env: &mut AmEnv<'_, ChaosSt>, args: AmArgs) {
    let me = env.node();
    env.state.got += 1;
    env.state
        .probe
        .lock()
        .stream(format!("n{me}:rep"))
        .push(args.a[0] as u64);
}

/// One-way sink handler: record arrival, no reply.
fn h_sink(env: &mut AmEnv<'_, ChaosSt>, args: AmArgs) {
    let me = env.node();
    env.state.got += 1;
    env.state
        .probe
        .lock()
        .stream(format!("n{me}:req"))
        .push(args.a[0] as u64);
}

impl Probe {
    fn stream(&mut self, name: String) -> &mut Vec<u64> {
        self.streams.entry(name).or_default()
    }
}

fn spawn_pingpong(
    m: &mut AmMachine,
    s: &Schedule,
    nodes: usize,
    probe: &SharedProbe,
    pauses: &[Vec<(Time, Dur)>],
    crashes: &[Vec<(Time, Dur)>],
) {
    let (msgs, deadline, tail) = (s.msgs, Time(s.deadline_ns), Dur(s.tail_quiet_ns));
    for (node, node_pauses) in pauses.iter().enumerate().take(nodes) {
        let st = ChaosSt::new(probe.clone(), node_pauses.clone(), crashes[node].clone());
        let probe = probe.clone();
        m.spawn(format!("pp{node}"), st, move |am| {
            let req_h = am.register(h_pingpong_req);
            let rep_h = am.register(h_pingpong_rep);
            if node == 0 {
                for i in 0..msgs {
                    am.request_2(1, req_h, i as u32, rep_h as u32);
                    while am.state().got <= i && am.now() < deadline {
                        take_faults(am);
                        am.poll();
                    }
                    if am.state().got <= i {
                        break; // reply never came before the deadline
                    }
                }
            } else if node == 1 {
                while am.state().got < msgs && am.now() < deadline {
                    take_faults(am);
                    am.poll();
                }
            }
            settle(am, tail, &probe, take_faults);
        });
    }
}

fn spawn_streaming(
    m: &mut AmMachine,
    s: &Schedule,
    nodes: usize,
    probe: &SharedProbe,
    pauses: &[Vec<(Time, Dur)>],
    crashes: &[Vec<(Time, Dur)>],
) {
    let (msgs, deadline, tail) = (s.msgs, Time(s.deadline_ns), Dur(s.tail_quiet_ns));
    for (node, node_pauses) in pauses.iter().enumerate().take(nodes) {
        let st = ChaosSt::new(probe.clone(), node_pauses.clone(), crashes[node].clone());
        let probe = probe.clone();
        m.spawn(format!("st{node}"), st, move |am| {
            let sink_h = am.register(h_sink);
            if node == 0 {
                for i in 0..msgs {
                    if am.now() >= deadline {
                        break;
                    }
                    take_faults(am);
                    am.request_2(1, sink_h, i as u32, 0);
                }
            } else if node == 1 {
                while am.state().got < msgs && am.now() < deadline {
                    take_faults(am);
                    am.poll();
                }
            }
            settle(am, tail, &probe, take_faults);
        });
    }
}

fn spawn_splitc(
    m: &mut AmMachine,
    s: &Schedule,
    nodes: usize,
    probe: &SharedProbe,
    pauses: &[Vec<(Time, Dur)>],
) {
    let (msgs, deadline, tail) = (s.msgs, Time(s.deadline_ns), Dur(s.tail_quiet_ns));
    for node in 0..nodes {
        let probe = probe.clone();
        let pauses = pauses[node].clone();
        m.spawn(format!("sc{node}"), SplitcSt::default(), move |am| {
            {
                let mut gas = AmGas::new(am);
                gas.barrier();
                // SPMD symmetric heap: every node allocates in the same
                // order, so `cell` has the same address machine-wide.
                let cell = gas.alloc(4);
                let peer = node ^ 1;
                let mut pause_next = 0;
                for i in 0..msgs {
                    while let Some(&(at, dur)) = pauses.get(pause_next) {
                        if gas.now() < at {
                            break;
                        }
                        pause_next += 1;
                        gas.work(dur);
                    }
                    if gas.now() >= deadline || peer >= nodes {
                        break;
                    }
                    // Only this node writes the peer's cell, so the value
                    // read back must be the value just written. Both waits
                    // are deadline-bounded (`sync_until`, not the blocking
                    // `write_u32`/`read_u32`): a fault window that outlives
                    // the peer's quiet tail must not wedge this node in an
                    // unbounded completion loop.
                    let v = ((node as u32) << 16) | i as u32;
                    let cell = GlobalPtr {
                        node: peer,
                        addr: cell.addr,
                    };
                    let scratch = gas.scratch_addr();
                    gas.mem().write_u32(scratch, v);
                    gas.put(scratch, cell, 4);
                    if !gas.sync_until(deadline) {
                        break;
                    }
                    gas.get(cell, scratch, 4);
                    if !gas.sync_until(deadline) {
                        break;
                    }
                    let r = gas.mem().read_u32(scratch);
                    let mut p = probe.lock();
                    if r == v {
                        p.stream(format!("n{node}:rt")).push(i);
                    } else {
                        p.mismatches
                            .push(format!("splitc n{node} rt {i}: read {r:#x} want {v:#x}"));
                    }
                }
                // Closing barrier: a node that returns while its peer still
                // has round-trips in flight is, to the peer, a crash (§1.1).
                // The barrier polls — it keeps serving the peer's requests —
                // and every loop above is deadline-bounded, so everyone
                // reaches it even when a fault window severed the fabric.
                gas.barrier();
            }
            settle(am, tail, &probe, |_| {});
        });
    }
}

fn spawn_mpi(
    m: &mut AmMachine,
    s: &Schedule,
    nodes: usize,
    probe: &SharedProbe,
    pauses: &[Vec<(Time, Dur)>],
    cost: sp_machine::CostModel,
) {
    let (msgs, deadline, tail) = (s.msgs, Time(s.deadline_ns), Dur(s.tail_quiet_ns));
    let cfg = MpiAmConfig::optimized();
    for node in 0..nodes {
        let probe = probe.clone();
        let pauses = pauses[node].clone();
        let st = MpiSt::new(&cfg, node, nodes, &cost);
        let cfg = cfg.clone();
        m.spawn(format!("mx{node}"), st, move |am| {
            {
                let mut mpi = MpiAm::new(am, cfg);
                let right = (node + 1) % nodes;
                let left = (node + nodes - 1) % nodes;
                let mut pause_next = 0;
                for round in 0..msgs {
                    while let Some(&(at, dur)) = pauses.get(pause_next) {
                        if mpi.now() < at {
                            break;
                        }
                        pause_next += 1;
                        mpi.work(dur);
                    }
                    if mpi.now() >= deadline {
                        break;
                    }
                    let out = exchange_payload(node, round);
                    let rs = mpi.isend(&out, right, round as i32);
                    let rr = mpi.irecv(Some(left), Some(round as i32));
                    while !mpi.test(rr) && mpi.now() < deadline {
                        mpi.progress();
                    }
                    if !mpi.test(rr) {
                        break; // deadline: leave the round incomplete
                    }
                    let (data, status) = mpi.wait(rr).expect("tested complete");
                    let mut p = probe.lock();
                    if data == exchange_payload(left, round) && status.source == left {
                        p.stream(format!("n{node}:xch")).push(round);
                    } else {
                        p.mismatches.push(format!(
                            "mpi n{node} round {round}: bad payload from {}",
                            status.source
                        ));
                    }
                    drop(p);
                    while !mpi.test(rs) && mpi.now() < deadline {
                        mpi.progress();
                    }
                    if mpi.test(rs) {
                        mpi.wait(rs);
                    }
                }
            }
            settle(am, tail, &probe, |_| {});
        });
    }
}

/// The byte pattern rank `src` sends in `round` (verifiable at the
/// receiver without shared state).
fn exchange_payload(src: usize, round: u64) -> Vec<u8> {
    (0..96u64)
        .map(|i| (src as u64 ^ round.wrapping_mul(31) ^ i) as u8)
        .collect()
}
