//! `chaos` — run fault-injection campaigns and replay reproducers.
//!
//! ```text
//! chaos campaign [--per-workload N] [--seed S] [--workload NAME]... [--out DIR] [--parallel N]
//! chaos replay FILE [--trace OUT.json] [--parallel N]
//! ```
//!
//! `campaign` runs N seeded random schedules per workload; any invariant
//! violation is shrunk to a minimal reproducer written to DIR together
//! with a Chrome trace of the failing run. Exit code 2 if anything failed.
//!
//! `replay` re-executes a schedule (or reproducer) file and prints its
//! report; if the file embeds an expected report (`#= ` lines), the replay
//! is compared byte-for-byte and mismatches exit 3.
//!
//! `--parallel N` runs each schedule sharded across N conservative-parallel
//! engine shards. Outcomes and reports are byte-identical to serial runs,
//! so reproducers recorded serially replay cleanly under `--parallel` and
//! vice versa (adaptive-routing schedules fall back to serial).

use sp_chaos::Workload;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("campaign") => campaign(&args[1..]),
        Some("replay") => replay(&args[1..]),
        _ => {
            eprintln!("usage: chaos campaign [--per-workload N] [--seed S] [--workload NAME]... [--out DIR] [--parallel N]");
            eprintln!("       chaos replay FILE [--trace OUT.json] [--parallel N]");
            ExitCode::FAILURE
        }
    }
}

fn campaign(args: &[String]) -> ExitCode {
    let mut per_workload = 16;
    let mut seed = 1u64;
    let mut workloads = Vec::new();
    let mut out_dir = PathBuf::from("chaos-out");
    let mut parallel = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--per-workload" => {
                per_workload = val("--per-workload")
                    .parse()
                    .unwrap_or_else(|_| die("bad --per-workload"))
            }
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| die("bad --seed")),
            "--workload" => {
                let name = val("--workload");
                workloads.push(
                    Workload::parse(name)
                        .unwrap_or_else(|| die(&format!("unknown workload {name}"))),
                );
            }
            "--out" => out_dir = PathBuf::from(val("--out")),
            "--parallel" => {
                parallel = val("--parallel")
                    .parse()
                    .unwrap_or_else(|_| die("bad --parallel"))
            }
            _ => die(&format!("unknown flag {a}")),
        }
    }
    if workloads.is_empty() {
        workloads = Workload::ALL.to_vec();
    }
    let result = sp_chaos::run_campaign_sharded(
        per_workload,
        seed,
        &workloads,
        parallel,
        |s, violations| {
            println!(
                "[chaos] {} seed {} ({} events): {}",
                s.workload.name(),
                s.seed,
                s.events.len(),
                if violations == 0 {
                    "ok".into()
                } else {
                    format!("{violations} VIOLATIONS")
                }
            );
        },
    );
    println!(
        "[chaos] {} runs, {} failures",
        result.runs,
        result.failures.len()
    );
    if result.failures.is_empty() {
        return ExitCode::SUCCESS;
    }
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| die(&format!("mkdir {}: {e}", out_dir.display())));
    for f in &result.failures {
        let base = format!("chaos-repro-{}-{}", f.shrunk.workload.name(), f.shrunk.seed);
        let sched_path = out_dir.join(format!("{base}.sched"));
        let trace_path = out_dir.join(format!("{base}.trace.json"));
        let flight_path = out_dir.join(format!("{base}.flight.json"));
        std::fs::write(&sched_path, &f.repro).unwrap_or_else(|e| die(&format!("write: {e}")));
        std::fs::write(&trace_path, &f.chrome_json).unwrap_or_else(|e| die(&format!("write: {e}")));
        std::fs::write(&flight_path, &f.flight_json)
            .unwrap_or_else(|e| die(&format!("write: {e}")));
        println!(
            "[chaos] FAILURE {}: {} events shrunk to {}; repro {} trace {} flight {}",
            f.shrunk.workload.name(),
            f.original.events.len(),
            f.shrunk.events.len(),
            sched_path.display(),
            trace_path.display(),
            flight_path.display()
        );
        print!("{}", f.report);
    }
    ExitCode::from(2)
}

fn replay(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut parallel = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                trace_out = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| die("--trace needs a value")),
                ))
            }
            "--parallel" => {
                parallel = it
                    .next()
                    .unwrap_or_else(|| die("--parallel needs a value"))
                    .parse()
                    .unwrap_or_else(|_| die("bad --parallel"))
            }
            _ if file.is_none() => file = Some(a.clone()),
            _ => die(&format!("unexpected argument {a}")),
        }
    }
    let file = file.unwrap_or_else(|| die("replay needs a schedule file"));
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
    let rep = sp_chaos::replay_sharded(&text, parallel)
        .unwrap_or_else(|e| die(&format!("parse {file}: {e}")));
    print!("{}", rep.report);
    if let Some(out) = trace_out {
        let traced = sp_chaos::run_traced(&rep.schedule);
        std::fs::write(&out, traced.chrome_json.unwrap_or_default())
            .unwrap_or_else(|e| die(&format!("write {}: {e}", out.display())));
        println!("[chaos] trace written to {}", out.display());
    }
    match rep.matches() {
        Some(true) => {
            println!("[chaos] replay matches embedded expectation byte-for-byte");
            ExitCode::SUCCESS
        }
        Some(false) => {
            eprintln!("[chaos] REPLAY MISMATCH: run differs from embedded expectation");
            eprintln!("--- expected ---\n{}", rep.expected.unwrap());
            // Dump the mismatching run's tail so the divergence can be
            // inspected without re-running under full tracing.
            let flight_path = format!("{file}.flight.json");
            std::fs::write(
                &flight_path,
                sp_chaos::run(&rep.schedule).flight.dump_json(),
            )
            .unwrap_or_else(|e| die(&format!("write {flight_path}: {e}")));
            eprintln!("[chaos] flight dump written to {flight_path}");
            ExitCode::from(3)
        }
        None => ExitCode::SUCCESS,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    std::process::exit(1);
}
