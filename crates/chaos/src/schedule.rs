//! Serializable fault schedules — the unit of input to the chaos harness.
//!
//! A [`Schedule`] names a workload, its parameters, and an ordered list of
//! [`FaultEvent`]s pinned to virtual-time windows or global packet indices.
//! Schedules round-trip exactly through a plain-text format so a failing
//! run can be written to disk and re-executed byte-for-byte:
//!
//! ```text
//! workload pingpong
//! nodes 2
//! seed 42
//! msgs 8
//! keepalive_polls 64
//! deadline_ns 50000000
//! tail_quiet_ns 2000000
//! drop index 7
//! dup p 0.1 from 0 until 2000000
//! fifo_shrink node 1 capacity 4 from 0 until 1000000
//! send_stall node 0 at 100000 dur 500000
//! pause node 1 at 200000 dur 1000000
//! ```
//!
//! Multi-frame machines add two more header directives and one event:
//!
//! ```text
//! frames 2
//! route_policy adaptive
//! cable_kill from 0 to 1 lane 2
//! ```
//!
//! Hierarchical machines instead declare a fat-tree shape (which overrides
//! `frames`/`nodes`; `cable_kill` has no cables to sever there and is
//! ignored):
//!
//! ```text
//! fat_tree levels 2 radix 4 oversub 1 npf 4
//! ```
//!
//! The reliability layer adds one more header directive and two events
//! (node sets in `partition` are bitmasks, node `i` ⇒ bit `i`):
//!
//! ```text
//! reliability adaptive_rto 1 sack 1 min_rto_ns 50000 max_rto_ns 4000000 granularity_ns 10000 backoff_cap 6
//! crash node 1 at 300000 down 500000
//! partition a 1 b 2 from 100000 until 900000
//! ```
//!
//! All such headers serialize only when they differ from the classic
//! default (single frame, round-robin, legacy go-back-N reliability), so
//! every pre-existing schedule file (and every pinned reproducer report)
//! keeps its exact bytes.
//!
//! Lines starting with `#` are comments. All times are virtual nanoseconds.

use sp_am::ReliabilityConfig;
use sp_switch::RoutePolicy;
use std::fmt;

/// The workload a schedule runs its faults under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Node 0 sends `msgs` sequential request/reply round-trips to node 1.
    PingPong,
    /// Node 0 streams `msgs` one-way requests at node 1.
    Streaming,
    /// Both nodes perform `msgs` Split-C `write_u32`/`read_u32` round-trips
    /// against the peer's memory, verifying each value read back.
    SplitcRoundtrips,
    /// A ring of nodes exchanges `msgs` tagged MPI messages, verifying
    /// payload contents each round.
    MpiExchange,
}

impl Workload {
    /// Every workload, in campaign order.
    pub const ALL: [Workload; 4] = [
        Workload::PingPong,
        Workload::Streaming,
        Workload::SplitcRoundtrips,
        Workload::MpiExchange,
    ];

    /// The name used in schedule files.
    pub fn name(self) -> &'static str {
        match self {
            Workload::PingPong => "pingpong",
            Workload::Streaming => "streaming",
            Workload::SplitcRoundtrips => "splitc",
            Workload::MpiExchange => "mpi",
        }
    }

    /// Inverse of [`Workload::name`].
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }

    /// Node count the workload runs on by default.
    pub fn default_nodes(self) -> usize {
        match self {
            Workload::MpiExchange => 4,
            _ => 2,
        }
    }
}

/// One fault, pinned to a packet index, a virtual-time window, or a
/// virtual-time instant. Index-based events select packets by their global
/// fabric-injection index (0-based, in injection order); window events hit
/// packets probabilistically while the window `[from, until)` is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Drop the packet with this global injection index.
    DropIndex(u64),
    /// Duplicate the packet with this global injection index.
    DupIndex(u64),
    /// Delay (reorder) the packet with this global injection index.
    DelayIndex(u64),
    /// Drop packets with probability `p` while the window is open.
    DropWindow {
        /// Per-packet selection probability.
        p: f64,
        /// Window opens (inclusive), virtual ns.
        from_ns: u64,
        /// Window closes (exclusive), virtual ns.
        until_ns: u64,
    },
    /// Duplicate packets with probability `p` while the window is open.
    DupWindow {
        /// Per-packet selection probability.
        p: f64,
        /// Window opens (inclusive), virtual ns.
        from_ns: u64,
        /// Window closes (exclusive), virtual ns.
        until_ns: u64,
    },
    /// Delay packets with probability `p` while the window is open.
    DelayWindow {
        /// Per-packet selection probability.
        p: f64,
        /// Window opens (inclusive), virtual ns.
        from_ns: u64,
        /// Window closes (exclusive), virtual ns.
        until_ns: u64,
    },
    /// Shrink a node's receive FIFO to `capacity` entries over a window
    /// (restored to the configured size at `until_ns`).
    FifoShrink {
        /// Node whose FIFO shrinks.
        node: usize,
        /// Shrunk capacity, in entries.
        capacity: usize,
        /// Shrink takes effect (virtual ns).
        from_ns: u64,
        /// Capacity is restored (virtual ns).
        until_ns: u64,
    },
    /// Stall a node's send DMA engine: the firmware pops no send-FIFO entry
    /// between `at` and `at + dur`.
    SendStall {
        /// Node whose send engine stalls.
        node: usize,
        /// Stall starts (virtual ns).
        at_ns: u64,
        /// Stall length (ns).
        dur_ns: u64,
    },
    /// Stall a node's receive firmware: arrivals queue behind the stall.
    RecvStall {
        /// Node whose receive engine stalls.
        node: usize,
        /// Stall starts (virtual ns).
        at_ns: u64,
        /// Stall length (ns).
        dur_ns: u64,
    },
    /// Pause a node's *program* (it stops polling), keepalive-visible from
    /// the peer's side. Applied at the first poll-loop iteration at or
    /// after `at`.
    Pause {
        /// Node whose program pauses.
        node: usize,
        /// Pause starts (virtual ns).
        at_ns: u64,
        /// Pause length (ns).
        dur_ns: u64,
    },
    /// Crash a node's program at `at_ns`: its adapter FIFOs and all AM
    /// channel/epoch state are wiped, the node stays dark for `down_ns`
    /// (arrivals during the outage are lost too), then it restarts with a
    /// bumped incarnation epoch. Handlers and application memory survive
    /// (the model crashes the *communication subsystem*, not the test
    /// harness). Applied at the first poll-loop iteration at or after
    /// `at_ns`, like [`FaultEvent::Pause`].
    Crash {
        /// Node that crashes.
        node: usize,
        /// Crash instant (virtual ns).
        at_ns: u64,
        /// Outage length (ns) before the restart.
        down_ns: u64,
    },
    /// Bidirectional partition between two node sets (bitmasks: node `i` ⇒
    /// bit `i`) over `[from_ns, until_ns)`: packets crossing the split in
    /// either direction are dropped; intra-side traffic is unaffected.
    Partition {
        /// One side of the split (bitmask).
        a: u64,
        /// The other side (bitmask).
        b: u64,
        /// Partition begins (inclusive, virtual ns).
        from_ns: u64,
        /// Partition heals (exclusive, virtual ns).
        until_ns: u64,
    },
    /// Permanently sever one cable lane of a frame pair: every packet
    /// routed onto it is dropped, for the whole run. Directional (only the
    /// `from -> to` cable dies); ignored on single-frame machines or when
    /// the pair/lane is out of range. With four lanes per pair the
    /// reliability layer must route retransmissions around the dead cable.
    CableKill {
        /// Source frame of the severed cable.
        from: usize,
        /// Destination frame of the severed cable.
        to: usize,
        /// Which of the parallel cable lanes dies.
        lane: usize,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::DropIndex(i) => write!(f, "drop index {i}"),
            FaultEvent::DupIndex(i) => write!(f, "dup index {i}"),
            FaultEvent::DelayIndex(i) => write!(f, "delay index {i}"),
            FaultEvent::DropWindow {
                p,
                from_ns,
                until_ns,
            } => {
                write!(f, "drop p {p} from {from_ns} until {until_ns}")
            }
            FaultEvent::DupWindow {
                p,
                from_ns,
                until_ns,
            } => {
                write!(f, "dup p {p} from {from_ns} until {until_ns}")
            }
            FaultEvent::DelayWindow {
                p,
                from_ns,
                until_ns,
            } => {
                write!(f, "delay p {p} from {from_ns} until {until_ns}")
            }
            FaultEvent::FifoShrink {
                node,
                capacity,
                from_ns,
                until_ns,
            } => {
                write!(
                    f,
                    "fifo_shrink node {node} capacity {capacity} from {from_ns} until {until_ns}"
                )
            }
            FaultEvent::SendStall {
                node,
                at_ns,
                dur_ns,
            } => {
                write!(f, "send_stall node {node} at {at_ns} dur {dur_ns}")
            }
            FaultEvent::RecvStall {
                node,
                at_ns,
                dur_ns,
            } => {
                write!(f, "recv_stall node {node} at {at_ns} dur {dur_ns}")
            }
            FaultEvent::Pause {
                node,
                at_ns,
                dur_ns,
            } => {
                write!(f, "pause node {node} at {at_ns} dur {dur_ns}")
            }
            FaultEvent::Crash {
                node,
                at_ns,
                down_ns,
            } => {
                write!(f, "crash node {node} at {at_ns} down {down_ns}")
            }
            FaultEvent::Partition {
                a,
                b,
                from_ns,
                until_ns,
            } => {
                write!(f, "partition a {a} b {b} from {from_ns} until {until_ns}")
            }
            FaultEvent::CableKill { from, to, lane } => {
                write!(f, "cable_kill from {from} to {to} lane {lane}")
            }
        }
    }
}

/// The name a routing policy carries in schedule files and reports.
pub fn policy_name(p: RoutePolicy) -> &'static str {
    match p {
        RoutePolicy::RoundRobin => "round_robin",
        RoutePolicy::Adaptive => "adaptive",
    }
}

/// Inverse of [`policy_name`].
pub fn parse_policy(s: &str) -> Option<RoutePolicy> {
    match s {
        "round_robin" => Some(RoutePolicy::RoundRobin),
        "adaptive" => Some(RoutePolicy::Adaptive),
        _ => None,
    }
}

/// A complete chaos-run description: workload, parameters, faults.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Workload to run the faults under.
    pub workload: Workload,
    /// Machine size (clamped up to the workload's minimum at run time).
    pub nodes: usize,
    /// Seed for the fault injector's stochastic selectors.
    pub seed: u64,
    /// Workload message count.
    pub msgs: u64,
    /// AM keep-alive threshold in unsuccessful polls; `0` disables
    /// keep-alive entirely (maps to `u32::MAX` in [`sp_am::AmConfig`]).
    pub keepalive_polls: u32,
    /// Per-wait virtual-time deadline: blocking loops give up at this
    /// absolute virtual time instead of hanging forever.
    pub deadline_ns: u64,
    /// Quiet-window length for the lossless-tail drain each node runs
    /// after its workload loop.
    pub tail_quiet_ns: u64,
    /// Switch frames. `1` (the default) is the classic single-frame
    /// machine; larger values spread `nodes` across
    /// `Topology::multi_frame(frames, ceil(nodes / frames))`.
    pub frames: usize,
    /// Fabric routing policy. Only observable on multi-frame machines,
    /// where the candidate routes ride distinct cables.
    pub route_policy: RoutePolicy,
    /// Hierarchical fat-tree topology `(levels, radix, oversubscription,
    /// nodes_per_frame)`. When set it overrides `frames` and `nodes`: the
    /// machine is `Topology::fat_tree_custom(..)` and every leaf frame is
    /// fully populated. Serialized only when set, so flat schedule files
    /// keep their exact bytes.
    pub fat_tree: Option<(usize, usize, usize, usize)>,
    /// AM reliability mode (legacy go-back-N by default). Serialized only
    /// when non-default, so pre-reliability schedule files keep their
    /// bytes; its hash is embedded in replay reports so a schedule replayed
    /// under a different reliability configuration fails loudly.
    pub reliability: ReliabilityConfig,
    /// The faults, applied in order.
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// A schedule with no faults and default parameters for `workload`.
    pub fn new(workload: Workload) -> Schedule {
        Schedule {
            workload,
            nodes: workload.default_nodes(),
            seed: 1,
            msgs: 8,
            keepalive_polls: 64,
            deadline_ns: 50_000_000,
            tail_quiet_ns: 2_000_000,
            frames: 1,
            route_policy: RoutePolicy::RoundRobin,
            fat_tree: None,
            reliability: ReliabilityConfig::default(),
            events: Vec::new(),
        }
    }

    /// Render the canonical text form (inverse of [`Schedule::parse`]).
    pub fn format(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "workload {}", self.workload.name());
        let _ = writeln!(s, "nodes {}", self.nodes);
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "msgs {}", self.msgs);
        let _ = writeln!(s, "keepalive_polls {}", self.keepalive_polls);
        let _ = writeln!(s, "deadline_ns {}", self.deadline_ns);
        let _ = writeln!(s, "tail_quiet_ns {}", self.tail_quiet_ns);
        // Topology headers only when non-default: single-frame schedule
        // files written before multi-frame support keep their exact bytes.
        if self.frames > 1 {
            let _ = writeln!(s, "frames {}", self.frames);
        }
        if self.route_policy != RoutePolicy::RoundRobin {
            let _ = writeln!(s, "route_policy {}", policy_name(self.route_policy));
        }
        if let Some((levels, radix, oversub, npf)) = self.fat_tree {
            let _ = writeln!(
                s,
                "fat_tree levels {levels} radix {radix} oversub {oversub} npf {npf}"
            );
        }
        if !self.reliability.is_legacy() {
            let _ = writeln!(s, "reliability {}", self.reliability.format_fields());
        }
        for ev in &self.events {
            let _ = writeln!(s, "{ev}");
        }
        s
    }

    /// Parse the text form. Header lines may appear in any order; event
    /// lines keep their order. Lines starting with `#` are ignored.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut sched: Option<Schedule> = None;
        let mut header: Vec<(String, u64)> = Vec::new();
        let mut policy: Option<RoutePolicy> = None;
        let mut fat_tree: Option<(usize, usize, usize, usize)> = None;
        let mut reliability: Option<ReliabilityConfig> = None;
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: &str| format!("line {}: {m}: {line:?}", lineno + 1);
            let tok: Vec<&str> = line.split_whitespace().collect();
            match tok[0] {
                "workload" => {
                    let name = tok.get(1).ok_or_else(|| err("missing workload name"))?;
                    let w = Workload::parse(name).ok_or_else(|| err("unknown workload"))?;
                    sched = Some(Schedule::new(w));
                }
                "nodes" | "seed" | "msgs" | "keepalive_polls" | "deadline_ns" | "tail_quiet_ns"
                | "frames" => {
                    let v = parse_u64(tok.get(1).copied()).ok_or_else(|| err("bad value"))?;
                    header.push((tok[0].to_string(), v));
                }
                "route_policy" => {
                    let name = tok.get(1).ok_or_else(|| err("missing route policy"))?;
                    policy = Some(parse_policy(name).ok_or_else(|| err("unknown route policy"))?);
                }
                "fat_tree" => {
                    let f = parse_fields(&tok[1..], &["levels", "radix", "oversub", "npf"])
                        .ok_or_else(|| err("bad fat_tree header"))?;
                    let (levels, radix, oversub, npf) =
                        (f[0] as usize, f[1] as usize, f[2] as usize, f[3] as usize);
                    // Validate here so a hostile schedule file errors instead
                    // of panicking inside the topology constructor.
                    if !(2..=sp_switch::MAX_PATH_LINKS / 2).contains(&levels)
                        || radix < 2
                        || oversub < 1
                        || !(1..=sp_switch::FRAME_PORTS).contains(&npf)
                    {
                        return Err(err("fat_tree shape out of range"));
                    }
                    fat_tree = Some((levels, radix, oversub, npf));
                }
                "drop" | "dup" | "delay" => {
                    events.push(parse_fault(&tok).ok_or_else(|| err("bad fault event"))?);
                }
                "fifo_shrink" => {
                    let f = parse_fields(&tok[1..], &["node", "capacity", "from", "until"])
                        .ok_or_else(|| err("bad fifo_shrink event"))?;
                    events.push(FaultEvent::FifoShrink {
                        node: f[0] as usize,
                        capacity: f[1] as usize,
                        from_ns: f[2],
                        until_ns: f[3],
                    });
                }
                "reliability" => {
                    let f = parse_fields(
                        &tok[1..],
                        &[
                            "adaptive_rto",
                            "sack",
                            "min_rto_ns",
                            "max_rto_ns",
                            "granularity_ns",
                            "backoff_cap",
                        ],
                    )
                    .ok_or_else(|| err("bad reliability directive"))?;
                    reliability = Some(
                        ReliabilityConfig::from_values(&f)
                            .ok_or_else(|| err("bad reliability values"))?,
                    );
                }
                "crash" => {
                    let f = parse_fields(&tok[1..], &["node", "at", "down"])
                        .ok_or_else(|| err("bad crash event"))?;
                    events.push(FaultEvent::Crash {
                        node: f[0] as usize,
                        at_ns: f[1],
                        down_ns: f[2],
                    });
                }
                "partition" => {
                    let f = parse_fields(&tok[1..], &["a", "b", "from", "until"])
                        .ok_or_else(|| err("bad partition event"))?;
                    events.push(FaultEvent::Partition {
                        a: f[0],
                        b: f[1],
                        from_ns: f[2],
                        until_ns: f[3],
                    });
                }
                "cable_kill" => {
                    let f = parse_fields(&tok[1..], &["from", "to", "lane"])
                        .ok_or_else(|| err("bad cable_kill event"))?;
                    events.push(FaultEvent::CableKill {
                        from: f[0] as usize,
                        to: f[1] as usize,
                        lane: f[2] as usize,
                    });
                }
                "send_stall" | "recv_stall" | "pause" => {
                    let f = parse_fields(&tok[1..], &["node", "at", "dur"])
                        .ok_or_else(|| err("bad stall/pause event"))?;
                    let (node, at_ns, dur_ns) = (f[0] as usize, f[1], f[2]);
                    events.push(match tok[0] {
                        "send_stall" => FaultEvent::SendStall {
                            node,
                            at_ns,
                            dur_ns,
                        },
                        "recv_stall" => FaultEvent::RecvStall {
                            node,
                            at_ns,
                            dur_ns,
                        },
                        _ => FaultEvent::Pause {
                            node,
                            at_ns,
                            dur_ns,
                        },
                    });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        let mut sched = sched.ok_or("missing `workload` line".to_string())?;
        for (key, v) in header {
            match key.as_str() {
                "nodes" => sched.nodes = v as usize,
                "seed" => sched.seed = v,
                "msgs" => sched.msgs = v,
                "keepalive_polls" => sched.keepalive_polls = v as u32,
                "deadline_ns" => sched.deadline_ns = v,
                "tail_quiet_ns" => sched.tail_quiet_ns = v,
                "frames" => sched.frames = (v as usize).max(1),
                _ => unreachable!(),
            }
        }
        if let Some(p) = policy {
            sched.route_policy = p;
        }
        sched.fat_tree = fat_tree;
        if let Some(r) = reliability {
            sched.reliability = r;
        }
        sched.events = events;
        Ok(sched)
    }
}

fn parse_u64(tok: Option<&str>) -> Option<u64> {
    tok?.parse().ok()
}

/// Parse `<label0> <v0> <label1> <v1> …` checking each label.
fn parse_fields(tok: &[&str], labels: &[&str]) -> Option<Vec<u64>> {
    if tok.len() != labels.len() * 2 {
        return None;
    }
    let mut out = Vec::with_capacity(labels.len());
    for (i, label) in labels.iter().enumerate() {
        if tok[2 * i] != *label {
            return None;
        }
        out.push(tok[2 * i + 1].parse().ok()?);
    }
    Some(out)
}

/// Parse `drop|dup|delay index N` or `drop|dup|delay p P from A until B`.
fn parse_fault(tok: &[&str]) -> Option<FaultEvent> {
    match *tok.get(1)? {
        "index" => {
            let i: u64 = tok.get(2)?.parse().ok()?;
            if tok.len() != 3 {
                return None;
            }
            Some(match tok[0] {
                "drop" => FaultEvent::DropIndex(i),
                "dup" => FaultEvent::DupIndex(i),
                _ => FaultEvent::DelayIndex(i),
            })
        }
        "p" => {
            if tok.len() != 7 || tok[3] != "from" || tok[5] != "until" {
                return None;
            }
            let p: f64 = tok.get(2)?.parse().ok()?;
            if !(0.0..=1.0).contains(&p) {
                return None;
            }
            let from_ns: u64 = tok[4].parse().ok()?;
            let until_ns: u64 = tok[6].parse().ok()?;
            Some(match tok[0] {
                "drop" => FaultEvent::DropWindow {
                    p,
                    from_ns,
                    until_ns,
                },
                "dup" => FaultEvent::DupWindow {
                    p,
                    from_ns,
                    until_ns,
                },
                _ => FaultEvent::DelayWindow {
                    p,
                    from_ns,
                    until_ns,
                },
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        let mut s = Schedule::new(Workload::PingPong);
        s.seed = 42;
        s.msgs = 4;
        s.keepalive_polls = 0;
        s.events = vec![
            FaultEvent::DropIndex(7),
            FaultEvent::DupWindow {
                p: 0.125,
                from_ns: 0,
                until_ns: 2_000_000,
            },
            FaultEvent::DelayIndex(3),
            FaultEvent::FifoShrink {
                node: 1,
                capacity: 4,
                from_ns: 10,
                until_ns: 1_000_000,
            },
            FaultEvent::SendStall {
                node: 0,
                at_ns: 100_000,
                dur_ns: 500_000,
            },
            FaultEvent::RecvStall {
                node: 1,
                at_ns: 5,
                dur_ns: 6,
            },
            FaultEvent::Pause {
                node: 1,
                at_ns: 200_000,
                dur_ns: 1_000_000,
            },
            FaultEvent::DropWindow {
                p: 1.0,
                from_ns: 3,
                until_ns: 9,
            },
        ];
        s
    }

    #[test]
    fn round_trips_exactly() {
        let s = sample();
        let text = s.format();
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.format(), text);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("# repro\n\n{}\n# trailing\n", sample().format());
        assert_eq!(Schedule::parse(&text).unwrap(), sample());
    }

    #[test]
    fn header_lines_override_defaults_in_any_order() {
        let s = Schedule::parse("msgs 3\nworkload mpi\nseed 9\n").unwrap();
        assert_eq!(s.workload, Workload::MpiExchange);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.msgs, 3);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn topology_headers_and_cable_kills_round_trip() {
        let mut s = sample();
        s.frames = 2;
        s.route_policy = RoutePolicy::Adaptive;
        s.events.push(FaultEvent::CableKill {
            from: 0,
            to: 1,
            lane: 2,
        });
        let text = s.format();
        assert!(text.contains("frames 2\n"));
        assert!(text.contains("route_policy adaptive\n"));
        assert!(text.contains("cable_kill from 0 to 1 lane 2\n"));
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.format(), text);
    }

    #[test]
    fn fat_tree_header_round_trips_and_validates() {
        let mut s = sample();
        s.fat_tree = Some((2, 4, 1, 4));
        let text = s.format();
        assert!(text.contains("fat_tree levels 2 radix 4 oversub 1 npf 4\n"));
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.format(), text);
        // Flat schedules never mention the header.
        assert!(!sample().format().contains("fat_tree"));
        // Hostile shapes error instead of panicking downstream.
        for bad in [
            "workload pingpong\nfat_tree levels 9 radix 4 oversub 1 npf 4",
            "workload pingpong\nfat_tree levels 2 radix 1 oversub 1 npf 4",
            "workload pingpong\nfat_tree levels 2 radix 4 oversub 0 npf 4",
            "workload pingpong\nfat_tree levels 2 radix 4 oversub 1 npf 17",
        ] {
            assert!(Schedule::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn default_topology_serializes_to_the_pre_topology_bytes() {
        // Single-frame round-robin schedules must not mention the topology
        // at all: exactly the 7 historical header lines plus the events.
        let s = sample();
        let text = s.format();
        assert!(!text.contains("frames"));
        assert!(!text.contains("route_policy"));
        let headers = text.lines().take_while(|l| !l.starts_with("drop")).count();
        assert_eq!(headers, 7);
    }

    #[test]
    fn reliability_crash_and_partition_round_trip() {
        let mut s = sample();
        s.reliability = ReliabilityConfig::adaptive();
        s.events.push(FaultEvent::Crash {
            node: 1,
            at_ns: 300_000,
            down_ns: 500_000,
        });
        s.events.push(FaultEvent::Partition {
            a: 0b01,
            b: 0b10,
            from_ns: 100_000,
            until_ns: 900_000,
        });
        let text = s.format();
        assert!(text.contains(
            "reliability adaptive_rto 1 sack 1 min_rto_ns 50000 \
             max_rto_ns 4000000 granularity_ns 10000 backoff_cap 6\n"
        ));
        assert!(text.contains("crash node 1 at 300000 down 500000\n"));
        assert!(text.contains("partition a 1 b 2 from 100000 until 900000\n"));
        let back = Schedule::parse(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.format(), text);
    }

    #[test]
    fn legacy_reliability_serializes_to_the_pre_reliability_bytes() {
        let s = sample();
        assert!(s.reliability.is_legacy());
        assert!(!s.format().contains("reliability"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Schedule::parse("").is_err());
        assert!(Schedule::parse("workload nope").is_err());
        assert!(Schedule::parse("workload pingpong\nfrobnicate 3").is_err());
        assert!(Schedule::parse("workload pingpong\ndrop p 1.5 from 0 until 9").is_err());
        assert!(Schedule::parse("workload pingpong\ndrop index").is_err());
        assert!(Schedule::parse("workload pingpong\nroute_policy hottest").is_err());
        assert!(Schedule::parse("workload pingpong\ncable_kill from 0 to 1").is_err());
        assert!(Schedule::parse("workload pingpong\ncrash node 1 at 5").is_err());
        assert!(Schedule::parse("workload pingpong\npartition a 1 b 2 from 0").is_err());
        assert!(Schedule::parse("workload pingpong\nreliability adaptive_rto 2").is_err());
    }

    #[test]
    fn workload_names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
    }
}
