//! The invariants every schedule execution must satisfy after its lossless
//! tail, and the deterministic report a run is judged (and replayed) by.

use crate::run::RunOutcome;
use crate::schedule::{policy_name, FaultEvent, Schedule, Workload};
use sp_switch::RoutePolicy;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Nodes the schedule actually crashes: crash events are applied by the
/// AM-level workloads only (the library-level workloads ignore them), and
/// only for in-range nodes.
fn crashed_nodes(s: &Schedule) -> BTreeSet<usize> {
    if !matches!(s.workload, Workload::PingPong | Workload::Streaming) {
        return BTreeSet::new();
    }
    s.events
        .iter()
        .filter_map(|ev| match *ev {
            FaultEvent::Crash { node, .. } if node < s.nodes.max(2) => Some(node),
            _ => None,
        })
        .collect()
}

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: &'static str,
    /// What exactly happened (ids, nodes, counters).
    pub detail: String,
}

impl Violation {
    fn new(kind: &'static str, detail: String) -> Violation {
        Violation { kind, detail }
    }
}

/// Check every invariant against a completed run:
///
/// * **exactly-once** — no delivery stream observes the same id twice;
/// * **ordered** — every stream's ids are strictly increasing (SP AM
///   promises ordered delivery per channel);
/// * **no-corruption** — workload-level payload verification passed;
/// * **completeness** — everything the sender's protocol accepted was
///   delivered (per workload, from the protocol's own counters);
/// * **quiescence** — after the lossless tail every node emitted all
///   accepted sends, no receive FIFO holds unread packets, and (when
///   keep-alive is enabled, which is the only configuration that *can*
///   clear ack residue) every channel is fully idle;
/// * **conservation** — packets are neither created nor destroyed
///   unaccounted, at each AM port, across the adapters, and in the fabric;
/// * **aborted** — the run exhausted its event budget (reported alone,
///   since hardware state is lost).
pub fn check(out: &RunOutcome) -> Vec<Violation> {
    let mut v = Vec::new();
    if let Some(e) = &out.aborted {
        v.push(Violation::new("aborted", e.clone()));
        return v;
    }
    let s = &out.schedule;
    let crashed = crashed_nodes(s);

    // A receiver crash loses the "already delivered" memory for packets
    // that were delivered but not yet cumulatively acked, so the sender's
    // reincarnated channel redelivers them: exactly-once across a crash
    // necessarily degrades to exactly-once *modulo crash-straddling
    // redelivery*. Crash schedules are therefore judged on each stream's
    // first deliveries (dedup keeping first occurrence); everything else
    // keeps the strict checks.
    let streams: Vec<(String, Vec<u64>)> = out
        .streams
        .iter()
        .map(|(name, ids)| {
            if crashed.is_empty() {
                (name.clone(), ids.clone())
            } else {
                let mut seen = BTreeSet::new();
                let firsts = ids.iter().copied().filter(|&i| seen.insert(i)).collect();
                (name.clone(), firsts)
            }
        })
        .collect();

    for (name, ids) in &streams {
        let mut seen = BTreeSet::new();
        for &id in ids {
            if !seen.insert(id) {
                v.push(Violation::new(
                    "duplicate-delivery",
                    format!("{name}: id {id} delivered twice"),
                ));
            }
        }
        if let Some(w) = ids.windows(2).find(|w| w[1] <= w[0]) {
            v.push(Violation::new(
                "out-of-order",
                format!("{name}: id {} delivered after id {}", w[1], w[0]),
            ));
        }
    }

    for m in &out.mismatches {
        v.push(Violation::new("data-mismatch", m.clone()));
    }

    let len = |name: &str| -> u64 {
        streams
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, ids)| ids.len() as u64)
    };
    let node = |i: usize| out.nodes.iter().find(|n| n.node == i);
    fn incomplete(v: &mut Vec<Violation>, what: &str, got: u64, want: u64) {
        if got != want {
            v.push(Violation::new(
                "incomplete-delivery",
                format!("{what}: {got} delivered, {want} accepted for send"),
            ));
        }
    }
    // Completeness compares a stream's (first-)delivery count against the
    // *sender's* accepted-for-send counter — meaningless when that sender
    // crashed, since the wipe discards accepted-but-unsent traffic.
    match s.workload {
        Workload::PingPong => {
            if let (Some(n0), Some(n1)) = (node(0), node(1)) {
                if !crashed.contains(&0) {
                    incomplete(&mut v, "n1:req", len("n1:req"), n0.stats.requests_sent);
                }
                if !crashed.contains(&1) {
                    incomplete(&mut v, "n0:rep", len("n0:rep"), n1.stats.replies_sent);
                }
            }
        }
        Workload::Streaming => {
            if let Some(n0) = node(0) {
                if !crashed.contains(&0) {
                    incomplete(&mut v, "n1:req", len("n1:req"), n0.stats.requests_sent);
                }
            }
        }
        Workload::SplitcRoundtrips | Workload::MpiExchange => {
            let stream = if s.workload == Workload::SplitcRoundtrips {
                "rt"
            } else {
                "xch"
            };
            for n in &out.nodes {
                let peer_exists =
                    s.workload == Workload::MpiExchange || (n.node ^ 1) < out.nodes.len();
                if peer_exists {
                    let name = format!("n{}:{stream}", n.node);
                    incomplete(&mut v, &name, len(&name), s.msgs);
                }
            }
        }
    }

    for n in &out.nodes {
        if !n.all_sent {
            v.push(Violation::new(
                "stuck-send",
                format!("node {}: unsent traffic after tail: {}", n.node, n.residue),
            ));
        }
        if s.keepalive_polls != 0 && !n.all_idle {
            v.push(Violation::new(
                "no-quiescence",
                format!(
                    "node {}: channels not idle after tail: {}",
                    n.node, n.residue
                ),
            ));
        }
    }
    for (i, b) in out.backlog.iter().enumerate() {
        if *b > 0 {
            v.push(Violation::new(
                "recv-backlog",
                format!("node {i}: {b} packets unread in receive FIFO"),
            ));
        }
    }

    let mut am_received = 0;
    for n in &out.nodes {
        let st = &n.stats;
        am_received += st.packets_received;
        let disp = st.shorts_delivered
            + st.data_packets_delivered
            + st.dup_dropped
            + st.ooo_dropped
            + st.controls_received
            + st.stale_dropped
            + st.ooo_held;
        if st.packets_received != disp {
            v.push(Violation::new(
                "conservation",
                format!(
                    "node {}: {} packets received != {} dispositions",
                    n.node, st.packets_received, disp
                ),
            ));
        }
    }
    let fabric_out = out.switch.delivered + out.switch.duplicated;
    if out.adapter_received + out.dropped_overflow != fabric_out {
        v.push(Violation::new(
            "conservation",
            format!(
                "adapters received {} + overflow {} != fabric delivered {}",
                out.adapter_received, out.dropped_overflow, fabric_out
            ),
        ));
    }
    let backlog: u64 = out.backlog.iter().map(|&b| b as u64).sum();
    if am_received + backlog + out.wiped_recv != out.adapter_received {
        v.push(Violation::new(
            "conservation",
            format!(
                "AM ports received {am_received} + backlog {backlog} + crash-wiped {} \
                 != adapters received {}",
                out.wiped_recv, out.adapter_received
            ),
        ));
    }
    v
}

/// Format the run as a deterministic multi-line report: only virtual-time
/// and counter state, so re-executing the same schedule yields the same
/// bytes. This is what reproducer files embed and replays are compared to.
pub fn report(out: &RunOutcome, violations: &[Violation]) -> String {
    let s = &out.schedule;
    let mut r = String::new();
    let _ = writeln!(
        r,
        "workload {} nodes {} seed {} msgs {} keepalive_polls {}",
        s.workload.name(),
        s.nodes,
        s.seed,
        s.msgs,
        s.keepalive_polls
    );
    // Topology line only for multi-frame (or non-default policy) runs, so
    // every pre-topology pinned report keeps its exact bytes.
    if let Some((levels, radix, oversub, npf)) = s.fat_tree {
        let _ = writeln!(
            r,
            "topology fat_tree levels {levels} radix {radix} oversub {oversub} npf {npf} route_policy {}",
            policy_name(s.route_policy)
        );
    } else if s.frames > 1 || s.route_policy != RoutePolicy::RoundRobin {
        let _ = writeln!(
            r,
            "topology frames {} route_policy {}",
            s.frames,
            policy_name(s.route_policy)
        );
    }
    if let Some(e) = &out.aborted {
        let _ = writeln!(r, "aborted {e}");
    } else {
        let _ = writeln!(r, "end_ns {}", out.end_ns);
        for n in &out.nodes {
            let st = &n.stats;
            let _ = writeln!(
                r,
                "node{}: end_ns {} sent {} rtx {} recvd {} shorts {} data {} dup {} ooo {} nacks {}/{} eacks {} probes {} ka {} idle {} all_sent {} backlog {}",
                n.node,
                n.end_ns,
                st.packets_sent,
                st.packets_retransmitted,
                st.packets_received,
                st.shorts_delivered,
                st.data_packets_delivered,
                st.dup_dropped,
                st.ooo_dropped,
                st.nacks_sent,
                st.nacks_received,
                st.explicit_acks_sent,
                st.probes_sent,
                st.keepalive_rounds,
                n.all_idle,
                n.all_sent,
                out.backlog.get(n.node).copied().unwrap_or(0)
            );
        }
        let sw = &out.switch;
        let _ = writeln!(
            r,
            "switch: delivered {} dropped {} delayed {} duplicated {} overflow {}",
            sw.delivered, sw.dropped, sw.delayed, sw.duplicated, out.dropped_overflow
        );
        // Reliability lines only for schedules that exercise the layer
        // (non-legacy config or crash faults): pre-reliability pinned
        // reports keep their exact bytes. The config hash makes a replay
        // under a *different* reliability configuration fail the
        // byte-compare loudly instead of silently diverging.
        if !s.reliability.is_legacy() || !crashed_nodes(s).is_empty() {
            let _ = writeln!(
                r,
                "reliability: config {:016x} wiped_recv {}",
                s.reliability.hash(),
                out.wiped_recv
            );
            for n in &out.nodes {
                let st = &n.stats;
                let _ = writeln!(
                    r,
                    "node{} reliability: rtx t/s/k {}/{}/{} stale {} buffered {} held {} \
                     epoch {} restarts {} backoff_hwm {} recovery_ns {}",
                    n.node,
                    st.rtx_timeout,
                    st.rtx_sack_gap,
                    st.rtx_keepalive,
                    st.stale_dropped,
                    st.ooo_buffered,
                    st.ooo_held,
                    st.epoch,
                    st.restarts,
                    st.backoff_hwm,
                    st.recovery_ns,
                );
            }
        }
        for (name, ids) in &out.streams {
            let _ = writeln!(r, "stream {name}: {} ids", ids.len());
        }
    }
    let _ = writeln!(r, "violations {}", violations.len());
    for viol in violations {
        let _ = writeln!(r, "V {}: {}", viol.kind, viol.detail);
    }
    r
}
