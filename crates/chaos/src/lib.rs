//! # sp-chaos — fault-schedule chaos harness for the SP AM stack
//!
//! The reliability layer (sp-am §2.2) exists to survive a hostile
//! fabric-and-adapter substrate: FIFO overflow, lost and duplicated and
//! reordered packets, firmware stalls, silent peers. This crate turns that
//! claim into a checked property:
//!
//! 1. **Fault schedules** ([`Schedule`]) — serializable plain-text
//!    compositions of link drops/delays/duplicates, receive-FIFO
//!    shrinkage, send-DMA and receive-firmware stalls,
//!    keepalive-visible node pauses, and (on multi-frame machines)
//!    permanently severed inter-frame cable lanes, pinned to virtual-time
//!    windows or global packet indices. Schedules pick the machine
//!    topology (`frames`) and fabric routing policy (`route_policy`), so
//!    campaigns cover adaptive occupancy-aware routing too.
//! 2. **Campaign runner** ([`run_campaign`]) — executes workloads
//!    (request/reply pingpong, one-way streaming, Split-C round-trips,
//!    MPI ring exchange) under N seeded random schedules and checks the
//!    invariants after a lossless tail: exactly-once handler delivery,
//!    per-channel sequence monotonicity, eventual quiescence, and stats
//!    conservation across the AM/adapter/switch layers ([`check`]).
//! 3. **Shrinking** ([`shrink`]) — a violated invariant is shrunk to a
//!    1-minimal reproducer, emitted as an exactly re-executable replay
//!    file ([`repro_text`], [`replay`]) with the expected report embedded,
//!    plus a Chrome trace of the failing run.
//!
//! Determinism end to end: the same schedule always produces the same
//! [`RunOutcome`] and the same report bytes, so a replay either matches
//! its embedded expectation exactly or the stack has changed.

#![warn(missing_docs)]

mod campaign;
mod invariant;
mod run;
mod schedule;
mod shrink;

pub use campaign::{
    embedded_report, judge, judge_sharded, package_failure, random_schedule, replay,
    replay_sharded, repro_text, run_campaign, run_campaign_sharded, CampaignResult, Failure,
    Judged, Replay, EXPECT_PREFIX,
};
pub use invariant::{check, report, Violation};
pub use run::{run, run_sharded, run_traced, NodeEnd, RunOutcome, EVENT_BUDGET};
pub use schedule::{parse_policy, policy_name, FaultEvent, Schedule, Workload};
pub use sp_am::ReliabilityConfig;
pub use sp_switch::RoutePolicy;
