//! The campaign runner: N seeded random schedules per workload, invariant
//! checks after each, automatic shrinking of failures to minimal
//! reproducers, and exactly re-executable replay files.

use crate::invariant::{check, report, Violation};
use crate::run::{run_sharded, run_traced, RunOutcome};
use crate::schedule::{FaultEvent, Schedule, Workload};
use crate::shrink::shrink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A schedule execution judged against the invariants.
pub struct Judged {
    /// What the run observed.
    pub outcome: RunOutcome,
    /// Invariant violations (empty = pass).
    pub violations: Vec<Violation>,
    /// The deterministic report (see [`crate::invariant::report`]).
    pub report: String,
}

/// Run one schedule and judge it.
pub fn judge(s: &Schedule) -> Judged {
    judge_sharded(s, 1)
}

/// Run one schedule across `shards` conservative-parallel shards and
/// judge it. Outcomes and reports are byte-identical to [`judge`] for
/// any shard count (adaptive-routing schedules fall back to serial).
pub fn judge_sharded(s: &Schedule, shards: usize) -> Judged {
    let outcome = run_sharded(s, shards);
    let violations = check(&outcome);
    let rep = report(&outcome, &violations);
    Judged {
        outcome,
        violations,
        report: rep,
    }
}

/// A campaign failure, shrunk and packaged for replay.
pub struct Failure {
    /// The schedule the campaign generated.
    pub original: Schedule,
    /// Its 1-minimal shrink (same violations still present).
    pub shrunk: Schedule,
    /// Report of the shrunk run, violations included.
    pub report: String,
    /// Replay file text: the shrunk schedule plus the expected report
    /// embedded as `#= ` comment lines (see [`replay`]).
    pub repro: String,
    /// Chrome trace JSON of the shrunk failing run.
    pub chrome_json: String,
    /// Flight-recorder dump: the last virtual-time slice of the shrunk
    /// failing run as Perfetto JSON, straight from the always-on bounded
    /// recorder (available even when full tracing was never requested).
    pub flight_json: String,
}

/// Result of a whole campaign.
pub struct CampaignResult {
    /// Schedules executed (excluding shrink retries).
    pub runs: usize,
    /// Failures found, shrunk, and packaged.
    pub failures: Vec<Failure>,
}

/// Run `per_workload` seeded random schedules for each workload in
/// `workloads`, shrinking every failure to a minimal reproducer.
/// `progress` is called once per schedule with (schedule, violation count).
pub fn run_campaign(
    per_workload: usize,
    base_seed: u64,
    workloads: &[Workload],
    progress: impl FnMut(&Schedule, usize),
) -> CampaignResult {
    run_campaign_sharded(per_workload, base_seed, workloads, 1, progress)
}

/// [`run_campaign`], with each schedule executed across `shards`
/// conservative-parallel shards. Judgements are identical to a serial
/// campaign for any shard count; shrinking of failures always happens
/// serially (the reproducer replays identically either way).
pub fn run_campaign_sharded(
    per_workload: usize,
    base_seed: u64,
    workloads: &[Workload],
    shards: usize,
    mut progress: impl FnMut(&Schedule, usize),
) -> CampaignResult {
    let mut result = CampaignResult {
        runs: 0,
        failures: Vec::new(),
    };
    for &w in workloads {
        for i in 0..per_workload {
            let s = random_schedule(w, base_seed.wrapping_add(i as u64));
            let judged = judge_sharded(&s, shards);
            result.runs += 1;
            progress(&s, judged.violations.len());
            if !judged.violations.is_empty() {
                result.failures.push(package_failure(s));
            }
        }
    }
    result
}

/// Shrink a failing schedule and build its replay artifacts.
pub fn package_failure(original: Schedule) -> Failure {
    let shrunk = shrink(&original, |cand| !judge(cand).violations.is_empty());
    let judged = judge(&shrunk);
    let traced = run_traced(&shrunk);
    Failure {
        original,
        repro: repro_text(&shrunk, &judged.report),
        report: judged.report,
        chrome_json: traced.chrome_json.unwrap_or_default(),
        flight_json: judged.outcome.flight.dump_json(),
        shrunk,
    }
}

/// Prefix of embedded expected-report lines inside a replay file.
pub const EXPECT_PREFIX: &str = "#= ";

/// Render a replay file: the schedule in its canonical text form plus the
/// expected report embedded as comments the parser ignores.
pub fn repro_text(shrunk: &Schedule, report: &str) -> String {
    let mut t = String::from(
        "# chaos reproducer (auto-shrunk minimal failing schedule)\n\
         # replay with: cargo run -p sp-chaos --bin chaos -- replay <this file>\n",
    );
    t.push_str(&shrunk.format());
    t.push_str("# expected report:\n");
    for line in report.lines() {
        t.push_str(EXPECT_PREFIX);
        t.push_str(line);
        t.push('\n');
    }
    t
}

/// Extract the expected report embedded in a replay file, if any.
pub fn embedded_report(text: &str) -> Option<String> {
    let mut r = String::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(EXPECT_PREFIX) {
            r.push_str(rest);
            r.push('\n');
        }
    }
    (!r.is_empty()).then_some(r)
}

/// Outcome of replaying a schedule or reproducer file.
pub struct Replay {
    /// The schedule that was replayed.
    pub schedule: Schedule,
    /// The report this execution produced.
    pub report: String,
    /// The report the file said to expect, if it embedded one.
    pub expected: Option<String>,
}

impl Replay {
    /// `Some(true)` if the replay matched the embedded expectation
    /// byte-for-byte, `Some(false)` on mismatch, `None` if the file
    /// embedded no expectation.
    pub fn matches(&self) -> Option<bool> {
        self.expected.as_ref().map(|e| *e == self.report)
    }
}

/// Re-execute a schedule or reproducer file and judge it. Deterministic:
/// replaying a reproducer reproduces the identical violation — same
/// virtual times, same counters, same report bytes.
pub fn replay(text: &str) -> Result<Replay, String> {
    replay_sharded(text, 1)
}

/// [`replay`], executed across `shards` conservative-parallel shards.
/// Replay determinism holds across shard counts: a reproducer recorded
/// from a serial run matches byte-for-byte when replayed sharded (and
/// vice versa).
pub fn replay_sharded(text: &str, shards: usize) -> Result<Replay, String> {
    let schedule = Schedule::parse(text)?;
    let judged = judge_sharded(&schedule, shards);
    Ok(Replay {
        schedule,
        report: judged.report,
        expected: embedded_report(text),
    })
}

/// Deterministically generate the `i`-th random schedule for a workload.
/// Faults land in the first ~8 ms; the tail is recoverable by construction
/// (index faults are finite, windows close, stalls and pauses end, and a
/// killed cable always leaves three live lanes for retransmissions), and
/// keep-alive is always on — so every generated schedule must pass. Half
/// the schedules run on a two-frame machine, under either routing policy,
/// sometimes with one cable of the frame pair severed.
pub fn random_schedule(w: Workload, seed: u64) -> Schedule {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ w as u64);
    let mut s = Schedule::new(w);
    s.seed = seed;
    s.keepalive_polls = [32, 64, 128][rng.gen_range(0..3usize)];
    if rng.gen_range(0..2u32) == 1 {
        s.frames = 2;
        if rng.gen_range(0..2u32) == 1 {
            s.route_policy = sp_switch::RoutePolicy::Adaptive;
        }
        if rng.gen_range(0..4u32) == 0 {
            let from = rng.gen_range(0..2usize);
            s.events.push(FaultEvent::CableKill {
                from,
                to: 1 - from,
                lane: rng.gen_range(0..4),
            });
        }
    }
    s.msgs = match w {
        Workload::PingPong | Workload::Streaming => rng.gen_range(6..20),
        _ => rng.gen_range(3..7),
    };
    const HORIZON: u64 = 8_000_000;
    let window = |rng: &mut SmallRng| {
        let from = rng.gen_range(0..HORIZON / 2);
        let until = from + rng.gen_range(100_000..HORIZON / 2);
        (from, until)
    };
    for _ in 0..rng.gen_range(1..=5u32) {
        let p = rng.gen_range(1..=25u32) as f64 / 100.0;
        let node = rng.gen_range(0..s.nodes);
        let at_ns = rng.gen_range(0..HORIZON / 2);
        let ev = match rng.gen_range(0..10u32) {
            0 => FaultEvent::DropIndex(rng.gen_range(0..120)),
            1 => FaultEvent::DupIndex(rng.gen_range(0..120)),
            2 => FaultEvent::DelayIndex(rng.gen_range(0..120)),
            3 => {
                let (from_ns, until_ns) = window(&mut rng);
                FaultEvent::DropWindow {
                    p,
                    from_ns,
                    until_ns,
                }
            }
            4 => {
                let (from_ns, until_ns) = window(&mut rng);
                FaultEvent::DupWindow {
                    p,
                    from_ns,
                    until_ns,
                }
            }
            5 => {
                let (from_ns, until_ns) = window(&mut rng);
                FaultEvent::DelayWindow {
                    p,
                    from_ns,
                    until_ns,
                }
            }
            6 => {
                let (from_ns, until_ns) = window(&mut rng);
                FaultEvent::FifoShrink {
                    node,
                    capacity: rng.gen_range(2..8),
                    from_ns,
                    until_ns,
                }
            }
            7 => FaultEvent::SendStall {
                node,
                at_ns,
                dur_ns: rng.gen_range(50_000..1_000_000),
            },
            8 => FaultEvent::RecvStall {
                node,
                at_ns,
                dur_ns: rng.gen_range(50_000..1_000_000),
            },
            _ => FaultEvent::Pause {
                node,
                at_ns,
                dur_ns: rng.gen_range(100_000..2_000_000),
            },
        };
        s.events.push(ev);
    }
    // Reliability-era draws come after every classic one, so a pre-existing
    // seed keeps its classic fault list as an exact prefix. All three stay
    // recoverable by construction: partitions heal by 2·(H/4) < deadline,
    // crashed nodes restart within 1 ms, and keep-alive plus the epoch
    // handshake clear any residue over the lossless tail.
    if rng.gen_range(0..2u32) == 1 {
        s.reliability = sp_am::ReliabilityConfig::adaptive();
    }
    if matches!(w, Workload::PingPong | Workload::Streaming) && rng.gen_range(0..3u32) == 0 {
        s.events.push(FaultEvent::Crash {
            node: 1,
            at_ns: rng.gen_range(0..HORIZON / 4),
            down_ns: rng.gen_range(100_000..1_000_000),
        });
    }
    if rng.gen_range(0..4u32) == 0 {
        let from_ns = rng.gen_range(0..HORIZON / 4);
        let until_ns = from_ns + rng.gen_range(100_000..HORIZON / 4);
        // Split node 0 from everyone else; heals well before the deadline.
        let all = (1u64 << s.nodes.min(63)) - 1;
        s.events.push(FaultEvent::Partition {
            a: 1,
            b: all & !1,
            from_ns,
            until_ns,
        });
    }
    s
}
