//! End-to-end acceptance of the chaos harness: a demonstrably failing
//! schedule shrinks to a minimal reproducer whose replay reproduces the
//! identical violation byte-for-byte; random campaigns stay green; and the
//! shipped schedules behave as pinned.

use sp_chaos::{
    judge, package_failure, replay, run_campaign, FaultEvent, RoutePolicy, Schedule, Workload,
};

/// Keep-alive disabled plus a drop of the final reply packet (index
/// `2*msgs - 1` of the strictly alternating pingpong stream): the one loss
/// the NACK machinery cannot see, padded with two recoverable decoy
/// faults the shrinker must strip.
fn demo_schedule() -> Schedule {
    let mut s = Schedule::new(Workload::PingPong);
    s.msgs = 4;
    s.keepalive_polls = 0;
    s.events = vec![
        FaultEvent::DelayIndex(1),
        FaultEvent::DropIndex(7),
        FaultEvent::DupIndex(3),
    ];
    s
}

#[test]
fn keepalive_off_tail_drop_shrinks_and_replays_byte_for_byte() {
    let judged = judge(&demo_schedule());
    assert!(
        judged
            .violations
            .iter()
            .any(|v| v.kind == "incomplete-delivery"),
        "tail drop without keep-alive must lose the final reply: {:?}",
        judged.violations
    );

    let f = package_failure(demo_schedule());
    assert!(
        f.shrunk.events.len() <= 3,
        "reproducer must be minimal, got {:?}",
        f.shrunk.events
    );
    assert_eq!(
        f.shrunk.events,
        vec![FaultEvent::DropIndex(7)],
        "both decoy faults are recoverable and must shrink away"
    );

    // The replay file re-executes to the identical violation: same virtual
    // times, same counters, same report bytes.
    let rep = replay(&f.repro).expect("reproducer must parse");
    assert_eq!(rep.matches(), Some(true), "replay drifted:\n{}", rep.report);
    assert!(f.report.contains("V incomplete-delivery"));
    assert!(
        f.chrome_json.contains("switch-drop") || f.chrome_json.contains("ph"),
        "failing run must come with a Chrome trace"
    );
}

#[test]
fn same_fault_with_keepalive_recovers() {
    let mut s = demo_schedule();
    s.keepalive_polls = 64;
    let judged = judge(&s);
    assert!(
        judged.violations.is_empty(),
        "keep-alive must restart the lost tail: {:?}",
        judged.violations
    );
}

#[test]
fn smoke_campaign_is_green() {
    let result = run_campaign(3, 9000, &Workload::ALL, |_, _| {});
    assert_eq!(result.runs, 12);
    let reports: Vec<&str> = result.failures.iter().map(|f| f.report.as_str()).collect();
    assert!(
        result.failures.is_empty(),
        "random lossless-tail schedules must all pass:\n{}",
        reports.join("\n---\n")
    );
}

#[test]
fn fabric_duplicates_surface_in_outcome_counters() {
    let mut s = Schedule::new(Workload::Streaming);
    s.events = vec![FaultEvent::DupIndex(0), FaultEvent::DupIndex(2)];
    let j = judge(&s);
    assert!(j.violations.is_empty(), "{:?}", j.violations);
    assert_eq!(j.outcome.switch.duplicated, 2);
    let dup_dropped: u64 = j.outcome.nodes.iter().map(|n| n.stats.dup_dropped).sum();
    assert_eq!(dup_dropped, 2, "each fabric dup must hit a DupDrop re-ACK");
}

#[test]
fn multi_frame_adaptive_campaign_survives_drop_and_delay_windows() {
    // Every workload on a two-frame machine under adaptive routing, with
    // probabilistic loss and reordering over the first 3 ms: exactly-once
    // and quiescence must hold exactly as on the single-frame machine.
    for w in Workload::ALL {
        let mut s = Schedule::new(w);
        s.frames = 2;
        s.route_policy = RoutePolicy::Adaptive;
        s.events = vec![
            FaultEvent::DropWindow {
                p: 0.15,
                from_ns: 0,
                until_ns: 3_000_000,
            },
            FaultEvent::DelayWindow {
                p: 0.15,
                from_ns: 0,
                until_ns: 3_000_000,
            },
        ];
        let j = judge(&s);
        assert!(
            j.violations.is_empty(),
            "{} under adaptive multi-frame faults: {:?}",
            w.name(),
            j.violations
        );
        assert!(
            j.report.contains("topology frames 2 route_policy adaptive"),
            "report must name the topology:\n{}",
            j.report
        );
    }
}

#[test]
fn killing_one_cable_of_a_frame_pair_still_quiesces() {
    // Sever one of the four cable lanes between the frames, permanently.
    // Fault-blind round-robin keeps feeding it packets and must recover
    // them by retransmission onto the three live lanes; fault-aware
    // adaptive masks the dead lane out of selection entirely and loses
    // nothing. Either way the run must reach full quiescence.
    for policy in [RoutePolicy::RoundRobin, RoutePolicy::Adaptive] {
        let mut s = Schedule::new(Workload::PingPong);
        s.frames = 2; // two nodes, one per frame: all traffic is cross-frame
        s.route_policy = policy;
        s.events = vec![FaultEvent::CableKill {
            from: 0,
            to: 1,
            lane: 0,
        }];
        let j = judge(&s);
        assert!(
            j.violations.is_empty(),
            "{policy:?} with a dead cable: {:?}",
            j.violations
        );
        match policy {
            RoutePolicy::RoundRobin => assert!(
                j.outcome.switch.dropped > 0,
                "round-robin: the severed lane never saw a packet"
            ),
            RoutePolicy::Adaptive => assert_eq!(
                j.outcome.switch.dropped, 0,
                "adaptive: a dead lane must be masked out of selection"
            ),
        }
    }
}

#[test]
fn topology_aware_failing_schedule_shrinks_to_one_event() {
    // Same kill shot as the single-frame demo (keep-alive off plus a drop
    // of the final reply), but on a three-frame adaptive machine, padded
    // with two topology-aware decoys: a cable kill on a frame pair that
    // carries no traffic, and a recoverable delay. The shrinker must strip
    // both and the reproducer must replay byte-for-byte, topology included.
    let mut s = Schedule::new(Workload::PingPong);
    s.frames = 3; // node 2 is idle, so the 0<->2 cables carry nothing
    s.route_policy = RoutePolicy::Adaptive;
    s.msgs = 4;
    s.keepalive_polls = 0;
    s.events = vec![
        FaultEvent::CableKill {
            from: 0,
            to: 2,
            lane: 1,
        },
        FaultEvent::DropIndex(7),
        FaultEvent::DelayIndex(1),
    ];
    let f = package_failure(s);
    assert_eq!(
        f.shrunk.events,
        vec![FaultEvent::DropIndex(7)],
        "decoy cable kill and delay must shrink away"
    );
    assert!(f.repro.contains("frames 3\n"));
    assert!(f.repro.contains("route_policy adaptive\n"));
    let rep = replay(&f.repro).expect("reproducer must parse");
    assert_eq!(rep.matches(), Some(true), "replay drifted:\n{}", rep.report);
}

#[test]
fn shipped_example_schedule_passes() {
    let rep = replay(include_str!("../schedules/example.sched")).unwrap();
    assert!(
        rep.report.contains("\nviolations 0\n"),
        "example schedule must recover:\n{}",
        rep.report
    );
}

#[test]
fn pinned_nasty_schedule_report_is_stable() {
    let rep = replay(include_str!("../schedules/nasty.sched")).unwrap();
    assert_eq!(
        rep.matches(),
        Some(true),
        "protocol behaviour drifted under the pinned schedule:\n{}",
        rep.report
    );
}
