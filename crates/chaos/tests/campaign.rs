//! End-to-end acceptance of the chaos harness: a demonstrably failing
//! schedule shrinks to a minimal reproducer whose replay reproduces the
//! identical violation byte-for-byte; random campaigns stay green; and the
//! shipped schedules behave as pinned.

use sp_chaos::{
    judge, judge_sharded, package_failure, replay, replay_sharded, repro_text, run_campaign,
    FaultEvent, ReliabilityConfig, RoutePolicy, Schedule, Workload,
};

/// Keep-alive disabled plus a drop of the final reply packet (index
/// `2*msgs - 1` of the strictly alternating pingpong stream): the one loss
/// the NACK machinery cannot see, padded with two recoverable decoy
/// faults the shrinker must strip.
fn demo_schedule() -> Schedule {
    let mut s = Schedule::new(Workload::PingPong);
    s.msgs = 4;
    s.keepalive_polls = 0;
    s.events = vec![
        FaultEvent::DelayIndex(1),
        FaultEvent::DropIndex(7),
        FaultEvent::DupIndex(3),
    ];
    s
}

#[test]
fn keepalive_off_tail_drop_shrinks_and_replays_byte_for_byte() {
    let judged = judge(&demo_schedule());
    assert!(
        judged
            .violations
            .iter()
            .any(|v| v.kind == "incomplete-delivery"),
        "tail drop without keep-alive must lose the final reply: {:?}",
        judged.violations
    );

    let f = package_failure(demo_schedule());
    assert!(
        f.shrunk.events.len() <= 3,
        "reproducer must be minimal, got {:?}",
        f.shrunk.events
    );
    assert_eq!(
        f.shrunk.events,
        vec![FaultEvent::DropIndex(7)],
        "both decoy faults are recoverable and must shrink away"
    );

    // The replay file re-executes to the identical violation: same virtual
    // times, same counters, same report bytes.
    let rep = replay(&f.repro).expect("reproducer must parse");
    assert_eq!(rep.matches(), Some(true), "replay drifted:\n{}", rep.report);
    assert!(f.report.contains("V incomplete-delivery"));
    assert!(
        f.chrome_json.contains("switch-drop") || f.chrome_json.contains("ph"),
        "failing run must come with a Chrome trace"
    );
}

#[test]
fn same_fault_with_keepalive_recovers() {
    let mut s = demo_schedule();
    s.keepalive_polls = 64;
    let judged = judge(&s);
    assert!(
        judged.violations.is_empty(),
        "keep-alive must restart the lost tail: {:?}",
        judged.violations
    );
}

#[test]
fn smoke_campaign_is_green() {
    let result = run_campaign(3, 9000, &Workload::ALL, |_, _| {});
    assert_eq!(result.runs, 12);
    let reports: Vec<&str> = result.failures.iter().map(|f| f.report.as_str()).collect();
    assert!(
        result.failures.is_empty(),
        "random lossless-tail schedules must all pass:\n{}",
        reports.join("\n---\n")
    );
}

#[test]
fn fabric_duplicates_surface_in_outcome_counters() {
    let mut s = Schedule::new(Workload::Streaming);
    s.events = vec![FaultEvent::DupIndex(0), FaultEvent::DupIndex(2)];
    let j = judge(&s);
    assert!(j.violations.is_empty(), "{:?}", j.violations);
    assert_eq!(j.outcome.switch.duplicated, 2);
    let dup_dropped: u64 = j.outcome.nodes.iter().map(|n| n.stats.dup_dropped).sum();
    assert_eq!(dup_dropped, 2, "each fabric dup must hit a DupDrop re-ACK");
}

#[test]
fn multi_frame_adaptive_campaign_survives_drop_and_delay_windows() {
    // Every workload on a two-frame machine under adaptive routing, with
    // probabilistic loss and reordering over the first 3 ms: exactly-once
    // and quiescence must hold exactly as on the single-frame machine.
    for w in Workload::ALL {
        let mut s = Schedule::new(w);
        s.frames = 2;
        s.route_policy = RoutePolicy::Adaptive;
        s.events = vec![
            FaultEvent::DropWindow {
                p: 0.15,
                from_ns: 0,
                until_ns: 3_000_000,
            },
            FaultEvent::DelayWindow {
                p: 0.15,
                from_ns: 0,
                until_ns: 3_000_000,
            },
        ];
        let j = judge(&s);
        assert!(
            j.violations.is_empty(),
            "{} under adaptive multi-frame faults: {:?}",
            w.name(),
            j.violations
        );
        assert!(
            j.report.contains("topology frames 2 route_policy adaptive"),
            "report must name the topology:\n{}",
            j.report
        );
    }
}

#[test]
fn killing_one_cable_of_a_frame_pair_still_quiesces() {
    // Sever one of the four cable lanes between the frames, permanently.
    // Fault-blind round-robin keeps feeding it packets and must recover
    // them by retransmission onto the three live lanes; fault-aware
    // adaptive masks the dead lane out of selection entirely and loses
    // nothing. Either way the run must reach full quiescence.
    for policy in [RoutePolicy::RoundRobin, RoutePolicy::Adaptive] {
        let mut s = Schedule::new(Workload::PingPong);
        s.frames = 2; // two nodes, one per frame: all traffic is cross-frame
        s.route_policy = policy;
        s.events = vec![FaultEvent::CableKill {
            from: 0,
            to: 1,
            lane: 0,
        }];
        let j = judge(&s);
        assert!(
            j.violations.is_empty(),
            "{policy:?} with a dead cable: {:?}",
            j.violations
        );
        match policy {
            RoutePolicy::RoundRobin => assert!(
                j.outcome.switch.dropped > 0,
                "round-robin: the severed lane never saw a packet"
            ),
            RoutePolicy::Adaptive => assert_eq!(
                j.outcome.switch.dropped, 0,
                "adaptive: a dead lane must be masked out of selection"
            ),
        }
    }
}

#[test]
fn topology_aware_failing_schedule_shrinks_to_one_event() {
    // Same kill shot as the single-frame demo (keep-alive off plus a drop
    // of the final reply), but on a three-frame adaptive machine, padded
    // with two topology-aware decoys: a cable kill on a frame pair that
    // carries no traffic, and a recoverable delay. The shrinker must strip
    // both and the reproducer must replay byte-for-byte, topology included.
    let mut s = Schedule::new(Workload::PingPong);
    s.frames = 3; // node 2 is idle, so the 0<->2 cables carry nothing
    s.route_policy = RoutePolicy::Adaptive;
    s.msgs = 4;
    s.keepalive_polls = 0;
    s.events = vec![
        FaultEvent::CableKill {
            from: 0,
            to: 2,
            lane: 1,
        },
        FaultEvent::DropIndex(7),
        FaultEvent::DelayIndex(1),
    ];
    let f = package_failure(s);
    assert_eq!(
        f.shrunk.events,
        vec![FaultEvent::DropIndex(7)],
        "decoy cable kill and delay must shrink away"
    );
    assert!(f.repro.contains("frames 3\n"));
    assert!(f.repro.contains("route_policy adaptive\n"));
    let rep = replay(&f.repro).expect("reproducer must parse");
    assert_eq!(rep.matches(), Some(true), "replay drifted:\n{}", rep.report);
}

/// Node 1 crashes 600 µs into a lossy pingpong under the adaptive
/// reliability config: the restart bumps its incarnation epoch, the
/// sender's channels reincarnate, and the run must still reach
/// exactly-once (modulo crash-straddling redelivery) and quiescence.
fn crash_schedule() -> Schedule {
    let mut s = Schedule::new(Workload::PingPong);
    s.msgs = 12;
    s.seed = 77;
    s.reliability = ReliabilityConfig::adaptive();
    s.events = vec![
        FaultEvent::DropWindow {
            p: 0.15,
            from_ns: 0,
            until_ns: 2_000_000,
        },
        FaultEvent::Crash {
            node: 1,
            at_ns: 600_000,
            down_ns: 500_000,
        },
    ];
    s
}

#[test]
fn crash_restart_recovers_exactly_once_and_reports_recovery() {
    let j = judge(&crash_schedule());
    assert!(
        j.violations.is_empty(),
        "crash/restart must recover over the lossless tail: {:?}",
        j.violations
    );
    let n1 = &j
        .outcome
        .nodes
        .iter()
        .find(|n| n.node == 1)
        .expect("node 1 ran")
        .stats;
    assert_eq!(n1.restarts, 1, "exactly one restart happened");
    assert_eq!(n1.epoch, 1, "the restart must bump the incarnation epoch");
    assert!(n1.recovery_ns > 0, "the restart must clock its recovery");
    assert!(
        j.report.contains("reliability: config") && j.report.contains("restarts 1"),
        "crash runs must report the reliability layer:\n{}",
        j.report
    );
}

#[test]
fn healed_partition_quiesces_exactly_once() {
    // Sever node 0 from node 1 for 700 µs mid-run; once healed, the
    // reliability layer must redeliver everything the partition ate,
    // exactly once, and the run must fully quiesce.
    let mut s = Schedule::new(Workload::PingPong);
    s.msgs = 12;
    s.events = vec![FaultEvent::Partition {
        a: 0b01,
        b: 0b10,
        from_ns: 200_000,
        until_ns: 900_000,
    }];
    let j = judge(&s);
    assert!(
        j.violations.is_empty(),
        "healed partition must end exactly-once: {:?}",
        j.violations
    );
    assert!(
        j.outcome.switch.dropped > 0,
        "the partition window must actually sever traffic"
    );
}

#[test]
fn splitc_partition_straddling_the_quiet_tail_completes() {
    // Regression: a dead inter-frame cable slows the Split-C round-trips
    // into a partition window *longer than the quiet tail*, so one node
    // used to finish, hear nothing but partition silence, drain, and
    // exit — stranding its peer in an unbounded blocking read that spun
    // until the event budget aborted the run. The workload's waits are
    // now deadline-bounded and a closing barrier keeps every service
    // window open until all nodes finish.
    let mut s = Schedule::new(Workload::SplitcRoundtrips);
    s.seed = 6;
    s.msgs = 6;
    s.frames = 2;
    s.events = vec![
        FaultEvent::CableKill {
            from: 0,
            to: 1,
            lane: 2,
        },
        FaultEvent::Partition {
            a: 0b01,
            b: 0b10,
            from_ns: 1_144_380,
            until_ns: 3_081_407,
        },
    ];
    let j = judge(&s);
    assert!(
        j.violations.is_empty(),
        "healed partition + dead cable must still complete: {:?}",
        j.violations
    );
    for n in ["n0:rt", "n1:rt"] {
        let got = j
            .outcome
            .streams
            .iter()
            .find(|(name, _)| name == n)
            .map(|(_, ids)| ids.len());
        assert_eq!(got, Some(6), "{n} must finish every round-trip");
    }
}

#[test]
fn crash_schedule_replays_byte_identically_across_shards() {
    let s = crash_schedule();
    let serial = judge(&s);
    assert!(serial.violations.is_empty(), "{:?}", serial.violations);
    for shards in [2, 4] {
        let sharded = judge_sharded(&s, shards);
        assert_eq!(
            serial.report, sharded.report,
            "crash/restart run diverged at {shards} shards"
        );
    }
}

#[test]
fn replay_under_a_different_reliability_config_fails_loudly() {
    let s = crash_schedule();
    let j = judge(&s);
    assert!(j.violations.is_empty(), "{:?}", j.violations);
    let repro = repro_text(&s, &j.report);
    let faithful = replay(&repro).expect("reproducer must parse");
    assert_eq!(faithful.matches(), Some(true));

    // Strip the reliability directive: same schedule, legacy config. The
    // config hash embedded in the expected report must catch the swap even
    // if every counter happened to coincide.
    let tampered: String = repro
        .lines()
        .filter(|l| !l.starts_with("reliability "))
        .map(|l| format!("{l}\n"))
        .collect();
    let rep = replay(&tampered).expect("tampered reproducer still parses");
    assert_eq!(
        rep.matches(),
        Some(false),
        "a replay under a different reliability config must fail loudly"
    );
    assert!(
        rep.report.contains("reliability: config"),
        "crash schedules report the config hash even in legacy mode:\n{}",
        rep.report
    );
}

#[test]
fn pinned_crash_schedule_replays_serial_and_sharded() {
    let text = include_str!("../schedules/crash.sched");
    let rep = replay(text).unwrap();
    assert_eq!(
        rep.matches(),
        Some(true),
        "crash/restart behaviour drifted under the pinned schedule:\n{}",
        rep.report
    );
    let rep4 = replay_sharded(text, 4).unwrap();
    assert_eq!(
        rep4.matches(),
        Some(true),
        "pinned crash schedule diverged under --parallel 4:\n{}",
        rep4.report
    );
}

#[test]
fn shipped_example_schedule_passes() {
    let rep = replay(include_str!("../schedules/example.sched")).unwrap();
    assert!(
        rep.report.contains("\nviolations 0\n"),
        "example schedule must recover:\n{}",
        rep.report
    );
}

#[test]
fn pinned_nasty_schedule_report_is_stable() {
    let rep = replay(include_str!("../schedules/nasty.sched")).unwrap();
    assert_eq!(
        rep.matches(),
        Some(true),
        "protocol behaviour drifted under the pinned schedule:\n{}",
        rep.report
    );
}
