//! The harness's central property: **any** finite fault schedule with a
//! lossless tail (and keep-alive enabled — the only configuration that can
//! clear ack residue) ends in quiescence with exactly-once, in-order
//! delivery and conserved packet counts. Failures are shrunk to a minimal
//! reproducer before being reported.

use proptest::prelude::*;
use sp_chaos::{
    judge, package_failure, random_schedule, FaultEvent, ReliabilityConfig, Schedule, Workload,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn lossless_tail_schedules_quiesce_exactly_once(seed in any::<u64>(), w in 0usize..4) {
        // `random_schedule` generates finite faults only (index faults,
        // closing windows, bounded stalls/pauses, healed partitions,
        // restarting crashes) with keep-alive on.
        let s = random_schedule(Workload::ALL[w], seed);
        let judged = judge(&s);
        if !judged.violations.is_empty() {
            let f = package_failure(s);
            return Err(format!(
                "invariants violated: {:?}\nminimal reproducer:\n{}",
                judged.violations, f.repro
            ));
        }
    }

    #[test]
    fn crash_restart_plus_loss_schedules_quiesce_exactly_once(
        seed in any::<u64>(),
        w in 0usize..2,
        at_ns in 0u64..2_000_000,
        down_ns in 100_000u64..1_000_000,
        p in 1u32..=25,
        adaptive in any::<bool>(),
    ) {
        // Any crash instant and outage length inside the faulty prefix,
        // stacked on probabilistic loss, under either reliability mode:
        // the lossless tail must still end in exactly-once (modulo
        // crash-straddling redelivery) delivery and full quiescence.
        let mut s = Schedule::new([Workload::PingPong, Workload::Streaming][w]);
        s.seed = seed;
        s.msgs = 8;
        if adaptive {
            s.reliability = ReliabilityConfig::adaptive();
        }
        s.events = vec![
            FaultEvent::DropWindow {
                p: p as f64 / 100.0,
                from_ns: 0,
                until_ns: 2_500_000,
            },
            FaultEvent::Crash { node: 1, at_ns, down_ns },
        ];
        let judged = judge(&s);
        if !judged.violations.is_empty() {
            let f = package_failure(s);
            return Err(format!(
                "invariants violated: {:?}\nminimal reproducer:\n{}",
                judged.violations, f.repro
            ));
        }
    }
}
