//! The harness's central property: **any** finite fault schedule with a
//! lossless tail (and keep-alive enabled — the only configuration that can
//! clear ack residue) ends in quiescence with exactly-once, in-order
//! delivery and conserved packet counts. Failures are shrunk to a minimal
//! reproducer before being reported.

use proptest::prelude::*;
use sp_chaos::{judge, package_failure, random_schedule, Workload};

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn lossless_tail_schedules_quiesce_exactly_once(seed in any::<u64>(), w in 0usize..4) {
        // `random_schedule` generates finite faults only (index faults,
        // closing windows, bounded stalls/pauses) with keep-alive on.
        let s = random_schedule(Workload::ALL[w], seed);
        let judged = judge(&s);
        if !judged.violations.is_empty() {
            let f = package_failure(s);
            return Err(format!(
                "invariants violated: {:?}\nminimal reproducer:\n{}",
                judged.violations, f.repro
            ));
        }
    }
}
