//! Shared helpers: process-grid decomposition, field faces, flop charging.

use sp_mpi::Mpi;
use sp_sim::Dur;
use std::sync::atomic::{AtomicU64, Ordering};

/// The five benchmarks of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Block-tridiagonal ADI solver.
    Bt,
    /// Scalar-pentadiagonal ADI solver.
    Sp,
    /// SSOR wavefront solver.
    Lu,
    /// Multigrid V-cycle.
    Mg,
    /// 3D FFT.
    Ft,
}

impl Kernel {
    /// NPB name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Bt => "BT",
            Kernel::Sp => "SP",
            Kernel::Lu => "LU",
            Kernel::Mg => "MG",
            Kernel::Ft => "FT",
        }
    }

    /// All five, in the paper's Table 6 order.
    pub fn all() -> [Kernel; 5] {
        [Kernel::Bt, Kernel::Ft, Kernel::Lu, Kernel::Mg, Kernel::Sp]
    }
}

/// Problem class: per-rank grid sizes and iteration counts.
///
/// `Reduced` is the scaled-down simulation class every test runs by
/// default (small enough that the whole Table 6 sweep fits in a smoke
/// run). `S` keeps the reduced grids but runs NPB-representative
/// iteration counts; `W` also grows the per-rank grids (and, for FT and
/// MG, the global transform/V-cycle depth) toward the NPB 2.0 Class W
/// communication scale. EXPERIMENTS.md records the exact per-class
/// parameters next to the measured virtual times and engine rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NasClass {
    /// Scaled-down simulation class (the test-time default).
    #[default]
    Reduced,
    /// Class-S-sized: reduced grids, NPB-representative iteration counts.
    S,
    /// Class-W-sized: larger grids and deeper transforms.
    W,
}

impl NasClass {
    /// Class name as printed in reports.
    pub fn name(&self) -> &'static str {
        match self {
            NasClass::Reduced => "reduced",
            NasClass::S => "S",
            NasClass::W => "W",
        }
    }

    /// All classes, smallest first.
    pub fn all() -> [NasClass; 3] {
        [NasClass::Reduced, NasClass::S, NasClass::W]
    }
}

/// One kernel run's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NasResult {
    /// Timed-section duration (virtual).
    pub time: Dur,
    /// Deterministic residual checksum (must agree across MPI
    /// implementations).
    pub checksum: f64,
}

/// Sustained Power2 rate used to charge kernel flops (MFLOP/s).
pub const NAS_MFLOPS: f64 = 48.0;

/// Total virtual nanoseconds of computation charged through
/// [`charge_flops`] since process start, across all ranks and runs.
/// Snapshot before and after a run to get that run's aggregate compute
/// charge — the experiment harness uses the delta for the
/// communication/computation split (see `wide_sweep` in sp-bench).
pub static CHARGED_COMP_NS: AtomicU64 = AtomicU64::new(0);

/// Charge `flops` floating-point operations of computation.
pub fn charge_flops(mpi: &mut dyn Mpi, flops: u64) {
    let ns = (flops as f64 * 1_000.0 / NAS_MFLOPS).round() as u64;
    CHARGED_COMP_NS.fetch_add(ns, Ordering::Relaxed);
    mpi.work(Dur::ns(ns));
}

/// Near-square 2D factorization of `p` (rows × cols, rows ≤ cols).
pub fn grid2(p: usize) -> (usize, usize) {
    let mut r = (p as f64).sqrt() as usize;
    while !p.is_multiple_of(r) {
        r -= 1;
    }
    (r, p / r)
}

/// Pack f64s to little-endian bytes.
pub fn pack(v: &[f64]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Unpack little-endian bytes to f64s.
pub fn unpack(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Deterministic pseudo-random field value (NPB-style multiplicative
/// generator flavor, simplified but reproducible).
pub fn field_init(seed: u64, idx: usize) -> f64 {
    let mut x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(idx as u64);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    ((x % 2_000_003) as f64) / 2_000_003.0 - 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_factorizations() {
        assert_eq!(grid2(16), (4, 4));
        assert_eq!(grid2(8), (2, 4));
        assert_eq!(grid2(4), (2, 2));
        assert_eq!(grid2(2), (1, 2));
        assert_eq!(grid2(1), (1, 1));
        assert_eq!(grid2(6), (2, 3));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let v = vec![1.5, -2.25, 0.0, 1e300];
        assert_eq!(unpack(&pack(&v)), v);
    }

    #[test]
    fn field_init_deterministic_bounded() {
        for i in 0..1000 {
            let v = field_init(7, i);
            assert_eq!(v, field_init(7, i));
            assert!((-0.5..=0.5).contains(&v));
        }
        assert_ne!(field_init(7, 0), field_init(8, 0));
    }
}
