//! BT and SP: alternating-direction implicit solvers on a 2D process grid.
//!
//! Both NPB kernels sweep the three spatial dimensions each iteration,
//! exchanging subdomain faces with the four grid neighbours before the x
//! and y line solves. They differ in granularity: BT moves *block* faces
//! (5×5 systems — larger messages, heavier per-cell math, fewer
//! iterations), SP scalar faces (smaller messages, twice the iterations) —
//! which is why the paper's Table 6 shows SP more sensitive to per-message
//! overhead than BT.

use crate::common::{charge_flops, field_init, grid2, pack, unpack, NasClass, NasResult};
use sp_mpi::Mpi;

struct AdiParams {
    /// Local cells per dimension.
    n: usize,
    /// Variables per cell carried in face exchanges.
    face_vars: usize,
    /// Iterations.
    iters: usize,
    /// Charged flops per cell per directional sweep.
    flops_per_cell: u64,
    /// Init seed (distinguishes BT/SP workloads).
    seed: u64,
}

/// BT: block faces, fewer iterations, heavy per-cell work.
pub fn run_bt(mpi: &mut dyn Mpi, class: NasClass) -> NasResult {
    let (n, iters) = match class {
        NasClass::Reduced => (12, 8),
        NasClass::S => (12, 24),
        NasClass::W => (18, 48),
    };
    run_adi(
        mpi,
        &AdiParams {
            n,
            face_vars: 5,
            iters,
            flops_per_cell: 100,
            seed: 11,
        },
    )
}

/// SP: scalar faces, more iterations, lighter per-cell work.
pub fn run_sp(mpi: &mut dyn Mpi, class: NasClass) -> NasResult {
    let (n, iters) = match class {
        NasClass::Reduced => (12, 22),
        NasClass::S => (12, 66),
        NasClass::W => (18, 120),
    };
    run_adi(
        mpi,
        &AdiParams {
            n,
            face_vars: 1,
            iters,
            flops_per_cell: 40,
            seed: 13,
        },
    )
}

const TAG_X: i32 = 100;
const TAG_Y: i32 = 101;

fn run_adi(mpi: &mut dyn Mpi, p: &AdiParams) -> NasResult {
    let size = mpi.size();
    let me = mpi.rank();
    let (pr, pc) = grid2(size);
    let (my_r, my_c) = (me / pc, me % pc);
    let n = p.n;
    let fv = p.face_vars;

    // Local field: n³ cells (a single representative variable drives the
    // arithmetic; faces carry `face_vars` copies to model BT's block size).
    let mut u: Vec<f64> = (0..n * n * n)
        .map(|i| field_init(p.seed, me * n * n * n + i))
        .collect();
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;

    mpi.barrier();
    let t0 = mpi.now();

    for _it in 0..p.iters {
        // --- x sweep: exchange faces with west/east (column neighbours).
        let west = (my_c > 0).then(|| my_r * pc + (my_c - 1));
        let east = (my_c + 1 < pc).then(|| my_r * pc + (my_c + 1));
        let my_west_face: Vec<f64> = {
            let mut f = Vec::with_capacity(fv * n * n);
            for v in 0..fv {
                for j in 0..n {
                    for k in 0..n {
                        f.push(u[idx(0, j, k)] * (1.0 + v as f64 * 1e-3));
                    }
                }
            }
            f
        };
        let my_east_face: Vec<f64> = {
            let mut f = Vec::with_capacity(fv * n * n);
            for v in 0..fv {
                for j in 0..n {
                    for k in 0..n {
                        f.push(u[idx(n - 1, j, k)] * (1.0 + v as f64 * 1e-3));
                    }
                }
            }
            f
        };
        let (from_west, from_east) = exchange(mpi, west, east, TAG_X, &my_west_face, &my_east_face);
        // Line solve along x: forward/backward recurrence seeded by the
        // neighbour faces (zero at physical boundaries).
        for j in 0..n {
            for k in 0..n {
                let wb = from_west.as_ref().map_or(0.0, |f| f[j * n + k]);
                let eb = from_east.as_ref().map_or(0.0, |f| f[j * n + k]);
                let mut prev = wb;
                for i in 0..n {
                    let c = idx(i, j, k);
                    u[c] = 0.6 * u[c] + 0.2 * prev;
                    prev = u[c];
                }
                let mut next = eb;
                for i in (0..n).rev() {
                    let c = idx(i, j, k);
                    u[c] = 0.8 * u[c] + 0.2 * next;
                    next = u[c];
                }
            }
        }
        charge_flops(mpi, (n * n * n) as u64 * p.flops_per_cell);

        // --- y sweep: exchange with north/south (row neighbours).
        let north = (my_r > 0).then(|| (my_r - 1) * pc + my_c);
        let south = (my_r + 1 < pr).then(|| (my_r + 1) * pc + my_c);
        let my_north_face: Vec<f64> = {
            let mut f = Vec::with_capacity(fv * n * n);
            for v in 0..fv {
                for i in 0..n {
                    for k in 0..n {
                        f.push(u[idx(i, 0, k)] * (1.0 + v as f64 * 1e-3));
                    }
                }
            }
            f
        };
        let my_south_face: Vec<f64> = {
            let mut f = Vec::with_capacity(fv * n * n);
            for v in 0..fv {
                for i in 0..n {
                    for k in 0..n {
                        f.push(u[idx(i, n - 1, k)] * (1.0 + v as f64 * 1e-3));
                    }
                }
            }
            f
        };
        let (from_north, from_south) =
            exchange(mpi, north, south, TAG_Y, &my_north_face, &my_south_face);
        for i in 0..n {
            for k in 0..n {
                let nb = from_north.as_ref().map_or(0.0, |f| f[i * n + k]);
                let sb = from_south.as_ref().map_or(0.0, |f| f[i * n + k]);
                let mut prev = nb;
                for j in 0..n {
                    let c = idx(i, j, k);
                    u[c] = 0.6 * u[c] + 0.2 * prev;
                    prev = u[c];
                }
                let mut next = sb;
                for j in (0..n).rev() {
                    let c = idx(i, j, k);
                    u[c] = 0.8 * u[c] + 0.2 * next;
                    next = u[c];
                }
            }
        }
        charge_flops(mpi, (n * n * n) as u64 * p.flops_per_cell);

        // --- z sweep: undecomposed, purely local.
        for i in 0..n {
            for j in 0..n {
                let mut prev = 0.0;
                for k in 0..n {
                    let c = idx(i, j, k);
                    u[c] = 0.7 * u[c] + 0.2 * prev;
                    prev = u[c];
                }
            }
        }
        charge_flops(mpi, (n * n * n) as u64 * p.flops_per_cell);
    }

    let local: f64 = u.iter().map(|v| v * v).sum();
    let global = mpi.allreduce_f64(&[local], |a, b| a + b)[0];
    NasResult {
        time: mpi.now() - t0,
        checksum: global,
    }
}

/// Bidirectional neighbour exchange: send `lo_face` toward the lower
/// neighbour and `hi_face` toward the higher one; returns what they sent
/// us. Receives post first (deadlock-free with rendezvous).
fn exchange(
    mpi: &mut dyn Mpi,
    lo: Option<usize>,
    hi: Option<usize>,
    tag: i32,
    lo_face: &[f64],
    hi_face: &[f64],
) -> (Option<Vec<f64>>, Option<Vec<f64>>) {
    let r_lo = lo.map(|p| mpi.irecv(Some(p), Some(tag)));
    let r_hi = hi.map(|p| mpi.irecv(Some(p), Some(tag)));
    let s_lo = lo.map(|p| mpi.isend(&pack(lo_face), p, tag));
    let s_hi = hi.map(|p| mpi.isend(&pack(hi_face), p, tag));
    let from_lo = r_lo.map(|r| unpack(&mpi.wait(r).expect("face").0));
    let from_hi = r_hi.map(|r| unpack(&mpi.wait(r).expect("face").0));
    if let Some(s) = s_lo {
        mpi.wait(s);
    }
    if let Some(s) = s_hi {
        mpi.wait(s);
    }
    (from_lo, from_hi)
}
