//! MG: multigrid V-cycle with halo exchanges at every grid level.
//!
//! 3D domain decomposition; each V-cycle relaxes, restricts down to the
//! coarsest level and interpolates back up, exchanging six halo faces at
//! every level — message sizes shrink 4× per level, so MG mixes medium and
//! tiny messages.

use crate::common::{charge_flops, field_init, pack, unpack, NasClass, NasResult};
use sp_mpi::Mpi;

const FLOPS_PER_POINT: u64 = 7; // relax + residual + transfer operators

const TAG_DIM: [i32; 3] = [300, 301, 302];

/// Near-cubic 3D factorization of `p`.
fn grid3(p: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, p);
    let mut best_score = usize::MAX;
    for a in 1..=p {
        if !p.is_multiple_of(a) {
            continue;
        }
        let q = p / a;
        for b in 1..=q {
            if !q.is_multiple_of(b) {
                continue;
            }
            let c = q / b;
            let score = a.max(b).max(c) - a.min(b).min(c);
            if score < best_score {
                best_score = score;
                best = (a, b, c);
            }
        }
    }
    best
}

/// Run MG on this rank.
pub fn run(mpi: &mut dyn Mpi, class: NasClass) -> NasResult {
    // (finest local grid per dimension, grid levels, V-cycles)
    let (n0, num_levels, iters) = match class {
        NasClass::Reduced => (16, 4, 4), // 16, 8, 4, 2
        NasClass::S => (16, 4, 12),
        NasClass::W => (32, 5, 16), // 32, 16, 8, 4, 2
    };
    let size = mpi.size();
    let me = mpi.rank();
    let (px, py, pz) = grid3(size);
    let (mx, rest) = (me % px, me / px);
    let (my, mz) = (rest % py, rest / py);
    let rank_of = |x: usize, y: usize, z: usize| (z * py + y) * px + x;

    // One field per level.
    let mut levels: Vec<Vec<f64>> = (0..num_levels)
        .map(|l| {
            let n = n0 >> l;
            (0..n * n * n)
                .map(|i| {
                    if l == 0 {
                        field_init(23, me * n0 * n0 * n0 + i)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    mpi.barrier();
    let t0 = mpi.now();

    for _it in 0..iters {
        // Down-cycle: relax + restrict.
        for l in 0..num_levels {
            let n = n0 >> l;
            halo_relax(mpi, &mut levels[l], n, (mx, my, mz), (px, py, pz), &rank_of);
            charge_flops(mpi, (n * n * n) as u64 * FLOPS_PER_POINT);
            if l + 1 < num_levels {
                let (fine, coarse) = {
                    let (a, b) = levels.split_at_mut(l + 1);
                    (&a[l], &mut b[0])
                };
                restrict(fine, coarse, n);
            }
        }
        // Up-cycle: interpolate + relax.
        for l in (0..num_levels - 1).rev() {
            let n = n0 >> l;
            let (fine, coarse) = {
                let (a, b) = levels.split_at_mut(l + 1);
                (&mut a[l], &b[0])
            };
            interpolate(coarse, fine, n);
            halo_relax(mpi, &mut levels[l], n, (mx, my, mz), (px, py, pz), &rank_of);
            charge_flops(mpi, (n * n * n) as u64 * FLOPS_PER_POINT);
        }
    }

    let local: f64 = levels[0].iter().map(|v| v * v).sum();
    let global = mpi.allreduce_f64(&[local], |a, b| a + b)[0];
    NasResult {
        time: mpi.now() - t0,
        checksum: global,
    }
}

/// Exchange the six halo faces of an n³ field, then one Jacobi relaxation
/// using the received boundaries.
fn halo_relax(
    mpi: &mut dyn Mpi,
    u: &mut Vec<f64>,
    n: usize,
    (mx, my, mz): (usize, usize, usize),
    (px, py, pz): (usize, usize, usize),
    rank_of: &impl Fn(usize, usize, usize) -> usize,
) {
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    // Gather faces: dim 0 = x (i), 1 = y (j), 2 = z (k).
    let mut boundary: [[Option<Vec<f64>>; 2]; 3] = Default::default();
    for dim in 0..3 {
        let (coord, extent) = match dim {
            0 => (mx, px),
            1 => (my, py),
            _ => (mz, pz),
        };
        let lo_rank = (coord > 0).then(|| match dim {
            0 => rank_of(mx - 1, my, mz),
            1 => rank_of(mx, my - 1, mz),
            _ => rank_of(mx, my, mz - 1),
        });
        let hi_rank = (coord + 1 < extent).then(|| match dim {
            0 => rank_of(mx + 1, my, mz),
            1 => rank_of(mx, my + 1, mz),
            _ => rank_of(mx, my, mz + 1),
        });
        let face = |u: &Vec<f64>, fixed: usize| -> Vec<f64> {
            let mut f = Vec::with_capacity(n * n);
            for a in 0..n {
                for b in 0..n {
                    f.push(match dim {
                        0 => u[idx(fixed, a, b)],
                        1 => u[idx(a, fixed, b)],
                        _ => u[idx(a, b, fixed)],
                    });
                }
            }
            f
        };
        let lo_face = face(u, 0);
        let hi_face = face(u, n - 1);
        let r_lo = lo_rank.map(|p| mpi.irecv(Some(p), Some(TAG_DIM[dim])));
        let r_hi = hi_rank.map(|p| mpi.irecv(Some(p), Some(TAG_DIM[dim])));
        let s_lo = lo_rank.map(|p| mpi.isend(&pack(&lo_face), p, TAG_DIM[dim]));
        let s_hi = hi_rank.map(|p| mpi.isend(&pack(&hi_face), p, TAG_DIM[dim]));
        boundary[dim][0] = r_lo.map(|r| unpack(&mpi.wait(r).expect("halo").0));
        boundary[dim][1] = r_hi.map(|r| unpack(&mpi.wait(r).expect("halo").0));
        if let Some(s) = s_lo {
            mpi.wait(s);
        }
        if let Some(s) = s_hi {
            mpi.wait(s);
        }
    }
    // Jacobi relax with the halo boundaries (zero at physical edges).
    let old = u.clone();
    let get = |i: isize, j: isize, k: isize| -> f64 {
        let side = |v: isize| -> Option<usize> {
            if v < 0 {
                None
            } else if v as usize >= n {
                Some(1)
            } else {
                Some(2)
            }
        };
        match (side(i), side(j), side(k)) {
            (Some(2), Some(2), Some(2)) => old[idx(i as usize, j as usize, k as usize)],
            (None, Some(2), Some(2)) => boundary[0][0]
                .as_ref()
                .map_or(0.0, |f| f[j as usize * n + k as usize]),
            (Some(1), Some(2), Some(2)) => boundary[0][1]
                .as_ref()
                .map_or(0.0, |f| f[j as usize * n + k as usize]),
            (Some(2), None, Some(2)) => boundary[1][0]
                .as_ref()
                .map_or(0.0, |f| f[i as usize * n + k as usize]),
            (Some(2), Some(1), Some(2)) => boundary[1][1]
                .as_ref()
                .map_or(0.0, |f| f[i as usize * n + k as usize]),
            (Some(2), Some(2), None) => boundary[2][0]
                .as_ref()
                .map_or(0.0, |f| f[i as usize * n + j as usize]),
            (Some(2), Some(2), Some(1)) => boundary[2][1]
                .as_ref()
                .map_or(0.0, |f| f[i as usize * n + j as usize]),
            _ => 0.0, // corners/edges beyond one face: outside the stencil
        }
    };
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let (i_, j_, k_) = (i as isize, j as isize, k as isize);
                u[idx(i, j, k)] = 0.5 * old[idx(i, j, k)]
                    + (get(i_ - 1, j_, k_)
                        + get(i_ + 1, j_, k_)
                        + get(i_, j_ - 1, k_)
                        + get(i_, j_ + 1, k_)
                        + get(i_, j_, k_ - 1)
                        + get(i_, j_, k_ + 1))
                        / 12.0;
            }
        }
    }
}

/// Full-weighting restriction: coarse cell = average of its 8 fine cells.
fn restrict(fine: &[f64], coarse: &mut [f64], nf: usize) {
    let nc = nf / 2;
    let fi = |i: usize, j: usize, k: usize| (i * nf + j) * nf + k;
    for i in 0..nc {
        for j in 0..nc {
            for k in 0..nc {
                let mut s = 0.0;
                for (di, dj, dk) in
                    (0..2).flat_map(|a| (0..2).flat_map(move |b| (0..2).map(move |c| (a, b, c))))
                {
                    s += fine[fi(2 * i + di, 2 * j + dj, 2 * k + dk)];
                }
                coarse[(i * nc + j) * nc + k] = s / 8.0;
            }
        }
    }
}

/// Trilinear-ish interpolation: add the coarse correction to the fine grid.
fn interpolate(coarse: &[f64], fine: &mut [f64], nf: usize) {
    let nc = nf / 2;
    let fi = |i: usize, j: usize, k: usize| (i * nf + j) * nf + k;
    for i in 0..nf {
        for j in 0..nf {
            for k in 0..nf {
                let c = coarse[((i / 2) * nc + j / 2) * nc + k / 2];
                fine[fi(i, j, k)] += 0.5 * c;
            }
        }
    }
}
