//! # sp-nas — NAS Parallel Benchmark kernels for Table 6
//!
//! The paper's §4.4 compares MPI-over-AM against MPI-F on the NAS Parallel
//! Benchmarks 2.0 (BT, FT, LU, MG, SP), Class A, on 16 thin nodes. This
//! crate reimplements the five kernels as *communication-faithful*
//! miniatures:
//!
//! * each kernel runs the real NPB 2.0 communication pattern — BT/SP's
//!   per-dimension face exchanges on a square process grid, LU's fine-grain
//!   SSOR wavefront pipeline, MG's V-cycle halo exchanges across grid
//!   levels, FT's transpose built on `MPI_Alltoall` (the generic MPICH
//!   schedule on MPI-AM, the tuned one on MPI-F — exactly the difference
//!   the paper blames for FT's gap);
//! * each performs *real arithmetic* on a scaled-down grid (class "S16" —
//!   our simulation class), so results are verifiable: both MPI
//!   implementations must produce bit-identical residuals;
//! * computation is charged to virtual time from the actual flop counts of
//!   the scaled problem, so communication/computation ratios stay
//!   representative and the Table 6 *ratios* (MPI-AM vs MPI-F per
//!   benchmark) are meaningful even though our absolute class is smaller
//!   than Class A (see EXPERIMENTS.md for the scale discussion).
//!
//! Run a kernel with [`run_kernel`]; each returns a [`NasResult`] with the
//! timed section's virtual duration and a deterministic residual checksum.
//! [`run_kernel_class`] scales the grids and iteration counts up through
//! [`NasClass::S`] and [`NasClass::W`]; the reduced class stays the
//! test-time default.

#![warn(missing_docs)]

mod adi;
mod common;
mod ft;
mod lu;
mod mg;

pub use common::{Kernel, NasClass, NasResult, CHARGED_COMP_NS};

use sp_adapter::SpConfig;
use sp_mpi::runner::{run_mpi_report, MpiImpl, MpiRunReport};

/// Run `kernel` at the reduced (test-time default) class. See
/// [`run_kernel_class`] for the scaled-up S/W-sized grids.
pub fn run_kernel(kernel: Kernel, imp: MpiImpl, ranks: usize, seed: u64) -> NasResult {
    run_kernel_class(kernel, imp, ranks, seed, NasClass::Reduced)
}

/// Run `kernel` on `ranks` ranks of `imp` at problem `class`; returns the
/// slowest rank's timed duration and the global residual checksum.
pub fn run_kernel_class(
    kernel: Kernel,
    imp: MpiImpl,
    ranks: usize,
    seed: u64,
    class: NasClass,
) -> NasResult {
    run_kernel_on(kernel, imp, SpConfig::thin(ranks), seed, class).0
}

/// Run `kernel` at `class` on explicit SP hardware — a wide-node partition
/// (`SpConfig::wide`), or a sharded engine (`SpConfig::thin(n).parallel(k)`)
/// — and additionally return the machine-level [`MpiRunReport`] (end time,
/// event count, world hash, shard breakdown) the serial-vs-parallel
/// equivalence checks compare.
pub fn run_kernel_on(
    kernel: Kernel,
    imp: MpiImpl,
    sp: SpConfig,
    seed: u64,
    class: NasClass,
) -> (NasResult, MpiRunReport) {
    let ranks = sp.nodes;
    let (results, run) = run_mpi_report(imp, sp, seed, move |mpi| match kernel {
        Kernel::Bt => adi::run_bt(mpi, class),
        Kernel::Sp => adi::run_sp(mpi, class),
        Kernel::Lu => lu::run(mpi, class),
        Kernel::Mg => mg::run(mpi, class),
        Kernel::Ft => ft::run(mpi, class),
    });
    assert_eq!(results.len(), ranks);
    let time = results.iter().map(|r| r.time).max().expect("ranks > 0");
    let checksum = results[0].checksum;
    for r in &results {
        assert!(
            (r.checksum - checksum).abs() <= 1e-9 * checksum.abs().max(1.0),
            "ranks disagree on the residual"
        );
    }
    (NasResult { time, checksum }, run)
}
