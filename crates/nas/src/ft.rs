//! FT: 3D FFT whose transpose is an `MPI_Alltoall` — the kernel whose
//! performance the paper traces to the quality of the all-to-all schedule
//! (generic MPICH on MPI-AM vs. tuned on MPI-F, §4.4).

use crate::common::{charge_flops, field_init, NasClass, NasResult};
use sp_mpi::Mpi;

/// In-place radix-2 complex FFT over `(re, im)` pairs.
fn fft(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ar, ai) = (re[i + k], im[i + k]);
                let (br, bi) = (re[i + k + len / 2], im[i + k + len / 2]);
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                re[i + k] = ar + tr;
                im[i + k] = ai + ti;
                re[i + k + len / 2] = ar - tr;
                im[i + k + len / 2] = ai - ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Flops for one length-n complex FFT (standard 5 n log2 n accounting).
fn fft_flops(n: usize) -> u64 {
    (5.0 * n as f64 * (n as f64).log2()) as u64
}

/// Run FT on this rank.
pub fn run(mpi: &mut dyn Mpi, class: NasClass) -> NasResult {
    // Transform dimensions (all powers of two) and evolution steps. The
    // reduced grid is the test default; S is the true NPB Class S 64^3
    // grid, W the true Class W 128x128x32.
    let (nx, ny, nz, iters) = match class {
        NasClass::Reduced => (64, 64, 32, 3),
        NasClass::S => (64, 64, 64, 6),
        NasClass::W => (128, 128, 32, 6),
    };
    let p = mpi.size();
    let me = mpi.rank();
    assert_eq!(nz % p, 0, "NZ must divide over ranks");
    assert_eq!(ny % p, 0, "NY must divide over ranks");
    let local_nz = nz / p; // z-planes held before the transpose
    let local_ny = ny / p; // y-pencils held after the transpose

    // Layout A: u[z][y][x] for my z-planes.
    let cells = nx * ny * local_nz;
    let mut ure: Vec<f64> = (0..cells).map(|i| field_init(29, me * cells + i)).collect();
    let mut uim: Vec<f64> = (0..cells).map(|i| field_init(31, me * cells + i)).collect();

    mpi.barrier();
    let t0 = mpi.now();
    let mut checksum = 0.0f64;

    for _it in 0..iters {
        // FFT along x for every (z, y) line, then along y via strided
        // gather (local work).
        for z in 0..local_nz {
            for y in 0..ny {
                let base = (z * ny + y) * nx;
                fft(&mut ure[base..base + nx], &mut uim[base..base + nx]);
            }
        }
        charge_flops(mpi, (local_nz * ny) as u64 * fft_flops(nx));
        for z in 0..local_nz {
            for x in 0..nx {
                let mut lre: Vec<f64> = (0..ny).map(|y| ure[(z * ny + y) * nx + x]).collect();
                let mut lim: Vec<f64> = (0..ny).map(|y| uim[(z * ny + y) * nx + x]).collect();
                fft(&mut lre, &mut lim);
                for y in 0..ny {
                    ure[(z * ny + y) * nx + x] = lre[y];
                    uim[(z * ny + y) * nx + x] = lim[y];
                }
            }
        }
        charge_flops(mpi, (local_nz * nx) as u64 * fft_flops(ny));

        // Transpose z<->y via all-to-all: destination d gets my z-planes of
        // its y-slab (y in [d*local_ny, (d+1)*local_ny)).
        let bufs: Vec<Vec<u8>> = (0..p)
            .map(|d| {
                let mut b = Vec::with_capacity(local_nz * local_ny * nx * 16);
                for z in 0..local_nz {
                    for y in d * local_ny..(d + 1) * local_ny {
                        for x in 0..nx {
                            b.extend_from_slice(&ure[(z * ny + y) * nx + x].to_le_bytes());
                            b.extend_from_slice(&uim[(z * ny + y) * nx + x].to_le_bytes());
                        }
                    }
                }
                b
            })
            .collect();
        let got = mpi.alltoall(&bufs);
        // Layout B: v[y][z][x] for my y-slab, z now full depth.
        let mut vre = vec![0.0f64; local_ny * nz * nx];
        let mut vim = vec![0.0f64; local_ny * nz * nx];
        for (src, block) in got.iter().enumerate() {
            // Block holds src's local_nz z-planes of my y-slab.
            let mut off = 0usize;
            for zz in 0..local_nz {
                let z = src * local_nz + zz;
                for yy in 0..local_ny {
                    for x in 0..nx {
                        let re = f64::from_le_bytes(block[off..off + 8].try_into().expect("8"));
                        let im =
                            f64::from_le_bytes(block[off + 8..off + 16].try_into().expect("8"));
                        off += 16;
                        vre[(yy * nz + z) * nx + x] = re;
                        vim[(yy * nz + z) * nx + x] = im;
                    }
                }
            }
        }

        // FFT along z, evolve (phase damp), accumulate the checksum.
        for yy in 0..local_ny {
            for x in 0..nx {
                let mut lre: Vec<f64> = (0..nz).map(|z| vre[(yy * nz + z) * nx + x]).collect();
                let mut lim: Vec<f64> = (0..nz).map(|z| vim[(yy * nz + z) * nx + x]).collect();
                fft(&mut lre, &mut lim);
                for z in 0..nz {
                    vre[(yy * nz + z) * nx + x] = lre[z] * 0.9;
                    vim[(yy * nz + z) * nx + x] = lim[z] * 0.9;
                }
            }
        }
        charge_flops(mpi, (local_ny * nx) as u64 * fft_flops(nz));
        checksum += vre.iter().step_by(97).map(|v| v.abs()).sum::<f64>()
            + vim.iter().step_by(89).map(|v| v.abs()).sum::<f64>();

        // Transpose back so the next iteration starts from layout A.
        let back: Vec<Vec<u8>> = (0..p)
            .map(|d| {
                let mut b = Vec::with_capacity(local_ny * local_nz * nx * 16);
                for yy in 0..local_ny {
                    for z in d * local_nz..(d + 1) * local_nz {
                        for x in 0..nx {
                            b.extend_from_slice(&vre[(yy * nz + z) * nx + x].to_le_bytes());
                            b.extend_from_slice(&vim[(yy * nz + z) * nx + x].to_le_bytes());
                        }
                    }
                }
                b
            })
            .collect();
        let got = mpi.alltoall(&back);
        for (src, block) in got.iter().enumerate() {
            let mut off = 0usize;
            for yy in 0..local_ny {
                let y = src * local_ny + yy;
                for zz in 0..local_nz {
                    for x in 0..nx {
                        let re = f64::from_le_bytes(block[off..off + 8].try_into().expect("8"));
                        let im =
                            f64::from_le_bytes(block[off + 8..off + 16].try_into().expect("8"));
                        off += 16;
                        ure[(zz * ny + y) * nx + x] = re;
                        uim[(zz * ny + y) * nx + x] = im;
                    }
                }
            }
        }
    }

    // Scale the checksum to a common magnitude and agree globally.
    let global = mpi.allreduce_f64(&[checksum], |a, b| a + b)[0];
    NasResult {
        time: mpi.now() - t0,
        checksum: global,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_delta_is_flat() {
        let n = 16;
        let mut re = vec![0.0; n];
        let mut im = vec![0.0; n];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for i in 0..n {
            assert!((re[i] - 1.0).abs() < 1e-12, "re[{i}] = {}", re[i]);
            assert!(im[i].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_delta() {
        let n = 8;
        let mut re = vec![1.0; n];
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        assert!((re[0] - n as f64).abs() < 1e-9);
        for i in 1..n {
            assert!(re[i].abs() < 1e-9 && im[i].abs() < 1e-9, "bin {i} not zero");
        }
    }

    #[test]
    fn fft_parseval_energy_conserved() {
        let n = 64;
        let mut re: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 11) as f64 - 5.0).collect();
        let mut im: Vec<f64> = (0..n).map(|i| ((i * 13 + 2) % 7) as f64 - 3.0).collect();
        let time_energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        fft(&mut re, &mut im);
        let freq_energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!(
            (freq_energy - n as f64 * time_energy).abs() < 1e-6 * freq_energy.abs(),
            "Parseval violated: {freq_energy} vs {}",
            n as f64 * time_energy
        );
    }

    #[test]
    fn fft_single_tone_lands_in_one_bin() {
        let n = 32;
        let k = 5;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft(&mut re, &mut im);
        // Energy concentrated in bins k and n-k.
        let mag = |i: usize| (re[i] * re[i] + im[i] * im[i]).sqrt();
        assert!(mag(k) > (n / 2) as f64 * 0.99);
        assert!(mag(n - k) > (n / 2) as f64 * 0.99);
        for i in 0..n {
            if i != k && i != n - k {
                assert!(mag(i) < 1e-9, "leakage in bin {i}: {}", mag(i));
            }
        }
    }

    #[test]
    fn fft_flops_accounting() {
        assert_eq!(fft_flops(2), 10);
        assert!(fft_flops(1024) > fft_flops(512) * 2);
    }
}
