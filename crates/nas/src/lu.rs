//! LU: SSOR solver with the NPB wavefront pipeline.
//!
//! The 2D process grid sweeps diagonal wavefronts plane by plane: each rank
//! waits for its north and west neighbours' boundary strips for plane `k`,
//! relaxes the plane, then forwards its south and east strips — hundreds of
//! *small* blocking messages per iteration. This is the latency/overhead-
//! sensitive kernel of the set.

use crate::common::{charge_flops, field_init, grid2, pack, unpack, NasClass, NasResult};
use sp_mpi::Mpi;

const FLOPS_PER_CELL_SWEEP: u64 = 36;

const TAG_NS: i32 = 200;
const TAG_WE: i32 = 201;

/// Run LU on this rank.
pub fn run(mpi: &mut dyn Mpi, class: NasClass) -> NasResult {
    // (local cells per horizontal dimension, planes, iterations)
    let (n, nz, iters) = match class {
        NasClass::Reduced => (8, 16, 12),
        NasClass::S => (8, 24, 24),
        NasClass::W => (12, 32, 48),
    };
    let size = mpi.size();
    let me = mpi.rank();
    let (pr, pc) = grid2(size);
    let (my_r, my_c) = (me / pc, me % pc);
    let north = (my_r > 0).then(|| (my_r - 1) * pc + my_c);
    let south = (my_r + 1 < pr).then(|| (my_r + 1) * pc + my_c);
    let west = (my_c > 0).then(|| me - 1);
    let east = (my_c + 1 < pc).then(|| me + 1);

    let mut u: Vec<f64> = (0..n * n * nz)
        .map(|i| field_init(17, me * n * n * nz + i))
        .collect();
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * nz + k;

    mpi.barrier();
    let t0 = mpi.now();

    for _it in 0..iters {
        // Lower-triangular sweep: wavefront from the north-west corner.
        for k in 0..nz {
            let from_north = north.map(|p| unpack(&mpi.recv(Some(p), Some(TAG_NS)).0));
            let from_west = west.map(|p| unpack(&mpi.recv(Some(p), Some(TAG_WE)).0));
            relax_plane(
                &mut u,
                &idx,
                n,
                k,
                from_north.as_deref(),
                from_west.as_deref(),
                0.2,
            );
            charge_flops(mpi, (n * n) as u64 * FLOPS_PER_CELL_SWEEP);
            if let Some(p) = south {
                let strip: Vec<f64> = (0..n).map(|j| u[idx(n - 1, j, k)]).collect();
                mpi.send(&pack(&strip), p, TAG_NS);
            }
            if let Some(p) = east {
                let strip: Vec<f64> = (0..n).map(|i| u[idx(i, n - 1, k)]).collect();
                mpi.send(&pack(&strip), p, TAG_WE);
            }
        }
        // Upper-triangular sweep: wavefront from the south-east corner.
        for k in (0..nz).rev() {
            let from_south = south.map(|p| unpack(&mpi.recv(Some(p), Some(TAG_NS)).0));
            let from_east = east.map(|p| unpack(&mpi.recv(Some(p), Some(TAG_WE)).0));
            relax_plane_rev(
                &mut u,
                &idx,
                (n, nz),
                k,
                from_south.as_deref(),
                from_east.as_deref(),
                0.15,
            );
            charge_flops(mpi, (n * n) as u64 * FLOPS_PER_CELL_SWEEP);
            if let Some(p) = north {
                let strip: Vec<f64> = (0..n).map(|j| u[idx(0, j, k)]).collect();
                mpi.send(&pack(&strip), p, TAG_NS);
            }
            if let Some(p) = west {
                let strip: Vec<f64> = (0..n).map(|i| u[idx(i, 0, k)]).collect();
                mpi.send(&pack(&strip), p, TAG_WE);
            }
        }
    }

    let local: f64 = u.iter().map(|v| v * v).sum();
    let global = mpi.allreduce_f64(&[local], |a, b| a + b)[0];
    NasResult {
        time: mpi.now() - t0,
        checksum: global,
    }
}

fn relax_plane(
    u: &mut [f64],
    idx: &impl Fn(usize, usize, usize) -> usize,
    n: usize,
    k: usize,
    north: Option<&[f64]>,
    west: Option<&[f64]>,
    w: f64,
) {
    for i in 0..n {
        for j in 0..n {
            let up = if i > 0 {
                u[idx(i - 1, j, k)]
            } else {
                north.map_or(0.0, |s| s[j])
            };
            let left = if j > 0 {
                u[idx(i, j - 1, k)]
            } else {
                west.map_or(0.0, |s| s[i])
            };
            let back = if k > 0 { u[idx(i, j, k - 1)] } else { 0.0 };
            let c = idx(i, j, k);
            u[c] = (1.0 - 3.0 * w) * u[c] + w * (up + left + back);
        }
    }
}

fn relax_plane_rev(
    u: &mut [f64],
    idx: &impl Fn(usize, usize, usize) -> usize,
    (n, nz): (usize, usize),
    k: usize,
    south: Option<&[f64]>,
    east: Option<&[f64]>,
    w: f64,
) {
    for i in (0..n).rev() {
        for j in (0..n).rev() {
            let down = if i + 1 < n {
                u[idx(i + 1, j, k)]
            } else {
                south.map_or(0.0, |s| s[j])
            };
            let right = if j + 1 < n {
                u[idx(i, j + 1, k)]
            } else {
                east.map_or(0.0, |s| s[i])
            };
            let front = if k + 1 < nz { u[idx(i, j, k + 1)] } else { 0.0 };
            let c = idx(i, j, k);
            u[c] = (1.0 - 3.0 * w) * u[c] + w * (down + right + front);
        }
    }
}
