//! NAS kernel tests: determinism, implementation-independence of the
//! numerics, and basic Table 6 shape (MPI-AM close to MPI-F).

use sp_mpi::runner::MpiImpl;
use sp_nas::{run_kernel, Kernel};

#[test]
fn kernels_agree_across_implementations_4_ranks() {
    for kernel in Kernel::all() {
        let a = run_kernel(kernel, MpiImpl::AmOptimized, 4, 3);
        let b = run_kernel(kernel, MpiImpl::MpiF, 4, 3);
        let c = run_kernel(kernel, MpiImpl::AmUnoptimized, 4, 3);
        assert!(
            (a.checksum - b.checksum).abs() <= 1e-9 * a.checksum.abs().max(1.0),
            "{}: AM-opt {} vs MPI-F {}",
            kernel.name(),
            a.checksum,
            b.checksum
        );
        assert!(
            (a.checksum - c.checksum).abs() <= 1e-9 * a.checksum.abs().max(1.0),
            "{}: AM-opt {} vs AM-unopt {}",
            kernel.name(),
            a.checksum,
            c.checksum
        );
        assert!(
            a.checksum.is_finite() && a.checksum != 0.0,
            "{} trivial checksum",
            kernel.name()
        );
        assert!(a.time.as_us() > 0.0);
    }
}

#[test]
fn kernels_deterministic() {
    for kernel in [Kernel::Lu, Kernel::Ft] {
        let a = run_kernel(kernel, MpiImpl::AmOptimized, 4, 3);
        let b = run_kernel(kernel, MpiImpl::AmOptimized, 4, 3);
        assert_eq!(a.time, b.time, "{} time not reproducible", kernel.name());
        assert_eq!(a.checksum, b.checksum);
    }
}

#[test]
fn table6_shape_16_ranks() {
    // The paper's qualitative Table 6 claims on 16 thin nodes:
    //  - MPI-AM (optimized) is within ~25% of MPI-F on every kernel;
    //  - FT and SP show a visible gap (generic collectives / many small
    //    messages), BT and MG are close.
    for kernel in Kernel::all() {
        let am = run_kernel(kernel, MpiImpl::AmOptimized, 16, 5);
        let f = run_kernel(kernel, MpiImpl::MpiF, 16, 5);
        let ratio = am.time.as_us() / f.time.as_us();
        eprintln!(
            "{}: MPI-F {:.3}s  MPI-AM {:.3}s  ratio {:.2}",
            kernel.name(),
            f.time.as_secs(),
            am.time.as_secs(),
            ratio
        );
        assert!(
            (0.7..1.45).contains(&ratio),
            "{}: MPI-AM/MPI-F ratio {ratio:.2} out of the paper's ballpark",
            kernel.name()
        );
    }
}
