//! # sp-logp — LogGP machine models for the cross-machine comparison
//!
//! Section 3 of the paper compares Split-C on the SP against the TMC CM-5,
//! Meiko CS-2, and the U-Net/ATM Sparc cluster — all platforms with Active
//! Messages implementations, summarized by Table 4 as (CPU speed, message
//! overhead *o*, round-trip latency, bandwidth). That is precisely a
//! LogGP-style characterization, so this crate provides a parameterized
//! machine: per-message send/receive overheads, one-way wire latency,
//! per-byte gap (bandwidth), receiver-link contention, and a CPU scaling
//! factor applied to computation phases.
//!
//! The Split-C runtime (`sp-splitc`) runs unchanged over these machines,
//! which is the point of the comparison: same program, different (o, L, G,
//! CPU) trade-offs.
//!
//! ## Table 4 parameters (OCR reconstruction noted in DESIGN.md)
//!
//! | machine | CPU | o | RTT | BW |
//! |---|---|---|---|---|
//! | TMC CM-5 | 33 MHz Sparc-2 | 3 µs | 12 µs | 10 MB/s |
//! | Meiko CS-2 | 40 MHz Sparc | 11 µs | 55 µs | 39 MB/s |
//! | U-Net ATM | 50/60 MHz Sparc-20 | 13 µs | 66 µs | 14 MB/s |
//! | IBM SP | 66 MHz RS6000 | (detailed model) | 51 µs | 34 MB/s |

#![warn(missing_docs)]

use sp_sim::{Dur, NodeCtx, Time};
use std::collections::VecDeque;

/// LogGP-style machine parameters.
#[derive(Debug, Clone)]
pub struct LogpParams {
    /// Machine name (for reports).
    pub name: &'static str,
    /// Per-message send overhead (CPU busy).
    pub o_send: Dur,
    /// Per-message receive overhead (CPU busy, charged at poll).
    pub o_recv: Dur,
    /// One-way wire latency.
    pub latency: Dur,
    /// Link bandwidth in MB/s (the long-message gap G).
    pub mb_s: f64,
    /// Cost of polling an empty network.
    pub poll_empty: Dur,
    /// CPU speed relative to the SP's Power2 (1.0 = SP; applied to
    /// computation phases by the Split-C layer).
    pub cpu_scale: f64,
}

impl LogpParams {
    /// TMC CM-5: slow CPU, very low overhead and latency, modest
    /// bandwidth. Table 4's "message overhead" column reads as the
    /// send + receive total (consistent across all three machines), so it
    /// splits evenly here.
    pub fn cm5() -> Self {
        LogpParams {
            name: "CM-5",
            o_send: Dur::us(1.5),
            o_recv: Dur::us(1.5),
            latency: Dur::us(0.5),
            mb_s: 10.0,
            poll_empty: Dur::us(0.4),
            cpu_scale: 0.27,
        }
    }

    /// Meiko CS-2: mid CPU, high bandwidth, moderate overhead/latency.
    pub fn cs2() -> Self {
        LogpParams {
            name: "CS-2",
            o_send: Dur::us(5.5),
            o_recv: Dur::us(5.5),
            latency: Dur::us(15.5),
            mb_s: 39.0,
            poll_empty: Dur::us(0.8),
            cpu_scale: 0.45,
        }
    }

    /// U-Net/ATM cluster of Sparc-20s: similar to the CS-2 but with ATM's
    /// lower bandwidth and higher latency.
    pub fn unet() -> Self {
        LogpParams {
            name: "U-Net/ATM",
            o_send: Dur::us(6.5),
            o_recv: Dur::us(6.5),
            latency: Dur::us(18.0),
            mb_s: 14.0,
            poll_empty: Dur::us(0.8),
            cpu_scale: 0.52,
        }
    }

    /// One-way time for a message of `bytes` (excluding overheads and
    /// queueing): L + bytes/BW.
    pub fn wire(&self, bytes: usize) -> Dur {
        self.latency + Dur::for_bytes(bytes as u64, self.mb_s)
    }
}

/// A message on a LogGP machine: an opcode word, four argument words, and
/// optional bulk bytes (mirroring what an AM short/bulk carries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogpMsg {
    /// Sender node (filled by the network).
    pub src: usize,
    /// Opcode (protocol-defined).
    pub op: u32,
    /// Argument words.
    pub args: [u32; 4],
    /// Bulk payload.
    pub bytes: Box<[u8]>,
}

/// World state: per-node inbound queues plus link-occupancy times.
pub struct LogpWorld {
    queues: Vec<VecDeque<LogpMsg>>,
    inj_free: Vec<Time>,
    ej_free: Vec<Time>,
    /// Messages delivered so far (diagnostics).
    pub delivered: u64,
}

impl LogpWorld {
    /// A machine with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        LogpWorld {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            inj_free: vec![Time::ZERO; nodes],
            ej_free: vec![Time::ZERO; nodes],
            delivered: 0,
        }
    }
}

/// Per-node endpoint on a LogGP machine.
pub struct Logp<'c> {
    ctx: &'c mut NodeCtx<LogpWorld>,
    params: LogpParams,
}

impl<'c> Logp<'c> {
    /// Wrap a node context as a LogGP endpoint.
    pub fn new(ctx: &'c mut NodeCtx<LogpWorld>, params: LogpParams) -> Self {
        Logp { ctx, params }
    }

    /// This node's index.
    pub fn node(&self) -> usize {
        self.ctx.id().0
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.ctx.num_nodes()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Machine parameters.
    pub fn params(&self) -> &LogpParams {
        &self.params
    }

    /// Charge CPU work, scaled by the machine's CPU factor (callers pass
    /// SP-normalized work).
    pub fn work_scaled(&mut self, sp_time: Dur) {
        self.ctx.advance(sp_time * (1.0 / self.params.cpu_scale));
    }

    /// Charge raw (unscaled) time.
    pub fn advance(&mut self, d: Dur) {
        self.ctx.advance(d);
    }

    /// Send a message: charges `o_send` plus serialization, delivers after
    /// wire latency and receiver-link availability. Per-pair FIFO.
    pub fn send(&mut self, dst: usize, op: u32, args: [u32; 4], bytes: &[u8]) {
        self.ctx.advance(self.params.o_send);
        let me = self.node();
        let wire_bytes = 16 + bytes.len(); // header + args
        let ser = Dur::for_bytes(wire_bytes as u64, self.params.mb_s);
        let latency = self.params.latency;
        let msg = LogpMsg {
            src: me,
            op,
            args,
            bytes: bytes.into(),
        };
        let now = self.ctx.now();
        // Compute delivery time against link occupancy inside the world.
        let deliver_at = self.ctx.world(|w| {
            let start = now.max(w.inj_free[me]);
            w.inj_free[me] = start + ser;
            let nominal = start + ser + latency;
            let at = nominal.max(w.ej_free[dst] + ser);
            w.ej_free[dst] = at;
            at
        });
        self.ctx
            .schedule(deliver_at.saturating_since(now), move |e| {
                let w = e.world();
                w.queues[dst].push_back(msg);
                w.delivered += 1;
            });
        // The sender's own link occupancy keeps it busy for long messages
        // (LogGP's G): model as CPU time for the serialization beyond one
        // packet's worth, the store-and-forward cost a user-level AM layer
        // pays when fragmenting.
        if ser > Dur::us(2.0) {
            self.ctx.advance(ser - Dur::us(2.0));
        }
    }

    /// Poll for one message; charges the empty-check or `o_recv`.
    pub fn poll(&mut self) -> Option<LogpMsg> {
        let me = self.node();
        let msg = self.ctx.world(|w| w.queues[me].pop_front());
        match msg {
            None => {
                self.ctx.advance(self.params.poll_empty);
                None
            }
            Some(m) => {
                self.ctx.advance(self.params.o_recv);
                Some(m)
            }
        }
    }

    /// True if a message is waiting (free check).
    pub fn pending(&self) -> bool {
        let me = self.ctx.id().0;
        self.ctx.world(|w| !w.queues[me].is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_sim::Sim;
    use std::sync::Arc;

    fn two_nodes(
        params: LogpParams,
        a: impl FnOnce(&mut Logp<'_>) + Send + 'static,
        b: impl FnOnce(&mut Logp<'_>) + Send + 'static,
    ) {
        let mut sim = Sim::new(LogpWorld::new(2), 1);
        let (pa, pb) = (params.clone(), params);
        sim.spawn("a", move |ctx| a(&mut Logp::new(ctx, pa)));
        sim.spawn("b", move |ctx| b(&mut Logp::new(ctx, pb)));
        sim.run().unwrap();
    }

    #[test]
    fn message_roundtrip_time_matches_parameters() {
        // Ping-pong on the CM-5 model: RTT should be ~2*(o_s + L + o_r +
        // small-ser) ~ 12 us.
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let out2 = out.clone();
        two_nodes(
            LogpParams::cm5(),
            move |lp| {
                // Warmup.
                lp.send(1, 0, [0; 4], &[]);
                loop {
                    if lp.poll().is_some() {
                        break;
                    }
                }
                let t0 = lp.now();
                let iters = 50;
                for _ in 0..iters {
                    lp.send(1, 0, [0; 4], &[]);
                    loop {
                        if lp.poll().is_some() {
                            break;
                        }
                    }
                }
                *out2.lock() = (lp.now() - t0).as_us() / iters as f64;
            },
            |lp| {
                for _ in 0..51 {
                    loop {
                        if lp.poll().is_some() {
                            break;
                        }
                    }
                    lp.send(0, 0, [0; 4], &[]);
                }
            },
        );
        let rtt = *out.lock();
        assert!(
            (10.0..14.5).contains(&rtt),
            "CM-5 model RTT {rtt:.1} us, want ~12"
        );
    }

    #[test]
    fn bandwidth_matches_parameters() {
        let out = Arc::new(parking_lot::Mutex::new(0.0));
        let out2 = out.clone();
        two_nodes(
            LogpParams::cs2(),
            move |lp| {
                let t0 = lp.now();
                let chunk = vec![0u8; 4096];
                for _ in 0..100 {
                    lp.send(1, 1, [0; 4], &chunk);
                }
                // Wait for the final ack to time the drain.
                loop {
                    if lp.poll().is_some() {
                        break;
                    }
                }
                let dt = lp.now() - t0;
                *out2.lock() = (100.0 * 4096.0) / dt.as_secs() / 1e6;
            },
            |lp| {
                let mut got = 0;
                while got < 100 {
                    if lp.poll().is_some() {
                        got += 1;
                    }
                }
                lp.send(0, 2, [0; 4], &[]);
            },
        );
        let bw = *out.lock();
        assert!(
            (30.0..40.0).contains(&bw),
            "CS-2 model bandwidth {bw:.1} MB/s, want ~39"
        );
    }

    #[test]
    fn per_pair_fifo_order() {
        two_nodes(
            LogpParams::unet(),
            |lp| {
                for i in 0..50 {
                    lp.send(1, i, [0; 4], &[]);
                }
            },
            |lp| {
                let mut next = 0;
                while next < 50 {
                    if let Some(m) = lp.poll() {
                        assert_eq!(m.op, next, "messages reordered");
                        next += 1;
                    }
                }
            },
        );
    }

    #[test]
    fn cpu_scaling() {
        let mut sim = Sim::new(LogpWorld::new(1), 1);
        sim.spawn("solo", |ctx| {
            let mut lp = Logp::new(ctx, LogpParams::cm5());
            let t0 = lp.now();
            lp.work_scaled(Dur::ms(1.0)); // 1 ms of SP work
            let dt = lp.now() - t0;
            // CM-5 CPU is ~0.27x the SP: the same work takes ~3.7x longer.
            assert!(
                (3.5..4.0).contains(&(dt.as_us() / 1000.0)),
                "scaled work {dt}"
            );
        });
        sim.run().unwrap();
    }

    #[test]
    fn receiver_link_contention() {
        // Two senders to one receiver on CM-5 (10 MB/s): aggregate rate is
        // bounded by the receiver's link.
        let mut sim = Sim::new(LogpWorld::new(3), 1);
        for i in 0..2usize {
            sim.spawn(format!("s{i}"), move |ctx| {
                let mut lp = Logp::new(ctx, LogpParams::cm5());
                for _ in 0..50 {
                    lp.send(2, 0, [0; 4], &vec![0u8; 1000]);
                }
            });
        }
        sim.spawn("r", |ctx| {
            let mut lp = Logp::new(ctx, LogpParams::cm5());
            let t0 = lp.now();
            let mut got = 0;
            while got < 100 {
                if lp.poll().is_some() {
                    got += 1;
                }
            }
            let dt = lp.now() - t0;
            let mb_s = 100.0 * 1016.0 / dt.as_secs() / 1e6;
            assert!(
                mb_s < 11.0,
                "aggregate into one node exceeded link rate: {mb_s:.1}"
            );
        });
        sim.run().unwrap();
    }
}
