//! # sp-sim — deterministic discrete-event simulation engine
//!
//! This crate is the foundation of the `sp-am-rs` reproduction of
//! *"Low-Latency Communication on the IBM RISC System/6000 SP"* (SC '96).
//! Having no SP hardware, the reproduction runs the paper's protocols on a
//! simulated machine; this crate provides the engine that machine is built
//! on.
//!
//! ## Model
//!
//! A [`Sim`] owns a *world* (the mutable hardware state — switch, adapters,
//! …; any `W: Send`), an event queue ordered by virtual [`Time`], and a set
//! of *node programs*. Each node program is an ordinary Rust closure running
//! on its own OS thread, but **exactly one thread executes at any instant**:
//! a node hands control back to the engine whenever it charges virtual time
//! ([`NodeCtx::advance`]) or blocks ([`NodeCtx::park`]). Events are executed
//! in `(time, insertion-sequence)` order, so every run is bit-deterministic
//! regardless of OS scheduling.
//!
//! This "thread-backed coroutine" style lets protocol and benchmark code be
//! written as straight-line blocking Rust — exactly the shape of the C code
//! the paper describes — while the engine remains a simple binary-heap DES.
//!
//! ## Example
//!
//! ```
//! use sp_sim::{Sim, Dur};
//!
//! let mut sim = Sim::new(0u64 /* world */, 42 /* seed */);
//! sim.spawn("ticker", |ctx| {
//!     for _ in 0..3 {
//!         ctx.advance(Dur::us(10.0));
//!         ctx.world(|w| *w += 1);
//!     }
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.world, 3);
//! assert_eq!(report.end_time.as_us(), 30.0);
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
mod node;
mod parallel;
mod time;

pub use engine::{stats, EventCtx, HotFn, NodeId, ShardProfile, ShardReport, Sim, SimReport};
pub use error::SimError;
pub use node::{NodeCtx, WakeReason};
pub use parallel::{ShardMsg, Shardable};
pub use time::{Dur, Time};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::{
        Dur, EventCtx, NodeCtx, NodeId, ShardMsg, ShardReport, Shardable, Sim, SimError, SimReport,
        Time, WakeReason,
    };
}
