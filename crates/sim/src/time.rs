//! Virtual time: absolute instants ([`Time`]) and spans ([`Dur`]).
//!
//! Both are nanosecond-granular `u64`s. One nanosecond of resolution is two
//! orders of magnitude below the finest cost the paper reports (0.17 µs per
//! extra request word), and a `u64` of nanoseconds spans ~584 years of
//! virtual time, so neither rounding nor overflow is a practical concern.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// A span of `n` nanoseconds.
    #[inline]
    pub const fn ns(n: u64) -> Dur {
        Dur(n)
    }

    /// A span of `us` microseconds (fractional values allowed; rounded to
    /// the nearest nanosecond).
    #[inline]
    pub fn us(us: f64) -> Dur {
        debug_assert!(us >= 0.0, "negative duration");
        Dur((us * 1_000.0).round() as u64)
    }

    /// A span of `ms` milliseconds.
    #[inline]
    pub fn ms(ms: f64) -> Dur {
        Dur((ms * 1_000_000.0).round() as u64)
    }

    /// A span of `s` seconds.
    #[inline]
    pub fn secs(s: f64) -> Dur {
        Dur((s * 1_000_000_000.0).round() as u64)
    }

    /// The span covered by transferring `bytes` at `mbytes_per_s`
    /// (decimal megabytes, as used throughout the paper).
    #[inline]
    pub fn for_bytes(bytes: u64, mbytes_per_s: f64) -> Dur {
        debug_assert!(mbytes_per_s > 0.0, "non-positive bandwidth");
        Dur(((bytes as f64) * 1_000.0 / mbytes_per_s).round() as u64)
    }

    /// This span in nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This span in (fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This span in (fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, rhs: Dur) -> Dur {
        Dur(self.0.max(rhs.0))
    }
}

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// The far end of virtual time (used as an "unbounded" horizon).
    pub const MAX: Time = Time(u64::MAX);

    /// Saturating addition of a span (sticks at [`Time::MAX`]).
    #[inline]
    pub fn saturating_add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// This instant as nanoseconds since simulation start.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This instant as (fractional) microseconds since simulation start.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant as (fractional) seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Span since an earlier instant. Panics in debug builds if `earlier`
    /// is actually later.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(self >= earlier, "Time::since: earlier instant is later");
        Dur(self.0 - earlier.0)
    }

    /// Saturating span since another instant (zero if `other` is later).
    #[inline]
    pub fn saturating_since(self, other: Time) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: f64) -> Dur {
        debug_assert!(rhs >= 0.0);
        Dur((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Dur::us(1.0).as_ns(), 1_000);
        assert_eq!(Dur::ms(1.0).as_ns(), 1_000_000);
        assert_eq!(Dur::secs(1.0).as_ns(), 1_000_000_000);
        assert_eq!(Dur::us(0.5).as_ns(), 500);
        assert!((Dur::ns(1_500).as_us() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_duration() {
        // 40 MB/s => 25 ns per byte.
        assert_eq!(Dur::for_bytes(1, 40.0).as_ns(), 25);
        // A 256-byte TB2 packet at 40 MB/s serializes in 6.4 us.
        assert_eq!(Dur::for_bytes(256, 40.0).as_ns(), 6_400);
    }

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Dur::us(2.0) + Dur::us(3.0);
        assert_eq!(t.as_ns(), 5_000);
        assert_eq!((t - Time(1_000)).as_ns(), 4_000);
        assert_eq!(t.since(Time(1_000)).as_ns(), 4_000);
        assert_eq!(Dur::us(4.0) * 3, Dur::us(12.0));
        assert_eq!(Dur::us(9.0) / 3, Dur::us(3.0));
        assert_eq!(Dur::us(1.0).saturating_sub(Dur::us(2.0)), Dur::ZERO);
        let total: Dur = (0..4).map(|_| Dur::us(1.0)).sum();
        assert_eq!(total, Dur::us(4.0));
    }

    #[test]
    fn saturating_since() {
        assert_eq!(Time(5).saturating_since(Time(9)), Dur::ZERO);
        assert_eq!(Time(9).saturating_since(Time(5)), Dur::ns(4));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", Dur::us(51.0)), "51.000us");
        assert_eq!(format!("{}", Time(1_500)), "1.500us");
    }
}
