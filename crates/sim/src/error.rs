//! Engine error type.

use crate::time::Time;
use std::fmt;

/// Errors surfaced by [`Sim::run`](crate::Sim::run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained while one or more node programs were still
    /// parked waiting for a wake that can no longer arrive.
    Deadlock {
        /// Virtual time at which the simulation stalled.
        at: Time,
        /// Names of the parked node programs.
        parked: Vec<String>,
    },
    /// The configured event budget was exhausted; the simulation is most
    /// likely livelocked (e.g. a node spinning in `advance(Dur::ZERO)`).
    EventBudgetExhausted {
        /// Virtual time reached when the budget ran out.
        at: Time,
        /// The budget that was exceeded.
        budget: u64,
    },
    /// A node program panicked; the payload is the panic message.
    NodePanicked {
        /// Name of the panicking node program.
        node: String,
        /// Stringified panic payload.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, parked } => {
                write!(
                    f,
                    "deadlock at {at}: parked nodes with no pending events: {parked:?}"
                )
            }
            SimError::EventBudgetExhausted { at, budget } => {
                write!(f, "event budget of {budget} exhausted at {at} (livelock?)")
            }
            SimError::NodePanicked { node, message } => {
                write!(f, "node program '{node}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}
