//! Sharded conservative-parallel execution: [`Sim::run_parallel`].
//!
//! ## Model
//!
//! Nodes are partitioned into `num_shards` *shards* by a block map
//! (`owner[i] = i * num_shards / num_nodes`). Each shard owns a private
//! event heap, local clock, and world slice (see [`Shardable::split`]); the
//! existing zero-handoff fast advance remains the intra-shard hot path.
//! Shards advance conservatively in *lookahead windows*: with `M` the
//! global minimum pending-event time and `L` the world's lookahead
//! ([`Shardable::lookahead`] — for the SP world, the minimum latency any
//! cross-node interaction must incur), every shard may freely execute
//! events and fast-advance node clocks strictly below the horizon
//! `M + L`. Anything a shard does inside the window can only affect other
//! shards at or after the horizon, so no shard can receive a message "from
//! the past" — the classic null-message/conservative PDES argument, with
//! the per-window barrier standing in for per-link null messages.
//!
//! Cross-shard interactions are timestamped [`ShardMsg`]s: generated inside
//! a window, collected at the next barrier ([`Shardable::take_messages`]),
//! and applied on the destination shard as `sync` events
//! ([`Shardable::apply_msg`]) ordered by `(timestamp, source sequence,
//! source shard)` — the world-provided sequence stamp reproduces the serial
//! run's same-nanosecond event order across shards.
//! Sync events are charged to a separate `sync_events` counter so a
//! parallel run reports the *same* `events` as its serial twin and the
//! synchronization overhead stays observable ([`SimReport::sync_events`],
//! [`SimReport::windows`]).
//!
//! ## Who drives a shard?
//!
//! There is no per-shard engine thread. The node threads of a shard pass a
//! *driving* role cooperatively: whenever a node yields (sleep/park), it
//! releases its baton and becomes the shard's driver, popping events and
//! granting batons until either its own wake surfaces (it resumes with zero
//! context switches — [`Drive::SelfRun`]) or it grants another node and
//! parks itself. This keeps the single-runner-per-shard discipline that
//! makes world access data-race-free, while cutting the two context
//! switches per yield that the serial engine thread costs.
//!
//! ## Determinism
//!
//! Within a shard, execution is the serial engine verbatim: events in
//! `(time, seq)` order. Across shards, every hand-off is timestamped and
//! applied in `(timestamp, source sequence, source shard)` order at a
//! barrier whose placement depends only on virtual time — never on OS
//! scheduling. Runs are therefore
//! reproducible for a fixed `(config, seed, num_shards)`, and for workloads
//! whose cross-shard interactions are the world's own hand-offs (packets),
//! end time, event count, and world state match the serial run exactly —
//! see `tests/parallel.rs` and the proptest equivalence suite.

use crate::engine::{
    exec_event, stats, EvKind, EventCtx, Inner, NState, NodeId, NodeMeta, Sched, ShardProfile,
    ShardReport, ShardSlot, Shared, Sim, SimReport,
};
use crate::error::SimError;
use crate::node::{Baton, Drive, NodeCtx, ShardDriver, ShutdownToken, WakeReason};
use crate::time::{Dur, Time};
use parking_lot::{Condvar, Mutex};
use sp_trace::{Kind as TraceKind, Track};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A timestamped inter-shard message produced by a world slice during a
/// lookahead window (see [`Shardable::take_messages`]).
pub struct ShardMsg<M> {
    /// Virtual time at which the message takes effect on the destination
    /// shard. Must be at least the producing shard's horizon (i.e. at least
    /// `lookahead` past the generating event) — this is what makes the
    /// conservative window sound.
    pub ts: Time,
    /// Source-event ordering stamp: messages landing on one destination
    /// shard at the same `ts` are applied in ascending `seq` (then source
    /// shard) order. Worlds should stamp this with a quantity that orders
    /// generating events the way the serial run's event sequence does — the
    /// SP world uses the virtual time the generating event was scheduled —
    /// so same-nanosecond cross-shard ties resolve identically to serial
    /// instead of by shard deposit order.
    pub seq: u64,
    /// Destination shard index (`owner[dst_node]`).
    pub dst_shard: usize,
    /// World-defined payload.
    pub msg: M,
}

/// A world that can be partitioned across conservative-parallel shards.
///
/// `split` carves the world into per-shard slices before the run; during
/// the run each slice buffers outbound [`ShardMsg`]s which the barrier
/// collects (`take_messages`) and applies on the destination slice
/// (`apply_msg`); `merge` reassembles the final world for the report.
pub trait Shardable: Send + Sized + 'static {
    /// Inter-shard message payload.
    type Msg: Send + 'static;

    /// The minimum virtual-time latency of any cross-shard interaction:
    /// no event a shard executes at time `t` may affect another shard
    /// before `t + lookahead()`. Must be positive; `Dur(u64::MAX)` means
    /// shards never interact through the world.
    fn lookahead(&self) -> Dur;

    /// Partition into `num_shards` slices; `owner[node] == shard` gives the
    /// node partition. Slice `s` must answer world access for exactly the
    /// nodes it owns.
    fn split(self, num_shards: usize, owner: &[usize]) -> Vec<Self>;

    /// Reassemble the final world from the slices (in shard order).
    fn merge(parts: Vec<Self>) -> Self;

    /// Apply one inbound message on the destination shard, as an engine
    /// event at the message timestamp.
    fn apply_msg(e: &mut EventCtx<'_, Self>, msg: Self::Msg);

    /// Drain this slice's outbound message buffer (called at each barrier).
    fn take_messages(&mut self) -> Vec<ShardMsg<Self::Msg>>;
}

/// The trivial world shards into nothing: no cross-shard interactions, so
/// the lookahead is unbounded and a parallel run needs exactly one window.
/// Used by engine-only workloads (benchmarks, tests) whose nodes interact
/// purely through park/unpark within their own shard.
impl Shardable for () {
    type Msg = ();
    fn lookahead(&self) -> Dur {
        Dur(u64::MAX)
    }
    fn split(self, num_shards: usize, _owner: &[usize]) -> Vec<()> {
        vec![(); num_shards]
    }
    fn merge(_parts: Vec<()>) {}
    fn apply_msg(_e: &mut EventCtx<'_, ()>, _msg: ()) {}
    fn take_messages(&mut self) -> Vec<ShardMsg<()>> {
        Vec::new()
    }
}

/// One shard's state snapshot taken at barrier arrival, used to profile
/// the window that just ended. All virtual-time quantities, so profiles
/// are deterministic.
#[derive(Clone, Copy)]
struct Arrive {
    /// The shard's local clock when it exhausted the window.
    now: Time,
    /// Cumulative executed events (serial-comparable + sync).
    counts: u64,
    /// Event-heap depth at arrival.
    heap: usize,
}

impl Default for Arrive {
    fn default() -> Self {
        Arrive {
            now: Time::ZERO,
            counts: 0,
            heap: 0,
        }
    }
}

/// Inbound cross-shard message: `(src_shard, ts, seq, msg)`.
type Inbound<W> = (usize, Time, u64, <W as Shardable>::Msg);

/// Barrier / completion state shared by all shards of one parallel run.
struct GState<W: Shardable> {
    /// Per-destination-shard inbound messages.
    inbox: Vec<Vec<Inbound<W>>>,
    /// Per-destination-shard deferred cross-shard unparks:
    /// `(target, ts, src_shard)`.
    unparks: Vec<Vec<(NodeId, Time, usize)>>,
    /// Each shard's earliest pending event time as of its latest barrier
    /// arrival (`None` = queue drained).
    next: Vec<Option<Time>>,
    /// Drivers arrived at the current barrier round.
    arrived: usize,
    /// Barrier generation counter.
    round: u64,
    /// Completed lookahead windows.
    windows: u64,
    /// Cross-shard unparks applied at barriers.
    cross_unparks: u64,
    /// Start of the window currently open (the barrier's minimum
    /// next-event time `M`). Equal to `window_horizon` before round 1.
    window_start: Time,
    /// Horizon of the window currently open (`M + lookahead`).
    window_horizon: Time,
    /// Per-shard snapshot from each shard's latest barrier arrival.
    arrive: Vec<Arrive>,
    /// Per-shard busy virtual time accumulated across closed windows.
    busy_ns: Vec<u64>,
    /// Per-shard count of closed windows with at least one executed event.
    active_windows: Vec<u64>,
    /// Per-shard cumulative event count at the previously closed window.
    prev_counts: Vec<u64>,
    /// Sum of closed windows' widths, virtual ns.
    window_ns: u64,
    /// All queues drained (clean completion).
    finished: bool,
    /// First error raised by any shard (budget, panic).
    failed: Option<SimError>,
    /// Run must stop (finished or failed).
    stop: bool,
}

/// Everything the shard drive loops share: the per-shard engines, every
/// node's baton, the ownership map, and the barrier.
struct SyncCore<W: Shardable> {
    shards: Vec<Arc<Shared<W>>>,
    batons: Vec<Arc<Baton>>,
    owner: Arc<Vec<usize>>,
    lookahead: Dur,
    num_shards: usize,
    state: Mutex<GState<W>>,
    cv: Condvar,
    /// Mirror of `GState::stop` readable without the state lock (drive
    /// loops hold their shard lock and must not take the state lock).
    stopped: AtomicBool,
    tracer: Option<sp_trace::Tracer>,
}

impl<W: Shardable> SyncCore<W> {
    /// Record a fatal error and release everyone. Callers must not hold any
    /// shard's inner lock.
    fn fail(&self, err: SimError) {
        let mut st = self.state.lock();
        if st.failed.is_none() {
            st.failed = Some(err);
        }
        st.stop = true;
        self.stopped.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Close out the window that just ended (all shards arrived): charge
    /// each shard's busy time and activity, accumulate the window's width,
    /// and emit the per-shard window/wait spans and heap-depth gauges.
    /// No-op before the first real window (round 0's bootstrap barrier).
    fn finalize_window(&self, st: &mut GState<W>) {
        let start = st.window_start;
        let horizon = st.window_horizon;
        if horizon <= start {
            return;
        }
        // An unbounded window (`Dur(u64::MAX)` lookahead: shards never
        // interact) is measured to the latest shard's arrival clock, not
        // the infinite horizon.
        let max_now = st.arrive.iter().map(|a| a.now).max().unwrap_or(start);
        let end = if horizon == Time::MAX {
            max_now.max(start)
        } else {
            horizon
        };
        let width = end.as_ns().saturating_sub(start.as_ns());
        st.window_ns = st.window_ns.saturating_add(width);
        for sid in 0..self.num_shards {
            let a = st.arrive[sid];
            let busy = a.now.as_ns().saturating_sub(start.as_ns()).min(width);
            st.busy_ns[sid] += busy;
            let delta = a.counts.saturating_sub(st.prev_counts[sid]);
            if delta > 0 {
                st.active_windows[sid] += 1;
            }
            st.prev_counts[sid] = a.counts;
            if let Some(t) = &self.tracer {
                let track = Track::shard(sid);
                let s0 = start.as_ns();
                t.span(s0, s0 + busy, track, TraceKind::ShardWindow, delta);
                if busy < width {
                    t.span(s0 + busy, s0 + width, track, TraceKind::ShardWait, st.round);
                }
                t.counter(
                    a.now.as_ns(),
                    track,
                    TraceKind::ShardHeapDepth,
                    a.heap as u64,
                );
            }
        }
    }

    /// Arrive at the window barrier with this shard's outbound traffic,
    /// next-event time, and profiling snapshot. Returns `true` to continue
    /// into the next window, `false` when the run is over (finished or
    /// failed).
    fn barrier(
        &self,
        sid: usize,
        msgs: Vec<ShardMsg<W::Msg>>,
        unparks: Vec<(NodeId, Time)>,
        next: Option<Time>,
        arrive: Arrive,
    ) -> bool {
        let mut st = self.state.lock();
        if st.stop {
            return false;
        }
        for m in msgs {
            debug_assert!(m.dst_shard < self.num_shards);
            st.inbox[m.dst_shard].push((sid, m.ts, m.seq, m.msg));
        }
        for (node, t) in unparks {
            st.unparks[self.owner[node.0]].push((node, t, sid));
        }
        st.next[sid] = next;
        st.arrive[sid] = arrive;
        st.arrived += 1;
        if st.arrived < self.num_shards {
            let round = st.round;
            while st.round == round && !st.stop {
                self.cv.wait(&mut st);
            }
            return !st.stop;
        }

        // Last arriver: close out the window's profile, deliver inboxes,
        // recompute each receiver's next event, advance the horizon.
        // Locking a shard's inner here is safe: every driver is at this
        // barrier (in `cv.wait`, without its inner).
        st.arrived = 0;
        self.finalize_window(&mut st);
        for dst in 0..self.num_shards {
            let mut msgs = std::mem::take(&mut st.inbox[dst]);
            let mut unparks = std::mem::take(&mut st.unparks[dst]);
            if msgs.is_empty() && unparks.is_empty() {
                continue;
            }
            // Deterministic application order, independent of which shard
            // arrived when: by timestamp, then the world's source-event
            // sequence stamp (reproducing the serial run's same-nanosecond
            // event order), then source shard as a final total-order
            // tie-break (stable sort preserves each source's own
            // generation order).
            msgs.sort_by_key(|(src, ts, seq, _)| (*ts, *seq, *src));
            unparks.sort_by_key(|(node, t, src)| (*t, *src, node.0));
            let inner = &mut *self.shards[dst].inner.lock();
            for (_src, ts, _seq, msg) in msgs {
                let at = ts.max(inner.now);
                inner
                    .sched
                    .push(at, EvKind::sync_call(move |e| W::apply_msg(e, msg)));
            }
            for (node, t, _src) in unparks {
                st.cross_unparks += 1;
                // Replay the unpark as a sync event at its own timestamp
                // rather than applying it here directly: two unparks of the
                // same target in one window must each wake it (the target
                // consumes the first wake before the second lands, exactly
                // as in the serial interleaving). Direct back-to-back
                // application would wrongly coalesce the second; see
                // `replay_unpark` for the in-flight-wake requeue.
                let at = t.max(inner.now);
                inner.sched.push(
                    at,
                    EvKind::sync_call(move |e| crate::engine::replay_unpark(e, node)),
                );
            }
            st.next[dst] = inner.sched.peek_time();
        }

        let m = st.next.iter().copied().flatten().min();
        match m {
            None => {
                // Every queue drained and no traffic in flight: done.
                st.finished = true;
                st.stop = true;
                self.stopped.store(true, Ordering::Release);
                st.round += 1;
                self.cv.notify_all();
                false
            }
            Some(m) => {
                let horizon = m.saturating_add(self.lookahead);
                for s in &self.shards {
                    s.inner.lock().horizon = horizon;
                }
                st.window_start = m;
                st.window_horizon = horizon;
                st.windows += 1;
                st.round += 1;
                if let Some(t) = &self.tracer {
                    t.instant(m.as_ns(), Track::ENGINE, TraceKind::ShardBarrier, st.round);
                }
                self.cv.notify_all();
                true
            }
        }
    }

    /// One shard's event loop: pop-and-execute below the horizon, grant
    /// batons to woken nodes, arrive at the barrier when the window is
    /// exhausted. Returns when the baton moved to another node
    /// ([`Drive::Handed`]), the caller's own wake surfaced
    /// ([`Drive::SelfRun`]), or the run ended ([`Drive::Shutdown`]).
    fn drive(&self, sid: usize, me: Option<NodeId>) -> Drive {
        let shared = &self.shards[sid];
        loop {
            if self.stopped.load(Ordering::Acquire) {
                return Drive::Shutdown;
            }
            let mut inner = shared.inner.lock();
            let horizon = inner.horizon;
            let Some(ev) = inner.sched.pop_before(horizon) else {
                // Window exhausted: flush outbound traffic and synchronize.
                let msgs = inner.world.take_messages();
                let unparks = match &mut inner.shard {
                    Some(s) => std::mem::take(&mut s.remote_unparks),
                    None => Vec::new(),
                };
                let next = inner.sched.peek_time();
                let arrive = Arrive {
                    now: inner.now,
                    counts: inner.events + inner.sync_events,
                    heap: inner.sched.len(),
                };
                drop(inner);
                if self.barrier(sid, msgs, unparks, next, arrive) {
                    continue;
                }
                return Drive::Shutdown;
            };
            if ev.kind.is_sync() {
                inner.sync_events += 1;
                if let Some(t) = &inner.tracer {
                    t.instant(
                        ev.time.as_ns(),
                        Track::shard(sid),
                        TraceKind::ShardSyncApply,
                        ev.time.as_ns(),
                    );
                }
            } else {
                inner.events += 1;
                // The event budget is one run-wide atomic shared by every
                // shard and charged for serial-comparable events only, so a
                // parallel run trips at the same global event count as its
                // serial twin (not `num_shards`× later). The reported `at`
                // is the window horizon — deterministic for a fixed shard
                // count, where the tripping shard's local clock is not.
                if let Some(g) = &inner.global_budget {
                    if !g.charge() {
                        let at = if horizon == Time::MAX {
                            inner.now
                        } else {
                            horizon
                        };
                        let budget = g.limit;
                        drop(inner);
                        self.fail(SimError::EventBudgetExhausted { at, budget });
                        return Drive::Shutdown;
                    }
                }
            }
            debug_assert!(ev.time >= inner.now, "shard queue went backwards");
            inner.now = ev.time;
            match ev.kind {
                EvKind::Wake {
                    node,
                    epoch,
                    reason,
                } => {
                    let meta = &mut inner.nodes[node.0];
                    let runnable = meta.epoch == epoch
                        && matches!(
                            meta.state,
                            NState::Startup | NState::Sleeping | NState::Parked | NState::SleepInt
                        );
                    if !runnable {
                        continue; // stale wake (still counted, as in serial)
                    }
                    meta.epoch += 1;
                    meta.state = NState::Running;
                    meta.unpark_queued = false;
                    if let Some(t) = &inner.tracer {
                        t.instant(
                            ev.time.as_ns(),
                            Track::program(node.0),
                            TraceKind::EngineWake,
                            matches!(reason, WakeReason::Unparked) as u64,
                        );
                    }
                    drop(inner);
                    if me == Some(node) {
                        // The driver's own wake: resume in place, zero
                        // hand-offs (the parallel twin of the serial
                        // fast-advance elision).
                        return Drive::SelfRun(ev.time, reason);
                    }
                    self.batons[node.0].grant(ev.time, reason);
                    return Drive::Handed;
                }
                kind => exec_event(&mut inner, ev.time, kind),
            }
        }
    }
}

/// Adapter from one shard of a [`SyncCore`] to the [`ShardDriver`] hook a
/// [`NodeCtx`] calls on yield.
struct ShardRt<W: Shardable> {
    id: usize,
    core: Arc<SyncCore<W>>,
}

impl<W: Shardable> ShardDriver<W> for ShardRt<W> {
    fn drive(&self, me: Option<NodeId>) -> Drive {
        self.core.drive(self.id, me)
    }
}

impl<W: Shardable> Sim<W> {
    /// Run to completion on `num_shards` OS threads' worth of shards using
    /// conservative lookahead-window synchronization. `run_parallel(1)` is
    /// exactly [`Sim::run`]; for supported workloads, larger shard counts
    /// produce the same end time, event count, and final world state (see
    /// the module docs for the argument and its limits).
    ///
    /// Pre-scheduled world events ([`Sim::schedule_call_at`]) are broadcast:
    /// every shard pre-loads a replica and executes it against its own world
    /// slice at exactly the scheduled time (shard 0's replica counts toward
    /// `events`, the rest are `sync_events`). `num_shards` is clamped to the
    /// node count; the requested value is recorded in
    /// [`SimReport::shards_requested`] and a clamp is flagged in the
    /// `[parallel]` stats summary. The event budget
    /// ([`Sim::set_event_budget`]) is one run-wide atomic shared by all
    /// shards, charged for serial-comparable events only, so serial and
    /// parallel runs trip `EventBudgetExhausted` at the same event count.
    pub fn run_parallel(mut self, num_shards: usize) -> Result<SimReport<W>, SimError> {
        assert!(num_shards >= 1, "need at least one shard");
        let requested_shards = num_shards;
        let num_nodes = self.programs.len();
        let num_shards = num_shards.min(num_nodes.max(1));
        if num_shards <= 1 {
            let mut rep = self.run()?;
            rep.shards_requested = requested_shards;
            return Ok(rep);
        }
        let started = std::time::Instant::now();
        let world = self.world.take().expect("world present");
        let programs = std::mem::take(&mut self.programs);
        let lookahead = world.lookahead();
        assert!(lookahead > Dur::ZERO, "lookahead must be positive");

        // Block partition: contiguous node ranges, every shard non-empty
        // (owner is surjective for num_shards <= num_nodes).
        let owner: Arc<Vec<usize>> =
            Arc::new((0..num_nodes).map(|i| i * num_shards / num_nodes).collect());
        let tracer = self.tracer.take();
        let worlds = world.split(num_shards, &owner);
        assert_eq!(
            worlds.len(),
            num_shards,
            "split must produce one world per shard"
        );

        let global_budget = Arc::new(crate::engine::GlobalBudget::new(self.event_budget));
        let initial = std::mem::take(&mut self.initial);
        let mut shards: Vec<Arc<Shared<W>>> = Vec::with_capacity(num_shards);
        for (sid, w) in worlds.into_iter().enumerate() {
            let mut sched = Sched::new();
            // Broadcast world events: every shard pre-loads a replica so each
            // world slice observes the mutation at exactly the scheduled
            // time; only shard 0's replica is a counted event.
            for (at, f) in &initial {
                sched.push(*at, crate::engine::broadcast_kind(f.clone(), sid == 0));
            }
            let mut nodes = Vec::with_capacity(num_nodes);
            for (i, (name, _)) in programs.iter().enumerate() {
                // Full-length meta vector (indexed by global NodeId); only
                // owned nodes get startup wakes or ever change state here.
                nodes.push(NodeMeta::new(name.clone()));
                if owner[i] == sid {
                    sched.push(
                        Time::ZERO,
                        EvKind::Wake {
                            node: NodeId(i),
                            epoch: 0,
                            reason: WakeReason::Timeout,
                        },
                    );
                }
            }
            shards.push(Arc::new(Shared {
                inner: Mutex::new(Inner {
                    world: w,
                    now: Time::ZERO,
                    sched,
                    nodes,
                    events: 0,
                    sync_events: 0,
                    // The run-wide atomic `global_budget` is the only event
                    // cap in parallel mode; the per-shard field would trip
                    // each shard independently at the full budget.
                    budget: u64::MAX,
                    global_budget: Some(global_budget.clone()),
                    // Zero horizon: nothing may run until the first barrier
                    // establishes the first window.
                    horizon: Time::ZERO,
                    shard: Some(ShardSlot {
                        id: sid,
                        owner: owner.clone(),
                        remote_unparks: Vec::new(),
                        broadcast: false,
                    }),
                    tracer: tracer.clone(),
                }),
            }));
        }

        let batons: Vec<Arc<Baton>> = (0..num_nodes).map(|_| Baton::new()).collect();
        let core = Arc::new(SyncCore {
            shards,
            batons: batons.clone(),
            owner: owner.clone(),
            lookahead,
            num_shards,
            state: Mutex::new(GState {
                inbox: (0..num_shards).map(|_| Vec::new()).collect(),
                unparks: (0..num_shards).map(|_| Vec::new()).collect(),
                next: vec![None; num_shards],
                arrived: 0,
                round: 0,
                windows: 0,
                cross_unparks: 0,
                window_start: Time::ZERO,
                window_horizon: Time::ZERO,
                arrive: vec![Arrive::default(); num_shards],
                busy_ns: vec![0; num_shards],
                active_windows: vec![0; num_shards],
                prev_counts: vec![0; num_shards],
                window_ns: 0,
                finished: false,
                failed: None,
                stop: false,
            }),
            cv: Condvar::new(),
            stopped: AtomicBool::new(false),
            tracer,
        });

        let mut handles = Vec::with_capacity(num_nodes);
        for (i, (name, program)) in programs.into_iter().enumerate() {
            let sid = owner[i];
            let shared = core.shards[sid].clone();
            let baton = batons[i].clone();
            let seed = self.seed;
            let core = core.clone();
            let thread_name = format!("sp-sim-node-{i}-{name}");
            let handle = std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || {
                    let rt: Arc<dyn ShardDriver<W>> = Arc::new(ShardRt {
                        id: sid,
                        core: core.clone(),
                    });
                    let mut ctx =
                        NodeCtx::new(NodeId(i), num_nodes, seed, shared.clone(), baton.clone());
                    ctx.driver = Some(rt.clone());
                    let (t0, _) = baton.wait_for_start();
                    ctx.now = t0;
                    match catch_unwind(AssertUnwindSafe(|| program(&mut ctx))) {
                        Ok(()) => {
                            shared.note_done(NodeId(i));
                            baton.release();
                            // Stay on as the shard's driver: its queue may
                            // still hold events, and drained shards must
                            // keep answering barriers (and executing any
                            // late inbound messages) until the run ends.
                            rt.drive(None);
                        }
                        Err(payload) => {
                            if payload.is::<ShutdownToken>() {
                                return; // orderly teardown
                            }
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".to_string());
                            shared.note_done(NodeId(i));
                            core.fail(SimError::NodePanicked {
                                node: name,
                                message: msg,
                            });
                        }
                    }
                })
                .expect("spawn node thread");
            handles.push(handle);
        }

        // One short-lived bootstrap driver per shard: arrives at the
        // initial barrier (horizon starts at zero), then pops the first
        // startup wake and hands the driving role to the node threads.
        let mut boot = Vec::with_capacity(num_shards);
        for sid in 0..num_shards {
            let core = core.clone();
            boot.push(
                std::thread::Builder::new()
                    .name(format!("sp-sim-shard-{sid}"))
                    .spawn(move || {
                        core.drive(sid, None);
                    })
                    .expect("spawn shard bootstrap thread"),
            );
        }

        // Wait for completion (clean or failed).
        {
            let mut st = core.state.lock();
            while !st.stop {
                core.cv.wait(&mut st);
            }
        }
        // Unwind every node thread still blocked on (or about to block on)
        // its baton; running nodes observe `Exit` at their next yield
        // (release() preserves it).
        for baton in &batons {
            baton.exit();
        }
        for handle in handles {
            let _ = handle.join();
        }
        for handle in boot {
            let _ = handle.join();
        }

        let core = Arc::try_unwrap(core)
            .unwrap_or_else(|_| panic!("shard threads still hold engine state"));
        let st = core.state.into_inner();
        let inners: Vec<Inner<W>> = core
            .shards
            .into_iter()
            .map(|s| {
                Arc::try_unwrap(s)
                    .unwrap_or_else(|_| panic!("node threads still hold shard state"))
                    .inner
                    .into_inner()
            })
            .collect();

        if let Some(err) = st.failed {
            return Err(err);
        }
        let mut end_time = Time::ZERO;
        let mut stuck: Vec<String> = Vec::new();
        let mut shard_reports = Vec::with_capacity(num_shards);
        let mut events = 0u64;
        let mut sync_events = 0u64;
        let mut wakes_coalesced = 0u64;
        for (sid, inner) in inners.iter().enumerate() {
            end_time = end_time.max(inner.now);
            let mut nodes_owned = 0usize;
            for (i, meta) in inner.nodes.iter().enumerate() {
                if owner[i] != sid {
                    continue;
                }
                nodes_owned += 1;
                wakes_coalesced += meta.coalesced;
                if meta.state != NState::Done {
                    stuck.push(meta.name.clone());
                }
            }
            shard_reports.push(ShardReport {
                shard: sid,
                nodes: nodes_owned,
                events: inner.events,
                sync_events: inner.sync_events,
            });
            events += inner.events;
            sync_events += inner.sync_events;
        }
        if !stuck.is_empty() {
            debug_assert!(st.finished);
            return Err(SimError::Deadlock {
                at: end_time,
                parked: stuck,
            });
        }
        let world = W::merge(inners.into_iter().map(|i| i.world).collect());
        let wall = started.elapsed();
        stats::record(events, wakes_coalesced, wall);
        stats::record_parallel(
            requested_shards as u64,
            num_shards as u64,
            sync_events,
            st.windows,
        );
        let profile = ShardProfile {
            windows: st.windows,
            window_ns: st.window_ns,
            busy_ns: st.busy_ns,
            events: shard_reports.iter().map(|s| s.events).collect(),
            sync_events: shard_reports.iter().map(|s| s.sync_events).collect(),
            active_windows: st.active_windows,
        };
        stats::record_profile(&profile);
        Ok(SimReport {
            world,
            end_time,
            events,
            wakes_coalesced,
            shards: shard_reports,
            shards_requested: requested_shards,
            sync_events,
            windows: st.windows,
            cross_unparks: st.cross_unparks,
            profile: Some(profile),
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dur, Sim, WakeReason};

    /// Serial/parallel twin runs of an N-pair ping-pong storm (pure engine
    /// workload on the unit world: park/unpark within each pair).
    fn pingpong(pairs: usize, rounds: usize, shards: usize) -> (Time, u64) {
        let mut sim = Sim::new((), 7);
        for p in 0..pairs {
            let a = NodeId(2 * p);
            let b = NodeId(2 * p + 1);
            sim.spawn(format!("sleeper{p}"), move |ctx| {
                for _ in 0..rounds {
                    assert_eq!(ctx.park(), WakeReason::Unparked);
                    ctx.unpark(b);
                }
            });
            sim.spawn(format!("waker{p}"), move |ctx| {
                for _ in 0..rounds {
                    ctx.advance(Dur::ns(100));
                    ctx.unpark(a);
                    assert_eq!(ctx.park(), WakeReason::Unparked);
                    ctx.advance(Dur::ns(50));
                }
            });
        }
        let r = if shards <= 1 {
            sim.run().unwrap()
        } else {
            sim.run_parallel(shards).unwrap()
        };
        (r.end_time, r.events)
    }

    #[test]
    fn parallel_pingpong_matches_serial() {
        let serial = pingpong(4, 50, 1);
        for shards in [2, 4] {
            assert_eq!(pingpong(4, 50, shards), serial, "shards={shards}");
        }
    }

    #[test]
    fn parallel_shard_count_clamps_to_node_count() {
        // More shards than nodes degrades gracefully (clamped, not panic).
        assert_eq!(pingpong(2, 10, 16), pingpong(2, 10, 1));
    }

    #[test]
    fn parallel_repeats_identically() {
        let a = pingpong(3, 40, 3);
        let b = pingpong(3, 40, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_reports_shards() {
        let mut sim = Sim::new((), 0);
        for i in 0..4 {
            sim.spawn(format!("n{i}"), |ctx| {
                for _ in 0..10 {
                    ctx.advance(Dur::ns(10));
                }
            });
        }
        let r = sim.run_parallel(2).unwrap();
        assert_eq!(r.shards.len(), 2);
        assert_eq!(r.shards.iter().map(|s| s.nodes).sum::<usize>(), 4);
        assert_eq!(r.shards.iter().map(|s| s.events).sum::<u64>(), r.events);
        // Unit world: no cross-shard traffic, single unbounded window.
        assert_eq!(r.sync_events, 0);
        assert_eq!(r.cross_unparks, 0);
    }

    #[test]
    fn parallel_deadlock_is_detected() {
        let mut sim = Sim::new((), 0);
        sim.spawn("stuck-a", |ctx| {
            ctx.park();
        });
        sim.spawn("ok-b", |ctx| ctx.advance(Dur::ns(5)));
        match sim.run_parallel(2) {
            Err(SimError::Deadlock { parked, .. }) => {
                assert_eq!(parked, vec!["stuck-a".to_string()])
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn parallel_budget_exhaustion_is_reported() {
        let mut sim = Sim::new((), 0);
        sim.set_event_budget(200);
        sim.spawn("spin-a", |ctx| loop {
            ctx.advance(Dur::ns(1));
        });
        sim.spawn("spin-b", |ctx| loop {
            ctx.advance(Dur::ns(1));
        });
        match sim.run_parallel(2) {
            Err(SimError::EventBudgetExhausted { budget, .. }) => assert_eq!(budget, 200),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn parallel_node_panic_is_reported() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut sim = Sim::new((), 0);
        sim.spawn("bad", |ctx| {
            ctx.advance(Dur::ns(1));
            panic!("boom");
        });
        sim.spawn("good", |ctx| {
            for _ in 0..100 {
                ctx.advance(Dur::ns(1));
            }
        });
        let out = sim.run_parallel(2);
        std::panic::set_hook(prev);
        match out {
            Err(SimError::NodePanicked { node, message }) => {
                assert_eq!(node, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected node panic, got {other:?}"),
        }
    }

    /// A shardable world with real cross-shard traffic: each shard holds a
    /// per-node mailbox count; nodes "send" increments to the next node with
    /// a fixed virtual latency. Exercises messages, windows, and merge.
    struct Mailboxes {
        counts: Vec<u64>,
        shard: Option<(usize, Arc<Vec<usize>>)>,
        outbox: Vec<ShardMsg<usize>>,
    }

    const MAIL_LAT: u64 = 1_000;

    impl Mailboxes {
        fn new(n: usize) -> Mailboxes {
            Mailboxes {
                counts: vec![0; n],
                shard: None,
                outbox: Vec::new(),
            }
        }
        /// Post an increment to `dst`, landing `MAIL_LAT` ns from `now`.
        /// Serial: the landing is one counted Hot event at `ts`. Parallel:
        /// a sync-counted relay (local `SyncHot` or inter-shard message)
        /// carries the hand-off to `ts`, then re-schedules the same counted
        /// landing event — so `events` stays identical to serial and only
        /// `sync_events` grows.
        fn post(e: &mut EventCtx<'_, Mailboxes>, dst: u64, _b: u64) {
            let dst = dst as usize;
            let ts = e.now() + Dur::ns(MAIL_LAT);
            match e.world().shard.clone() {
                None => e.schedule_hot_at(ts, Mailboxes::land, dst as u64, 0),
                Some((sid, owner)) if owner[dst] == sid => {
                    e.schedule_sync_hot_at(ts, Mailboxes::relay, dst as u64, 0)
                }
                Some((_, owner)) => {
                    let dst_shard = owner[dst];
                    let seq = e.now().as_ns();
                    e.world().outbox.push(ShardMsg {
                        ts,
                        seq,
                        dst_shard,
                        msg: dst,
                    });
                }
            }
        }
        fn relay(e: &mut EventCtx<'_, Mailboxes>, dst: u64, _b: u64) {
            e.schedule_hot_at(e.now(), Mailboxes::land, dst, 0);
        }
        fn land(e: &mut EventCtx<'_, Mailboxes>, dst: u64, _b: u64) {
            e.world().counts[dst as usize] += 1;
        }
    }

    impl Shardable for Mailboxes {
        type Msg = usize;
        fn lookahead(&self) -> Dur {
            Dur::ns(MAIL_LAT)
        }
        fn split(self, num_shards: usize, owner: &[usize]) -> Vec<Mailboxes> {
            let owner: Arc<Vec<usize>> = Arc::new(owner.to_vec());
            (0..num_shards)
                .map(|sid| Mailboxes {
                    counts: vec![0; self.counts.len()],
                    shard: Some((sid, owner.clone())),
                    outbox: Vec::new(),
                })
                .collect()
        }
        fn merge(parts: Vec<Mailboxes>) -> Mailboxes {
            let mut out = Mailboxes::new(parts[0].counts.len());
            for p in parts {
                for (i, c) in p.counts.iter().enumerate() {
                    out.counts[i] += c;
                }
            }
            out
        }
        fn apply_msg(e: &mut EventCtx<'_, Mailboxes>, dst: usize) {
            // Hand-off leg on the destination shard, at the message ts:
            // re-schedules the same counted landing event serial runs.
            Mailboxes::relay(e, dst as u64, 0);
        }
        fn take_messages(&mut self) -> Vec<ShardMsg<usize>> {
            std::mem::take(&mut self.outbox)
        }
    }

    fn mailbox_run(nodes: usize, sends: usize, shards: usize) -> (Time, u64, Vec<u64>) {
        let mut sim = Sim::new(Mailboxes::new(nodes), 3);
        for i in 0..nodes {
            let dst = (i + 1) % nodes;
            sim.spawn(format!("m{i}"), move |ctx| {
                for _ in 0..sends {
                    ctx.advance(Dur::ns(250));
                    ctx.schedule_hot(Dur::ZERO, Mailboxes::post, dst as u64, 0);
                }
                // Drain long enough for the last increment to land.
                ctx.advance(Dur::ns(MAIL_LAT * 2));
            });
        }
        // `post` routes through a Hot event whose `a` argument is the dst.
        let r = if shards <= 1 {
            sim.run().unwrap()
        } else {
            sim.run_parallel(shards).unwrap()
        };
        (r.end_time, r.events, r.world.counts)
    }

    #[test]
    fn cross_shard_messages_match_serial() {
        let serial = mailbox_run(4, 20, 1);
        assert_eq!(serial.2.iter().sum::<u64>(), 80);
        for shards in [2, 4] {
            assert_eq!(mailbox_run(4, 20, shards), serial, "shards={shards}");
        }
    }

    /// A shardable world that logs the order cross-shard messages are
    /// applied in: the deterministic-tie-break probe. Each message is a
    /// marker appended to the destination shard's log.
    struct OrderLog {
        log: Vec<u64>,
        shard: Option<(usize, Arc<Vec<usize>>)>,
        outbox: Vec<ShardMsg<u64>>,
        nodes: usize,
    }

    impl OrderLog {
        /// Send `marker` to node 0, landing at absolute time `ts_ns`.
        /// `seq` is the posting time, exactly as real worlds stamp it.
        fn post(e: &mut EventCtx<'_, OrderLog>, marker: u64, ts_ns: u64) {
            let ts = Time(ts_ns);
            let seq = e.now().as_ns();
            match e.world().shard.clone() {
                None => e.schedule_hot_at(ts, OrderLog::land, marker, 0),
                Some((sid, owner)) if owner[0] == sid => {
                    e.schedule_sync_hot_at(ts, OrderLog::land, marker, 0)
                }
                Some((_, owner)) => {
                    let dst_shard = owner[0];
                    e.world().outbox.push(ShardMsg {
                        ts,
                        seq,
                        dst_shard,
                        msg: marker,
                    });
                }
            }
        }
        fn land(e: &mut EventCtx<'_, OrderLog>, marker: u64, _b: u64) {
            e.world().log.push(marker);
        }
    }

    impl Shardable for OrderLog {
        type Msg = u64;
        fn lookahead(&self) -> Dur {
            Dur::ns(800)
        }
        fn split(self, num_shards: usize, owner: &[usize]) -> Vec<OrderLog> {
            let owner: Arc<Vec<usize>> = Arc::new(owner.to_vec());
            (0..num_shards)
                .map(|sid| OrderLog {
                    log: Vec::new(),
                    shard: Some((sid, owner.clone())),
                    outbox: Vec::new(),
                    nodes: self.nodes,
                })
                .collect()
        }
        fn merge(parts: Vec<OrderLog>) -> OrderLog {
            let nodes = parts[0].nodes;
            let mut log = Vec::new();
            for p in parts {
                log.extend(p.log);
            }
            OrderLog {
                log,
                shard: None,
                outbox: Vec::new(),
                nodes,
            }
        }
        fn apply_msg(e: &mut EventCtx<'_, OrderLog>, marker: u64) {
            OrderLog::land(e, marker, 0);
        }
        fn take_messages(&mut self) -> Vec<ShardMsg<u64>> {
            std::mem::take(&mut self.outbox)
        }
    }

    fn tie_break_run(shards: usize) -> Vec<u64> {
        let mut sim = Sim::new(
            OrderLog {
                log: Vec::new(),
                shard: None,
                outbox: Vec::new(),
                nodes: 3,
            },
            0,
        );
        // Node 0 (shard 0) receives; it just outlives the landings.
        sim.spawn("rx", |ctx| ctx.advance(Dur::ns(2_000)));
        // Node 1 (shard 1) posts *later* (seq 200) — but from the lower
        // shard. Node 2 (shard 2) posts *earlier* (seq 100) from the
        // higher shard. Both land at t=1000 on node 0. Serial executes
        // the landings in posting order: marker 2 then marker 1. A
        // barrier that tie-breaks equal timestamps by source shard
        // instead of by the carried posting sequence inverts them.
        sim.spawn("late-low-shard", |ctx| {
            ctx.advance(Dur::ns(200));
            ctx.schedule_hot(Dur::ZERO, OrderLog::post, 1, 1_000);
            ctx.advance(Dur::ns(1_800));
        });
        sim.spawn("early-high-shard", |ctx| {
            ctx.advance(Dur::ns(100));
            ctx.schedule_hot(Dur::ZERO, OrderLog::post, 2, 1_000);
            ctx.advance(Dur::ns(1_900));
        });
        let r = if shards <= 1 {
            sim.run().unwrap()
        } else {
            sim.run_parallel(shards).unwrap()
        };
        r.world.log
    }

    /// Regression: two cross-shard messages with the *same* destination
    /// timestamp must apply in posting order (the carried `seq`), not in
    /// source-shard order. Before `ShardMsg` carried `seq`, the barrier
    /// sorted `(ts, src_shard)` and this test's parallel log came out
    /// `[1, 2]` against the serial `[2, 1]`.
    #[test]
    fn equal_timestamp_messages_apply_in_posting_order() {
        let serial = tie_break_run(1);
        assert_eq!(serial, vec![2, 1], "serial executes in posting order");
        assert_eq!(tie_break_run(3), serial, "sharded tie-break diverged");
    }

    /// Regression: serial and parallel runs share one global event budget
    /// and report the same pinned budget value when they trip it. Before
    /// the shared `GlobalBudget`, each shard carried its own copy of the
    /// budget and a sharded run could execute up to `shards *` budget
    /// events before any shard tripped.
    #[test]
    fn budget_error_pins_same_value_serial_and_parallel() {
        let run = |shards: usize| {
            let mut sim = Sim::new((), 0);
            sim.set_event_budget(300);
            for i in 0..4 {
                sim.spawn(format!("spin{i}"), |ctx| loop {
                    ctx.advance(Dur::ns(1));
                });
            }
            if shards <= 1 {
                sim.run()
            } else {
                sim.run_parallel(shards)
            }
        };
        let budget_of = |r: Result<SimReport<()>, SimError>| match r {
            Err(SimError::EventBudgetExhausted { budget, .. }) => budget,
            other => panic!("expected budget exhaustion, got {other:?}"),
        };
        assert_eq!(budget_of(run(1)), 300);
        for shards in [2, 4] {
            assert_eq!(budget_of(run(shards)), 300, "shards={shards}");
        }
    }

    #[test]
    fn cross_shard_run_reports_windows_and_sync_events() {
        let mut sim = Sim::new(Mailboxes::new(4), 3);
        for i in 0..4 {
            let dst = (i + 1) % 4;
            sim.spawn(format!("m{i}"), move |ctx| {
                for _ in 0..10 {
                    ctx.advance(Dur::ns(250));
                    ctx.schedule_hot(Dur::ZERO, Mailboxes::post, dst as u64, 0);
                }
                ctx.advance(Dur::ns(MAIL_LAT * 2));
            });
        }
        let r = sim.run_parallel(2).unwrap();
        assert!(r.windows > 0, "bounded lookahead must use windows");
        assert!(r.sync_events > 0, "ring traffic crosses the shard cut");
        assert_eq!(r.world.counts.iter().sum::<u64>(), 40);
    }
}
