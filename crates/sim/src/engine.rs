//! The discrete-event engine: event queue, scheduler state, and the
//! coordinator loop that alternates between hardware events and node
//! program time slices.

use crate::error::SimError;
use crate::node::{Baton, NodeCtx, ShutdownToken, WakeReason, Yield};
use crate::time::{Dur, Time};
use parking_lot::Mutex;
use sp_trace::{Kind as TraceKind, Tracer, Track};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identifier of a node program (dense, `0..num_nodes`, in spawn order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

pub(crate) type WakeEpoch = u64;

/// Boxed engine-side event callback.
type EventFn<W> = Box<dyn FnOnce(&mut EventCtx<'_, W>) + Send + 'static>;

/// Allocation-free engine-side event callback: a plain `fn` pointer plus
/// two integer arguments (see [`EventCtx::schedule_hot`]).
pub type HotFn<W> = fn(&mut EventCtx<'_, W>, u64, u64);

/// Event payload.
pub(crate) enum EvKind<W: Send + 'static> {
    /// Resume node `node` if its epoch still matches.
    Wake {
        node: NodeId,
        epoch: WakeEpoch,
        reason: WakeReason,
    },
    /// Run an arbitrary engine-side closure (hardware model step).
    Call(EventFn<W>),
    /// Run a plain `fn` with two integer arguments. Unlike [`EvKind::Call`]
    /// this allocates nothing: the whole payload lives inline in the event
    /// heap entry. Used by recurring hardware events (firmware steps, packet
    /// delivery) on the hot path.
    Hot { f: HotFn<W>, a: u64, b: u64 },
    /// Parallel-mode sibling of [`EvKind::Call`]: an inter-shard message
    /// applied as an event on the destination shard. Executes identically to
    /// `Call` but is charged to `sync_events` instead of `events`, so a
    /// parallel run reports the same `events` as its serial twin and the
    /// synchronization overhead stays separately observable.
    SyncCall(EventFn<W>),
    /// Parallel-mode sibling of [`EvKind::Hot`] (see [`EvKind::SyncCall`]).
    SyncHot { f: HotFn<W>, a: u64, b: u64 },
}

impl<W: Send + 'static> EvKind<W> {
    pub(crate) fn call(f: impl FnOnce(&mut EventCtx<'_, W>) + Send + 'static) -> Self {
        EvKind::Call(Box::new(f))
    }

    pub(crate) fn sync_call(f: impl FnOnce(&mut EventCtx<'_, W>) + Send + 'static) -> Self {
        EvKind::SyncCall(Box::new(f))
    }

    /// True for the parallel-mode synchronization variants (charged to
    /// `sync_events`, not `events`).
    pub(crate) fn is_sync(&self) -> bool {
        matches!(self, EvKind::SyncCall(_) | EvKind::SyncHot { .. })
    }
}

pub(crate) struct Ev<W: Send + 'static> {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) kind: EvKind<W>,
}

impl<W: Send + 'static> PartialEq for Ev<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W: Send + 'static> Eq for Ev<W> {}
impl<W: Send + 'static> PartialOrd for Ev<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W: Send + 'static> Ord for Ev<W> {
    /// Reversed so `BinaryHeap` (a max-heap) pops the *earliest* event;
    /// ties break by insertion sequence for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Pending-event state.
pub(crate) struct Sched<W: Send + 'static> {
    queue: BinaryHeap<Ev<W>>,
    seq: u64,
}

impl<W: Send + 'static> Sched<W> {
    pub(crate) fn push(&mut self, time: Time, kind: EvKind<W>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Ev { time, seq, kind });
    }

    pub(crate) fn new() -> Self {
        Sched {
            queue: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Earliest pending event time, if any.
    pub(crate) fn peek_time(&self) -> Option<Time> {
        self.queue.peek().map(|ev| ev.time)
    }

    /// Pop the earliest event if it falls strictly before `horizon`.
    pub(crate) fn pop_before(&mut self, horizon: Time) -> Option<Ev<W>> {
        if self.queue.peek().is_some_and(|ev| ev.time < horizon) {
            self.queue.pop()
        } else {
            None
        }
    }

    /// Pending events (heap depth), for telemetry gauges.
    pub(crate) fn len(&self) -> usize {
        self.queue.len()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NState {
    Startup,
    Running,
    Sleeping,
    Parked,
    SleepInt,
    Done,
}

pub(crate) struct NodeMeta {
    pub(crate) name: String,
    pub(crate) state: NState,
    pub(crate) epoch: WakeEpoch,
    pub(crate) signal: bool,
    /// An unpark Wake for the current epoch is already queued; further
    /// unparks before it fires coalesce into it instead of pushing
    /// duplicate (stale-on-arrival) events.
    pub(crate) unpark_queued: bool,
    /// Unparks absorbed by an already-queued wake (observability).
    pub(crate) coalesced: u64,
}

impl NodeMeta {
    pub(crate) fn new(name: String) -> NodeMeta {
        NodeMeta {
            name,
            state: NState::Startup,
            epoch: 0,
            signal: false,
            unpark_queued: false,
            coalesced: 0,
        }
    }
}

/// Shard-local bookkeeping hung off [`Inner`] when it is one shard of a
/// parallel run (`None` in serial runs).
pub(crate) struct ShardSlot {
    /// This shard's index.
    pub(crate) id: usize,
    /// Node→shard ownership map shared by all shards.
    pub(crate) owner: Arc<Vec<usize>>,
    /// Unparks aimed at nodes owned by other shards, deferred to the next
    /// window barrier (timestamped with the local clock at call time).
    pub(crate) remote_unparks: Vec<(NodeId, Time)>,
    /// True while a broadcast world event (a [`Sim::schedule_call_at`]
    /// replica, pre-loaded into every shard) is executing. In that mode
    /// unparks aimed at non-owned nodes are dropped — the owning shard's own
    /// replica delivers them — and follow-up events the closure schedules
    /// inherit broadcast mode (counted on shard 0, sync elsewhere) so the
    /// run-wide `events` total matches the serial twin.
    pub(crate) broadcast: bool,
}

/// Run-wide event budget shared by every shard of a parallel run. Counts
/// only serial-comparable events (wakes, calls, fast-path advances) — never
/// `sync_events`, which are pure parallel overhead — so a parallel run trips
/// [`SimError::EventBudgetExhausted`] at the same event count as its serial
/// twin instead of `num_shards`× later.
pub(crate) struct GlobalBudget {
    pub(crate) limit: u64,
    pub(crate) used: std::sync::atomic::AtomicU64,
}

impl GlobalBudget {
    pub(crate) fn new(limit: u64) -> Self {
        GlobalBudget {
            limit,
            used: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Charge one event; `false` once the budget is exceeded. The caller on
    /// this path is about to fail the run, so the overshoot is not undone.
    pub(crate) fn charge(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.used.fetch_add(1, Ordering::Relaxed) < self.limit
    }

    /// Charge one event if the budget allows, undoing the reservation and
    /// returning `false` otherwise. Fast paths use this: a refusal falls
    /// back to a real scheduled event, which then trips the budget on the
    /// slow path with identical accounting.
    pub(crate) fn try_charge(&self) -> bool {
        use std::sync::atomic::Ordering;
        if self.used.fetch_add(1, Ordering::Relaxed) < self.limit {
            true
        } else {
            self.used.fetch_sub(1, Ordering::Relaxed);
            false
        }
    }
}

pub(crate) struct Inner<W: Send + 'static> {
    pub(crate) world: W,
    pub(crate) now: Time,
    pub(crate) sched: Sched<W>,
    pub(crate) nodes: Vec<NodeMeta>,
    /// Events executed so far — engine-loop pops *and* fast-path advances
    /// (each fast advance stands in for exactly one elided Wake event).
    pub(crate) events: u64,
    /// Parallel-mode synchronization events executed (inter-shard message
    /// deliveries). Kept out of `events` so serial and parallel runs of the
    /// same config report identical `events`; the budget covers the sum.
    pub(crate) sync_events: u64,
    /// Budget shared with the fast path so a zero-cost spin loop still trips
    /// [`SimError::EventBudgetExhausted`] instead of livelocking.
    pub(crate) budget: u64,
    /// Run-wide budget of a parallel run, shared by all shards (`None` in
    /// serial runs, where `budget` alone governs). Charged for
    /// serial-comparable events only.
    pub(crate) global_budget: Option<Arc<GlobalBudget>>,
    /// Conservative-advance horizon: node fast paths may not move virtual
    /// time to or past it, and the parallel drive loop only pops events
    /// strictly before it. `Time::MAX` in serial runs (no constraint).
    pub(crate) horizon: Time,
    /// Present iff this `Inner` is one shard of a parallel run.
    pub(crate) shard: Option<ShardSlot>,
    /// Trace recorder; `None` (the default) keeps every hook down to a
    /// single branch so the fast path stays allocation-free.
    pub(crate) tracer: Option<Tracer>,
}

/// State shared between the engine thread and node threads. All access is
/// serialized both by the mutex and, more fundamentally, by the baton
/// discipline (only one thread executes at a time).
pub(crate) struct Shared<W: Send + 'static> {
    pub(crate) inner: Mutex<Inner<W>>,
}

pub(crate) fn unpark_inner<W: Send + 'static>(
    sched: &mut Sched<W>,
    nodes: &mut [NodeMeta],
    shard: &mut Option<ShardSlot>,
    target: NodeId,
    now: Time,
    tracer: &Option<Tracer>,
) {
    if let Some(s) = shard {
        if s.owner[target.0] != s.id {
            if s.broadcast {
                // Broadcast world events run as a replica on every shard;
                // the owner's replica unparks this node locally, so a
                // cross-shard deferral here would deliver it twice.
                return;
            }
            // Cross-shard unpark: defer to the window barrier, which applies
            // it on the owning shard at `max(now, that shard's clock)`.
            s.remote_unparks.push((target, now));
            return;
        }
    }
    let meta = &mut nodes[target.0];
    match meta.state {
        NState::Parked | NState::SleepInt => {
            if meta.unpark_queued {
                // A wake for this epoch is already in flight; pushing another
                // would only produce a stale event. Coalesce instead.
                meta.coalesced += 1;
                if let Some(t) = tracer {
                    t.counter(
                        now.as_ns(),
                        Track::program(target.0),
                        TraceKind::WakeCoalesced,
                        meta.coalesced,
                    );
                }
                return;
            }
            meta.unpark_queued = true;
            sched.push(
                now,
                EvKind::Wake {
                    node: target,
                    epoch: meta.epoch,
                    reason: WakeReason::Unparked,
                },
            );
            if let Some(t) = tracer {
                t.instant(
                    now.as_ns(),
                    Track::program(target.0),
                    TraceKind::NodeUnpark,
                    0,
                );
            }
        }
        NState::Startup | NState::Running | NState::Sleeping => {
            meta.signal = true;
        }
        NState::Done => {}
    }
}

impl<W: Send + 'static> Shared<W> {
    pub(crate) fn with_world<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        f(&mut self.inner.lock().world)
    }

    /// Zero-handoff advance: move virtual time to `until` without yielding
    /// the baton, provided nothing else could possibly run first.
    ///
    /// While a node program runs, the engine thread is blocked in
    /// [`Baton::resume`] and this lock is uncontended, so the check is one
    /// lock acquire instead of two context switches. The fast path applies
    /// only when (a) no pending event falls at or before `until` (strictly:
    /// same-time events were pushed with smaller sequence numbers and must
    /// run before a Wake would), (b) no unpark signal is latched for this
    /// node, and (c) the event budget is not exhausted — each fast advance
    /// replaces exactly one Wake event and is charged against the budget.
    pub(crate) fn try_fast_advance(&self, id: NodeId, until: Time) -> bool {
        let mut inner = self.inner.lock();
        if inner.nodes[id.0].signal
            || until >= inner.horizon
            || inner.events + inner.sync_events >= inner.budget
            || inner.sched.queue.peek().is_some_and(|ev| ev.time <= until)
        {
            return false;
        }
        if let Some(g) = &inner.global_budget {
            if !g.try_charge() {
                return false;
            }
        }
        inner.events += 1;
        debug_assert!(until >= inner.now, "fast advance went backwards");
        if let Some(t) = &inner.tracer {
            t.span(
                inner.now.as_ns(),
                until.as_ns(),
                Track::program(id.0),
                TraceKind::NodeAdvance,
                1,
            );
        }
        inner.now = until;
        true
    }

    /// Run a world closure and attempt the fast-path advance for the
    /// duration it returns, all under a single lock acquire. Returns the
    /// closure result, the computed wake time, and whether the fast path
    /// was taken (if not, the caller must fall back to a normal sleep).
    pub(crate) fn world_charge<R>(
        &self,
        id: NodeId,
        now: Time,
        f: impl FnOnce(&mut W) -> (R, Dur),
    ) -> (R, Time, bool) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let (r, d) = f(&mut inner.world);
        let until = now + d;
        if d == Dur::ZERO {
            // Nothing to charge: never yields, never counts an event.
            return (r, until, true);
        }
        let mut fast = !inner.nodes[id.0].signal
            && until < inner.horizon
            && inner.events + inner.sync_events < inner.budget
            && inner.sched.queue.peek().is_none_or(|ev| ev.time > until);
        if fast {
            if let Some(g) = &inner.global_budget {
                fast = g.try_charge();
            }
        }
        if fast {
            inner.events += 1;
            if let Some(t) = &inner.tracer {
                t.span(
                    now.as_ns(),
                    until.as_ns(),
                    Track::program(id.0),
                    TraceKind::NodeAdvance,
                    1,
                );
            }
            inner.now = until;
        }
        (r, until, fast)
    }

    pub(crate) fn schedule(&self, at: Time, kind: EvKind<W>) {
        self.inner.lock().sched.push(at, kind);
    }

    pub(crate) fn take_signal(&self, id: NodeId) -> bool {
        let mut inner = self.inner.lock();
        let sig = inner.nodes[id.0].signal;
        inner.nodes[id.0].signal = false;
        sig
    }

    pub(crate) fn note_sleep(&self, id: NodeId, until: Time) {
        let mut inner = self.inner.lock();
        let epoch = inner.nodes[id.0].epoch;
        inner.nodes[id.0].state = NState::Sleeping;
        if let Some(t) = &inner.tracer {
            // While a node runs, `inner.now` tracks its local clock, so the
            // slow-path advance spans `[inner.now, until)`.
            t.span(
                inner.now.as_ns(),
                until.as_ns(),
                Track::program(id.0),
                TraceKind::NodeAdvance,
                0,
            );
        }
        inner.sched.push(
            until,
            EvKind::Wake {
                node: id,
                epoch,
                reason: WakeReason::Timeout,
            },
        );
    }

    pub(crate) fn note_park(&self, id: NodeId, timeout: Option<Time>) {
        let mut inner = self.inner.lock();
        let epoch = inner.nodes[id.0].epoch;
        if let Some(t) = &inner.tracer {
            t.instant(
                inner.now.as_ns(),
                Track::program(id.0),
                TraceKind::NodePark,
                timeout.is_some() as u64,
            );
        }
        match timeout {
            None => inner.nodes[id.0].state = NState::Parked,
            Some(until) => {
                inner.nodes[id.0].state = NState::SleepInt;
                inner.sched.push(
                    until,
                    EvKind::Wake {
                        node: id,
                        epoch,
                        reason: WakeReason::Timeout,
                    },
                );
            }
        }
    }

    pub(crate) fn unpark(&self, target: NodeId, now: Time) {
        let inner = &mut *self.inner.lock();
        unpark_inner(
            &mut inner.sched,
            &mut inner.nodes,
            &mut inner.shard,
            target,
            now,
            &inner.tracer,
        );
    }

    pub(crate) fn note_done(&self, id: NodeId) {
        self.inner.lock().nodes[id.0].state = NState::Done;
    }
}

/// Context handed to engine-side event closures (hardware model steps).
///
/// Unlike node programs, event closures execute instantaneously in virtual
/// time; they mutate the world, schedule further events, and wake nodes.
pub struct EventCtx<'a, W: Send + 'static> {
    now: Time,
    world: &'a mut W,
    sched: &'a mut Sched<W>,
    nodes: &'a mut Vec<NodeMeta>,
    shard: &'a mut Option<ShardSlot>,
    tracer: &'a Option<Tracer>,
}

impl<'a, W: Send + 'static> EventCtx<'a, W> {
    /// Virtual time of this event.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The installed trace recorder, if any (see [`Sim::set_tracer`]).
    #[inline]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// The simulated hardware state.
    #[inline]
    pub fn world(&mut self) -> &mut W {
        self.world
    }

    /// `Some(is_primary_shard)` while the currently-executing event is a
    /// broadcast world-event replica (see [`ShardSlot::broadcast`]); `None`
    /// otherwise. Shard 0 is the primary: its replica's events count as
    /// ordinary `events`, every other shard's as `sync_events`.
    fn in_broadcast(&self) -> Option<bool> {
        self.shard
            .as_ref()
            .filter(|s| s.broadcast)
            .map(|s| s.id == 0)
    }

    /// Push a closure event, wrapping it for broadcast inheritance when the
    /// current event is itself a broadcast replica.
    fn push_call(&mut self, at: Time, f: impl FnOnce(&mut EventCtx<'_, W>) + Send + 'static) {
        match self.in_broadcast() {
            None => self.sched.push(at, EvKind::call(f)),
            Some(primary) => {
                let g = move |e: &mut EventCtx<'_, W>| broadcast_exec(e, f);
                let kind = if primary {
                    EvKind::call(g)
                } else {
                    EvKind::sync_call(g)
                };
                self.sched.push(at, kind);
            }
        }
    }

    /// Schedule a follow-up event `after` from now.
    pub fn schedule(&mut self, after: Dur, f: impl FnOnce(&mut EventCtx<'_, W>) + Send + 'static) {
        self.push_call(self.now + after, f);
    }

    /// Schedule a follow-up event at absolute time `at` (clamped to now).
    pub fn schedule_at(&mut self, at: Time, f: impl FnOnce(&mut EventCtx<'_, W>) + Send + 'static) {
        let at = at.max(self.now);
        self.push_call(at, f);
    }

    /// Schedule an allocation-free event `after` from now: a plain `fn`
    /// pointer called with two integer arguments. Recurring hardware events
    /// (firmware steps, packet delivery) use this instead of
    /// [`EventCtx::schedule`] so the per-event closure allocation disappears
    /// from the hot path; anything larger than two words parks in world
    /// state (e.g. a packet slab) and travels as a slot index.
    pub fn schedule_hot(&mut self, after: Dur, f: HotFn<W>, a: u64, b: u64) {
        let at = self.now + after;
        if self.in_broadcast().is_some() {
            // Broadcast follow-ups need the closure wrapper for mode
            // inheritance; broadcast events are rare, so the allocation is
            // irrelevant here.
            self.push_call(at, move |e| f(e, a, b));
        } else {
            self.sched.push(at, EvKind::Hot { f, a, b });
        }
    }

    /// Schedule an allocation-free event at absolute time `at` (clamped to
    /// now). See [`EventCtx::schedule_hot`].
    pub fn schedule_hot_at(&mut self, at: Time, f: HotFn<W>, a: u64, b: u64) {
        let at = at.max(self.now);
        if self.in_broadcast().is_some() {
            self.push_call(at, move |e| f(e, a, b));
        } else {
            self.sched.push(at, EvKind::Hot { f, a, b });
        }
    }

    /// Schedule an allocation-free *synchronization* event at absolute time
    /// `at` (clamped to now): executes exactly like
    /// [`EventCtx::schedule_hot_at`] but is charged to the run's
    /// `sync_events` counter instead of `events`. Parallel-mode world models
    /// use this for the local leg of a lookahead-shifted hand-off so the
    /// shift stays invisible in the serial-comparable event count.
    pub fn schedule_sync_hot_at(&mut self, at: Time, f: HotFn<W>, a: u64, b: u64) {
        let at = at.max(self.now);
        self.sched.push(at, EvKind::SyncHot { f, a, b });
    }

    /// Unpark a node program (see [`NodeCtx::unpark`](crate::NodeCtx::unpark)).
    pub fn unpark(&mut self, target: NodeId) {
        unpark_inner(
            self.sched,
            self.nodes,
            self.shard,
            target,
            self.now,
            self.tracer,
        );
    }
}

/// Barrier-replayed cross-shard unpark (see `SyncCore::barrier` in the
/// parallel module). If a wake for `target` is already in flight on this
/// shard, re-queue behind it (same time, later sequence number) so this
/// unpark lands only after the target consumed the earlier wake — the
/// serial interleaving always runs the target between two of its unparks.
/// Coalescing here (the right behavior for racing *local* unparks) would
/// lose a wake the serial run delivers and deadlock the target.
pub(crate) fn replay_unpark<W: Send + 'static>(e: &mut EventCtx<'_, W>, target: NodeId) {
    let meta = &e.nodes[target.0];
    let wake_in_flight =
        matches!(meta.state, NState::Parked | NState::SleepInt) && meta.unpark_queued;
    if wake_in_flight {
        e.sched
            .push(e.now, EvKind::sync_call(move |e| replay_unpark(e, target)));
    } else {
        e.unpark(target);
    }
}

/// Run `f` with the shard's broadcast flag raised (restoring it after), so
/// unpark suppression and follow-up wrapping apply for the closure's whole
/// execution. No-op marker in serial runs (no shard slot).
pub(crate) fn broadcast_exec<W: Send + 'static>(
    e: &mut EventCtx<'_, W>,
    f: impl FnOnce(&mut EventCtx<'_, W>),
) {
    let prev = match e.shard.as_mut() {
        Some(s) => std::mem::replace(&mut s.broadcast, true),
        None => false,
    };
    f(e);
    if let Some(s) = e.shard.as_mut() {
        s.broadcast = prev;
    }
}

/// Shared pre-run world event (see [`Sim::schedule_call_at`]): stored as a
/// cloneable `Arc<dyn Fn>` so `run_parallel` can pre-load a replica into
/// every shard's queue.
pub(crate) type InitialFn<W> = Arc<dyn Fn(&mut EventCtx<'_, W>) + Send + Sync + 'static>;

/// Build the event kind for one shard's replica of a broadcast world event:
/// counted on the primary shard, a sync event elsewhere, broadcast-wrapped
/// on both.
pub(crate) fn broadcast_kind<W: Send + 'static>(f: InitialFn<W>, primary: bool) -> EvKind<W> {
    let g = move |e: &mut EventCtx<'_, W>| broadcast_exec(e, |e| f(e));
    if primary {
        EvKind::call(g)
    } else {
        EvKind::sync_call(g)
    }
}

/// Execute a non-`Wake` event against `inner` at virtual time `at`. Shared
/// between the serial event loop and the parallel shard drive loop so both
/// trace and dispatch identically.
pub(crate) fn exec_event<W: Send + 'static>(inner: &mut Inner<W>, at: Time, kind: EvKind<W>) {
    match kind {
        EvKind::Call(f) | EvKind::SyncCall(f) => {
            if let Some(t) = &inner.tracer {
                t.instant(at.as_ns(), Track::ENGINE, TraceKind::EngineCall, 0);
            }
            let mut ectx = EventCtx {
                now: at,
                world: &mut inner.world,
                sched: &mut inner.sched,
                nodes: &mut inner.nodes,
                shard: &mut inner.shard,
                tracer: &inner.tracer,
            };
            f(&mut ectx);
        }
        EvKind::Hot { f, a, b } | EvKind::SyncHot { f, a, b } => {
            if let Some(t) = &inner.tracer {
                t.instant(at.as_ns(), Track::ENGINE, TraceKind::EngineHot, a);
            }
            let mut ectx = EventCtx {
                now: at,
                world: &mut inner.world,
                sched: &mut inner.sched,
                nodes: &mut inner.nodes,
                shard: &mut inner.shard,
                tracer: &inner.tracer,
            };
            f(&mut ectx, a, b);
        }
        EvKind::Wake { .. } => unreachable!("wake events are handled by the caller"),
    }
}

pub(crate) type Prog<W> = Box<dyn FnOnce(&mut NodeCtx<W>) + Send + 'static>;

/// A configured simulation: world state plus node programs, ready to run.
pub struct Sim<W: Send + 'static> {
    pub(crate) world: Option<W>,
    pub(crate) seed: u64,
    pub(crate) event_budget: u64,
    pub(crate) programs: Vec<(String, Prog<W>)>,
    pub(crate) initial: Vec<(Time, InitialFn<W>)>,
    pub(crate) tracer: Option<Tracer>,
}

/// Per-shard slice of a parallel run's accounting (see
/// [`SimReport::shards`]). Empty in serial runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index (`0..num_shards`).
    pub shard: usize,
    /// Node programs owned by this shard.
    pub nodes: usize,
    /// Serial-comparable events this shard executed (wakes + calls +
    /// fast-path advances).
    pub events: u64,
    /// Synchronization events this shard executed (inter-shard message
    /// deliveries) — pure parallel-mode overhead.
    pub sync_events: u64,
}

/// PDES profile of a parallel run: how well the conservative lookahead
/// windows were used, and how evenly the load spread across shards.
///
/// All stored fields are integers (virtual nanoseconds and counts) so the
/// profile is `Eq`-comparable and bit-deterministic; percentages and ratios
/// are derived on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardProfile {
    /// Conservative lookahead windows (barrier rounds) the run used.
    pub windows: u64,
    /// Total windowed virtual time: the sum of every window's width, ns.
    /// (Unbounded-lookahead windows are measured to the latest shard's
    /// arrival clock instead of the infinite horizon.)
    pub window_ns: u64,
    /// Per-shard busy time: virtual ns from each window's start to the
    /// shard's local clock at barrier arrival, summed over windows.
    pub busy_ns: Vec<u64>,
    /// Per-shard serial-comparable events.
    pub events: Vec<u64>,
    /// Per-shard synchronization events (cross-shard deliveries).
    pub sync_events: Vec<u64>,
    /// Per-shard count of windows in which the shard executed at least one
    /// event (the rest were pure barrier waits).
    pub active_windows: Vec<u64>,
}

impl ShardProfile {
    /// Number of shards profiled.
    pub fn num_shards(&self) -> usize {
        self.busy_ns.len()
    }

    /// Fraction of the total windowed time shard `s` spent busy,
    /// `0.0..=1.0`.
    pub fn window_utilization(&self, s: usize) -> f64 {
        if self.window_ns == 0 {
            return 0.0;
        }
        self.busy_ns[s] as f64 / self.window_ns as f64
    }

    /// Max-over-mean ratio of per-shard event counts (1.0 = perfectly
    /// balanced).
    pub fn event_imbalance(&self) -> f64 {
        imbalance(&self.events)
    }

    /// Max-over-mean ratio of per-shard busy time.
    pub fn time_imbalance(&self) -> f64 {
        imbalance(&self.busy_ns)
    }

    /// Synchronization events as a fraction of all executed events,
    /// `0.0..=1.0` — the pure parallel-mode overhead.
    pub fn sync_ratio(&self) -> f64 {
        let events: u64 = self.events.iter().sum();
        let sync: u64 = self.sync_events.iter().sum();
        if events + sync == 0 {
            return 0.0;
        }
        sync as f64 / (events + sync) as f64
    }

    /// The shard with the most busy time — the one gating every barrier.
    pub fn critical_shard(&self) -> usize {
        self.busy_ns
            .iter()
            .enumerate()
            .max_by_key(|&(i, &b)| (b, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Compact one-line rendering, e.g.
    /// `util [93 91 88 90]%, events [1200 1180 1210 1190], imbalance 1.01x ev / 1.03x time, sync 2.1%, critical shard 0`.
    pub fn summary(&self) -> String {
        let utils: Vec<String> = (0..self.num_shards())
            .map(|s| format!("{:.0}", 100.0 * self.window_utilization(s)))
            .collect();
        let events: Vec<String> = self.events.iter().map(|e| e.to_string()).collect();
        format!(
            "util [{}]%, events [{}], imbalance {:.2}x ev / {:.2}x time, sync {:.1}%, critical shard {}",
            utils.join(" "),
            events.join(" "),
            self.event_imbalance(),
            self.time_imbalance(),
            100.0 * self.sync_ratio(),
            self.critical_shard(),
        )
    }
}

/// Max-over-mean of a count vector; 1.0 when empty or all-zero.
fn imbalance(v: &[u64]) -> f64 {
    let sum: u64 = v.iter().sum();
    if v.is_empty() || sum == 0 {
        return 1.0;
    }
    let mean = sum as f64 / v.len() as f64;
    *v.iter().max().unwrap() as f64 / mean
}

/// The outcome of a completed simulation.
#[derive(Debug)]
pub struct SimReport<W> {
    /// Final world state.
    pub world: W,
    /// Virtual time of the last executed event.
    pub end_time: Time,
    /// Number of events executed (wakes + calls + fast-path advances).
    pub events: u64,
    /// Unparks absorbed into an already-queued wake instead of producing a
    /// duplicate (stale) event, summed over all nodes.
    pub wakes_coalesced: u64,
    /// Per-shard accounting of a parallel run; empty for serial runs.
    pub shards: Vec<ShardReport>,
    /// Shard count the caller asked [`Sim::run_parallel`] for, before the
    /// clamp to the node count. Zero for serial runs; when it differs from
    /// `shards.len()` the profile describes fewer shards than requested
    /// (flagged in the `[parallel]` stats summary line).
    pub shards_requested: usize,
    /// Total synchronization events (inter-shard message deliveries) across
    /// all shards. Zero for serial runs; the null-message overhead of a
    /// parallel run is `sync_events + windows` relative to its serial twin.
    pub sync_events: u64,
    /// Conservative lookahead windows (barrier rounds) the parallel run
    /// used. Zero for serial runs.
    pub windows: u64,
    /// Unparks that crossed a shard boundary and were applied at a window
    /// barrier. Zero for serial runs.
    pub cross_unparks: u64,
    /// PDES profile of a parallel run (window utilization, load imbalance,
    /// sync overhead). `None` for serial runs.
    pub profile: Option<ShardProfile>,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
}

impl<W> SimReport<W> {
    /// Simulated events per wall-clock second (engine throughput).
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Cumulative engine statistics across every completed [`Sim::run`] in this
/// process. Experiment binaries print these so engine-performance
/// regressions are visible next to the virtual-time results.
pub mod stats {
    use super::ShardProfile;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    static RUNS: AtomicU64 = AtomicU64::new(0);
    static EVENTS: AtomicU64 = AtomicU64::new(0);
    static WALL_NS: AtomicU64 = AtomicU64::new(0);
    static COALESCED: AtomicU64 = AtomicU64::new(0);
    static PARALLEL_RUNS: AtomicU64 = AtomicU64::new(0);
    static PARALLEL_SHARDS: AtomicU64 = AtomicU64::new(0);
    static SYNC_EVENTS: AtomicU64 = AtomicU64::new(0);
    static WINDOWS: AtomicU64 = AtomicU64::new(0);
    static CLAMPED_RUNS: AtomicU64 = AtomicU64::new(0);
    static LAST_CLAMP: Mutex<Option<(u64, u64)>> = Mutex::new(None);
    static LAST_PROFILE: Mutex<Option<ShardProfile>> = Mutex::new(None);

    pub(crate) fn record(events: u64, coalesced: u64, wall: std::time::Duration) {
        RUNS.fetch_add(1, Ordering::Relaxed);
        EVENTS.fetch_add(events, Ordering::Relaxed);
        COALESCED.fetch_add(coalesced, Ordering::Relaxed);
        WALL_NS.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_parallel(requested: u64, shards: u64, sync_events: u64, windows: u64) {
        PARALLEL_RUNS.fetch_add(1, Ordering::Relaxed);
        PARALLEL_SHARDS.fetch_add(shards, Ordering::Relaxed);
        SYNC_EVENTS.fetch_add(sync_events, Ordering::Relaxed);
        WINDOWS.fetch_add(windows, Ordering::Relaxed);
        if requested > shards {
            CLAMPED_RUNS.fetch_add(1, Ordering::Relaxed);
            *LAST_CLAMP.lock() = Some((requested, shards));
        }
    }

    pub(crate) fn record_profile(p: &ShardProfile) {
        *LAST_PROFILE.lock() = Some(p.clone());
    }

    /// Per-shard PDES profile of the most recent parallel run in this
    /// process, or `None` when every run so far was serial.
    pub fn last_parallel_profile() -> Option<ShardProfile> {
        LAST_PROFILE.lock().clone()
    }

    /// Unparks coalesced into already-queued wakes since process start.
    pub fn wakes_coalesced() -> u64 {
        COALESCED.load(Ordering::Relaxed)
    }

    /// Parallel-run totals since process start:
    /// `(parallel_runs, shards, sync_events, windows)`. All zero when every
    /// run so far was serial.
    pub fn parallel_snapshot() -> (u64, u64, u64, u64) {
        (
            PARALLEL_RUNS.load(Ordering::Relaxed),
            PARALLEL_SHARDS.load(Ordering::Relaxed),
            SYNC_EVENTS.load(Ordering::Relaxed),
            WINDOWS.load(Ordering::Relaxed),
        )
    }

    /// One-line human summary of [`parallel_snapshot`] plus the most
    /// recent run's per-shard event counts and window-utilization
    /// percentages, or `None` when no parallel run has completed (so
    /// serial-only binaries stay quiet).
    pub fn parallel_summary() -> Option<String> {
        let (runs, shards, sync, windows) = parallel_snapshot();
        if runs == 0 {
            return None;
        }
        let mut line = format!(
            "{runs} parallel runs ({shards} shards): {sync} sync events, {windows} windows"
        );
        if let Some(p) = last_parallel_profile() {
            line.push_str(&format!("; last run: {}", p.summary()));
        }
        let clamped = CLAMPED_RUNS.load(Ordering::Relaxed);
        if clamped > 0 {
            if let Some((req, eff)) = *LAST_CLAMP.lock() {
                line.push_str(&format!(
                    "; WARNING: {clamped} run(s) clamped below the requested shard count \
                     (last: {req} requested -> {eff} effective)"
                ));
            }
        }
        Some(line)
    }

    /// Totals since process start: `(runs, events, wall)`.
    pub fn snapshot() -> (u64, u64, std::time::Duration) {
        (
            RUNS.load(Ordering::Relaxed),
            EVENTS.load(Ordering::Relaxed),
            std::time::Duration::from_nanos(WALL_NS.load(Ordering::Relaxed)),
        )
    }

    /// One-line human summary of [`snapshot`], e.g.
    /// `"37 runs, 1204331 events in 0.48 s (2.5 M events/sec)"`.
    pub fn summary() -> String {
        let (runs, events, wall) = snapshot();
        let secs = wall.as_secs_f64();
        let rate = events as f64 / secs.max(1e-9);
        let (scaled, unit) = if rate >= 1e6 {
            (rate / 1e6, "M")
        } else {
            (rate / 1e3, "k")
        };
        format!("{runs} runs, {events} events in {secs:.2} s ({scaled:.1} {unit} events/sec)")
    }
}

impl<W: Send + 'static> Sim<W> {
    /// Create a simulation over `world`, with `seed` driving all per-node
    /// RNG streams.
    pub fn new(world: W, seed: u64) -> Self {
        Sim {
            world: Some(world),
            seed,
            event_budget: u64::MAX,
            programs: Vec::new(),
            initial: Vec::new(),
            tracer: None,
        }
    }

    /// Install a trace recorder: every layer with trace hooks (engine,
    /// adapter, switch, protocol) records into it for the whole run. Keep a
    /// clone to read the trace back after [`Sim::run`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Cap the number of events executed; exceeding it aborts the run with
    /// [`SimError::EventBudgetExhausted`]. Useful against livelocks.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Mutable access to the world before the run starts (e.g. to install
    /// fault injectors).
    pub fn world_mut(&mut self) -> &mut W {
        self.world.as_mut().expect("world present before run")
    }

    /// Schedule an event to run at virtual time `at`, before the run starts.
    /// Fault harnesses use this to mutate the world mid-run at precise
    /// virtual instants (shrink a FIFO, stall an engine) without involving
    /// any node program.
    ///
    /// The closure must be `Fn` (not `FnOnce`): in a parallel run it is
    /// broadcast to every shard and executes once per shard against that
    /// shard's world copy, at exactly virtual time `at`, so sharded worlds
    /// observe the mutation identically to the serial run. Only shard 0's
    /// replica counts toward `events`; the others are `sync_events`.
    pub fn schedule_call_at(
        &mut self,
        at: Time,
        f: impl Fn(&mut EventCtx<'_, W>) + Send + Sync + 'static,
    ) {
        self.initial.push((at, Arc::new(f)));
    }

    /// Register a node program. Nodes are numbered densely in spawn order
    /// and all start at virtual time zero.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        program: impl FnOnce(&mut NodeCtx<W>) + Send + 'static,
    ) -> NodeId {
        let id = NodeId(self.programs.len());
        self.programs.push((name.into(), Box::new(program)));
        id
    }

    /// Run to completion: until every node program has returned and the
    /// event queue is empty.
    pub fn run(mut self) -> Result<SimReport<W>, SimError> {
        let started = std::time::Instant::now();
        let world = self.world.take().expect("world present");
        let programs = std::mem::take(&mut self.programs);
        let num_nodes = programs.len();

        let mut sched = Sched::new();
        for (at, f) in self.initial.drain(..) {
            sched.push(at, EvKind::call(move |e: &mut EventCtx<'_, W>| f(e)));
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for (i, (name, _)) in programs.iter().enumerate() {
            nodes.push(NodeMeta::new(name.clone()));
            sched.push(
                Time::ZERO,
                EvKind::Wake {
                    node: NodeId(i),
                    epoch: 0,
                    reason: WakeReason::Timeout,
                },
            );
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                world,
                now: Time::ZERO,
                sched,
                nodes,
                events: 0,
                sync_events: 0,
                budget: self.event_budget,
                global_budget: None,
                horizon: Time::MAX,
                shard: None,
                tracer: self.tracer.take(),
            }),
        });

        let mut batons: Vec<Arc<Baton>> = Vec::with_capacity(num_nodes);
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(num_nodes);
        for (i, (name, program)) in programs.into_iter().enumerate() {
            let baton = Baton::new();
            batons.push(baton.clone());
            let shared = shared.clone();
            let seed = self.seed;
            let handle = std::thread::Builder::new()
                .name(format!("sp-sim-node-{i}-{name}"))
                .spawn(move || {
                    let mut ctx =
                        NodeCtx::new(NodeId(i), num_nodes, seed, shared.clone(), baton.clone());
                    let (t0, _) = baton.wait_for_start();
                    ctx.now = t0;
                    match catch_unwind(AssertUnwindSafe(|| program(&mut ctx))) {
                        Ok(()) => {
                            shared.note_done(NodeId(i));
                            baton.finish(Yield::Done);
                        }
                        Err(payload) => {
                            if payload.is::<ShutdownToken>() {
                                return; // orderly teardown
                            }
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic payload>".to_string());
                            shared.note_done(NodeId(i));
                            baton.finish(Yield::Panicked(msg));
                        }
                    }
                })
                .expect("spawn node thread");
            handles.push(handle);
        }

        let result = Self::event_loop(&shared, &batons);

        // Teardown: unwind any node thread still blocked on its baton.
        {
            let inner = shared.inner.lock();
            for (i, meta) in inner.nodes.iter().enumerate() {
                if meta.state != NState::Done {
                    batons[i].exit();
                }
            }
        }
        for handle in handles {
            let _ = handle.join();
        }

        let (end_time, events) = result?;
        let inner = Arc::try_unwrap(shared)
            .unwrap_or_else(|_| panic!("node threads still hold engine state"))
            .inner
            .into_inner();
        let wakes_coalesced: u64 = inner.nodes.iter().map(|m| m.coalesced).sum();
        let wall = started.elapsed();
        stats::record(events, wakes_coalesced, wall);
        Ok(SimReport {
            world: inner.world,
            end_time,
            events,
            wakes_coalesced,
            shards: Vec::new(),
            shards_requested: 0,
            sync_events: 0,
            windows: 0,
            cross_unparks: 0,
            profile: None,
            wall,
        })
    }

    /// Core loop. Returns `(end_time, events_executed)`.
    fn event_loop(shared: &Arc<Shared<W>>, batons: &[Arc<Baton>]) -> Result<(Time, u64), SimError> {
        let mut inner = shared.inner.lock();
        loop {
            let ev = match inner.sched.queue.pop() {
                Some(ev) => ev,
                None => break,
            };
            inner.events += 1;
            if inner.events + inner.sync_events > inner.budget {
                let (at, budget) = (inner.now, inner.budget);
                drop(inner);
                return Err(SimError::EventBudgetExhausted { at, budget });
            }
            debug_assert!(ev.time >= inner.now, "event queue went backwards");
            inner.now = ev.time;
            match ev.kind {
                EvKind::Wake {
                    node,
                    epoch,
                    reason,
                } => {
                    let meta = &mut inner.nodes[node.0];
                    let runnable = meta.epoch == epoch
                        && matches!(
                            meta.state,
                            NState::Startup | NState::Sleeping | NState::Parked | NState::SleepInt
                        );
                    if !runnable {
                        continue; // stale wake
                    }
                    meta.epoch += 1;
                    meta.state = NState::Running;
                    // The queued unpark (if any) is consumed by this wake;
                    // later unparks must queue a fresh event.
                    meta.unpark_queued = false;
                    if let Some(t) = &inner.tracer {
                        t.instant(
                            ev.time.as_ns(),
                            Track::program(node.0),
                            TraceKind::EngineWake,
                            matches!(reason, WakeReason::Unparked) as u64,
                        );
                    }
                    drop(inner);
                    let y = batons[node.0].resume(ev.time, reason);
                    match y {
                        Yield::Sleep { .. }
                        | Yield::Park
                        | Yield::ParkTimeout { .. }
                        | Yield::Done => {
                            // Node-side note_* already recorded scheduler
                            // state before yielding; nothing further to do.
                        }
                        Yield::Panicked(message) => {
                            let name = shared.inner.lock().nodes[node.0].name.clone();
                            return Err(SimError::NodePanicked {
                                node: name,
                                message,
                            });
                        }
                    }
                    inner = shared.inner.lock();
                }
                kind => exec_event(&mut inner, ev.time, kind),
            }
        }

        // Queue drained: every program must have finished.
        let stuck: Vec<String> = inner
            .nodes
            .iter()
            .filter(|m| m.state != NState::Done)
            .map(|m| m.name.clone())
            .collect();
        let (now, events) = (inner.now, inner.events);
        drop(inner);
        if stuck.is_empty() {
            Ok((now, events))
        } else {
            Err(SimError::Deadlock {
                at: now,
                parked: stuck,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_completes() {
        let sim = Sim::new((), 0);
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, Time::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn single_node_advances_time() {
        let mut sim = Sim::new(0u32, 1);
        sim.spawn("a", |ctx| {
            ctx.advance(Dur::us(5.0));
            ctx.advance(Dur::us(7.0));
            ctx.world(|w| *w = 99);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, 99);
        assert_eq!(report.end_time.as_us(), 12.0);
    }

    #[test]
    fn nodes_interleave_in_time_order() {
        // Two nodes appending (node, time) tuples must interleave by time.
        let mut sim = Sim::new(Vec::<(usize, u64)>::new(), 7);
        for (i, step) in [(0usize, 3u64), (1usize, 5u64)] {
            sim.spawn(format!("n{i}"), move |ctx| {
                for _ in 0..4 {
                    ctx.advance(Dur::ns(step));
                    let t = ctx.now().as_ns();
                    ctx.world(|w| w.push((i, t)));
                }
            });
        }
        let report = sim.run().unwrap();
        let times: Vec<u64> = report.world.iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "log out of time order: {:?}", report.world);
        assert_eq!(report.world.len(), 8);
    }

    #[test]
    fn same_time_events_run_in_insertion_order() {
        let mut sim = Sim::new(Vec::<u32>::new(), 0);
        sim.spawn("s", |ctx| {
            for k in 0..5u32 {
                ctx.schedule(Dur::us(1.0), move |e| e.world().push(k));
            }
            ctx.advance(Dur::us(2.0));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn park_unpark_roundtrip() {
        let mut sim = Sim::new(Vec::<&'static str>::new(), 0);
        let waiter = NodeId(0);
        sim.spawn("waiter", |ctx| {
            let reason = ctx.park();
            assert_eq!(reason, WakeReason::Unparked);
            ctx.world(|w| w.push("woken"));
        });
        sim.spawn("waker", move |ctx| {
            ctx.advance(Dur::us(10.0));
            ctx.world(|w| w.push("waking"));
            ctx.unpark(waiter);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, vec!["waking", "woken"]);
        assert_eq!(report.end_time.as_us(), 10.0);
    }

    #[test]
    fn park_timeout_fires_without_unpark() {
        let mut sim = Sim::new((), 0);
        sim.spawn("t", |ctx| {
            let reason = ctx.park_timeout(Dur::us(3.0));
            assert_eq!(reason, WakeReason::Timeout);
            assert_eq!(ctx.now().as_us(), 3.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn park_timeout_fast_path_observable_in_trace() {
        // A timed park whose deadline precedes every queued event cannot be
        // unparked, so it takes the one-lock fast path (NodeAdvance span
        // with arg=1, no NodePark); one with an event inside the window
        // falls back to the real park.
        let tracer = Tracer::new(1, 1024);
        let mut sim = Sim::new((), 0);
        sim.set_tracer(tracer.clone());
        sim.spawn("t", |ctx| {
            assert_eq!(ctx.park_timeout(Dur::us(3.0)), WakeReason::Timeout);
            ctx.schedule(Dur::us(1.0), |_e| {});
            assert_eq!(ctx.park_timeout(Dur::us(3.0)), WakeReason::Timeout);
            assert_eq!(ctx.now().as_us(), 6.0);
        });
        sim.run().unwrap();
        let recs = tracer.snapshot();
        let fast: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == TraceKind::NodeAdvance && r.arg == 1)
            .collect();
        assert_eq!(fast.len(), 1, "first park_timeout fast-paths: {fast:?}");
        assert_eq!((fast[0].at, fast[0].dur), (0, 3_000));
        let parks: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == TraceKind::NodePark)
            .collect();
        assert_eq!(parks.len(), 1, "second park_timeout really parks");
        assert_eq!(parks[0].at, 3_000);
    }

    #[test]
    fn park_timeout_fast_path_matches_advance_accounting() {
        // An un-unparkable timed park is semantically a timed advance; the
        // fast path must keep the two identical in both virtual time and
        // event count (each fast advance stands in for one elided Wake).
        fn run(use_park: bool) -> (Time, u64) {
            let mut sim = Sim::new((), 0);
            sim.spawn("t", move |ctx| {
                for _ in 0..10 {
                    if use_park {
                        assert_eq!(ctx.park_timeout(Dur::us(3.0)), WakeReason::Timeout);
                    } else {
                        ctx.advance(Dur::us(3.0));
                    }
                }
            });
            let r = sim.run().unwrap();
            (r.end_time, r.events)
        }
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn unpark_during_sleep_is_latched() {
        let mut sim = Sim::new((), 0);
        let sleeper = NodeId(0);
        sim.spawn("sleeper", |ctx| {
            ctx.advance(Dur::us(10.0)); // unpark arrives at t=2 while asleep
            let reason = ctx.park_timeout(Dur::us(50.0));
            assert_eq!(reason, WakeReason::Unparked, "latched signal must win");
            assert_eq!(ctx.now().as_us(), 10.0, "no time may pass");
        });
        sim.spawn("poker", move |ctx| {
            ctx.advance(Dur::us(2.0));
            ctx.unpark(sleeper);
        });
        sim.run().unwrap();
    }

    #[test]
    fn deadlock_is_detected() {
        let mut sim = Sim::new((), 0);
        sim.spawn("stuck", |ctx| {
            ctx.park();
        });
        match sim.run() {
            Err(SimError::Deadlock { parked, .. }) => assert_eq!(parked, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn event_budget_stops_livelock() {
        let mut sim = Sim::new((), 0);
        sim.set_event_budget(1000);
        sim.spawn("spinner", |ctx| loop {
            ctx.advance(Dur::ZERO);
        });
        match sim.run() {
            Err(SimError::EventBudgetExhausted { budget, .. }) => assert_eq!(budget, 1000),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn node_panic_is_reported() {
        // Silence the default panic hook for this intentional panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut sim = Sim::new((), 0);
        sim.spawn("bad", |_ctx| panic!("boom"));
        let out = sim.run();
        std::panic::set_hook(prev);
        match out {
            Err(SimError::NodePanicked { node, message }) => {
                assert_eq!(node, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected node panic, got {other:?}"),
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> (Vec<(usize, u64, u32)>, Time) {
            let mut sim = Sim::new(Vec::new(), seed);
            for i in 0..4usize {
                sim.spawn(format!("n{i}"), move |ctx| {
                    for _ in 0..16 {
                        let jitter = {
                            use rand::Rng;
                            ctx.rng().gen_range(1..100u64)
                        };
                        ctx.advance(Dur::ns(jitter));
                        let t = ctx.now().as_ns();
                        let tag = {
                            use rand::Rng;
                            ctx.rng().gen::<u32>()
                        };
                        ctx.world(|w: &mut Vec<(usize, u64, u32)>| w.push((i, t, tag)));
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.world, r.end_time)
        }
        let a = run_once(1234);
        let b = run_once(1234);
        let c = run_once(9999);
        assert_eq!(a, b, "same seed must reproduce identical traces");
        assert_ne!(a.0, c.0, "different seeds should differ");
    }

    #[test]
    fn events_scheduled_from_events_chain() {
        let mut sim = Sim::new(0u64, 0);
        sim.spawn("kick", |ctx| {
            ctx.schedule(Dur::us(1.0), |e| {
                e.world();
                e.schedule(Dur::us(1.0), |e2| {
                    *e2.world() += 1;
                    e2.schedule(Dur::us(1.0), |e3| *e3.world() += 10);
                });
            });
            ctx.advance(Dur::us(10.0));
            assert_eq!(ctx.world(|w| *w), 11);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, 11);
    }

    #[test]
    fn wake_from_event_unparks_node() {
        let mut sim = Sim::new(false, 0);
        let n = NodeId(0);
        sim.spawn("sleepy", move |ctx| {
            ctx.schedule(Dur::us(4.0), move |e| {
                *e.world() = true;
                e.unpark(n);
            });
            let reason = ctx.park();
            assert_eq!(reason, WakeReason::Unparked);
            assert_eq!(ctx.now().as_us(), 4.0);
        });
        let report = sim.run().unwrap();
        assert!(report.world);
    }

    #[test]
    fn hot_events_interleave_with_boxed_in_order() {
        // Hot and boxed events at the same instant must run in push order.
        fn push_hot(e: &mut EventCtx<'_, Vec<u64>>, a: u64, b: u64) {
            e.world().push(a * 10 + b);
        }
        let mut sim = Sim::new(Vec::<u64>::new(), 0);
        sim.spawn("s", |ctx| {
            ctx.schedule(Dur::us(1.0), |e| e.world().push(1));
            ctx.schedule_hot(Dur::us(1.0), push_hot, 0, 2);
            ctx.schedule(Dur::us(1.0), |e| e.world().push(3));
            ctx.schedule_hot(Dur::us(1.0), push_hot, 0, 4);
            ctx.advance(Dur::us(2.0));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, vec![1, 2, 3, 4]);
    }

    #[test]
    fn hot_events_chain_and_wake() {
        // A hot event rescheduling itself, then unparking the node.
        fn tick(e: &mut EventCtx<'_, u64>, left: u64, node: u64) {
            *e.world() += 1;
            if left > 1 {
                e.schedule_hot(Dur::us(1.0), tick, left - 1, node);
            } else {
                e.unpark(NodeId(node as usize));
            }
        }
        let mut sim = Sim::new(0u64, 0);
        sim.spawn("waiter", |ctx| {
            ctx.schedule_hot(Dur::us(1.0), tick, 5, 0);
            assert_eq!(ctx.park(), WakeReason::Unparked);
            assert_eq!(ctx.now().as_us(), 5.0);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, 5);
    }

    #[test]
    fn fast_advance_matches_slow_path_timing() {
        // A node advancing across a pending event must still let the event
        // run mid-span (slow path), while spans with no pending events take
        // the fast path — and both must produce identical virtual times.
        let mut sim = Sim::new(Vec::<(u64, &'static str)>::new(), 0);
        sim.spawn("n", |ctx| {
            for _ in 0..100 {
                ctx.advance(Dur::ns(10)); // fast path: queue empty
            }
            ctx.schedule(Dur::ns(50), |e| {
                let t = e.now().as_ns();
                e.world().push((t, "event"));
            });
            ctx.advance(Dur::ns(100)); // slow path: event inside span
            let t = ctx.now().as_ns();
            ctx.world(move |w| w.push((t, "node")));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, vec![(1050, "event"), (1100, "node")]);
        assert_eq!(report.end_time.as_ns(), 1100);
    }

    #[test]
    fn world_then_advance_equals_world_plus_advance() {
        // The fused op must produce the same virtual times as the two-call
        // sequence it replaces.
        fn run(fused: bool) -> (Vec<u64>, Time, u64) {
            let mut sim = Sim::new(Vec::<u64>::new(), 0);
            sim.spawn("n", move |ctx| {
                for i in 0..50u64 {
                    if fused {
                        ctx.world_then_advance(|w| {
                            w.push(i);
                            ((), Dur::ns(7))
                        });
                    } else {
                        ctx.world(|w| w.push(i));
                        ctx.advance(Dur::ns(7));
                    }
                }
            });
            let r = sim.run().unwrap();
            (r.world, r.end_time, r.events)
        }
        let (wa, ta, ea) = run(true);
        let (wb, tb, eb) = run(false);
        assert_eq!(wa, wb);
        assert_eq!(ta, tb);
        assert_eq!(ea, eb, "fused op must charge the event budget identically");
    }

    #[test]
    fn world_then_advance_zero_cost_never_yields() {
        // A zero charge returns without yielding even with a same-time
        // event pending; the event runs at the next real yield.
        let mut sim = Sim::new(Vec::<&'static str>::new(), 0);
        sim.spawn("n", |ctx| {
            ctx.schedule(Dur::ZERO, |e| e.world().push("event"));
            let r = ctx.world_then_advance(|w| {
                w.push("zero-cost");
                (7u32, Dur::ZERO)
            });
            assert_eq!(r, 7);
            ctx.world(|w| w.push("still-before-event"));
            ctx.advance(Dur::ns(1));
        });
        let report = sim.run().unwrap();
        assert_eq!(
            report.world,
            vec!["zero-cost", "still-before-event", "event"]
        );
    }

    #[test]
    fn fast_advance_respects_event_budget() {
        // Fast-path advances must count against the budget too.
        let mut sim = Sim::new((), 0);
        sim.set_event_budget(500);
        sim.spawn("spinner", |ctx| loop {
            ctx.advance(Dur::ns(1)); // all fast-path: nothing else pending
        });
        match sim.run() {
            Err(SimError::EventBudgetExhausted { budget, .. }) => assert_eq!(budget, 500),
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn report_carries_wall_clock_throughput() {
        let mut sim = Sim::new((), 0);
        sim.spawn("n", |ctx| {
            for _ in 0..100 {
                ctx.advance(Dur::ns(5));
            }
        });
        let report = sim.run().unwrap();
        assert!(report.wall > std::time::Duration::ZERO);
        assert!(report.events_per_sec() > 0.0);
    }

    #[test]
    fn double_unpark_coalesces() {
        let mut sim = Sim::new(0u32, 0);
        let n = NodeId(0);
        sim.spawn("target", |ctx| {
            // First park absorbs both unparks sent at t=1; second park would
            // deadlock, so use a timeout to observe the coalescing.
            assert_eq!(ctx.park(), WakeReason::Unparked);
            assert_eq!(ctx.park_timeout(Dur::us(10.0)), WakeReason::Timeout);
            ctx.world(|w| *w += 1);
        });
        sim.spawn("dbl", move |ctx| {
            ctx.advance(Dur::us(1.0));
            ctx.unpark(n);
            ctx.unpark(n);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, 1);
        assert_eq!(report.wakes_coalesced, 1, "second unpark must coalesce");
    }

    #[test]
    fn unpark_storm_coalesces_to_one_wake() {
        // Five unparks at the same instant to a parked node: one Wake event
        // is queued, four are absorbed, and the node still observes exactly
        // one wakeup (the park/park_timeout semantics are unchanged).
        let mut sim = Sim::new(0u32, 0);
        let n = NodeId(0);
        sim.spawn("target", |ctx| {
            assert_eq!(ctx.park(), WakeReason::Unparked);
            assert_eq!(ctx.park_timeout(Dur::us(10.0)), WakeReason::Timeout);
            ctx.world(|w| *w += 1);
        });
        sim.spawn("storm", move |ctx| {
            ctx.advance(Dur::us(1.0));
            for _ in 0..5 {
                ctx.unpark(n);
            }
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, 1);
        assert_eq!(report.wakes_coalesced, 4);
    }

    #[test]
    fn coalesced_wake_does_not_leak_into_next_park() {
        // After the coalesced wake is consumed, a fresh unpark must queue a
        // fresh Wake (the queued flag is cleared on consumption).
        let mut sim = Sim::new(Vec::<&'static str>::new(), 0);
        let n = NodeId(0);
        sim.spawn("target", |ctx| {
            assert_eq!(ctx.park(), WakeReason::Unparked);
            ctx.world(|w| w.push("first"));
            assert_eq!(ctx.park(), WakeReason::Unparked);
            ctx.world(|w| w.push("second"));
        });
        sim.spawn("waker", move |ctx| {
            ctx.advance(Dur::us(1.0));
            ctx.unpark(n);
            ctx.unpark(n); // coalesced
            ctx.advance(Dur::us(5.0));
            ctx.unpark(n); // must wake the second park
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world, vec!["first", "second"]);
        assert_eq!(report.wakes_coalesced, 1);
    }

    #[test]
    fn tracer_records_advances_and_wakes() {
        let tracer = Tracer::new(2, 4096);
        let mut sim = Sim::new((), 0);
        sim.set_tracer(tracer.clone());
        let n = NodeId(0);
        sim.spawn("sleeper", |ctx| {
            ctx.advance(Dur::us(2.0));
            assert_eq!(ctx.park(), WakeReason::Unparked);
        });
        sim.spawn("waker", move |ctx| {
            ctx.advance(Dur::us(5.0));
            ctx.unpark(n);
        });
        sim.run().unwrap();
        let recs = tracer.snapshot();
        assert!(!recs.is_empty());
        let adv: Vec<_> = recs
            .iter()
            .filter(|r| r.kind == TraceKind::NodeAdvance && r.track == Track::program(0))
            .collect();
        assert_eq!(adv.len(), 1, "one advance on node 0: {adv:?}");
        assert_eq!(adv[0].at, 0);
        assert_eq!(adv[0].dur, 2_000);
        assert!(recs
            .iter()
            .any(|r| r.kind == TraceKind::NodeUnpark && r.at == 5_000));
        assert!(recs
            .iter()
            .any(|r| r.kind == TraceKind::NodePark && r.track == Track::program(0)));
        // Wakes: two startup wakes at t=0 plus the unpark delivery at t=5us.
        assert!(recs
            .iter()
            .any(|r| r.kind == TraceKind::EngineWake && r.at == 5_000 && r.arg == 1));
    }

    #[test]
    fn tracing_disabled_changes_nothing() {
        fn run(trace: bool) -> (Time, u64) {
            let mut sim = Sim::new(0u64, 42);
            if trace {
                sim.set_tracer(Tracer::new(2, 1024));
            }
            let n = NodeId(0);
            sim.spawn("a", |ctx| {
                for _ in 0..20 {
                    ctx.advance(Dur::ns(30));
                }
                ctx.park();
            });
            sim.spawn("b", move |ctx| {
                for _ in 0..10 {
                    ctx.advance(Dur::ns(100));
                }
                ctx.unpark(n);
            });
            let r = sim.run().unwrap();
            (r.end_time, r.events)
        }
        assert_eq!(run(false), run(true), "tracing must not perturb the run");
    }
}
