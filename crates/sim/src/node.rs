//! Node programs: the baton handshake and the [`NodeCtx`] API they program
//! against.
//!
//! Each simulated node's program runs on a dedicated OS thread, but the
//! engine and the node threads pass a *baton* back and forth so that exactly
//! one of them executes at any moment. The handshake is a tiny state machine
//! guarded by a `parking_lot` mutex/condvar pair per node.

use crate::engine::{EvKind, NodeId, Shared};
use crate::time::{Dur, Time};
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Why a blocked node program resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// The requested virtual-time span elapsed (for [`NodeCtx::advance`] and
    /// the timeout arm of [`NodeCtx::park_timeout`]).
    Timeout,
    /// Another node or a scheduled event called `unpark` on this node.
    Unparked,
}

/// What a node program hands back to the engine when it yields.
///
/// The `until` fields exist for `Debug` diagnostics; scheduling state is
/// recorded by the node-side `note_*` calls before the yield, so the engine
/// itself never reads them.
#[derive(Debug)]
#[allow(dead_code)]
pub(crate) enum Yield {
    /// Charge virtual time: wake unconditionally at `until`. Unparks that
    /// arrive while sleeping are latched as a pending signal.
    Sleep {
        /// Absolute wake time.
        until: Time,
    },
    /// Block until some event unparks this node.
    Park,
    /// Block until unparked or until `until`, whichever comes first.
    ParkTimeout {
        /// Absolute timeout instant.
        until: Time,
    },
    /// The program returned normally.
    Done,
    /// The program panicked; payload is the stringified panic message.
    Panicked(String),
}

/// Baton slot contents.
enum Slot {
    /// Neither side has anything for the other (engine owns the baton).
    Idle,
    /// Engine granted the node the right to run, at virtual time `at`.
    Run { at: Time, reason: WakeReason },
    /// Engine is tearing the simulation down; the node thread must exit.
    Exit,
    /// Node handed control back to the engine.
    Yielded(Yield),
}

/// Panic payload used to unwind a node thread during teardown.
pub(crate) struct ShutdownToken;

/// One node's half-duplex rendezvous channel with the engine.
pub(crate) struct Baton {
    slot: Mutex<Slot>,
    cv: Condvar,
}

impl Baton {
    pub(crate) fn new() -> Arc<Baton> {
        Arc::new(Baton {
            slot: Mutex::new(Slot::Idle),
            cv: Condvar::new(),
        })
    }

    /// Engine side: hand the baton to the node and block until it yields.
    pub(crate) fn resume(&self, at: Time, reason: WakeReason) -> Yield {
        let mut slot = self.slot.lock();
        debug_assert!(matches!(*slot, Slot::Idle), "resume: baton not idle");
        *slot = Slot::Run { at, reason };
        self.cv.notify_one();
        loop {
            match &*slot {
                Slot::Yielded(_) => break,
                _ => self.cv.wait(&mut slot),
            }
        }
        match std::mem::replace(&mut *slot, Slot::Idle) {
            Slot::Yielded(y) => y,
            _ => unreachable!(),
        }
    }

    /// Engine side: tell a blocked node thread to unwind and exit.
    pub(crate) fn exit(&self) {
        let mut slot = self.slot.lock();
        *slot = Slot::Exit;
        self.cv.notify_one();
    }

    /// Parallel-mode: grant the baton to a node *without* blocking for its
    /// yield (the granting thread is another node thread that continues as
    /// the shard's driver or goes to sleep itself). The target must be idle.
    pub(crate) fn grant(&self, at: Time, reason: WakeReason) {
        let mut slot = self.slot.lock();
        debug_assert!(matches!(*slot, Slot::Idle), "grant: baton not idle");
        *slot = Slot::Run { at, reason };
        self.cv.notify_one();
    }

    /// Parallel-mode: give the baton back without publishing a yield (the
    /// yield was already consumed by the shard drive loop). Only replaces a
    /// `Run`; a concurrent teardown `Exit` is preserved so the thread still
    /// unwinds at its next wait.
    pub(crate) fn release(&self) {
        let mut slot = self.slot.lock();
        if matches!(*slot, Slot::Run { .. }) {
            *slot = Slot::Idle;
        }
    }

    /// Node side: wait for the first `Run` grant (program start).
    pub(crate) fn wait_for_start(&self) -> (Time, WakeReason) {
        self.wait_for_run()
    }

    /// Node side: publish `y` and block until the engine grants `Run` again.
    /// `Done`/`Panicked` yields never resume; callers must not wait after
    /// publishing them (see [`Baton::finish`]).
    fn yield_and_wait(&self, y: Yield) -> (Time, WakeReason) {
        {
            let mut slot = self.slot.lock();
            debug_assert!(
                matches!(*slot, Slot::Run { .. }),
                "yield: node does not hold baton"
            );
            *slot = Slot::Yielded(y);
            self.cv.notify_one();
        }
        self.wait_for_run()
    }

    /// Node side: publish a terminal yield (`Done`/`Panicked`) and return.
    pub(crate) fn finish(&self, y: Yield) {
        let mut slot = self.slot.lock();
        *slot = Slot::Yielded(y);
        self.cv.notify_one();
    }

    pub(crate) fn wait_for_run(&self) -> (Time, WakeReason) {
        let mut slot = self.slot.lock();
        loop {
            match &*slot {
                Slot::Run { at, reason } => {
                    let out = (*at, *reason);
                    // Leave `Run` in place: it marks that the node holds the
                    // baton until it yields again.
                    return out;
                }
                Slot::Exit => {
                    drop(slot);
                    std::panic::resume_unwind(Box::new(ShutdownToken));
                }
                _ => self.cv.wait(&mut slot),
            }
        }
    }
}

/// What one step of a parallel shard's drive loop produced.
pub(crate) enum Drive {
    /// The driving node's own wake came up while it was driving: it resumes
    /// running directly, with zero baton hand-offs.
    SelfRun(Time, WakeReason),
    /// The baton was granted to some other node (or the shard went idle at a
    /// window barrier and another thread now drives); the caller must wait
    /// for its own next `Run` grant.
    Handed,
    /// The run is over (finished or failed); the caller must wait on its
    /// baton for the teardown `Exit`.
    Shutdown,
}

/// Parallel-mode hook: lets a yielding node thread *keep executing the shard
/// event loop* instead of handing off to a dedicated engine thread. Erased
/// to a trait object so [`NodeCtx`] stays `W: Send` while the concrete
/// driver requires the world to be shardable.
pub(crate) trait ShardDriver<W: Send + 'static>: Send + Sync {
    /// Drive the owning shard until `me` (when given) is woken — returning
    /// [`Drive::SelfRun`] — or the baton moves elsewhere.
    fn drive(&self, me: Option<NodeId>) -> Drive;
}

/// Handle through which a node program interacts with the simulation.
///
/// A `NodeCtx` is handed (by mutable reference) to the node program closure.
/// All methods that touch virtual time are *explicit*: wall-clock time spent
/// computing inside the closure costs nothing; only [`NodeCtx::advance`]
/// moves this node's clock.
pub struct NodeCtx<W: Send + 'static> {
    pub(crate) id: NodeId,
    pub(crate) num_nodes: usize,
    pub(crate) now: Time,
    pub(crate) shared: Arc<Shared<W>>,
    pub(crate) baton: Arc<Baton>,
    pub(crate) rng: SmallRng,
    /// Set only in parallel runs: yields become "release the baton and keep
    /// driving the shard" instead of a hand-off to the engine thread.
    pub(crate) driver: Option<Arc<dyn ShardDriver<W>>>,
}

impl<W: Send + 'static> NodeCtx<W> {
    pub(crate) fn new(
        id: NodeId,
        num_nodes: usize,
        seed: u64,
        shared: Arc<Shared<W>>,
        baton: Arc<Baton>,
    ) -> Self {
        // Mix the node id into the master seed so per-node streams differ.
        let node_seed = seed ^ (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        NodeCtx {
            id,
            num_nodes,
            now: Time::ZERO,
            shared,
            baton,
            rng: SmallRng::seed_from_u64(node_seed),
            driver: None,
        }
    }

    /// Yield to whatever runs this node's shard. Serial: publish the yield
    /// and block for the engine thread (two context switches). Parallel:
    /// release the baton and *become* the shard's driver — if this node's
    /// own wake surfaces while driving, it resumes with zero switches.
    fn yield_to_engine(&mut self, y: Yield) -> (Time, WakeReason) {
        match &self.driver {
            None => self.baton.yield_and_wait(y),
            Some(driver) => {
                let driver = driver.clone();
                self.baton.release();
                match driver.drive(Some(self.id)) {
                    Drive::SelfRun(t, reason) => (t, reason),
                    Drive::Handed | Drive::Shutdown => self.baton.wait_for_run(),
                }
            }
        }
    }

    /// This node's id (dense, `0..num_nodes`).
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total number of node programs in the simulation.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Current virtual time at this node.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Deterministic per-node random number generator.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Charge `d` of virtual time to this node (e.g. CPU work, an I/O-bus
    /// access, a cache flush). Scheduled events whose time falls within the
    /// span execute while this node "computes"; unparks arriving meanwhile
    /// are latched and delivered by the next `park`/`park_timeout`.
    ///
    /// When nothing else could run inside the span — no pending event at or
    /// before `now + d`, no latched unpark — the clock moves under a single
    /// uncontended lock acquire without handing the baton to the engine
    /// (see `Shared::try_fast_advance`); virtual-time behavior is identical
    /// either way.
    pub fn advance(&mut self, d: Dur) {
        let until = self.now + d;
        if self.shared.try_fast_advance(self.id, until) {
            self.now = until;
            return;
        }
        self.shared.note_sleep(self.id, until);
        let (t, _) = self.yield_to_engine(Yield::Sleep { until });
        debug_assert_eq!(t, until);
        self.now = t;
    }

    /// Access the world and charge virtual time in one combined operation:
    /// `f` returns `(result, cost)` and the cost is charged as by
    /// [`NodeCtx::advance`], all under a single lock acquire when the fast
    /// path applies. A zero cost charges nothing and never yields (use it
    /// for error arms that abort before touching the hardware).
    pub fn world_then_advance<R>(&mut self, f: impl FnOnce(&mut W) -> (R, Dur)) -> R {
        let (r, until, fast) = self.shared.world_charge(self.id, self.now, f);
        if fast {
            self.now = until;
            return r;
        }
        self.shared.note_sleep(self.id, until);
        let (t, _) = self.yield_to_engine(Yield::Sleep { until });
        debug_assert_eq!(t, until);
        self.now = t;
        r
    }

    /// Block until another node or an event calls unpark on this node.
    /// Consecutive unparks coalesce (as with `std::thread::park`). Returns
    /// immediately if a signal is already pending.
    pub fn park(&mut self) -> WakeReason {
        if self.shared.take_signal(self.id) {
            return WakeReason::Unparked;
        }
        self.shared.note_park(self.id, None);
        let (t, reason) = self.yield_to_engine(Yield::Park);
        self.now = t;
        reason
    }

    /// Block until unparked, but at most for `d` of virtual time.
    ///
    /// When the deadline precedes every queued event and no signal is
    /// latched, nothing can unpark this node before the timeout, so the
    /// park degenerates to a timed advance and takes the same zero-handoff
    /// fast path as [`NodeCtx::advance`]: one uncontended lock acquire, no
    /// baton exchange, and the elided timeout `Wake` event is counted so
    /// schedules stay byte-identical with the slow path.
    pub fn park_timeout(&mut self, d: Dur) -> WakeReason {
        if self.shared.take_signal(self.id) {
            return WakeReason::Unparked;
        }
        let until = self.now + d;
        // No other node runs while we hold the baton, so no signal can
        // appear between the check above and the fast-path attempt.
        if self.shared.try_fast_advance(self.id, until) {
            self.now = until;
            return WakeReason::Timeout;
        }
        self.shared.note_park(self.id, Some(until));
        let (t, reason) = self.yield_to_engine(Yield::ParkTimeout { until });
        self.now = t;
        reason
    }

    /// Unpark node `target`: if it is parked it becomes runnable *now*;
    /// otherwise the signal is latched for its next park.
    pub fn unpark(&mut self, target: NodeId) {
        self.shared.unpark(target, self.now);
    }

    /// Access the shared world state (the simulated hardware). No virtual
    /// time is charged; pair with [`NodeCtx::advance`] to model cost.
    pub fn world<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        self.shared.with_world(f)
    }

    /// Schedule `f` to run as an engine event `after` from now.
    pub fn schedule(
        &self,
        after: Dur,
        f: impl FnOnce(&mut crate::engine::EventCtx<'_, W>) + Send + 'static,
    ) {
        self.shared.schedule(self.now + after, EvKind::call(f));
    }

    /// Schedule an allocation-free event `after` from now (see
    /// [`EventCtx::schedule_hot`](crate::engine::EventCtx::schedule_hot)).
    pub fn schedule_hot(&self, after: Dur, f: crate::engine::HotFn<W>, a: u64, b: u64) {
        self.shared
            .schedule(self.now + after, EvKind::Hot { f, a, b });
    }
}
