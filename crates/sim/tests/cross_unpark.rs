//! Regression: cross-shard unparks deferred to a window barrier must each
//! deliver a wake, even when several target the same node in one window.
//!
//! The original barrier applied deferred unparks back-to-back with the
//! local unpark primitive; the second of two unparks for a still-parked
//! node coalesced against the first's in-flight wake — a wake the serial
//! interleaving delivers (the target always runs in between) — and the
//! target deadlocked. The barrier now replays each unpark as a sync event
//! at its own timestamp, requeuing behind any in-flight wake
//! (`replay_unpark`). This sweep covers the original failing shapes:
//! a pair split across shards (pairs=1, shards=2) and a split pair whose
//! shard clock ran ahead via intra-shard neighbors (pairs=3, shards=2).

use sp_sim::{Dur, NodeId, Sim};

fn pingpong(pairs: usize, rounds: u64, shards: usize) -> (u64, u64) {
    let mut sim = Sim::new((), 1);
    for p in 0..pairs {
        let sleeper = NodeId(2 * p);
        sim.spawn(format!("sleeper{p}"), move |ctx| {
            for _ in 0..rounds {
                ctx.park();
            }
        });
        sim.spawn(format!("waker{p}"), move |ctx| {
            for _ in 0..rounds {
                ctx.advance(Dur::ns(100));
                ctx.unpark(sleeper);
                ctx.advance(Dur::ns(50));
            }
        });
    }
    let report = if shards <= 1 {
        sim.run().unwrap()
    } else {
        sim.run_parallel(shards).unwrap()
    };
    (report.end_time.as_ns(), report.events)
}

#[test]
fn repeated_cross_shard_unparks_all_wake() {
    for pairs in 1..4usize {
        for rounds in 1..40u64 {
            let serial = pingpong(pairs, rounds, 1);
            for shards in [2usize, 4] {
                assert_eq!(
                    pingpong(pairs, rounds, shards),
                    serial,
                    "pairs={pairs} rounds={rounds} shards={shards}"
                );
            }
        }
    }
}
