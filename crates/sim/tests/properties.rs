//! Property tests on the engine's core guarantees: global time order,
//! determinism, and park/unpark liveness under arbitrary schedules.

use proptest::prelude::*;
use sp_sim::{Dur, NodeId, Sim};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// World mutations from any mix of node advances and scheduled events
    /// are observed in non-decreasing virtual-time order.
    #[test]
    fn observations_in_time_order(
        steps in prop::collection::vec((0usize..4, 1u64..5000), 1..120),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new(Vec::<u64>::new(), seed);
        // Partition steps among 4 nodes.
        let mut per_node: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for (node, d) in steps {
            per_node[node].push(d);
        }
        for (i, durs) in per_node.into_iter().enumerate() {
            sim.spawn(format!("n{i}"), move |ctx| {
                for d in durs {
                    ctx.advance(Dur::ns(d));
                    let t = ctx.now().as_ns();
                    ctx.world(|w| w.push(t));
                    // Also schedule an event that records its own time.
                    ctx.schedule(Dur::ns(d / 2), move |e| {
                        let at = e.now().as_ns();
                        e.world().push(at);
                    });
                }
            });
        }
        let report = sim.run().unwrap();
        let times = report.world;
        for w in times.windows(2) {
            prop_assert!(w[0] <= w[1], "out of order: {} then {}", w[0], w[1]);
        }
    }

    /// Same seed and program ⇒ identical event counts and end times.
    #[test]
    fn deterministic_replay(
        steps in prop::collection::vec(1u64..2000, 1..60),
        seed in any::<u64>(),
    ) {
        let run = |steps: Vec<u64>, seed: u64| {
            let mut sim = Sim::new(0u64, seed);
            for i in 0..3usize {
                let steps = steps.clone();
                sim.spawn(format!("n{i}"), move |ctx| {
                    for &d in &steps {
                        ctx.advance(Dur::ns(d + i as u64));
                        ctx.world(|w| *w = w.wrapping_mul(31).wrapping_add(d));
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.world, r.end_time, r.events)
        };
        prop_assert_eq!(run(steps.clone(), seed), run(steps, seed));
    }

    /// Every park is matched by an unpark from a partner: no deadlock, and
    /// the parked node always resumes.
    #[test]
    fn matched_park_unpark_always_completes(rounds in 1usize..40, seed in any::<u64>()) {
        let mut sim = Sim::new(0u32, seed);
        let sleeper = NodeId(0);
        sim.spawn("sleeper", move |ctx| {
            for _ in 0..rounds {
                ctx.park();
                ctx.world(|w| *w += 1);
            }
        });
        sim.spawn("waker", move |ctx| {
            for _ in 0..rounds {
                ctx.advance(Dur::ns(100));
                ctx.unpark(sleeper);
                // Wait long enough that the signal cannot race the next
                // park (unparks latch, so even back-to-back is safe; the
                // advance just varies the interleaving).
                ctx.advance(Dur::ns(50));
            }
        });
        let report = sim.run().unwrap();
        prop_assert_eq!(report.world, rounds as u32);
    }

    /// park_timeout always resumes by its deadline even with no unpark.
    #[test]
    fn park_timeout_bounded(timeouts in prop::collection::vec(1u64..10_000, 1..30)) {
        let total: u64 = timeouts.iter().sum();
        let mut sim = Sim::new((), 1);
        sim.spawn("t", move |ctx| {
            for d in timeouts {
                let before = ctx.now();
                ctx.park_timeout(Dur::ns(d));
                assert_eq!((ctx.now() - before).as_ns(), d);
            }
        });
        let report = sim.run().unwrap();
        prop_assert_eq!(report.end_time.as_ns(), total);
    }
}
