//! Streaming tail-latency digest: a fixed-memory quantile sketch.
//!
//! Replaces sort-everything percentile code in the experiment binaries: the
//! sketch holds one `u64` per logarithmic bucket (a few thousand buckets
//! covering the full `u64` nanosecond range) regardless of how many samples
//! it absorbs, so a millions-of-flows workload generator can stream RTTs
//! through it without ever materialising the sample set.
//!
//! The design follows the DDSketch construction: bucket `i` covers
//! `(gamma^(i-1), gamma^i]` with `gamma = (1 + ALPHA) / (1 - ALPHA)`, and a
//! bucket's midpoint estimate `2 * gamma^i / (1 + gamma)` is within `ALPHA`
//! relative error of every value in the bucket. Quantiles inherit that
//! guarantee: any reported quantile is within `ALPHA` (0.5%) of the exact
//! rank statistic. Exact min/max are tracked on the side so the extreme
//! quantiles clamp to observed values.

/// Relative-accuracy target of the sketch (0.5%, comfortably inside the 1%
/// bound the experiment binaries advertise).
pub const ALPHA: f64 = 0.005;

/// A fixed-memory quantile digest over `u64` nanosecond samples.
#[derive(Debug, Clone)]
pub struct Digest {
    /// Log-bucket counts; index per the DDSketch mapping.
    buckets: Vec<u64>,
    /// Samples equal to zero (the log mapping starts at 1).
    zeros: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    gamma: f64,
    ln_gamma: f64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    /// An empty digest with the default [`ALPHA`] accuracy.
    pub fn new() -> Digest {
        let gamma = (1.0 + ALPHA) / (1.0 - ALPHA);
        let ln_gamma = gamma.ln();
        // Enough buckets for the full u64 range: ln(2^64) / ln(gamma).
        let buckets = (64.0 * std::f64::consts::LN_2 / ln_gamma).ceil() as usize + 2;
        Digest {
            buckets: vec![0; buckets],
            zeros: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            gamma,
            ln_gamma,
        }
    }

    fn index(&self, v: u64) -> usize {
        debug_assert!(v > 0);
        let i = ((v as f64).ln() / self.ln_gamma).ceil();
        (i.max(0.0) as usize).min(self.buckets.len() - 1)
    }

    /// Add one observation (nanoseconds).
    pub fn observe(&mut self, v: u64) {
        if v == 0 {
            self.zeros += 1;
        } else {
            let i = self.index(v);
            self.buckets[i] += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another digest into this one (same accuracy by construction).
    pub fn merge(&mut self, other: &Digest) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation, nanoseconds (0 when empty). Exact.
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, nanoseconds. Exact.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean observation, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`), nanoseconds, within [`ALPHA`]
    /// relative error of the exact rank statistic. Matches the nearest-rank
    /// definition `sorted[ceil(q * count) - 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q)
            .ceil()
            .clamp(1.0, self.count as f64) as u64;
        if target <= self.zeros {
            return 0;
        }
        let mut seen = self.zeros;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let est = 2.0 * self.gamma.powi(i as i32) / (1.0 + self.gamma);
                return (est.round() as u64).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* generator (the workspace has no RNG
    /// dependency; this is the same construction the parallel tests use).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let target = ((sorted.len() as f64) * q)
            .ceil()
            .clamp(1.0, sorted.len() as f64) as usize;
        sorted[target - 1]
    }

    fn rel_err(approx: u64, exact: u64) -> f64 {
        if exact == 0 {
            approx as f64
        } else {
            (approx as f64 - exact as f64).abs() / exact as f64
        }
    }

    #[test]
    fn empty_digest_is_zero() {
        let d = Digest::new();
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile_ns(0.5), 0);
        assert_eq!(d.mean_ns(), 0);
        assert_eq!(d.min_ns(), 0);
    }

    #[test]
    fn zeros_and_extremes() {
        let mut d = Digest::new();
        for _ in 0..90 {
            d.observe(0);
        }
        for _ in 0..10 {
            d.observe(1_000_000);
        }
        assert_eq!(d.quantile_ns(0.5), 0);
        assert!(rel_err(d.quantile_ns(0.99), 1_000_000) <= ALPHA);
        assert_eq!(d.max_ns(), 1_000_000);
        assert_eq!(d.min_ns(), 0);
    }

    #[test]
    fn fixed_memory_footprint() {
        let mut d = Digest::new();
        let cap = d.buckets.len();
        let mut rng = Rng(0x1234_5678);
        for _ in 0..100_000 {
            d.observe(rng.next() >> 20);
        }
        assert_eq!(d.buckets.len(), cap, "bucket count must never grow");
        assert!(cap < 6_000, "sketch must stay a few thousand buckets");
    }

    #[test]
    fn merge_matches_single_digest() {
        let mut a = Digest::new();
        let mut b = Digest::new();
        let mut whole = Digest::new();
        let mut rng = Rng(42);
        for i in 0..10_000u64 {
            let v = rng.next() % 1_000_000;
            whole.observe(v);
            if i % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(a.quantile_ns(q), whole.quantile_ns(q));
        }
    }

    /// The acceptance bound: on one million samples drawn from a
    /// heavy-tailed latency-like mixture, p50/p99/p999 agree with the
    /// exact sorted percentiles within 1% relative error.
    #[test]
    fn digest_quantile_error_within_one_percent() {
        let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
        let mut samples: Vec<u64> = Vec::with_capacity(1_000_000);
        let mut d = Digest::new();
        for i in 0..1_000_000u64 {
            // Mixture: a uniform body, a multiplicative heavy tail, and
            // rare large spikes — roughly what congested RTTs look like.
            let u = rng.next();
            let v = match i % 100 {
                0..=89 => 1_000 + u % 50_000,
                90..=98 => 50_000 + (u % 1_000) * (u >> 54),
                _ => 1_000_000 + u % 100_000_000,
            };
            samples.push(v);
            d.observe(v);
        }
        samples.sort_unstable();
        assert_eq!(d.count(), 1_000_000);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            let approx = d.quantile_ns(q);
            let err = rel_err(approx, exact);
            assert!(
                err <= 0.01,
                "q={q}: exact {exact} approx {approx} rel err {err:.4}"
            );
        }
        assert_eq!(d.max_ns(), *samples.last().unwrap());
        assert_eq!(d.min_ns(), samples[0]);
    }
}
