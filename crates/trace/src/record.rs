//! The plain-old-data trace record and its vocabulary ([`Kind`], [`Track`],
//! [`Phase`]).
//!
//! Records are fixed-size copyable structs so the recorder ring buffer never
//! allocates per event. Timestamps are raw virtual-time nanoseconds (`u64`),
//! not `sp_sim::Time`, so this crate sits below every other workspace crate
//! and all of them can depend on it without cycles.

/// How a record should be interpreted (and rendered by exporters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// A point event: `at` is the instant, `dur` is zero.
    Instant,
    /// A duration event: `[at, at + dur)` in virtual time.
    Span,
    /// A sampled value: `arg` is the value at time `at`.
    Counter,
}

/// What happened. Each kind has a fixed [`Phase`] and a stable display name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum Kind {
    // --- engine ---
    /// A parked/sleeping node became runnable (dispatch of a `Wake` event).
    EngineWake,
    /// Dispatch of a boxed-closure event.
    EngineCall,
    /// Dispatch of an allocation-free hot event.
    EngineHot,
    /// A node charged virtual time; `arg` is 1 when the single-lock fast
    /// path served the advance, 0 when the baton was handed to the engine.
    NodeAdvance,
    /// A node blocked in `park`/`park_timeout`; `arg` is 1 for a timeout arm.
    NodePark,
    /// An unpark was queued as a wake event for a parked node.
    NodeUnpark,
    /// Cumulative count of unparks coalesced into an already-queued wake
    /// for this node (the storm-coalescing optimisation made observable).
    WakeCoalesced,
    /// A parallel run completed a conservative lookahead window: all shards
    /// reached the barrier and the horizon advanced. `arg` is the barrier
    /// round number.
    ShardBarrier,
    /// The active portion of one lookahead window on one shard: window
    /// start to the shard's local clock at barrier arrival. `arg` is the
    /// number of events the shard executed inside the window.
    ShardWindow,
    /// The idle tail of one lookahead window on one shard: the shard's
    /// local clock at barrier arrival to the window horizon (time spent
    /// waiting for slower shards). `arg` is the barrier round number.
    ShardWait,
    /// A cross-shard sync event was applied on the destination shard.
    /// `arg` is the event's scheduled virtual time.
    ShardSyncApply,
    /// A shard's event-heap depth sampled at barrier arrival.
    ShardHeapDepth,

    // --- host <-> adapter (MicroChannel side) ---
    /// Host CPU built a send-FIFO entry: memcpy + cache-line flush.
    /// `arg` is the packet's wire bytes.
    HostWrite,
    /// Host CPU doorbell: one programmed-I/O write to the adapter.
    HostDoorbell,
    /// Host CPU polled the receive FIFO and found a packet: memcpy out +
    /// flush. `arg` is the packet's wire bytes.
    HostPollHit,
    /// Host CPU polled the receive FIFO and found it empty.
    HostPollEmpty,
    /// Host CPU flushed a batch of lazy FIFO pops to the adapter (one PIO
    /// write covering `arg` accumulated pops).
    HostLazyPop,

    // --- adapter firmware / DMA ---
    /// Adapter firmware serviced a send-FIFO entry and DMAed it onto the
    /// link. `arg` is wire bytes.
    FwSend,
    /// Adapter firmware received a packet from the link and DMAed it into
    /// the receive FIFO. `arg` is wire bytes.
    FwRecv,
    /// A packet landed in a node's receive FIFO. `arg` is wire bytes.
    RecvDeliver,
    /// A packet was dropped: receive FIFO full. `arg` is wire bytes.
    RecvDrop,
    /// Receive-FIFO occupancy (entries) sampled after a delivery.
    RecvOccupancy,

    // --- switch fabric ---
    /// One packet's fabric traversal, injection start to ejection finish.
    /// `arg` is the destination node.
    SwitchHop,
    /// A link was busy serializing one packet (injection or ejection side,
    /// per the record's track). `arg` is wire bytes.
    LinkBusy,
    /// The fabric dropped a packet (fault injection). `arg` is wire bytes.
    SwitchDrop,
    /// The fabric delayed a packet (fault injection). `arg` is wire bytes.
    SwitchDelayed,
    /// The fabric duplicated a packet (fault injection): a second copy will
    /// reach the destination later. `arg` is wire bytes.
    SwitchDup,
    /// The adaptive route policy steered a packet off the round-robin
    /// candidate, recorded on the chosen cable's track. `arg` is the
    /// occupancy delta dodged: how much later (ns) the round-robin
    /// candidate's first contended link would have freed.
    RouteAdaptive,
    /// Backlog on a fabric link sampled when a packet was scheduled onto
    /// it: nanoseconds until the link frees, measured at injection time.
    LinkBacklog,

    // --- active messages ---
    /// CPU cost of composing and enqueuing a request. `arg` is the
    /// destination node.
    AmRequest,
    /// CPU cost of composing and enqueuing a reply. `arg` is the
    /// destination node.
    AmReply,
    /// One poll of the network: fixed poll overhead. Packet handling is
    /// recorded separately ([`Kind::AmDispatch`]).
    AmPoll,
    /// Header decode + handler dispatch for one received packet. `arg` is
    /// the source node.
    AmDispatch,
    /// A cumulative ack was processed and freed window slots. `arg` packs
    /// `cum | channel << 32` (channel 0 = request, 1 = reply).
    AmAck,
    /// A NACK arrived; go-back-N retransmission of `arg` packets follows.
    AmNackIn,
    /// A NACK was sent for an out-of-order packet. `arg` is the expected
    /// sequence number.
    AmNackOut,
    /// A keep-alive probe was sent. `arg` is the destination node.
    AmProbe,
    /// An idle keep-alive round fired (all peers probed).
    AmKeepalive,
    /// The receiver dropped a duplicate sequenced packet and re-ACKed.
    /// `arg` is the duplicate's sequence number.
    AmDupDrop,
    /// The receiver dropped an out-of-order sequenced packet. `arg` is the
    /// offending packet's sequence number.
    AmOooDrop,
    /// Go-back-N retransmission: `arg` packets re-entered the wire queue.
    AmRetransmit,
    /// First packet of a bulk-transfer chunk entered the send FIFO. `arg`
    /// is the chunk's starting sequence number.
    AmChunkStart,
    /// Last packet of a bulk-transfer chunk was handed to the adapter.
    /// `arg` is the chunk's final sequence number.
    AmChunkEnd,
    /// A bulk store was initiated. `arg` is the payload length.
    AmStore,
    /// A bulk get was initiated. `arg` is the payload length.
    AmGet,
    /// The adaptive retransmission timeout expired: `arg` packets
    /// (the oldest unacked sequence) re-entered the wire queue.
    AmRtoRtx,
    /// A SACK bitmap revealed receiver-side gaps: `arg` packets were
    /// selectively retransmitted.
    AmSackRtx,
    /// An out-of-order packet was buffered for selective repeat instead of
    /// being dropped. `arg` is its sequence number.
    AmOooHold,
    /// A packet from (or addressed to) a dead incarnation was dropped by
    /// the epoch check. `arg` is the stale epoch.
    AmStaleDrop,
    /// A peer's new incarnation epoch was adopted: receive state reset,
    /// in-flight traffic renumbered. `arg` is the adopted epoch.
    AmEpochAdopt,
    /// This node crashed: all protocol and adapter-FIFO state wiped. `arg`
    /// is the new incarnation epoch.
    AmCrash,
    /// This node finished restarting and resumed polling. `arg` is the
    /// incarnation epoch.
    AmRestart,
    /// First delivered packet of the new incarnation: recovery complete.
    /// `arg` is the recovery time in ns (restart to this delivery).
    AmRecovered,

    // --- user / benchmark marks ---
    /// An application-defined span (e.g. one timed round trip). `arg` is
    /// caller-defined.
    UserSpan,
    /// An application-defined instant. `arg` is caller-defined.
    UserMark,
}

impl Kind {
    /// The phase this kind renders as.
    pub fn phase(self) -> Phase {
        use Kind::*;
        match self {
            NodeAdvance | HostWrite | HostDoorbell | HostPollHit | HostPollEmpty | HostLazyPop
            | FwSend | FwRecv | SwitchHop | LinkBusy | AmRequest | AmReply | AmPoll
            | AmDispatch | UserSpan | ShardWindow | ShardWait => Phase::Span,
            RecvOccupancy | WakeCoalesced | ShardHeapDepth | LinkBacklog => Phase::Counter,
            _ => Phase::Instant,
        }
    }

    /// Stable display name (used by the Chrome exporter and reports).
    pub fn name(self) -> &'static str {
        use Kind::*;
        match self {
            EngineWake => "engine-wake",
            EngineCall => "engine-call",
            EngineHot => "engine-hot",
            NodeAdvance => "advance",
            NodePark => "park",
            NodeUnpark => "unpark",
            WakeCoalesced => "wakes-coalesced",
            ShardBarrier => "shard-barrier",
            ShardWindow => "shard-window",
            ShardWait => "shard-wait",
            ShardSyncApply => "shard-sync-apply",
            ShardHeapDepth => "shard-heap",
            HostWrite => "host-write",
            HostDoorbell => "doorbell",
            HostPollHit => "poll-hit",
            HostPollEmpty => "poll-empty",
            HostLazyPop => "lazy-pop",
            FwSend => "fw-send",
            FwRecv => "fw-recv",
            RecvDeliver => "recv-deliver",
            RecvDrop => "recv-drop",
            RecvOccupancy => "recv-occupancy",
            SwitchHop => "switch-hop",
            LinkBusy => "link-busy",
            SwitchDrop => "switch-drop",
            SwitchDelayed => "switch-delayed",
            SwitchDup => "switch-dup",
            RouteAdaptive => "route-adaptive",
            LinkBacklog => "link-backlog",
            AmRequest => "am-request",
            AmReply => "am-reply",
            AmPoll => "am-poll",
            AmDispatch => "am-dispatch",
            AmAck => "am-ack",
            AmNackIn => "am-nack-in",
            AmNackOut => "am-nack-out",
            AmProbe => "am-probe",
            AmKeepalive => "am-keepalive",
            AmDupDrop => "am-dup-drop",
            AmOooDrop => "am-ooo-drop",
            AmRetransmit => "am-retransmit",
            AmChunkStart => "chunk-start",
            AmChunkEnd => "chunk-end",
            AmStore => "am-store",
            AmGet => "am-get",
            AmRtoRtx => "am-rto-rtx",
            AmSackRtx => "am-sack-rtx",
            AmOooHold => "am-ooo-hold",
            AmStaleDrop => "am-stale-drop",
            AmEpochAdopt => "am-epoch-adopt",
            AmCrash => "am-crash",
            AmRestart => "am-restart",
            AmRecovered => "am-recovered",
            UserSpan => "user-span",
            UserMark => "user-mark",
        }
    }
}

/// Which hardware resource a track models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackKind {
    /// A node's host CPU (the node program).
    Program,
    /// A node's communication adapter (firmware + FIFOs).
    Adapter,
    /// A node's injection link into the switch fabric.
    SwitchInj,
    /// A node's ejection link out of the switch fabric.
    SwitchEj,
    /// The discrete-event engine itself (global, not per node).
    Engine,
    /// An inter-frame cable inside a multi-frame switch fabric (global,
    /// indexed by cable, not owned by any node).
    SwitchXLink,
    /// One shard of the conservative-parallel engine (global, indexed by
    /// shard, not owned by any node).
    Shard,
}

/// A timeline: one per modeled resource. Encoded as a `u32` —
/// `kind << 24 | node` — so records stay plain old data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track(u32);

const TRACK_NODE_MAX: u32 = (1 << 24) - 1;

impl Track {
    /// The engine's global track.
    pub const ENGINE: Track = Track(4 << 24);

    fn node_track(kind: u32, node: usize) -> Track {
        let n = node as u32;
        assert!(n <= TRACK_NODE_MAX, "node index out of track range");
        Track(kind << 24 | n)
    }

    /// Node `node`'s host-CPU track.
    pub fn program(node: usize) -> Track {
        Track::node_track(0, node)
    }

    /// Node `node`'s adapter track.
    pub fn adapter(node: usize) -> Track {
        Track::node_track(1, node)
    }

    /// Node `node`'s injection-link track.
    pub fn switch_inj(node: usize) -> Track {
        Track::node_track(2, node)
    }

    /// Node `node`'s ejection-link track.
    pub fn switch_ej(node: usize) -> Track {
        Track::node_track(3, node)
    }

    /// Inter-frame cable `index`'s track (multi-frame fabrics only).
    pub fn switch_xlink(index: usize) -> Track {
        Track::node_track(5, index)
    }

    /// Shard `index`'s track (conservative-parallel runs only).
    pub fn shard(index: usize) -> Track {
        Track::node_track(6, index)
    }

    /// The resource kind this track models.
    pub fn kind(self) -> TrackKind {
        match self.0 >> 24 {
            0 => TrackKind::Program,
            1 => TrackKind::Adapter,
            2 => TrackKind::SwitchInj,
            3 => TrackKind::SwitchEj,
            5 => TrackKind::SwitchXLink,
            6 => TrackKind::Shard,
            _ => TrackKind::Engine,
        }
    }

    /// The node this track belongs to, or `None` for the engine,
    /// inter-frame cable, and shard tracks (which are global resources).
    pub fn node(self) -> Option<usize> {
        match self.kind() {
            TrackKind::Engine | TrackKind::SwitchXLink | TrackKind::Shard => None,
            _ => Some((self.0 & TRACK_NODE_MAX) as usize),
        }
    }

    /// The cable index of an inter-frame cable track, `None` otherwise.
    pub fn xlink_index(self) -> Option<usize> {
        match self.kind() {
            TrackKind::SwitchXLink => Some((self.0 & TRACK_NODE_MAX) as usize),
            _ => None,
        }
    }

    /// The shard index of a shard track, `None` otherwise.
    pub fn shard_index(self) -> Option<usize> {
        match self.kind() {
            TrackKind::Shard => Some((self.0 & TRACK_NODE_MAX) as usize),
            _ => None,
        }
    }

    /// Human-readable label, e.g. `node 3 adapter`.
    pub fn label(self) -> String {
        match (self.kind(), self.node()) {
            (TrackKind::Program, Some(n)) => format!("node {n} program"),
            (TrackKind::Adapter, Some(n)) => format!("node {n} adapter"),
            (TrackKind::SwitchInj, Some(n)) => format!("node {n} inj link"),
            (TrackKind::SwitchEj, Some(n)) => format!("node {n} ej link"),
            (TrackKind::SwitchXLink, _) => {
                format!("xlink cable {}", self.0 & TRACK_NODE_MAX)
            }
            (TrackKind::Shard, _) => format!("shard {}", self.0 & TRACK_NODE_MAX),
            _ => "engine".to_string(),
        }
    }
}

/// One recorded event: 48 bytes, `Copy`, no heap data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Virtual-time start, nanoseconds.
    pub at: u64,
    /// Duration in nanoseconds (zero for instants and counters).
    pub dur: u64,
    /// Global record sequence number: total order across all rings, so a
    /// merged trace sorts deterministically even at equal timestamps.
    pub seq: u64,
    /// Caller-defined argument (wire bytes, peer node, counter value, ...).
    pub arg: u64,
    /// Which timeline this record belongs to.
    pub track: Track,
    /// What happened.
    pub kind: Kind,
}

impl Record {
    /// Virtual-time end of the record (`at` for instants/counters).
    pub fn end(&self) -> u64 {
        self.at + self.dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_roundtrip() {
        let t = Track::adapter(7);
        assert_eq!(t.kind(), TrackKind::Adapter);
        assert_eq!(t.node(), Some(7));
        assert_eq!(Track::ENGINE.node(), None);
        assert_eq!(Track::ENGINE.kind(), TrackKind::Engine);
        assert_eq!(Track::switch_inj(0).label(), "node 0 inj link");
    }

    #[test]
    fn xlink_track_roundtrip() {
        let t = Track::switch_xlink(9);
        assert_eq!(t.kind(), TrackKind::SwitchXLink);
        assert_eq!(t.node(), None, "cables are not owned by a node");
        assert_eq!(t.xlink_index(), Some(9));
        assert_eq!(Track::switch_inj(9).xlink_index(), None);
        assert_eq!(t.label(), "xlink cable 9");
    }

    #[test]
    fn phases_are_consistent() {
        assert_eq!(Kind::NodeAdvance.phase(), Phase::Span);
        assert_eq!(Kind::RecvDrop.phase(), Phase::Instant);
        assert_eq!(Kind::RecvOccupancy.phase(), Phase::Counter);
        assert_eq!(Kind::WakeCoalesced.phase(), Phase::Counter);
        assert_eq!(Kind::ShardWindow.phase(), Phase::Span);
        assert_eq!(Kind::ShardWait.phase(), Phase::Span);
        assert_eq!(Kind::ShardSyncApply.phase(), Phase::Instant);
        assert_eq!(Kind::ShardHeapDepth.phase(), Phase::Counter);
        assert_eq!(Kind::LinkBacklog.phase(), Phase::Counter);
    }

    #[test]
    fn shard_track_roundtrip() {
        let t = Track::shard(3);
        assert_eq!(t.kind(), TrackKind::Shard);
        assert_eq!(t.node(), None, "shards are not owned by a node");
        assert_eq!(t.shard_index(), Some(3));
        assert_eq!(Track::program(3).shard_index(), None);
        assert_eq!(t.label(), "shard 3");
    }
}
