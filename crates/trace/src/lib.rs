//! `sp-trace`: workspace-wide virtual-time tracing and metrics.
//!
//! Every layer of the simulated SP — the discrete-event engine, the TB2
//! adapter, the switch fabric, and the active-message protocol — records
//! fixed-size [`Record`]s into a shared [`Tracer`] when one is installed.
//! Timestamps are virtual-time nanoseconds, so traces are bit-deterministic
//! across runs and machines.
//!
//! Several consumers sit on top of the recorder:
//!
//! * [`chrome::to_chrome_json`] renders a trace to the Chrome
//!   trace-event JSON array format, loadable in `ui.perfetto.dev`.
//! * [`metrics::Metrics::aggregate`] computes log2 latency histograms,
//!   instant counts, counter high-water marks, and link utilization.
//! * [`series::TimeSeries::sample`] derives periodic gauge time-series
//!   (link occupancy, FIFO depth, in-flight packets, shard heap depth)
//!   with JSON export and ASCII sparklines.
//! * [`digest::Digest`] is a fixed-memory streaming quantile sketch for
//!   tail-latency percentiles (p50/p99/p999) over millions of samples.
//! * [`flight::FlightRecorder`] is a bounded always-on ring that dumps
//!   the last slice of virtual time as a Perfetto trace after a failure.
//! * `sp-bench`'s `trace_rt` module reconstructs the paper's one-word
//!   round-trip cost-attribution table from measured spans.
//!
//! Overhead contract: components hold an `Option<Tracer>`; when it is
//! `None` the per-event cost is one branch — no locks, no allocation —
//! so the engine fast path is unaffected. When tracing is enabled, each
//! record is one short uncontended mutex acquire into a fixed-capacity
//! per-node ring buffer (oldest records overwritten, never reallocated).

#![warn(missing_docs)]

pub mod chrome;
pub mod digest;
pub mod flight;
pub mod metrics;
mod record;
mod ring;
pub mod series;

pub use digest::Digest;
pub use flight::FlightRecorder;
pub use metrics::{Hist, Metrics};
pub use record::{Kind, Phase, Record, Track, TrackKind};
pub use ring::Tracer;
pub use series::{sparkline, Series, TimeSeries};
