//! `sp-trace`: workspace-wide virtual-time tracing and metrics.
//!
//! Every layer of the simulated SP — the discrete-event engine, the TB2
//! adapter, the switch fabric, and the active-message protocol — records
//! fixed-size [`Record`]s into a shared [`Tracer`] when one is installed.
//! Timestamps are virtual-time nanoseconds, so traces are bit-deterministic
//! across runs and machines.
//!
//! Three consumers sit on top of the recorder:
//!
//! * [`chrome::to_chrome_json`] renders a trace to the Chrome
//!   trace-event JSON array format, loadable in `ui.perfetto.dev`.
//! * [`metrics::Metrics::aggregate`] computes log2 latency histograms,
//!   instant counts, counter high-water marks, and link utilization.
//! * `sp-bench`'s `trace_rt` module reconstructs the paper's one-word
//!   round-trip cost-attribution table from measured spans.
//!
//! Overhead contract: components hold an `Option<Tracer>`; when it is
//! `None` the per-event cost is one branch — no locks, no allocation —
//! so the engine fast path is unaffected. When tracing is enabled, each
//! record is one short uncontended mutex acquire into a fixed-capacity
//! per-node ring buffer (oldest records overwritten, never reallocated).

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
mod record;
mod ring;

pub use metrics::{Hist, Metrics};
pub use record::{Kind, Phase, Record, Track, TrackKind};
pub use ring::Tracer;
