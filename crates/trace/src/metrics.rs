//! Metrics aggregation over recorded traces: log2-bucketed latency
//! histograms, counter high-water marks, and per-link utilization.

use crate::record::{Kind, Phase, Record, Track};
use std::collections::BTreeMap;
use std::fmt;

/// A log2-bucketed histogram of nanosecond durations. Bucket `i` holds
/// values in `[2^(i-1), 2^i)` (bucket 0 holds zero).
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(63)
    }

    /// Add one observation (nanoseconds).
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Largest observation, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Sum of all observations, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Upper bound of the bucket containing the `p`-quantile (`0.0..=1.0`),
    /// nanoseconds. Log2 buckets make this exact to a factor of two.
    pub fn quantile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// Aggregated metrics computed from a record slice.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Span-duration histograms keyed by record kind.
    pub spans: BTreeMap<Kind, Hist>,
    /// Instant counts keyed by record kind (drops, nacks, ...).
    pub counts: BTreeMap<Kind, u64>,
    /// High-water marks of counter records, keyed by `(track, kind)`.
    pub high_water: BTreeMap<(Track, Kind), u64>,
    /// Total busy nanoseconds per link track ([`Kind::LinkBusy`] spans).
    pub link_busy: BTreeMap<Track, u64>,
    /// Trace window: earliest record start to latest record end, ns.
    pub window_ns: u64,
    /// Records lost to ring overflow before the snapshot was taken
    /// (see [`crate::Tracer::dropped`]). Non-zero means the aggregates
    /// below describe a truncated trace, not the whole run.
    pub dropped_records: u64,
}

impl Metrics {
    /// Aggregate `records` plus the recorder's ring-overflow count, so a
    /// truncated trace can't masquerade as a complete one.
    pub fn aggregate_with_dropped(records: &[Record], dropped_records: u64) -> Metrics {
        let mut m = Metrics::aggregate(records);
        m.dropped_records = dropped_records;
        m
    }

    /// Aggregate `records` (any order).
    pub fn aggregate(records: &[Record]) -> Metrics {
        let mut m = Metrics::default();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for r in records {
            lo = lo.min(r.at);
            hi = hi.max(r.end());
            match r.kind.phase() {
                Phase::Span => {
                    m.spans.entry(r.kind).or_default().observe(r.dur);
                    if r.kind == Kind::LinkBusy {
                        *m.link_busy.entry(r.track).or_insert(0) += r.dur;
                    }
                }
                Phase::Instant => {
                    *m.counts.entry(r.kind).or_insert(0) += 1;
                }
                Phase::Counter => {
                    let hw = m.high_water.entry((r.track, r.kind)).or_insert(0);
                    *hw = (*hw).max(r.arg);
                }
            }
        }
        if hi > lo {
            m.window_ns = hi - lo;
        }
        m
    }

    /// Utilization of a link track over the trace window, `0.0..=1.0`.
    pub fn link_utilization(&self, track: Track) -> f64 {
        if self.window_ns == 0 {
            return 0.0;
        }
        let busy = self.link_busy.get(&track).copied().unwrap_or(0);
        busy as f64 / self.window_ns as f64
    }
}

fn fmt_us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1_000.0)
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>8} {:>10} {:>10} {:>10}",
            "span (us)", "count", "mean", "p99", "max"
        )?;
        for (kind, h) in &self.spans {
            writeln!(
                f,
                "{:<16} {:>8} {:>10} {:>10} {:>10}",
                kind.name(),
                h.count(),
                fmt_us(h.mean_ns()),
                fmt_us(h.quantile_ns(0.99)),
                fmt_us(h.max_ns()),
            )?;
        }
        if !self.counts.is_empty() {
            writeln!(f, "events:")?;
            for (kind, n) in &self.counts {
                writeln!(f, "  {:<20} {n}", kind.name())?;
            }
        }
        for ((track, kind), hw) in &self.high_water {
            writeln!(f, "high water {} {}: {hw}", track.label(), kind.name())?;
        }
        for track in self.link_busy.keys() {
            writeln!(
                f,
                "utilization {}: {:.1}%",
                track.label(),
                100.0 * self.link_utilization(*track)
            )?;
        }
        if self.dropped_records > 0 {
            writeln!(
                f,
                "WARNING: trace truncated, {} records lost to ring overflow",
                self.dropped_records
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn hist_buckets_powers_of_two() {
        let mut h = Hist::default();
        h.observe(0);
        h.observe(1);
        h.observe(1000);
        h.observe(1024);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_ns(), 1024);
        assert_eq!(h.mean_ns(), (1 + 1000 + 1024) / 4);
        // p=1.0 lands in the bucket of the largest value: 1024 is in
        // [1024, 2048) whose upper bound is 2048.
        assert_eq!(h.quantile_ns(1.0), 2048);
        assert_eq!(h.quantile_ns(0.25), 0);
    }

    #[test]
    fn aggregates_spans_counts_and_high_water() {
        let t = Tracer::new(2, 64);
        t.span(0, 1000, Track::program(0), Kind::AmRequest, 1);
        t.span(0, 3000, Track::program(0), Kind::AmRequest, 1);
        t.instant(10, Track::adapter(1), Kind::RecvDrop, 256);
        t.counter(20, Track::adapter(1), Kind::RecvOccupancy, 5);
        t.counter(30, Track::adapter(1), Kind::RecvOccupancy, 2);
        let m = Metrics::aggregate(&t.snapshot());
        assert_eq!(m.spans[&Kind::AmRequest].count(), 2);
        assert_eq!(m.spans[&Kind::AmRequest].mean_ns(), 2000);
        assert_eq!(m.counts[&Kind::RecvDrop], 1);
        assert_eq!(m.high_water[&(Track::adapter(1), Kind::RecvOccupancy)], 5);
        assert_eq!(m.window_ns, 3000);
    }

    #[test]
    fn reliability_instants_aggregate_as_counts() {
        // The reliability layer's record kinds are all instants: metric
        // aggregation must surface them as per-kind event counts.
        let t = Tracer::new(2, 64);
        t.instant(10, Track::program(0), Kind::AmRtoRtx, 3);
        t.instant(20, Track::program(0), Kind::AmSackRtx, 1);
        t.instant(30, Track::program(1), Kind::AmOooHold, 7);
        t.instant(40, Track::program(1), Kind::AmStaleDrop, 0);
        t.instant(50, Track::program(1), Kind::AmEpochAdopt, 1);
        t.instant(60, Track::program(1), Kind::AmCrash, 1);
        t.instant(70, Track::program(1), Kind::AmRestart, 1);
        t.instant(80, Track::program(1), Kind::AmRecovered, 52_276);
        t.instant(90, Track::program(0), Kind::AmRtoRtx, 2);
        let m = Metrics::aggregate(&t.snapshot());
        assert_eq!(m.counts[&Kind::AmRtoRtx], 2);
        assert_eq!(m.counts[&Kind::AmSackRtx], 1);
        assert_eq!(m.counts[&Kind::AmCrash], 1);
        assert_eq!(m.counts[&Kind::AmRecovered], 1);
        assert!(m.spans.is_empty(), "reliability kinds are instants");
        let display = m.to_string();
        assert!(display.contains("am-rto-rtx"));
        assert!(display.contains("am-recovered"));
    }

    #[test]
    fn link_utilization_from_busy_spans() {
        let t = Tracer::new(2, 64);
        t.span(0, 4000, Track::switch_inj(0), Kind::LinkBusy, 256);
        t.span(6000, 8000, Track::switch_inj(0), Kind::LinkBusy, 256);
        t.span(0, 8000, Track::program(0), Kind::UserSpan, 0);
        let m = Metrics::aggregate(&t.snapshot());
        let u = m.link_utilization(Track::switch_inj(0));
        assert!((u - 0.75).abs() < 1e-9, "utilization {u}");
        let display = m.to_string();
        assert!(display.contains("utilization node 0 inj link: 75.0%"));
    }

    #[test]
    fn dropped_records_surface_in_display() {
        let t = Tracer::new(1, 2);
        for i in 0..5u64 {
            t.instant(i, Track::program(0), Kind::UserMark, i);
        }
        let m = Metrics::aggregate_with_dropped(&t.snapshot(), t.dropped());
        assert_eq!(m.dropped_records, 3);
        assert!(m.to_string().contains("3 records lost to ring overflow"));
        let clean = Metrics::aggregate(&t.snapshot());
        assert!(!clean.to_string().contains("ring overflow"));
    }
}
