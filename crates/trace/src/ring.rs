//! The recorder: per-node fixed-capacity ring buffers behind a cloneable
//! [`Tracer`] handle.
//!
//! Every component that can observe events holds an `Option<Tracer>`; when
//! tracing is off the option is `None` and the cost is a single branch — no
//! locks, no allocation, nothing on the PR-1 fast path. When tracing is on,
//! each record costs one short uncontended mutex acquire on the ring owned
//! by the record's node (the engine's single-runner discipline means rings
//! are effectively single-writer).

use crate::record::{Kind, Record, Track, TrackKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-capacity overwrite-oldest buffer of [`Record`]s.
struct Ring {
    buf: Vec<Record>,
    cap: usize,
    /// Next write position once the buffer has wrapped.
    next: usize,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, r: Record) {
        if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.next] = r;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }
}

struct Shared {
    /// One ring per node plus a final ring for engine-global records.
    rings: Vec<Mutex<Ring>>,
    /// Global record sequence counter (total order across rings).
    seq: AtomicU64,
}

/// Cloneable handle to the trace recorder. All clones share the same rings.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("records", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Tracer {
    /// A recorder for `nodes` nodes with `per_node_capacity` records per
    /// node (plus one engine-global ring of the same capacity). Capacity is
    /// allocated up front; recording never allocates.
    pub fn new(nodes: usize, per_node_capacity: usize) -> Tracer {
        assert!(per_node_capacity > 0, "ring capacity must be positive");
        let rings = (0..nodes + 1)
            .map(|_| Mutex::new(Ring::new(per_node_capacity)))
            .collect();
        Tracer {
            shared: Arc::new(Shared {
                rings,
                seq: AtomicU64::new(0),
            }),
        }
    }

    fn ring_index(&self, track: Track) -> usize {
        let engine = self.shared.rings.len() - 1;
        match track.kind() {
            // Inter-frame cables and shards are global resources like the
            // engine.
            TrackKind::Engine | TrackKind::SwitchXLink | TrackKind::Shard => engine,
            _ => track.node().unwrap_or(engine).min(engine - 1),
        }
    }

    fn push(&self, r: Record) {
        self.shared.rings[self.ring_index(r.track)].lock().push(r);
    }

    fn next_seq(&self) -> u64 {
        self.shared.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Record an instant at virtual time `at` (nanoseconds).
    pub fn instant(&self, at: u64, track: Track, kind: Kind, arg: u64) {
        let seq = self.next_seq();
        self.push(Record {
            at,
            dur: 0,
            seq,
            arg,
            track,
            kind,
        });
    }

    /// Record a span covering virtual time `[begin, end)` (nanoseconds).
    pub fn span(&self, begin: u64, end: u64, track: Track, kind: Kind, arg: u64) {
        let seq = self.next_seq();
        self.push(Record {
            at: begin,
            dur: end.saturating_sub(begin),
            seq,
            arg,
            track,
            kind,
        });
    }

    /// Record a counter sample `value` at virtual time `at` (nanoseconds).
    pub fn counter(&self, at: u64, track: Track, kind: Kind, value: u64) {
        self.instant(at, track, kind, value);
    }

    /// All records so far, merged across rings and sorted by `(at, seq)`.
    /// Non-destructive: recording may continue afterwards.
    pub fn snapshot(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len());
        for ring in &self.shared.rings {
            out.extend_from_slice(&ring.lock().buf);
        }
        out.sort_by_key(|r| (r.at, r.seq));
        out
    }

    /// Total records currently held across all rings.
    pub fn len(&self) -> usize {
        self.shared.rings.iter().map(|r| r.lock().buf.len()).sum()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records lost to ring overflow (oldest-first overwrite).
    pub fn dropped(&self) -> u64 {
        self.shared.rings.iter().map(|r| r.lock().dropped).sum()
    }

    /// Discard all records (capacity and sequence counter are kept).
    pub fn clear(&self) {
        for ring in &self.shared.rings {
            let mut g = ring.lock();
            g.buf.clear();
            g.next = 0;
            g.dropped = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_merge_sorted() {
        let t = Tracer::new(2, 16);
        t.instant(50, Track::program(1), Kind::NodePark, 0);
        t.span(10, 30, Track::program(0), Kind::NodeAdvance, 1);
        t.counter(20, Track::adapter(0), Kind::RecvOccupancy, 3);
        let recs = t.snapshot();
        assert_eq!(recs.len(), 3);
        assert!(recs
            .windows(2)
            .all(|w| (w[0].at, w[0].seq) <= (w[1].at, w[1].seq)));
        assert_eq!(recs[0].at, 10);
        assert_eq!(recs[0].dur, 20);
        assert_eq!(recs[2].kind, Kind::NodePark);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(1, 4);
        for i in 0..10u64 {
            t.instant(i, Track::program(0), Kind::UserMark, i);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let recs = t.snapshot();
        assert_eq!(recs.iter().map(|r| r.arg).collect::<Vec<_>>(), [6, 7, 8, 9]);
    }

    #[test]
    fn clone_shares_rings() {
        let t = Tracer::new(1, 8);
        let t2 = t.clone();
        t.instant(1, Track::program(0), Kind::UserMark, 0);
        t2.instant(2, Track::program(0), Kind::UserMark, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.snapshot()[1].arg, 1);
    }

    #[test]
    fn clear_resets() {
        let t = Tracer::new(1, 2);
        for i in 0..5 {
            t.instant(i, Track::program(0), Kind::UserMark, i);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn out_of_range_node_lands_in_last_node_ring() {
        let t = Tracer::new(2, 4);
        t.instant(0, Track::program(99), Kind::UserMark, 0);
        assert_eq!(t.len(), 1);
    }
}
