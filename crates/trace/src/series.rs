//! Virtual-time time-series sampler: periodic gauge snapshots derived from
//! a recorded trace.
//!
//! The sampler is strictly post-hoc — it reads a [`Record`] slice and never
//! injects events into the engine, so enabling it cannot perturb a run or
//! its golden report hashes. Gauges are derived per fixed virtual-time
//! interval:
//!
//! - **per-link occupancy**: percent of each interval a link spent busy
//!   ([`Kind::LinkBusy`] spans, one series per link track)
//! - **receive-FIFO depth**: carry-forward of [`Kind::RecvOccupancy`]
//!   counter samples, one series per node
//! - **in-flight packets**: [`Kind::SwitchHop`] spans overlapping each
//!   sample instant (packets between injection and ejection)
//! - **retransmits**: cumulative [`Kind::AmRetransmit`] packet count
//! - **per-shard heap depth**: carry-forward of [`Kind::ShardHeapDepth`]
//!   counter samples from parallel runs
//!
//! The JSON export is hand-rolled (the workspace has no JSON dependency)
//! and schema-versioned as `sp-trace-series/v1`; CI pins the schema.

use crate::record::{Kind, Phase, Record};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier embedded in every JSON export.
pub const SERIES_SCHEMA: &str = "sp-trace-series/v1";

/// One named gauge: `(virtual time ns, value)` points at interval ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    /// Gauge name, e.g. `node 0 inj link busy %` or `shard 2 heap`.
    pub name: String,
    /// Samples, one per interval, in increasing time order.
    pub points: Vec<(u64, u64)>,
}

impl Series {
    /// The sampled values without their timestamps.
    pub fn values(&self) -> Vec<u64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Largest sampled value.
    pub fn max(&self) -> u64 {
        self.points.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Compact ASCII sparkline of the sampled values.
    pub fn sparkline(&self) -> String {
        sparkline(&self.values())
    }
}

/// A set of gauges sampled from one trace at a fixed virtual-time interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    /// Sampling interval, virtual nanoseconds.
    pub interval_ns: u64,
    /// Earliest record start in the trace.
    pub start_ns: u64,
    /// Latest record end in the trace.
    pub end_ns: u64,
    /// Gauges in deterministic (name-sorted) order.
    pub series: Vec<Series>,
}

impl TimeSeries {
    /// An empty sampling (no records or zero interval).
    pub fn empty(interval_ns: u64) -> TimeSeries {
        TimeSeries {
            interval_ns,
            start_ns: 0,
            end_ns: 0,
            series: Vec::new(),
        }
    }

    /// Sample `records` (any order) every `interval_ns` of virtual time.
    /// Gauge values are taken at each interval's end; busy percentages
    /// cover the interval itself.
    pub fn sample(records: &[Record], interval_ns: u64) -> TimeSeries {
        if records.is_empty() || interval_ns == 0 {
            return TimeSeries::empty(interval_ns);
        }
        let start = records.iter().map(|r| r.at).min().unwrap_or(0);
        let end = records.iter().map(|r| r.end()).max().unwrap_or(0);
        let span = end.saturating_sub(start).max(1);
        let bins = span.div_ceil(interval_ns) as usize;
        // Sample instants: the end of each interval.
        let ticks: Vec<u64> = (1..=bins as u64).map(|k| start + k * interval_ns).collect();

        let mut gauges: BTreeMap<String, Vec<u64>> = BTreeMap::new();

        // Per-link busy %: overlap of LinkBusy spans with each interval.
        let mut busy: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        let mut busy_names: BTreeMap<u32, String> = BTreeMap::new();
        for r in records.iter().filter(|r| r.kind == Kind::LinkBusy) {
            let key = track_key(r);
            busy_names
                .entry(key)
                .or_insert_with(|| format!("{} busy %", r.track.label()));
            let per_bin = busy.entry(key).or_insert_with(|| vec![0; bins]);
            distribute(per_bin, start, interval_ns, r.at, r.end());
        }
        for (key, per_bin) in busy {
            let name = busy_names[&key].clone();
            let pct = per_bin
                .iter()
                .enumerate()
                .map(|(k, &ns)| {
                    let width = bin_width(start, end, interval_ns, k);
                    100 * ns / width.max(1)
                })
                .collect();
            gauges.insert(name, pct);
        }

        // Carry-forward counters: receive-FIFO depth and shard heap depth.
        sample_counters(records, &ticks, &mut gauges, Kind::RecvOccupancy, |r| {
            r.track.node().map(|n| format!("node {n} recv fifo"))
        });
        sample_counters(records, &ticks, &mut gauges, Kind::ShardHeapDepth, |r| {
            r.track.shard_index().map(|s| format!("shard {s} heap"))
        });

        // In-flight packets: SwitchHop spans covering each sample instant.
        let hops: Vec<&Record> = records
            .iter()
            .filter(|r| r.kind == Kind::SwitchHop)
            .collect();
        if !hops.is_empty() {
            let inflight = ticks
                .iter()
                .map(|&t| hops.iter().filter(|r| r.at <= t && t < r.end()).count() as u64)
                .collect();
            gauges.insert("in-flight packets".to_string(), inflight);
        }

        // Cumulative retransmitted packets (AmRetransmit arg = packet count).
        let mut rts: Vec<(u64, u64)> = records
            .iter()
            .filter(|r| r.kind == Kind::AmRetransmit)
            .map(|r| (r.at, r.arg))
            .collect();
        if !rts.is_empty() {
            rts.sort_unstable();
            let mut cum = 0u64;
            let mut i = 0;
            let series = ticks
                .iter()
                .map(|&t| {
                    while i < rts.len() && rts[i].0 <= t {
                        cum += rts[i].1;
                        i += 1;
                    }
                    cum
                })
                .collect();
            gauges.insert("retransmits (cum)".to_string(), series);
        }

        let series = gauges
            .into_iter()
            .map(|(name, values)| Series {
                name,
                points: ticks.iter().copied().zip(values).collect(),
            })
            .collect();
        TimeSeries {
            interval_ns,
            start_ns: start,
            end_ns: end,
            series,
        }
    }

    /// Find a gauge by exact name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Render as schema-versioned JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.series.len() * 256 + 128);
        write!(
            out,
            "{{\"schema\":\"{SERIES_SCHEMA}\",\"interval_ns\":{},\"start_ns\":{},\"end_ns\":{},\"series\":[",
            self.interval_ns, self.start_ns, self.end_ns
        )
        .unwrap();
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{{\"name\":\"{}\",\"points\":[", s.name).unwrap();
            for (j, (t, v)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "[{t},{v}]").unwrap();
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Raw track id for keying (label is rebuilt on demand).
fn track_key(r: &Record) -> u32 {
    // Tracks encode kind << 24 | index; re-derive a stable key from the
    // public accessors so this stays independent of the encoding.
    let idx = r
        .track
        .node()
        .or(r.track.xlink_index())
        .or(r.track.shard_index())
        .unwrap_or(0) as u32;
    ((r.track.kind() as u32) << 24) | idx
}

/// Width of bin `k` (the last bin may be shorter than the interval).
fn bin_width(start: u64, end: u64, interval_ns: u64, k: usize) -> u64 {
    let lo = start + k as u64 * interval_ns;
    let hi = (lo + interval_ns).min(end.max(lo + 1));
    hi - lo
}

/// Add `[at, end)` overlap nanoseconds into per-bin accumulators.
fn distribute(per_bin: &mut [u64], start: u64, interval_ns: u64, at: u64, end: u64) {
    if end <= at {
        return;
    }
    let first = (at.saturating_sub(start) / interval_ns) as usize;
    let last = ((end - 1).saturating_sub(start) / interval_ns) as usize;
    for k in first..=last.min(per_bin.len() - 1) {
        let lo = start + k as u64 * interval_ns;
        let hi = lo + interval_ns;
        per_bin[k] += end.min(hi) - at.max(lo);
    }
}

/// Carry-forward sampling of one counter kind, one series per track.
fn sample_counters(
    records: &[Record],
    ticks: &[u64],
    gauges: &mut BTreeMap<String, Vec<u64>>,
    kind: Kind,
    name: impl Fn(&Record) -> Option<String>,
) {
    debug_assert_eq!(kind.phase(), Phase::Counter);
    let mut per_track: BTreeMap<String, Vec<(u64, u64, u64)>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.kind == kind) {
        if let Some(n) = name(r) {
            per_track.entry(n).or_default().push((r.at, r.seq, r.arg));
        }
    }
    for (name, mut events) in per_track {
        events.sort_unstable();
        let mut i = 0;
        let mut cur = 0u64;
        let values = ticks
            .iter()
            .map(|&t| {
                while i < events.len() && events[i].0 <= t {
                    cur = events[i].2;
                    i += 1;
                }
                cur
            })
            .collect();
        gauges.insert(name, values);
    }
}

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render values as a compact sparkline scaled to their maximum. An
/// all-zero series renders as a flat baseline.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK_LEVELS[0]
            } else {
                // Nonzero values always clear the baseline glyph.
                let idx = ((v as u128 * 7).div_ceil(max as u128)) as usize;
                SPARK_LEVELS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Track;
    use crate::Tracer;

    fn traced() -> Vec<Record> {
        let t = Tracer::new(2, 256);
        // Link busy: node 0 inj busy for the whole first interval, half
        // the second.
        t.span(0, 1_000, Track::switch_inj(0), Kind::LinkBusy, 256);
        t.span(1_000, 1_500, Track::switch_inj(0), Kind::LinkBusy, 256);
        // FIFO depth on node 1: rises to 3 then drains.
        t.counter(100, Track::adapter(1), Kind::RecvOccupancy, 3);
        t.counter(1_200, Track::adapter(1), Kind::RecvOccupancy, 1);
        // One packet in flight across the first interval boundary.
        t.span(500, 1_500, Track::switch_inj(0), Kind::SwitchHop, 1);
        // A retransmission burst of 4 packets.
        t.instant(1_700, Track::program(0), Kind::AmRetransmit, 4);
        // Shard heap depth from a parallel run.
        t.counter(900, Track::shard(1), Kind::ShardHeapDepth, 7);
        // Stretch the trace window to an even 2 us.
        t.instant(2_000, Track::program(0), Kind::UserMark, 0);
        t.snapshot()
    }

    #[test]
    fn samples_all_gauge_families() {
        let ts = TimeSeries::sample(&traced(), 1_000);
        assert_eq!(ts.start_ns, 0);
        assert_eq!(ts.end_ns, 2_000);
        let busy = ts.get("node 0 inj link busy %").expect("busy gauge");
        assert_eq!(busy.points, vec![(1_000, 100), (2_000, 50)]);
        let fifo = ts.get("node 1 recv fifo").expect("fifo gauge");
        assert_eq!(fifo.points, vec![(1_000, 3), (2_000, 1)]);
        let inflight = ts.get("in-flight packets").expect("in-flight gauge");
        assert_eq!(inflight.points, vec![(1_000, 1), (2_000, 0)]);
        let rts = ts.get("retransmits (cum)").expect("retransmit gauge");
        assert_eq!(rts.points, vec![(1_000, 0), (2_000, 4)]);
        let heap = ts.get("shard 1 heap").expect("shard heap gauge");
        assert_eq!(heap.points, vec![(1_000, 7), (2_000, 7)]);
    }

    #[test]
    fn series_json_schema_is_pinned() {
        let ts = TimeSeries::sample(&traced(), 1_000);
        let json = ts.to_json();
        assert!(json.starts_with("{\"schema\":\"sp-trace-series/v1\","));
        assert!(json.contains("\"interval_ns\":1000"));
        assert!(json.contains("\"start_ns\":0"));
        assert!(json.contains("\"end_ns\":2000"));
        assert!(json.contains("\"series\":[{\"name\":\""));
        assert!(json.contains("\"points\":[[1000,"));
        assert!(json.ends_with("]}"));
        // Deterministic bytes: same records, same JSON.
        assert_eq!(json, TimeSeries::sample(&traced(), 1_000).to_json());
        // Balanced braces/brackets (hand-rolled writer sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_records_yield_empty_sampling() {
        let ts = TimeSeries::sample(&[], 1_000);
        assert!(ts.series.is_empty());
        assert_eq!(
            ts.to_json(),
            "{\"schema\":\"sp-trace-series/v1\",\"interval_ns\":1000,\
             \"start_ns\":0,\"end_ns\":0,\"series\":[]}"
        );
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[0, 1, 4, 8]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Nonzero values never render as the zero baseline.
        assert!(!sparkline(&[8, 1, 8]).contains('▁'));
    }
}
