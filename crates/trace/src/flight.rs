//! Flight recorder: a bounded, always-on trace ring that can dump the last
//! slice of virtual time as a Perfetto trace after a failure.
//!
//! The recorder is just a small [`Tracer`] (overwrite-oldest rings already
//! bound memory) plus a tail-window dump policy. It is cheap enough to
//! leave on for every chaos run: recording is virtual-time-only and never
//! perturbs the simulation, so a run with the recorder installed produces
//! byte-identical reports to one without.

use crate::chrome::to_chrome_json;
use crate::record::Record;
use crate::ring::Tracer;

/// Default tail window dumped after a failure: the last 2 ms of virtual
/// time, comfortably more than one retransmission timeout.
pub const DEFAULT_WINDOW_NS: u64 = 2_000_000;

/// A bounded always-on recorder with a tail-window dump.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    tracer: Tracer,
    window_ns: u64,
}

impl FlightRecorder {
    /// A recorder for `nodes` nodes with `per_node_capacity` records per
    /// ring, dumping the last `window_ns` of virtual time on demand.
    pub fn new(nodes: usize, per_node_capacity: usize, window_ns: u64) -> FlightRecorder {
        FlightRecorder::from_tracer(Tracer::new(nodes, per_node_capacity), window_ns)
    }

    /// Wrap an existing tracer (e.g. a full-trace run that also wants
    /// tail dumps).
    pub fn from_tracer(tracer: Tracer, window_ns: u64) -> FlightRecorder {
        FlightRecorder { tracer, window_ns }
    }

    /// The underlying tracer handle, for installing into an engine.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Records lost to ring overflow (expected in steady state: the rings
    /// only ever hold the tail).
    pub fn dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// The dump's tail window, virtual nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// The records inside the tail window, sorted.
    pub fn tail(&self) -> Vec<Record> {
        let recs = self.tracer.snapshot();
        let last = recs.iter().map(|r| r.end()).max().unwrap_or(0);
        let cutoff = last.saturating_sub(self.window_ns);
        recs.into_iter().filter(|r| r.end() >= cutoff).collect()
    }

    /// Dump the tail window as a Chrome/Perfetto trace JSON string.
    pub fn dump_json(&self) -> String {
        to_chrome_json(&self.tail())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Kind, Track};

    #[test]
    fn dump_keeps_only_the_tail_window() {
        let fr = FlightRecorder::new(1, 1024, 1_000);
        let t = fr.tracer();
        t.instant(0, Track::program(0), Kind::UserMark, 1);
        t.instant(5_000, Track::program(0), Kind::UserMark, 2);
        t.instant(5_800, Track::program(0), Kind::UserMark, 3);
        let tail = fr.tail();
        assert_eq!(
            tail.iter().map(|r| r.arg).collect::<Vec<_>>(),
            [2, 3],
            "records older than the window must be excluded"
        );
        let json = fr.dump_json();
        assert!(json.contains("user-mark"));
        assert!(!json.contains("\"ts\":0.000"));
    }

    #[test]
    fn bounded_memory_under_sustained_load() {
        let fr = FlightRecorder::new(2, 64, 10_000);
        let t = fr.tracer();
        for i in 0..10_000u64 {
            t.instant(i, Track::program((i % 2) as usize), Kind::UserMark, i);
        }
        assert!(t.len() <= 3 * 64, "rings must stay bounded");
        assert!(fr.dropped() > 0, "steady-state overflow is expected");
        let tail = fr.tail();
        assert!(!tail.is_empty());
        assert_eq!(tail.len(), t.len(), "window wider than rings keeps all");
    }

    #[test]
    fn empty_recorder_dumps_empty_trace() {
        let fr = FlightRecorder::new(1, 16, 1_000);
        assert!(fr.tail().is_empty());
        assert!(fr.dump_json().starts_with("[\n"));
    }
}
