//! Chrome trace-event (Perfetto) JSON export.
//!
//! Produces the JSON-array flavour of the Chrome trace-event format, which
//! `ui.perfetto.dev` and `chrome://tracing` both load directly. Virtual-time
//! nanoseconds map to the format's microsecond timestamps with three decimal
//! places, so nanosecond resolution survives the conversion exactly.
//!
//! Track mapping: each node becomes one process (`pid = node + 1`) with up
//! to four named threads — program, adapter, injection link, ejection link —
//! and the engine's global track becomes process 0. Metadata events name
//! every process and thread so the Perfetto timeline is self-describing.

use crate::record::{Phase, Record, Track, TrackKind};
use std::fmt::Write as _;

/// Process id of the shared fabric process holding inter-frame cable
/// threads (far above any per-node pid).
const XLINK_PID: u32 = 1_000_000;

/// `(pid, tid)` for a track, per the mapping described in the module docs.
/// Shard tracks are threads of the engine process (pid 0), one tid per
/// shard above the engine's own event thread.
fn ids(track: Track) -> (u32, u32) {
    match (track.kind(), track.node()) {
        (TrackKind::Program, Some(n)) => (n as u32 + 1, 1),
        (TrackKind::Adapter, Some(n)) => (n as u32 + 1, 2),
        (TrackKind::SwitchInj, Some(n)) => (n as u32 + 1, 3),
        (TrackKind::SwitchEj, Some(n)) => (n as u32 + 1, 4),
        (TrackKind::SwitchXLink, _) => (XLINK_PID, track.xlink_index().unwrap_or(0) as u32 + 1),
        (TrackKind::Shard, _) => (0, track.shard_index().unwrap_or(0) as u32 + 2),
        _ => (0, 1),
    }
}

fn thread_name(track: Track) -> String {
    match track.kind() {
        TrackKind::Program => "program".to_string(),
        TrackKind::Adapter => "adapter".to_string(),
        TrackKind::SwitchInj => "inj link".to_string(),
        TrackKind::SwitchEj => "ej link".to_string(),
        TrackKind::SwitchXLink => "inter-frame cable".to_string(),
        TrackKind::Shard => track.label(),
        TrackKind::Engine => "events".to_string(),
    }
}

fn process_name(track: Track) -> String {
    if track.kind() == TrackKind::SwitchXLink {
        return "switch fabric".to_string();
    }
    match track.node() {
        Some(n) => format!("node {n}"),
        None => "engine".to_string(),
    }
}

/// Nanoseconds to the format's microseconds, exact to 1 ns.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render `records` (as returned by [`crate::Tracer::snapshot`]) to a Chrome
/// trace-event JSON array. The output is deterministic: same records, same
/// bytes.
pub fn to_chrome_json(records: &[Record]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 1024);
    out.push_str("[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };

    // Metadata: name each process/thread once, in first-appearance order.
    let mut seen: Vec<Track> = Vec::new();
    let mut seen_pids: Vec<u32> = Vec::new();
    for r in records {
        if seen.contains(&r.track) {
            continue;
        }
        seen.push(r.track);
        let (pid, tid) = ids(r.track);
        if !seen_pids.contains(&pid) {
            seen_pids.push(pid);
            emit(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    process_name(r.track)
                ),
                &mut out,
            );
        }
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                thread_name(r.track)
            ),
            &mut out,
        );
    }

    for r in records {
        let (pid, tid) = ids(r.track);
        let name = r.kind.name();
        let mut line = String::with_capacity(96);
        match r.kind.phase() {
            Phase::Span => {
                write!(
                    line,
                    "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
                     \"ts\":{},\"dur\":{},\"args\":{{\"arg\":{}}}}}",
                    us(r.at),
                    us(r.dur),
                    r.arg
                )
                .unwrap();
            }
            Phase::Instant => {
                write!(
                    line,
                    "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\
                     \"tid\":{tid},\"ts\":{},\"args\":{{\"arg\":{}}}}}",
                    us(r.at),
                    r.arg
                )
                .unwrap();
            }
            Phase::Counter => {
                write!(
                    line,
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\
                     \"ts\":{},\"args\":{{\"value\":{}}}}}",
                    us(r.at),
                    r.arg
                )
                .unwrap();
            }
        }
        emit(line, &mut out);
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Kind;
    use crate::Tracer;

    fn sample() -> Vec<Record> {
        let t = Tracer::new(2, 64);
        t.span(1_000, 5_300, Track::program(0), Kind::AmRequest, 1);
        t.span(5_300, 9_000, Track::adapter(0), Kind::FwSend, 256);
        t.instant(9_000, Track::adapter(1), Kind::RecvDeliver, 256);
        t.counter(9_000, Track::adapter(1), Kind::RecvOccupancy, 1);
        t.instant(42, Track::ENGINE, Kind::EngineHot, 0);
        t.snapshot()
    }

    #[test]
    fn emits_valid_json_array() {
        let json = to_chrome_json(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // Balanced braces and no trailing comma before the close.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn converts_ns_to_us_exactly() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("\"ts\":1.000"), "missing 1.000 us ts: {json}");
        assert!(json.contains("\"dur\":4.300"), "missing 4.300 us dur");
        assert!(json.contains("\"ts\":0.042"), "sub-us instant lost");
    }

    #[test]
    fn names_processes_and_threads() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("\"name\":\"node 0\""));
        assert!(json.contains("\"name\":\"node 1\""));
        assert!(json.contains("\"name\":\"engine\""));
        assert!(json.contains("\"name\":\"adapter\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn xlink_tracks_form_a_fabric_process() {
        let t = Tracer::new(2, 64);
        t.span(0, 500, Track::switch_xlink(2), Kind::SwitchHop, 1);
        let json = to_chrome_json(&t.snapshot());
        assert!(json.contains("\"name\":\"switch fabric\""));
        assert!(json.contains("\"name\":\"inter-frame cable\""));
        assert!(json.contains(&format!("\"pid\":{XLINK_PID},\"tid\":3")));
    }

    #[test]
    fn shard_tracks_are_engine_threads() {
        let t = Tracer::new(2, 64);
        t.span(0, 10_000, Track::shard(0), Kind::ShardWindow, 42);
        t.span(10_000, 12_000, Track::shard(1), Kind::ShardWait, 1);
        let json = to_chrome_json(&t.snapshot());
        assert!(json.contains("\"name\":\"shard 0\""));
        assert!(json.contains("\"name\":\"shard 1\""));
        assert!(json.contains("\"pid\":0,\"tid\":2"));
        assert!(json.contains("\"pid\":0,\"tid\":3"));
        assert!(json.contains("\"name\":\"shard-window\""));
        assert!(json.contains("\"name\":\"shard-wait\""));
    }

    #[test]
    fn deterministic_bytes() {
        let a = to_chrome_json(&sample());
        let b = to_chrome_json(&sample());
        assert_eq!(a, b);
    }
}
