//! Property tests: arbitrary message batches cross MPL intact, matched by
//! (source, tag), in per-tag FIFO order.

use proptest::prelude::*;
use sp_adapter::SpConfig;
use sp_mpl::{Mpl, MplConfig, MplMachine};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any batch of (tag, length) messages arrives with exact bytes, and
    /// same-tag messages preserve send order.
    #[test]
    fn batches_roundtrip(
        msgs in prop::collection::vec((0u32..4, 0usize..3000), 1..40),
        seed in any::<u64>(),
    ) {
        let mut m = MplMachine::new(SpConfig::thin(2), MplConfig::default(), seed);
        let msgs2 = msgs.clone();
        m.spawn("tx", move |mpl: &mut Mpl<'_>| {
            for (i, (tag, len)) in msgs2.iter().enumerate() {
                let data: Vec<u8> = (0..*len).map(|j| ((i * 31 + j) % 251) as u8).collect();
                mpl.bsend(1, *tag, &data);
            }
            mpl.barrier();
        });
        m.spawn("rx", move |mpl: &mut Mpl<'_>| {
            // Receive per tag, in that tag's send order.
            for tag in 0..4u32 {
                for (i, (t, len)) in msgs.iter().enumerate() {
                    if *t != tag {
                        continue;
                    }
                    let got = mpl.brecv(Some(0), Some(tag));
                    let expect: Vec<u8> = (0..*len).map(|j| ((i * 31 + j) % 251) as u8).collect();
                    assert_eq!(got.data, expect, "message {i} (tag {tag}) corrupted or reordered");
                }
            }
            mpl.barrier();
        });
        m.run().unwrap();
    }

    /// Credit-based flow control never lets the receive FIFO overflow, for
    /// any one-way flood pattern.
    #[test]
    fn flood_never_overflows(sizes in prop::collection::vec(1usize..2000, 1..60)) {
        let mut m = MplMachine::new(SpConfig::thin(2), MplConfig::default(), 7);
        let total = sizes.len();
        m.spawn("tx", move |mpl: &mut Mpl<'_>| {
            for (i, len) in sizes.iter().enumerate() {
                mpl.bsend(1, i as u32, &vec![7u8; *len]);
            }
            mpl.barrier();
        });
        m.spawn("rx", move |mpl: &mut Mpl<'_>| {
            // Receive late and out of order: the flood must be absorbed by
            // flow control, not FIFO capacity.
            mpl.work(sp_sim::Dur::ms(2.0));
            for i in (0..total).rev() {
                let _ = mpl.brecv(Some(0), Some(i as u32));
            }
            mpl.barrier();
        });
        let report = m.run().unwrap();
        prop_assert_eq!(report.world.adapter_stats(1).dropped_overflow, 0);
    }
}
