//! The MPL layer: eager packetizing sends, (source, tag) matching receives,
//! credit-based flow control, and the machine builder.

use crate::config::MplConfig;
use crate::wire::MplWire;
use crate::{MplCtx, MplWorld};
use sp_adapter::{host, SpConfig, MAX_PAYLOAD};
use sp_sim::{NodeId, Sim, SimError, Time};
use std::collections::{HashMap, VecDeque};

/// A completed inbound message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Sending node.
    pub src: usize,
    /// Message tag.
    pub tag: u32,
    /// Message bytes.
    pub data: Vec<u8>,
}

/// Handle for a non-blocking send (eager: complete at call return, like
/// `mpc_send` once the message is buffered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendHandle(u64);

/// Handle for a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvHandle(usize);

/// MPL statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MplStats {
    /// Messages sent.
    pub sends: u64,
    /// Messages received (matched).
    pub recvs: u64,
    /// Packets sent (fragments + credits).
    pub packets_sent: u64,
    /// Times a sender stalled waiting for credits.
    pub credit_stalls: u64,
}

struct OutPeer {
    next_msg_id: u32,
    credits: u32,
}

struct InPeer {
    drained: u32,
}

struct Partial {
    tag: u32,
    total: u32,
    got: u32,
    data: Vec<u8>,
}

enum PostedState {
    Waiting,
    Ready(Msg),
    Consumed,
}

struct Posted {
    src: Option<usize>,
    tag: Option<u32>,
    state: PostedState,
}

/// Per-node MPL endpoint.
pub struct Mpl<'c> {
    ctx: &'c mut MplCtx,
    cfg: MplConfig,
    out: Vec<OutPeer>,
    inn: Vec<InPeer>,
    assembling: HashMap<(usize, u32), Partial>,
    unexpected: VecDeque<Msg>,
    posted: Vec<Posted>,
    stats: MplStats,
}

impl<'c> Mpl<'c> {
    /// Wrap a node context as an MPL endpoint.
    pub fn new(ctx: &'c mut MplCtx, cfg: MplConfig) -> Self {
        let n = ctx.num_nodes();
        let window = cfg.credit_window;
        Mpl {
            ctx,
            cfg,
            out: (0..n)
                .map(|_| OutPeer {
                    next_msg_id: 0,
                    credits: window,
                })
                .collect(),
            inn: (0..n).map(|_| InPeer { drained: 0 }).collect(),
            assembling: HashMap::new(),
            unexpected: VecDeque::new(),
            posted: Vec::new(),
            stats: MplStats::default(),
        }
    }

    /// This node's index.
    pub fn node(&self) -> usize {
        self.ctx.id().0
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.ctx.num_nodes()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Charge CPU work (computation phases).
    pub fn work(&mut self, d: sp_sim::Dur) {
        self.ctx.advance(d);
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MplStats {
        &self.stats
    }

    /// `mpc_bsend`: blocking eager send of `data` with `tag` to `dst`.
    /// Blocks until the message is handed to the adapter (buffer reusable).
    pub fn bsend(&mut self, dst: usize, tag: u32, data: &[u8]) {
        self.ctx.advance(self.cfg.o_send);
        self.stats.sends += 1;
        let msg_id = self.out[dst].next_msg_id;
        self.out[dst].next_msg_id += 1;
        let total = data.len() as u32;
        let mut offset = 0usize;
        let mut pending_doorbell = 0usize;
        loop {
            // Wait for a credit and a FIFO slot, polling to drain inbound
            // traffic (this is what prevents send-send deadlock).
            while self.out[dst].credits == 0 {
                self.stats.credit_stalls += 1;
                if pending_doorbell > 0 {
                    host::ring_doorbell(self.ctx, pending_doorbell);
                    pending_doorbell = 0;
                }
                self.poll();
            }
            while host::send_fifo_free(self.ctx) == 0 {
                if pending_doorbell > 0 {
                    host::ring_doorbell(self.ctx, pending_doorbell);
                    pending_doorbell = 0;
                }
                self.poll();
            }
            let len = (data.len() - offset).min(MAX_PAYLOAD);
            let frag = MplWire::Frag {
                msg_id,
                tag,
                offset: offset as u32,
                total,
                bytes: data[offset..offset + len].into(),
            };
            self.ctx.advance(self.cfg.per_packet_cpu);
            let bytes = frag.payload_bytes();
            host::write_packet(self.ctx, dst, bytes, frag).expect("FIFO slot was checked");
            self.stats.packets_sent += 1;
            self.out[dst].credits -= 1;
            pending_doorbell += 1;
            if pending_doorbell >= self.cfg.doorbell_batch {
                host::ring_doorbell(self.ctx, pending_doorbell);
                pending_doorbell = 0;
            }
            offset += len;
            if offset >= data.len() {
                break;
            }
        }
        if pending_doorbell > 0 {
            host::ring_doorbell(self.ctx, pending_doorbell);
        }
    }

    /// `mpc_send`: non-blocking send. With MPL's eager buffering the
    /// message is on its way when the call returns, so the handle is
    /// already complete; it exists for API fidelity.
    pub fn send(&mut self, dst: usize, tag: u32, data: &[u8]) -> SendHandle {
        self.bsend(dst, tag, data);
        SendHandle(self.stats.sends)
    }

    /// `mpc_recv`: post a non-blocking receive matching `src`/`tag`
    /// (wildcards via `None`).
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u32>) -> RecvHandle {
        // Check the unexpected queue first.
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|m| src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag))
        {
            let msg = self.unexpected.remove(pos).expect("position valid");
            self.posted.push(Posted {
                src,
                tag,
                state: PostedState::Ready(msg),
            });
        } else {
            self.posted.push(Posted {
                src,
                tag,
                state: PostedState::Waiting,
            });
        }
        RecvHandle(self.posted.len() - 1)
    }

    /// `mpc_wait` on a receive: poll until it matches; returns the message.
    pub fn wait(&mut self, h: RecvHandle) -> Msg {
        while matches!(self.posted[h.0].state, PostedState::Waiting) {
            self.poll();
        }
        match std::mem::replace(&mut self.posted[h.0].state, PostedState::Consumed) {
            PostedState::Ready(msg) => msg,
            PostedState::Consumed => panic!("receive handle waited twice"),
            PostedState::Waiting => unreachable!(),
        }
    }

    /// Has this receive completed (without consuming it)?
    pub fn test(&mut self, h: RecvHandle) -> bool {
        if matches!(self.posted[h.0].state, PostedState::Ready(_)) {
            return true;
        }
        self.poll();
        matches!(self.posted[h.0].state, PostedState::Ready(_))
    }

    /// Remove and return the first unexpected message satisfying `pred`
    /// (without posting a receive). Layers built over MPL — like the
    /// Split-C port, which has to *serve* remote-access requests from
    /// within its own calls since MPL has no remote handlers — use this to
    /// drain service traffic.
    pub fn take_unexpected(&mut self, pred: impl Fn(&Msg) -> bool) -> Option<Msg> {
        let pos = self.unexpected.iter().position(pred)?;
        self.unexpected.remove(pos)
    }

    /// `mpc_brecv`: blocking receive.
    pub fn brecv(&mut self, src: Option<usize>, tag: Option<u32>) -> Msg {
        let h = self.recv(src, tag);
        self.wait(h)
    }

    /// Drain the adapter, assembling fragments, matching completed
    /// messages, and returning credits. Returns packets processed.
    pub fn poll(&mut self) -> usize {
        self.ctx.advance(self.cfg.poll_cpu);
        let mut processed = 0;
        while let Some(wpkt) = host::poll_packet(self.ctx) {
            processed += 1;
            let src = wpkt.src;
            match wpkt.payload {
                MplWire::Credit { count } => {
                    self.out[src].credits += count;
                }
                MplWire::Frag {
                    msg_id,
                    tag,
                    offset,
                    total,
                    bytes,
                } => {
                    let p = self
                        .assembling
                        .entry((src, msg_id))
                        .or_insert_with(|| Partial {
                            tag,
                            total,
                            got: 0,
                            data: vec![0u8; total as usize],
                        });
                    p.data[offset as usize..offset as usize + bytes.len()].copy_from_slice(&bytes);
                    p.got += bytes.len().max(1) as u32;
                    let complete = p.got >= p.total.max(1);
                    if complete {
                        let p = self.assembling.remove(&(src, msg_id)).expect("present");
                        self.ctx.advance(self.cfg.o_recv);
                        self.stats.recvs += 1;
                        self.deliver(Msg {
                            src,
                            tag: p.tag,
                            data: p.data,
                        });
                    }
                    // Credit bookkeeping.
                    self.inn[src].drained += 1;
                    if self.inn[src].drained >= self.cfg.credit_batch {
                        let count = self.inn[src].drained;
                        self.inn[src].drained = 0;
                        let credit = MplWire::Credit { count };
                        let bytes = credit.payload_bytes();
                        if host::send_packet(self.ctx, src, bytes, credit).is_ok() {
                            self.stats.packets_sent += 1;
                        } else {
                            // FIFO full: retry on a later poll by restoring
                            // the counter.
                            self.inn[src].drained = count;
                        }
                    }
                }
            }
        }
        processed
    }

    fn deliver(&mut self, msg: Msg) {
        for posted in &mut self.posted {
            if matches!(posted.state, PostedState::Waiting)
                && posted.src.is_none_or(|s| s == msg.src)
                && posted.tag.is_none_or(|t| t == msg.tag)
            {
                posted.state = PostedState::Ready(msg);
                return;
            }
        }
        self.unexpected.push_back(msg);
    }

    /// Barrier over MPL messages (benchmark utility).
    pub fn barrier(&mut self) {
        const BARRIER_TAG: u32 = u32::MAX - 7;
        let me = self.node();
        let n = self.nodes();
        if n == 1 {
            return;
        }
        if me == 0 {
            for _ in 1..n {
                let _ = self.brecv(None, Some(BARRIER_TAG));
            }
            for dst in 1..n {
                self.bsend(dst, BARRIER_TAG, &[]);
            }
        } else {
            self.bsend(0, BARRIER_TAG, &[]);
            let _ = self.brecv(Some(0), Some(BARRIER_TAG));
        }
    }
}

/// Builder for MPL simulations (mirrors `AmMachine`).
pub struct MplMachine {
    sim: Sim<MplWorld>,
    cfg: MplConfig,
    nodes: usize,
    spawned: usize,
    parallel: usize,
}

/// Result of an MPL run.
pub struct MplReport {
    /// Final virtual time.
    pub end_time: Time,
    /// Engine events executed.
    pub events: u64,
    /// Per-shard engine breakdown (empty on a serial run).
    pub shards: Vec<sp_sim::ShardReport>,
    /// Inter-shard synchronization events (0 on a serial run).
    pub sync_events: u64,
    /// Conservative lookahead windows (0 on a serial run).
    pub windows: u64,
    /// PDES profile of a parallel run; `None` on a serial run.
    pub profile: Option<sp_sim::ShardProfile>,
    /// Final hardware state.
    pub world: MplWorld,
}

impl MplMachine {
    /// Build an MPL machine.
    pub fn new(sp: SpConfig, cfg: MplConfig, seed: u64) -> Self {
        let nodes = sp.nodes;
        let parallel = sp.parallel;
        MplMachine {
            sim: Sim::new(MplWorld::new(sp), seed),
            cfg,
            nodes,
            spawned: 0,
            parallel,
        }
    }

    /// Mutate hardware before the run (fault injection etc.).
    pub fn configure_world(&mut self, f: impl FnOnce(&mut MplWorld)) -> &mut Self {
        f(self.sim.world_mut());
        self
    }

    /// Spawn the next node's program.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        prog: impl FnOnce(&mut Mpl<'_>) + Send + 'static,
    ) -> NodeId {
        assert!(self.spawned < self.nodes, "more programs than nodes");
        self.spawned += 1;
        let cfg = self.cfg.clone();
        self.sim.spawn(name, move |ctx| {
            let mut mpl = Mpl::new(ctx, cfg);
            prog(&mut mpl);
        })
    }

    /// Run to completion — sharded across [`SpConfig::parallel`]
    /// conservative-parallel shards when that is `>= 2`.
    pub fn run(self) -> Result<MplReport, SimError> {
        assert_eq!(self.spawned, self.nodes, "every node needs a program");
        let report = if self.parallel >= 2 {
            self.sim.run_parallel(self.parallel)?
        } else {
            self.sim.run()?
        };
        Ok(MplReport {
            end_time: report.end_time,
            events: report.events,
            shards: report.shards,
            sync_events: report.sync_events,
            windows: report.windows,
            profile: report.profile,
            world: report.world,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pair(
        a: impl FnOnce(&mut Mpl<'_>) + Send + 'static,
        b: impl FnOnce(&mut Mpl<'_>) + Send + 'static,
    ) -> MplReport {
        let mut m = MplMachine::new(SpConfig::thin(2), MplConfig::default(), 5);
        m.spawn("a", a);
        m.spawn("b", b);
        m.run().unwrap()
    }

    #[test]
    fn small_message_roundtrip() {
        pair(
            |mpl| {
                mpl.bsend(1, 7, &[1, 2, 3, 4]);
                let reply = mpl.brecv(Some(1), Some(8));
                assert_eq!(reply.data, vec![9]);
            },
            |mpl| {
                let msg = mpl.brecv(None, None);
                assert_eq!(
                    (msg.src, msg.tag, msg.data.clone()),
                    (0, 7, vec![1, 2, 3, 4])
                );
                mpl.bsend(0, 8, &[9]);
            },
        );
    }

    #[test]
    fn large_message_reassembles() {
        let data: Vec<u8> = (0..100_000u32).map(|i| i as u8).collect();
        let expect = data.clone();
        pair(
            move |mpl| {
                mpl.bsend(1, 1, &data);
                mpl.barrier();
            },
            move |mpl| {
                let msg = mpl.brecv(Some(0), Some(1));
                assert_eq!(msg.data, expect);
                mpl.barrier();
            },
        );
    }

    #[test]
    fn zero_length_messages() {
        pair(
            |mpl| {
                mpl.bsend(1, 3, &[]);
                mpl.barrier();
            },
            |mpl| {
                let msg = mpl.brecv(Some(0), Some(3));
                assert!(msg.data.is_empty());
                mpl.barrier();
            },
        );
    }

    #[test]
    fn tag_matching_out_of_arrival_order() {
        pair(
            |mpl| {
                mpl.bsend(1, 10, &[10]);
                mpl.bsend(1, 20, &[20]);
                mpl.barrier();
            },
            |mpl| {
                // Receive tag 20 first even though tag 10 arrived first.
                let m20 = mpl.brecv(None, Some(20));
                let m10 = mpl.brecv(None, Some(10));
                assert_eq!((m20.data[0], m10.data[0]), (20, 10));
                mpl.barrier();
            },
        );
    }

    #[test]
    fn same_tag_messages_keep_fifo_order() {
        pair(
            |mpl| {
                for i in 0..20u8 {
                    mpl.bsend(1, 5, &[i]);
                }
                mpl.barrier();
            },
            |mpl| {
                for i in 0..20u8 {
                    let m = mpl.brecv(Some(0), Some(5));
                    assert_eq!(m.data[0], i, "same-tag messages must stay ordered");
                }
                mpl.barrier();
            },
        );
    }

    #[test]
    fn nonblocking_recv_posted_before_send() {
        pair(
            |mpl| {
                let h = mpl.recv(Some(1), Some(2));
                mpl.bsend(1, 1, &[0]); // tell peer we're ready
                let msg = mpl.wait(h);
                assert_eq!(msg.data, vec![42]);
            },
            |mpl| {
                let _ = mpl.brecv(Some(0), Some(1));
                mpl.bsend(0, 2, &[42]);
            },
        );
    }

    #[test]
    fn mutual_floods_do_not_deadlock() {
        // Both sides send far more packets than the credit window before
        // either receives: credit stalls must resolve via polling.
        let big = vec![7u8; 224 * 120];
        let big2 = big.clone();
        let report = pair(
            move |mpl| {
                mpl.bsend(1, 1, &big);
                let m = mpl.brecv(Some(1), Some(1));
                assert_eq!(m.data.len(), 224 * 120);
            },
            move |mpl| {
                mpl.bsend(0, 1, &big2);
                let m = mpl.brecv(Some(0), Some(1));
                assert_eq!(m.data.len(), 224 * 120);
            },
        );
        assert_eq!(report.world.adapter_stats(0).dropped_overflow, 0);
        assert_eq!(report.world.adapter_stats(1).dropped_overflow, 0);
    }

    #[test]
    fn round_trip_matches_paper_mpl() {
        // One-word ping-pong with mpc_bsend/mpc_brecv: paper says 88 us.
        let out = Arc::new(parking_lot::Mutex::new(0.0f64));
        let out2 = out.clone();
        let iters = 50u32;
        pair(
            move |mpl| {
                // Warmup.
                mpl.bsend(1, 1, &[0, 0, 0, 0]);
                let _ = mpl.brecv(Some(1), Some(1));
                let t0 = mpl.now();
                for _ in 0..iters {
                    mpl.bsend(1, 1, &[0, 0, 0, 0]);
                    let _ = mpl.brecv(Some(1), Some(1));
                }
                *out2.lock() = (mpl.now() - t0).as_us() / iters as f64;
            },
            move |mpl| {
                for _ in 0..iters + 1 {
                    let _ = mpl.brecv(Some(0), Some(1));
                    mpl.bsend(0, 1, &[0, 0, 0, 0]);
                }
            },
        );
        let rtt = *out.lock();
        eprintln!("MPL 1-word round trip: {rtt:.2} us (paper: 88.0)");
        assert!(
            (80.0..96.0).contains(&rtt),
            "MPL round trip {rtt:.2} us, want ~88"
        );
    }

    #[test]
    fn barrier_eight_nodes() {
        let mut m = MplMachine::new(SpConfig::thin(8), MplConfig::default(), 5);
        let t = Arc::new(parking_lot::Mutex::new(vec![0.0f64; 8]));
        for node in 0..8 {
            let t = t.clone();
            m.spawn(format!("n{node}"), move |mpl| {
                mpl.work(sp_sim::Dur::us(25.0 * node as f64));
                mpl.barrier();
                t.lock()[node] = mpl.now().as_us();
            });
        }
        m.run().unwrap();
        let t = t.lock();
        for &x in t.iter() {
            assert!(x >= 25.0 * 7.0);
        }
    }
}
