//! # sp-mpl — the IBM MPL comparator
//!
//! The paper measures SP AM against IBM's Message Passing Library (MPL),
//! the user-space message-passing layer shipped with the SP. MPL is a
//! *measured baseline* in the paper, not an artifact, so this crate
//! reproduces its externally observable cost structure on the same
//! simulated TB2 adapter:
//!
//! * one-word `mpc_bsend`/`mpc_brecv` ping-pong round trip of **88 µs**
//!   (§2.3) — the heavyweight per-message software path (`o_send`,
//!   `o_recv`) is calibrated to this;
//! * asymptotic bandwidth of **~34.6 MB/s** (§2.4) — MPL packetizes into
//!   the same 256-byte adapter packets, so its `r∞` matches SP AM's;
//! * a half-power point in the **kilobytes** (vs. SP AM's ~260 bytes),
//!   emerging from the per-message overheads.
//!
//! The API mirrors the MPL calls the paper uses: [`Mpl::bsend`]
//! (`mpc_bsend`), [`Mpl::brecv`] (`mpc_brecv`), [`Mpl::send`]/[`Mpl::recv`]
//! (non-blocking `mpc_send`/`mpc_recv`) with [`Mpl::wait`], plus matching
//! on `(source, tag)` with wildcards.
//!
//! A light credit-based flow-control scheme (a real MPL had one inside the
//! CSS layer) bounds in-flight packets per destination so the receive FIFO
//! cannot be overrun by a well-behaved program; senders poll (and thus
//! drain their own inbound traffic) while waiting for credits, so mutual
//! floods cannot deadlock.

#![warn(missing_docs)]

mod config;
mod layer;
mod wire;

pub use config::MplConfig;
pub use layer::{Mpl, MplMachine, MplReport, MplStats, Msg, RecvHandle, SendHandle};
pub use wire::MplWire;

/// World type for MPL simulations.
pub type MplWorld = sp_adapter::SpWorld<wire::MplWire>;
/// Node context type for MPL simulations.
pub type MplCtx = sp_adapter::SpCtx<wire::MplWire>;

/// Wildcard source for receives (`DONTCARE` in MPL).
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag for receives.
pub const ANY_TAG: Option<u32> = None;
