//! MPL cost calibration.

use sp_sim::Dur;

/// MPL software costs and flow-control parameters.
///
/// `o_send`/`o_recv` are fit to the paper's 88 µs one-word round trip
/// (§2.3); everything else follows from the shared hardware model.
#[derive(Debug, Clone)]
pub struct MplConfig {
    /// Per-message send-side software overhead (argument checking, buffer
    /// management, kernel-extension dispatch — the weight SP AM bypasses).
    pub o_send: Dur,
    /// Per-message receive-side software overhead (matching, reassembly
    /// bookkeeping, status updates).
    pub o_recv: Dur,
    /// Cost of one receive-side matching probe that finds nothing.
    pub poll_cpu: Dur,
    /// Per-packet software cost on the send path.
    pub per_packet_cpu: Dur,
    /// Max un-credited packets in flight per destination.
    pub credit_window: u32,
    /// Receiver returns a credit packet after draining this many packets
    /// from one sender.
    pub credit_batch: u32,
    /// Doorbell batching on multi-packet sends.
    pub doorbell_batch: usize,
}

impl Default for MplConfig {
    fn default() -> Self {
        MplConfig {
            o_send: Dur::us(11.5),
            o_recv: Dur::us(9.8),
            poll_cpu: Dur::us(1.6),
            per_packet_cpu: Dur::ns(500),
            credit_window: 48,
            credit_batch: 16,
            doorbell_batch: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reflect_heavyweight_path() {
        let c = MplConfig::default();
        // The whole point of the paper: MPL's per-message software cost
        // dwarfs SP AM's ~4 µs request path.
        assert!(c.o_send + c.o_recv > Dur::us(20.0));
        assert!(
            c.credit_window <= 64,
            "window must fit the per-node receive FIFO share"
        );
    }
}
