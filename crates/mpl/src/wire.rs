//! MPL wire format: messages are packetized into adapter packets carrying
//! a (message id, byte offset, total length) triple for reassembly, plus
//! credit returns for flow control.

/// One MPL packet payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MplWire {
    /// A fragment of message `msg_id` from its source.
    Frag {
        /// Per-(src→dst) message sequence number.
        msg_id: u32,
        /// MPL message tag ("type" in MPL parlance).
        tag: u32,
        /// Byte offset of this fragment.
        offset: u32,
        /// Total message length in bytes.
        total: u32,
        /// Fragment bytes.
        bytes: Box<[u8]>,
    },
    /// Credit return: the receiver drained `count` packets from this
    /// sender.
    Credit {
        /// Packets drained since the last credit return.
        count: u32,
    },
}

impl MplWire {
    /// Payload bytes on the wire (fragment metadata rides in the 32-byte
    /// adapter header, as with SP AM).
    pub fn payload_bytes(&self) -> usize {
        match self {
            MplWire::Frag { bytes, .. } => bytes.len().max(1),
            MplWire::Credit { .. } => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_accounting() {
        let f = MplWire::Frag {
            msg_id: 0,
            tag: 0,
            offset: 0,
            total: 10,
            bytes: vec![1; 10].into(),
        };
        assert_eq!(f.payload_bytes(), 10);
        // Zero-length messages still occupy one wire byte of payload.
        let z = MplWire::Frag {
            msg_id: 0,
            tag: 0,
            offset: 0,
            total: 0,
            bytes: Vec::new().into(),
        };
        assert_eq!(z.payload_bytes(), 1);
        assert_eq!(MplWire::Credit { count: 3 }.payload_bytes(), 4);
    }
}
