//! MPI semantics tests across all three implementations: matching,
//! ordering, wildcards, every protocol path (eager / rendezvous / hybrid),
//! and the generic collectives.

use sp_adapter::SpConfig;
use sp_mpi::runner::{run_mpi, MpiImpl};
use sp_mpi::{Mpi, ANY_SOURCE, ANY_TAG};

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(salt))
        .collect()
}

fn on_all(nodes: usize, app: impl Fn(&mut dyn Mpi) -> u64 + Send + Sync + Clone + 'static) {
    for imp in MpiImpl::all() {
        let results = run_mpi(imp, SpConfig::thin(nodes), 7, app.clone());
        assert_eq!(results.len(), nodes, "{}", imp.name());
    }
}

#[test]
fn small_message_roundtrip_all_impls() {
    on_all(2, |mpi| {
        if mpi.rank() == 0 {
            mpi.send(&[1, 2, 3], 1, 5);
            let (data, st) = mpi.recv(Some(1), Some(6));
            assert_eq!(data, vec![9]);
            assert_eq!((st.source, st.tag, st.len), (1, 6, 1));
        } else {
            let (data, st) = mpi.recv(Some(0), Some(5));
            assert_eq!(data, vec![1, 2, 3]);
            assert_eq!(st.source, 0);
            mpi.send(&[9], 0, 6);
        }
        0
    });
}

#[test]
fn every_protocol_path_delivers_exact_bytes() {
    // Sizes hitting: zero-length, bins (<1KB), first-fit eager, just below
    // and above each impl's eager/rendezvous switch, hybrid territory, and
    // multi-chunk rendezvous.
    let sizes = [
        0usize, 17, 1000, 4000, 4096, 4097, 8191, 8192, 8193, 16384, 16385, 60000, 200_000,
    ];
    on_all(2, move |mpi| {
        for (i, &len) in sizes.iter().enumerate() {
            let tag = i as i32;
            if mpi.rank() == 0 {
                mpi.send(&pattern(len, i as u8), 1, tag);
            } else {
                let (data, st) = mpi.recv(Some(0), Some(tag));
                assert_eq!(st.len, len, "length mismatch at size {len}");
                assert_eq!(data, pattern(len, i as u8), "bytes mangled at size {len}");
            }
        }
        mpi.barrier();
        0
    });
}

#[test]
fn unexpected_messages_match_later_receives() {
    on_all(2, |mpi| {
        if mpi.rank() == 0 {
            // Flood before the receiver posts anything, mixing protocols.
            // The rendezvous message must use Isend: a blocking MPI_Send
            // with no matching receive posted deadlocks by design (§4.1 —
            // "inherent in the message passing primitives").
            mpi.send(&pattern(100, 1), 1, 1);
            let r = mpi.isend(&pattern(20_000, 2), 1, 2); // rendezvous: unexpected req
            mpi.send(&pattern(500, 3), 1, 3);
            mpi.barrier();
            mpi.wait(r);
        } else {
            mpi.barrier();
            // Receive out of tag order.
            let (d3, _) = mpi.recv(Some(0), Some(3));
            let (d2, _) = mpi.recv(Some(0), Some(2));
            let (d1, _) = mpi.recv(Some(0), Some(1));
            assert_eq!(d1, pattern(100, 1));
            assert_eq!(d2, pattern(20_000, 2));
            assert_eq!(d3, pattern(500, 3));
        }
        mpi.barrier();
        0
    });
}

#[test]
fn same_tag_fifo_order_preserved() {
    on_all(2, |mpi| {
        if mpi.rank() == 0 {
            for i in 0..50u8 {
                mpi.send(&[i], 1, 9);
            }
            mpi.barrier();
        } else {
            for i in 0..50u8 {
                let (d, _) = mpi.recv(Some(0), Some(9));
                assert_eq!(d, vec![i], "same-tag messages reordered");
            }
            mpi.barrier();
        }
        0
    });
}

#[test]
fn wildcards_match_any_source_and_tag() {
    on_all(4, |mpi| {
        if mpi.rank() == 0 {
            let mut seen = [false; 4];
            for _ in 0..3 {
                let (data, st) = mpi.recv(ANY_SOURCE, ANY_TAG);
                assert_eq!(data.len(), 8);
                assert_eq!(st.tag as usize, st.source * 10);
                seen[st.source] = true;
            }
            assert!(seen[1] && seen[2] && seen[3]);
        } else {
            mpi.send(&pattern(8, mpi.rank() as u8), 0, (mpi.rank() * 10) as i32);
        }
        mpi.barrier();
        0
    });
}

#[test]
fn isend_irecv_overlap() {
    on_all(2, |mpi| {
        let peer = 1 - mpi.rank();
        // Both sides post receives first, then send: full-duplex exchange
        // that deadlocks if blocking semantics are wrong.
        let r = mpi.irecv(Some(peer), Some(1));
        let s = mpi.isend(&pattern(30_000, mpi.rank() as u8), peer, 1);
        let (data, _) = mpi.wait(r).expect("message");
        assert_eq!(data, pattern(30_000, peer as u8));
        mpi.wait(s);
        mpi.barrier();
        0
    });
}

#[test]
fn sendrecv_ring() {
    on_all(4, |mpi| {
        let (me, p) = (mpi.rank(), mpi.size());
        let right = (me + 1) % p;
        let left = (me + p - 1) % p;
        let (data, st) = mpi.sendrecv(&pattern(64, me as u8), right, 3, Some(left), Some(3));
        assert_eq!(st.source, left);
        assert_eq!(data, pattern(64, left as u8));
        0
    });
}

#[test]
fn barrier_synchronizes() {
    on_all(8, |mpi| {
        let staggered = sp_sim::Dur::us(40.0 * mpi.rank() as f64);
        mpi.work(staggered);
        mpi.barrier();
        let t = mpi.now().as_us();
        assert!(
            t >= 40.0 * 7.0,
            "left the barrier at {t:.1} before the last arriver"
        );
        0
    });
}

#[test]
fn bcast_from_every_root() {
    on_all(6, |mpi| {
        for root in 0..mpi.size() {
            let data = if mpi.rank() == root {
                pattern(500, root as u8)
            } else {
                Vec::new()
            };
            let got = mpi.bcast(root, &data);
            assert_eq!(got, pattern(500, root as u8), "bcast from root {root}");
        }
        0
    });
}

#[test]
fn reduce_and_allreduce() {
    on_all(5, |mpi| {
        let mine: Vec<f64> = (0..8).map(|i| (mpi.rank() * 8 + i) as f64).collect();
        let expect: Vec<f64> = (0..8)
            .map(|i| (0..5).map(|r| (r * 8 + i) as f64).sum())
            .collect();
        if let Some(sum) = mpi.reduce_f64(0, &mine, |a, b| a + b) {
            assert_eq!(mpi.rank(), 0);
            assert_eq!(sum, expect);
        }
        let all = mpi.allreduce_f64(&mine, |a, b| a + b);
        assert_eq!(all, expect);
        let max = mpi.allreduce_f64(&mine, f64::max);
        let expect_max: Vec<f64> = (0..8).map(|i| (4 * 8 + i) as f64).collect();
        assert_eq!(max, expect_max);
        0
    });
}

#[test]
fn alltoall_exchanges_all_pairs() {
    on_all(6, |mpi| {
        let (me, p) = (mpi.rank(), mpi.size());
        let bufs: Vec<Vec<u8>> = (0..p).map(|d| pattern(400, (me * p + d) as u8)).collect();
        let got = mpi.alltoall(&bufs);
        for (s, block) in got.iter().enumerate() {
            assert_eq!(block, &pattern(400, (s * p + me) as u8), "from {s}");
        }
        0
    });
}

#[test]
fn gather_collects_contributions() {
    on_all(5, |mpi| {
        let me = mpi.rank();
        let out = mpi.gather(2, &pattern(32, me as u8));
        if me == 2 {
            let rows = out.expect("root receives");
            for (s, row) in rows.iter().enumerate() {
                assert_eq!(row, &pattern(32, s as u8));
            }
        } else {
            assert!(out.is_none());
        }
        0
    });
}

#[test]
fn self_send_works() {
    on_all(2, |mpi| {
        let me = mpi.rank();
        let r = mpi.irecv(Some(me), Some(77));
        mpi.send(&pattern(100, 9), me, 77);
        let (d, _) = mpi.wait(r).expect("self message");
        assert_eq!(d, pattern(100, 9));
        0
    });
}

#[test]
fn eager_region_backpressure_resolves() {
    // Flood far more eager data than the 16 KB region holds before the
    // receiver drains: senders must stall on allocation and recover.
    on_all(2, |mpi| {
        if mpi.rank() == 0 {
            for i in 0..200u32 {
                mpi.send(&pattern(1000, i as u8), 1, i as i32);
            }
            mpi.barrier();
        } else {
            mpi.work(sp_sim::Dur::ms(3.0)); // let the flood hit the region limit
            for i in 0..200u32 {
                let (d, _) = mpi.recv(Some(0), Some(i as i32));
                assert_eq!(d, pattern(1000, i as u8));
            }
            mpi.barrier();
        }
        0
    });
}

#[test]
fn wide_node_machine_also_works() {
    let results = run_mpi(
        MpiImpl::AmOptimized,
        SpConfig::wide(2),
        3,
        |mpi: &mut dyn Mpi| {
            if mpi.rank() == 0 {
                mpi.send(&pattern(50_000, 3), 1, 0);
                mpi.barrier();
                1u64
            } else {
                let (d, _) = mpi.recv(Some(0), Some(0));
                assert_eq!(d, pattern(50_000, 3));
                mpi.barrier();
                1u64
            }
        },
    );
    assert_eq!(results, vec![1, 1]);
}

#[test]
fn single_rank_collectives_are_noops() {
    for imp in MpiImpl::all() {
        run_mpi(imp, SpConfig::thin(1), 1, |mpi: &mut dyn Mpi| {
            mpi.barrier();
            assert_eq!(mpi.bcast(0, &[1, 2, 3]), vec![1, 2, 3]);
            assert_eq!(mpi.allreduce_f64(&[2.5], |a, b| a + b), vec![2.5]);
            let out = mpi.alltoall(&[vec![9, 9]]);
            assert_eq!(out, vec![vec![9, 9]]);
            let g = mpi.gather(0, &[4]).expect("root");
            assert_eq!(g, vec![vec![4]]);
            0u8
        });
    }
}

#[test]
fn test_polls_until_complete() {
    on_all(2, |mpi| {
        if mpi.rank() == 0 {
            mpi.work(sp_sim::Dur::us(500.0));
            mpi.send(&[1], 1, 0);
            mpi.barrier();
        } else {
            let r = mpi.irecv(Some(0), Some(0));
            let mut spins = 0u64;
            while !mpi.test(r) {
                spins += 1;
            }
            assert!(spins > 0, "message should not be instant");
            let (d, _) = mpi.wait(r).expect("message");
            assert_eq!(d, vec![1]);
            mpi.barrier();
        }
        0
    });
}

#[test]
fn waitall_mixed_sends_and_recvs() {
    on_all(2, |mpi| {
        let peer = 1 - mpi.rank();
        let mut reqs = Vec::new();
        for i in 0..5 {
            reqs.push(mpi.irecv(Some(peer), Some(i)));
        }
        for i in 0..5 {
            reqs.push(mpi.isend(&pattern(200 + i as usize, i as u8), peer, i));
        }
        let results = mpi.waitall(reqs);
        for (i, r) in results.iter().take(5).enumerate() {
            let (d, st) = r.as_ref().expect("recv yields");
            assert_eq!(st.tag, i as i32);
            assert_eq!(d, &pattern(200 + i, i as u8));
        }
        assert!(
            results[5..].iter().all(|r| r.is_none()),
            "sends yield no data"
        );
        0
    });
}

#[test]
fn tuned_alltoall_matches_generic_results() {
    let app = |mpi: &mut dyn Mpi| {
        let (me, p) = (mpi.rank(), mpi.size());
        let bufs: Vec<Vec<u8>> = (0..p).map(|d| pattern(300, (me * p + d) as u8)).collect();
        let got = mpi.alltoall(&bufs);
        got.iter()
            .flat_map(|v| v.iter().copied())
            .fold(0u64, |a, b| a.wrapping_add(b as u64))
    };
    let generic = run_mpi(MpiImpl::AmOptimized, SpConfig::thin(6), 3, app);
    let tuned = run_mpi(MpiImpl::AmTuned, SpConfig::thin(6), 3, app);
    assert_eq!(generic, tuned, "tuned schedule must move identical data");
}
