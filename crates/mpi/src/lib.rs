//! # sp-mpi — MPI over Active Messages, and the MPI-F baseline
//!
//! Section 4 of the paper layers MPI on SP AM through MPICH's abstract
//! device interface and shows it matching (and for medium messages beating)
//! IBM's from-scratch MPI-F. This crate reproduces that stack:
//!
//! * [`Mpi`] — the MPI subset the paper's evaluation needs (blocking and
//!   non-blocking point-to-point with `(source, tag)` wildcards, waitall,
//!   barrier, broadcast, reductions, all-to-all), as a trait so the NAS
//!   kernels run unchanged on either implementation. Collectives are
//!   provided as *generic* default methods built from point-to-point —
//!   exactly MPICH's portable collectives, including the naive `alltoall`
//!   whose convergent traffic pattern the paper blames for FT's gap
//!   (§4.4);
//! * [`MpiAm`] — MPI over SP AM (§4.1–4.2):
//!   - **buffered protocol** for short messages: a 16 KB staging region per
//!     source at every receiver, *sender-side* allocation (no handshake),
//!     one `am_store` carrying data + envelope, a reply freeing the space;
//!   - **rendezvous protocol** for long messages: request-for-address,
//!     grant when the receive posts, then a direct store — with the ADI
//!     restriction that the grant handler may not start the transfer (it
//!     queues it for the next poll);
//!   - **optimizations** (§4.2, all switchable): binned buffer allocator
//!     (8 × 1 KB bins) instead of first-fit, batched buffer-free replies,
//!     and the **hybrid** protocol that ships a 4 KB prefix eagerly while
//!     the rendezvous handshake is in flight, removing MPI-F's bandwidth
//!     dip at the protocol switch (Figure 7);
//! * [`MpiF`] — an "MPI-F"-like native baseline implemented directly over
//!   the adapter with its own eager(≤4 KB)/rendezvous split and cost
//!   profile calibrated to the paper's MPI-F curves (Figures 8–11). MPI-F
//!   ships tuned collectives, so it overrides `alltoall` with a staggered
//!   schedule.

#![warn(missing_docs)]

mod iface;
mod mpiam;
mod mpif;
pub mod runner;

pub use iface::{Mpi, Req, Status, ANY_SOURCE, ANY_TAG};
pub use mpiam::{MpiAm, MpiAmConfig, MpiSt};
pub use mpif::{MpiF, MpiFConfig};
