//! An "MPI-F"-like native MPI baseline.
//!
//! IBM's MPI-F was written from scratch against the CSS user-space path;
//! the paper uses it as the measured comparator for MPI-AM (Figures 8–11,
//! Table 6). We reproduce its externally visible behaviour: an eager
//! protocol below 4 KB, a rendezvous protocol above (with the bandwidth dip
//! at the switch that the hybrid MPI-AM avoids — Figure 7 vs. the MPI-F
//! curves), tuned collectives (staggered all-to-all), and per-message
//! software costs calibrated to its measured small-message latency —
//! lighter than MPL's, heavier than optimized MPI-AM's on thin nodes.
//!
//! Mechanically it reuses the `sp-mpl` fragmentation engine with its own
//! cost constants; MPI-F is a measured baseline here, not an artifact.

use crate::iface::{Mpi, Req, Status};
use sp_mpl::{Mpl, MplConfig, Msg};
use sp_sim::{Dur, Time};
use std::collections::{HashMap, VecDeque};

/// MPI-F configuration.
#[derive(Debug, Clone)]
pub struct MpiFConfig {
    /// Eager/rendezvous switch (4 KB per the paper's footnote 4).
    pub eager_limit: usize,
    /// Per-send software cost beyond the transport path.
    pub send_cpu: Dur,
    /// Per-receive-completion software cost.
    pub recv_cpu: Dur,
    /// Transport cost profile (the CSS-like path MPI-F drives directly).
    pub transport: MplConfig,
}

impl Default for MpiFConfig {
    fn default() -> Self {
        MpiFConfig {
            eager_limit: 4 * 1024,
            send_cpu: Dur::us(3.5),
            recv_cpu: Dur::us(3.0),
            transport: MplConfig {
                o_send: Dur::us(7.0),
                o_recv: Dur::us(6.0),
                poll_cpu: Dur::us(1.4),
                per_packet_cpu: Dur::ns(450),
                credit_window: 48,
                credit_batch: 16,
                doorbell_batch: 8,
            },
        }
    }
}

// Wire tag encoding: kind in the top nibble, payload identifier below.
const KIND_SHIFT: u32 = 28;
const KIND_EAGER: u32 = 0x1;
const KIND_RDV_REQ: u32 = 0x2;
const KIND_RDV_GRANT: u32 = 0x3;
const KIND_RDV_DATA: u32 = 0x4;

fn wire_tag(kind: u32, low: u32) -> u32 {
    debug_assert!(low < (1 << KIND_SHIFT));
    (kind << KIND_SHIFT) | low
}

fn kind_of(t: u32) -> u32 {
    t >> KIND_SHIFT
}

/// MPI user tags must fit in 24 bits here (plenty for the benchmarks);
/// the envelope carries the real i32 tag, the wire tag only multiplexes.
#[derive(Debug)]
enum InEnvelope {
    Eager {
        src: usize,
        tag: i32,
        data: Vec<u8>,
    },
    Rdv {
        src: usize,
        tag: i32,
        len: usize,
        xfer: u32,
    },
}

#[derive(Debug)]
enum PostedState {
    Waiting,
    Done(Vec<u8>, Status),
    Consumed,
}

#[derive(Debug)]
struct PostedRecv {
    src: Option<usize>,
    tag: Option<i32>,
    state: PostedState,
}

#[derive(Debug)]
enum ReqRec {
    SendDone,
    SendRdv { xfer: u32 },
    Recv { posted: usize },
}

/// MPI-F endpoint.
pub struct MpiF<'a, 'c> {
    mpl: &'a mut Mpl<'c>,
    cfg: MpiFConfig,
    posted: Vec<PostedRecv>,
    waiting: Vec<usize>,
    free_slots: Vec<usize>,
    unexpected: VecDeque<InEnvelope>,
    /// Rendezvous sends awaiting a grant: xfer -> (dest, data).
    rdv_send: HashMap<u32, (usize, Vec<u8>)>,
    /// Grants received, data push pending: (dest, xfer).
    pending_grants: Vec<(usize, u32)>,
    /// Rendezvous sends fully pushed.
    send_done: std::collections::HashSet<u32>,
    /// Active rendezvous receives: (src, xfer) -> (posted, tag, len).
    rdv_recv: HashMap<(usize, u32), (usize, i32, usize)>,
    reqs: HashMap<u64, ReqRec>,
    next_req: u64,
    next_xfer: u32,
}

impl<'a, 'c> MpiF<'a, 'c> {
    /// Wrap an MPL-engine endpoint (configured with
    /// [`MpiFConfig::transport`]) as an MPI-F endpoint.
    pub fn new(mpl: &'a mut Mpl<'c>, cfg: MpiFConfig) -> Self {
        MpiF {
            mpl,
            cfg,
            posted: Vec::new(),
            waiting: Vec::new(),
            free_slots: Vec::new(),
            unexpected: VecDeque::new(),
            rdv_send: HashMap::new(),
            pending_grants: Vec::new(),
            send_done: std::collections::HashSet::new(),
            rdv_recv: HashMap::new(),
            reqs: HashMap::new(),
            next_req: 0,
            next_xfer: 1,
        }
    }

    fn new_req(&mut self, rec: ReqRec) -> Req {
        let id = self.next_req;
        self.next_req += 1;
        self.reqs.insert(id, rec);
        Req(id)
    }

    fn post(&mut self, src: Option<usize>, tag: Option<i32>) -> usize {
        let rec = PostedRecv {
            src,
            tag,
            state: PostedState::Waiting,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.posted[i] = rec;
                i
            }
            None => {
                self.posted.push(rec);
                self.posted.len() - 1
            }
        };
        self.waiting.push(idx);
        idx
    }

    fn match_posted(&mut self, src: usize, tag: i32) -> Option<usize> {
        let wpos = self.waiting.iter().position(|&i| {
            let p = &self.posted[i];
            p.src.is_none_or(|s| s == src) && p.tag.is_none_or(|t| t == tag)
        })?;
        Some(self.waiting.remove(wpos))
    }

    /// Drain transport arrivals into envelopes and protocol actions.
    fn service(&mut self) {
        self.mpl.poll();
        while let Some(msg) = self.mpl.take_unexpected(|_| true) {
            self.dispatch(msg);
        }
        // Push data for any grants received (outside the drain loop so the
        // bsends don't recurse).
        while let Some((dest, xfer)) = self.pending_grants.pop() {
            let (d, data) = self
                .rdv_send
                .remove(&xfer)
                .expect("rendezvous data retained");
            debug_assert_eq!(d, dest);
            self.mpl
                .bsend(dest, wire_tag(KIND_RDV_DATA, xfer & 0x0FFF_FFFF), &data);
            self.send_done.insert(xfer);
        }
    }

    fn dispatch(&mut self, msg: Msg) {
        match kind_of(msg.tag) {
            KIND_EAGER => {
                // Payload: [tag i32][data...]
                let tag = i32::from_le_bytes(msg.data[0..4].try_into().expect("tag"));
                let data = msg.data[4..].to_vec();
                self.mpl.work(self.cfg.recv_cpu);
                match self.match_posted(msg.src, tag) {
                    Some(p) => {
                        let st = Status {
                            source: msg.src,
                            tag,
                            len: data.len(),
                        };
                        self.posted[p].state = PostedState::Done(data, st);
                    }
                    None => self.unexpected.push_back(InEnvelope::Eager {
                        src: msg.src,
                        tag,
                        data,
                    }),
                }
            }
            KIND_RDV_REQ => {
                // Payload: [tag i32][len u32][xfer u32]
                let tag = i32::from_le_bytes(msg.data[0..4].try_into().expect("tag"));
                let len = u32::from_le_bytes(msg.data[4..8].try_into().expect("len")) as usize;
                let xfer = u32::from_le_bytes(msg.data[8..12].try_into().expect("xfer"));
                match self.match_posted(msg.src, tag) {
                    Some(p) => {
                        self.rdv_recv.insert((msg.src, xfer), (p, tag, len));
                        self.mpl
                            .bsend(msg.src, wire_tag(KIND_RDV_GRANT, 0), &xfer.to_le_bytes());
                    }
                    None => self.unexpected.push_back(InEnvelope::Rdv {
                        src: msg.src,
                        tag,
                        len,
                        xfer,
                    }),
                }
            }
            KIND_RDV_GRANT => {
                let xfer = u32::from_le_bytes(msg.data[0..4].try_into().expect("xfer"));
                self.pending_grants.push((msg.src, xfer));
            }
            KIND_RDV_DATA => {
                let xfer = msg.tag & 0x0FFF_FFFF;
                let (posted, tag, len) = self
                    .rdv_recv
                    .remove(&(msg.src, xfer))
                    .expect("rendezvous receive active");
                debug_assert_eq!(len, msg.data.len());
                self.mpl.work(self.cfg.recv_cpu);
                let st = Status {
                    source: msg.src,
                    tag,
                    len,
                };
                self.posted[posted].state = PostedState::Done(msg.data, st);
            }
            other => unreachable!("unknown wire kind {other}"),
        }
    }
}

impl Mpi for MpiF<'_, '_> {
    fn rank(&self) -> usize {
        self.mpl.node()
    }

    fn size(&self) -> usize {
        self.mpl.nodes()
    }

    fn now(&self) -> Time {
        self.mpl.now()
    }

    fn work(&mut self, d: Dur) {
        self.mpl.work(d);
    }

    fn progress(&mut self) {
        self.service();
    }

    fn isend(&mut self, buf: &[u8], dest: usize, tag: i32) -> Req {
        self.mpl.work(self.cfg.send_cpu);
        if dest == self.rank() {
            match self.match_posted(dest, tag) {
                Some(p) => {
                    let st = Status {
                        source: dest,
                        tag,
                        len: buf.len(),
                    };
                    self.posted[p].state = PostedState::Done(buf.to_vec(), st);
                }
                None => self.unexpected.push_back(InEnvelope::Eager {
                    src: dest,
                    tag,
                    data: buf.to_vec(),
                }),
            }
            return self.new_req(ReqRec::SendDone);
        }
        if buf.len() <= self.cfg.eager_limit {
            let mut payload = Vec::with_capacity(4 + buf.len());
            payload.extend_from_slice(&tag.to_le_bytes());
            payload.extend_from_slice(buf);
            self.mpl.bsend(dest, wire_tag(KIND_EAGER, 0), &payload);
            return self.new_req(ReqRec::SendDone);
        }
        let xfer = self.next_xfer;
        self.next_xfer += 1;
        let mut payload = Vec::with_capacity(12);
        payload.extend_from_slice(&tag.to_le_bytes());
        payload.extend_from_slice(&(buf.len() as u32).to_le_bytes());
        payload.extend_from_slice(&xfer.to_le_bytes());
        self.mpl.bsend(dest, wire_tag(KIND_RDV_REQ, 0), &payload);
        self.rdv_send.insert(xfer, (dest, buf.to_vec()));
        self.new_req(ReqRec::SendRdv { xfer })
    }

    fn irecv(&mut self, source: Option<usize>, tag: Option<i32>) -> Req {
        self.mpl.work(self.cfg.recv_cpu);
        let pos = self.unexpected.iter().position(|e| match e {
            InEnvelope::Eager { src, tag: t, .. } | InEnvelope::Rdv { src, tag: t, .. } => {
                source.is_none_or(|s| s == *src) && tag.is_none_or(|w| w == *t)
            }
        });
        let posted = self.post(source, tag);
        if let Some(pos) = pos {
            // Claim our own just-posted slot.
            let w = self.waiting.pop().expect("just pushed");
            debug_assert_eq!(w, posted);
            match self.unexpected.remove(pos).expect("position valid") {
                InEnvelope::Eager { src, tag: t, data } => {
                    let st = Status {
                        source: src,
                        tag: t,
                        len: data.len(),
                    };
                    self.posted[posted].state = PostedState::Done(data, st);
                }
                InEnvelope::Rdv {
                    src,
                    tag: t,
                    len,
                    xfer,
                } => {
                    self.rdv_recv.insert((src, xfer), (posted, t, len));
                    self.mpl
                        .bsend(src, wire_tag(KIND_RDV_GRANT, 0), &xfer.to_le_bytes());
                }
            }
        }
        self.new_req(ReqRec::Recv { posted })
    }

    fn test(&mut self, req: Req) -> bool {
        self.service();
        match self.reqs.get(&req.0) {
            None => true,
            Some(ReqRec::SendDone) => true,
            Some(ReqRec::SendRdv { xfer }) => self.send_done.contains(xfer),
            Some(ReqRec::Recv { posted }) => {
                matches!(self.posted[*posted].state, PostedState::Done(..))
            }
        }
    }

    fn wait(&mut self, req: Req) -> Option<(Vec<u8>, Status)> {
        let rec = self
            .reqs
            .remove(&req.0)
            .expect("request exists (wait once)");
        match rec {
            ReqRec::SendDone => None,
            ReqRec::SendRdv { xfer } => {
                while !self.send_done.contains(&xfer) {
                    self.service();
                }
                self.send_done.remove(&xfer);
                None
            }
            ReqRec::Recv { posted } => {
                while matches!(self.posted[posted].state, PostedState::Waiting) {
                    self.service();
                }
                let out = match std::mem::replace(
                    &mut self.posted[posted].state,
                    PostedState::Consumed,
                ) {
                    PostedState::Done(data, status) => Some((data, status)),
                    _ => unreachable!("just checked"),
                };
                self.free_slots.push(posted);
                out
            }
        }
    }

    /// MPI-F ships tuned collectives: the all-to-all staggers sources so
    /// rank r starts with destination r+1 instead of everyone hammering
    /// rank 0 (contrast with the generic MPICH schedule MPI-AM uses).
    fn alltoall(&mut self, bufs: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let (me, p) = (self.rank(), self.size());
        assert_eq!(bufs.len(), p);
        const TAG: i32 = i32::MAX - 4; // same tag space as the generic one
        let recvs: Vec<Req> = (1..p)
            .map(|i| self.irecv(Some((me + p - i) % p), Some(TAG)))
            .collect();
        let mut sends = Vec::with_capacity(p - 1);
        for i in 1..p {
            let d = (me + i) % p;
            sends.push(self.isend(&bufs[d], d, TAG));
        }
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        out[me] = bufs[me].clone();
        for r in recvs {
            let (bytes, st) = self.wait(r).expect("receive yields");
            out[st.source] = bytes;
        }
        for s in sends {
            self.wait(s);
        }
        out
    }
}
