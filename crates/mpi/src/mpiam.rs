//! MPI over SP Active Messages, MPICH-ADI style (paper §4.1–4.2).
//!
//! * **Buffered protocol** (short messages): every receiver owns a 16 KB
//!   staging region *per source*; the sender allocates space in its region
//!   at the destination entirely locally ("involves no communication"),
//!   `am_store`s data + envelope there, and the receiving handler (or a
//!   later matching `MPI_Irecv`) copies the message out and frees the space
//!   with a small reply.
//! * **Rendezvous protocol** (long messages): a request-for-address travels
//!   as an `am_request`; the grant comes back as the reply (receive already
//!   posted) or as a later request (posted afterwards). The grant handler
//!   is *not allowed* to start the transfer (GAM handler restriction, as in
//!   the paper) — it queues the store for the next progress poll.
//! * **Optimizations** (§4.2): a binned allocator (8 × 1 KB bins) replacing
//!   first-fit for small messages, batched buffer-free replies, and the
//!   **hybrid** protocol: a 4 KB prefix is stored eagerly (serving as the
//!   rendezvous request, with the grant riding its reply) so the pipeline
//!   stays full across the protocol switch.

use crate::iface::{Mpi, Req, Status};
use sp_am::{Am, AmArgs, AmEnv, GlobalPtr};
use sp_sim::{Dur, Time};
use std::collections::{HashMap, HashSet, VecDeque};

/// Protocol configuration (presets: [`MpiAmConfig::unoptimized`],
/// [`MpiAmConfig::optimized`]).
#[derive(Debug, Clone)]
pub struct MpiAmConfig {
    /// Apply the §4.2 optimizations (binned allocator, batched frees,
    /// hybrid protocol).
    pub optimized: bool,
    /// Messages strictly below this use the buffered protocol (16 KB
    /// unoptimized, 8 KB optimized).
    pub eager_limit: usize,
    /// Hybrid prefix bytes (optimized only).
    pub hybrid_prefix: usize,
    /// Staging region bytes per (receiver, source) pair.
    pub region_size: u32,
    /// Bin size for the binned allocator.
    pub bin_size: u32,
    /// Number of bins.
    pub bins: usize,
    /// Use the binned allocator (set by the optimized preset; exposed
    /// separately for the allocator ablation).
    pub binned_allocator: bool,
    /// Bin frees accumulated before one reply carries them (optimized).
    pub free_batch: usize,
    /// MPICH software cost per send call.
    pub send_cpu: Dur,
    /// MPICH software cost per receive completion (matching, bookkeeping).
    pub recv_cpu: Dur,
    /// Record a protocol-event trace (used by the Figure 5/6 regeneration).
    pub trace_protocol: bool,
    /// Replace MPICH's generic collectives with schedules tuned for the SP
    /// (currently: a staggered all-to-all) — the paper's §4.4 future-work
    /// item ("implementing collective communication functions directly
    /// over AM ... would improve performance").
    pub tuned_collectives: bool,
}

impl MpiAmConfig {
    /// The basic implementation of §4.1: first-fit allocator, per-message
    /// frees, buffered→rendezvous switch at 16 KB.
    pub fn unoptimized() -> Self {
        MpiAmConfig {
            optimized: false,
            eager_limit: 16 * 1024,
            hybrid_prefix: 4 * 1024,
            region_size: 16 * 1024,
            bin_size: 1024,
            bins: 8,
            binned_allocator: false,
            free_batch: 3,
            trace_protocol: false,
            send_cpu: Dur::us(9.5),
            recv_cpu: Dur::us(6.5),
            tuned_collectives: false,
        }
    }

    /// The optimized implementation of §4.2.
    pub fn optimized() -> Self {
        MpiAmConfig {
            optimized: true,
            binned_allocator: true,
            eager_limit: 8 * 1024,
            send_cpu: Dur::us(3.0),
            recv_cpu: Dur::us(2.5),
            ..Self::unoptimized()
        }
    }
}

// ---------------------------------------------------------------- allocator

/// Sender-side allocator for this sender's staging region at one receiver.
/// Offsets are region-relative.
#[derive(Debug)]
struct RegionAlloc {
    binned: bool,
    bin_size: u32,
    bins: usize,
    bin_free: Vec<bool>,
    /// First-fit free list over the non-bin remainder: (offset, len),
    /// sorted by offset, coalesced on free.
    free_list: Vec<(u32, u32)>,
}

impl RegionAlloc {
    fn new(region_size: u32, binned: bool, bin_size: u32, bins: usize) -> Self {
        let bin_bytes = if binned { bin_size * bins as u32 } else { 0 };
        assert!(bin_bytes < region_size, "bins exceed region");
        RegionAlloc {
            binned,
            bin_size,
            bins,
            bin_free: vec![true; if binned { bins } else { 0 }],
            free_list: vec![(bin_bytes, region_size - bin_bytes)],
        }
    }

    /// Allocate `len` bytes; returns (offset, scan_steps) — scan steps feed
    /// the CPU cost model (first-fit scanning was "a major cost", §4.2).
    fn alloc(&mut self, len: u32) -> Option<(u32, u32)> {
        if self.binned && len <= self.bin_size {
            if let Some(i) = self.bin_free.iter().position(|&f| f) {
                self.bin_free[i] = false;
                return Some((i as u32 * self.bin_size, 1));
            }
            // Bins exhausted: fall through to first-fit.
        }
        let mut steps = 0u32;
        for i in 0..self.free_list.len() {
            steps += 1;
            let (off, flen) = self.free_list[i];
            if flen >= len {
                if flen == len {
                    self.free_list.remove(i);
                } else {
                    self.free_list[i] = (off + len, flen - len);
                }
                return Some((off, steps));
            }
        }
        None
    }

    /// Whether `off` falls in the bin area.
    fn is_bin(&self, off: u32) -> bool {
        self.binned && off < self.bin_size * self.bins as u32
    }

    fn free(&mut self, off: u32, len: u32) {
        if self.is_bin(off) {
            debug_assert_eq!(off % self.bin_size, 0, "bin offset misaligned");
            let i = (off / self.bin_size) as usize;
            debug_assert!(!self.bin_free[i], "double free of bin {i}");
            self.bin_free[i] = true;
            return;
        }
        // Insert sorted and coalesce.
        let pos = self.free_list.partition_point(|&(o, _)| o < off);
        self.free_list.insert(pos, (off, len));
        // Coalesce with next, then with previous.
        if pos + 1 < self.free_list.len() {
            let (o, l) = self.free_list[pos];
            let (no, nl) = self.free_list[pos + 1];
            debug_assert!(o + l <= no, "overlapping free at {o}+{l} vs {no}");
            if o + l == no {
                self.free_list[pos] = (o, l + nl);
                self.free_list.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (po, pl) = self.free_list[pos - 1];
            let (o, l) = self.free_list[pos];
            debug_assert!(po + pl <= o, "overlapping free at {po}+{pl} vs {o}");
            if po + pl == o {
                self.free_list[pos - 1] = (po, pl + l);
                self.free_list.remove(pos);
            }
        }
    }
}

// ------------------------------------------------------------ shared state

/// View of the configuration + cost model that handlers need.
#[derive(Debug, Clone)]
struct ProtoView {
    trace: bool,
    free_batch: usize,
    memcpy_setup: Dur,
    memcpy_ns_per_byte: f64,
    recv_cpu: Dur,
}

impl ProtoView {
    fn memcpy(&self, len: usize) -> Dur {
        self.memcpy_setup + Dur::ns((len as f64 * self.memcpy_ns_per_byte).round() as u64)
    }
}

/// An arrived-but-unmatched envelope.
#[derive(Debug)]
enum InEnvelope {
    /// Buffered-protocol message still staged in the region.
    Eager {
        src: usize,
        tag: i32,
        staged_addr: u32,
        len: usize,
    },
    /// Rendezvous request (optionally with a staged hybrid prefix).
    Rdv {
        src: usize,
        tag: i32,
        total_len: usize,
        xfer: u32,
        prefix: Option<(u32, usize)>,
    },
}

#[derive(Debug)]
enum PostedState {
    Waiting,
    Done(Vec<u8>, Status),
    Consumed,
}

#[derive(Debug)]
struct PostedRecv {
    src: Option<usize>,
    tag: Option<i32>,
    state: PostedState,
}

/// Active rendezvous receive: where the data lands and which posted recv it
/// completes.
#[derive(Debug)]
struct RdvRecv {
    posted: usize,
    buf_addr: u32,
    total_len: usize,
    tag: i32,
}

/// Per-node MPI protocol state (the `Am` state type — everything handlers
/// touch lives here).
pub struct MpiSt {
    view: ProtoView,
    me: usize,
    stage_base: u32,
    region_size: u32,
    allocs: Vec<RegionAlloc>,
    posted: Vec<PostedRecv>,
    /// Indices of posted receives still waiting, in post order (MPI
    /// matches the earliest posted first). Keeping this separate makes
    /// matching O(waiting), not O(everything ever posted).
    waiting: Vec<usize>,
    /// Recycled posted slots.
    free_slots: Vec<usize>,
    unexpected: VecDeque<InEnvelope>,
    /// Grants waiting for the progress engine to start the store (the
    /// grant handler may not transfer data itself).
    pending_grants: Vec<(usize, u32, u32)>, // (dst, xfer, remainder addr)
    /// Rendezvous sends whose data has been fully stored and acknowledged.
    send_done: HashSet<u32>,
    /// Active rendezvous receives keyed by (source, xfer).
    rdv_recv: HashMap<(usize, u32), RdvRecv>,
    /// Deferred bin frees per source (batched replies, §4.2).
    deferred_bin_frees: Vec<Vec<u32>>,
    /// (src, xfer) pairs already granted (suppresses duplicate envelopes
    /// when both a prefix and a request arrive).
    rdv_seen: HashSet<(usize, u32)>,
    /// Protocol-event log (only filled when `trace_protocol` is set).
    plog: Vec<(sp_sim::Time, usize, &'static str)>,
}

impl std::fmt::Debug for MpiSt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MpiSt {{ posted: {}, unexpected: {}, pending_grants: {} }}",
            self.posted.len(),
            self.unexpected.len(),
            self.pending_grants.len()
        )
    }
}

fn tag_matches(want_src: Option<usize>, want_tag: Option<i32>, src: usize, tag: i32) -> bool {
    want_src.is_none_or(|s| s == src) && want_tag.is_none_or(|t| t == tag)
}

impl MpiSt {
    /// Find, claim, and return the earliest waiting posted recv matching
    /// (src, tag) — removing it from the waiting list.
    fn match_posted(&mut self, src: usize, tag: i32) -> Option<usize> {
        let wpos = self.waiting.iter().position(|&i| {
            let p = &self.posted[i];
            tag_matches(p.src, p.tag, src, tag)
        })?;
        Some(self.waiting.remove(wpos))
    }

    /// Register a new posted receive (recycling consumed slots); returns
    /// its index, already on the waiting list.
    fn post(&mut self, src: Option<usize>, tag: Option<i32>) -> usize {
        let rec = PostedRecv {
            src,
            tag,
            state: PostedState::Waiting,
        };
        let idx = match self.free_slots.pop() {
            Some(i) => {
                self.posted[i] = rec;
                i
            }
            None => {
                self.posted.push(rec);
                self.posted.len() - 1
            }
        };
        self.waiting.push(idx);
        idx
    }

    /// Remove a posted index from the waiting list (used when irecv matches
    /// an already-arrived envelope immediately).
    fn unwait(&mut self, idx: usize) {
        if let Some(pos) = self.waiting.iter().position(|&i| i == idx) {
            self.waiting.remove(pos);
        }
    }

    /// Region-relative offset of a staged absolute address from `src`.
    fn region_off(&self, src: usize, addr: u32) -> u32 {
        addr - (self.stage_base + src as u32 * self.region_size)
    }
}

// ---------------------------------------------------------------- handlers

// Handler argument conventions (4 words):
//   h_eager  (store):  [tag, xfer, flags, total_len]   flags bit0 = prefix
//   h_eager0 (request): [tag, 0, 0, 0]                 zero-length message
//   h_free_one:         [off, len, 0, 0]
//   h_free_bins:        [count, off0, off1, off2]
//   h_rdv_req (request): [tag, len, xfer, 0]
//   h_rdv_grant:         [xfer, addr, freed_off, freed_len+1]  (0 = none)
//   h_rdv_done (store):  [xfer, 0, 0, 0]
//   h_send_done (local): [xfer, 0, 0, 0]

const FLAG_PREFIX: u32 = 1;

/// Complete a matched eager message: copy it out of the staging region and
/// arrange the space to be freed (reply if in handler context — signaled by
/// `reply_ctx` — else the caller sends a free request).
/// Returns the bin-free batch to flush, if any.
fn consume_eager(
    env: &mut AmEnv<'_, MpiSt>,
    posted: usize,
    src: usize,
    tag: i32,
    staged_addr: u32,
    len: usize,
) -> FreeAction {
    let data = if len > 0 {
        env.work(env_view(env).memcpy(len));
        let mut buf = vec![0u8; len];
        env.mem().read(staged_addr, &mut buf);
        buf
    } else {
        Vec::new()
    };
    env.state.posted[posted].state = PostedState::Done(
        data,
        Status {
            source: src,
            tag,
            len,
        },
    );
    if len == 0 {
        return FreeAction::None;
    }
    let off = env.state.region_off(src, staged_addr);
    plan_free(env.state, src, off, len as u32)
}

fn env_view(env: &AmEnv<'_, MpiSt>) -> ProtoView {
    env.state.view.clone()
}

/// How the staged space should be given back to the sender.
enum FreeAction {
    None,
    /// Free exactly this (off, len) now.
    One(u32, u32),
    /// Flush this batch of bin offsets now.
    Bins(Vec<u32>),
}

/// Decide whether a free goes out now or joins the deferred bin batch.
fn plan_free(st: &mut MpiSt, src: usize, off: u32, len: u32) -> FreeAction {
    let is_bin = st.allocs[src].is_bin(off) && len <= 1024;
    if !is_bin || st.view.free_batch <= 1 {
        return FreeAction::One(off, len);
    }
    st.deferred_bin_frees[src].push(off);
    if st.deferred_bin_frees[src].len() >= st.view.free_batch {
        FreeAction::Bins(std::mem::take(&mut st.deferred_bin_frees[src]))
    } else {
        FreeAction::None
    }
}

// Handler table indices (fixed registration order in MpiAm::new).
const H_EAGER: u16 = 0;
const H_EAGER0: u16 = 1;
const H_FREE_ONE: u16 = 2;
const H_FREE_BINS: u16 = 3;
const H_RDV_REQ: u16 = 4;
const H_RDV_GRANT: u16 = 5;
const H_RDV_DONE: u16 = 6;
const H_SEND_DONE: u16 = 7;

fn h_eager(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    let tag = args.a[0] as i32;
    let xfer = args.a[1];
    let is_prefix = args.a[2] & FLAG_PREFIX != 0;
    let info = args.info.expect("store handler has bulk info");
    let staged_addr = info.base;
    let staged_len = info.len as usize;
    env.work(env_view(env).recv_cpu);

    if is_prefix {
        let total_len = args.a[3] as usize;
        let now = env.now();
        env.state
            .log(now, env.node(), "hybrid prefix landed in staging region");
        h_rdv_envelope(
            env,
            src,
            tag,
            total_len,
            xfer,
            Some((staged_addr, staged_len)),
            true,
        );
        return;
    }

    match env.state.match_posted(src, tag) {
        Some(p) => {
            let now = env.now();
            env.state.log(
                now,
                env.node(),
                "store handler: matched, copy to user buffer",
            );
            let action = consume_eager(env, p, src, tag, staged_addr, staged_len);
            send_free(env, action, true);
            let now = env.now();
            env.state.log(now, env.node(), "reply: free staging space");
        }
        None => {
            let now = env.now();
            env.state
                .log(now, env.node(), "store handler: unexpected, recorded");
            env.state.unexpected.push_back(InEnvelope::Eager {
                src,
                tag,
                staged_addr,
                len: staged_len,
            });
        }
    }
}

fn h_eager0(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    let tag = args.a[0] as i32;
    env.work(env_view(env).recv_cpu);
    match env.state.match_posted(src, tag) {
        Some(p) => {
            env.state.posted[p].state = PostedState::Done(
                Vec::new(),
                Status {
                    source: src,
                    tag,
                    len: 0,
                },
            );
        }
        None => {
            env.state.unexpected.push_back(InEnvelope::Eager {
                src,
                tag,
                staged_addr: 0,
                len: 0,
            });
        }
    }
}

/// Emit a free action: as a reply when legal (`can_reply`), else it is
/// queued through `pending_grants`-style mainline sends — but frees are
/// cheap requests, so the non-reply path just sends a request directly via
/// the envelope-processing mainline (see `MpiAm::send_free_request`). In
/// handler context we always have reply permission for stores/requests.
fn send_free(env: &mut AmEnv<'_, MpiSt>, action: FreeAction, can_reply: bool) {
    debug_assert!(can_reply, "handler-context frees only");
    match action {
        FreeAction::None => {}
        FreeAction::One(off, len) => env.reply_2(H_FREE_ONE, off, len),
        FreeAction::Bins(offs) => {
            let mut a = [0u32; 3];
            for (i, &o) in offs.iter().take(3).enumerate() {
                a[i] = o;
            }
            env.reply_4(H_FREE_BINS, offs.len().min(3) as u32, a[0], a[1], a[2]);
            debug_assert!(offs.len() <= 3, "free batch exceeds reply capacity");
        }
    }
}

fn h_free_one(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    env.state.allocs[src].free(args.a[0], args.a[1]);
}

fn h_free_bins(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    let count = args.a[0] as usize;
    for i in 0..count {
        let off = args.a[1 + i];
        let bin = env.state.allocs[src].bin_size;
        env.state.allocs[src].free(off, bin);
    }
}

/// Common rendezvous-envelope processing for both arrival paths (prefix
/// store or explicit request). `can_reply` is true in both handler
/// contexts; the grant rides the reply when the receive is already posted.
fn h_rdv_envelope(
    env: &mut AmEnv<'_, MpiSt>,
    src: usize,
    tag: i32,
    total_len: usize,
    xfer: u32,
    prefix: Option<(u32, usize)>,
    can_reply: bool,
) {
    if env.state.rdv_seen.contains(&(src, xfer)) {
        return; // duplicate envelope (prefix + request pair)
    }
    match env.state.match_posted(src, tag) {
        Some(p) => {
            let now = env.now();
            env.state
                .log(now, env.node(), "receive posted: grant address (reply)");
            env.state.rdv_seen.insert((src, xfer));
            let (addr, freed) = accept_rdv(env, p, src, tag, total_len, xfer, prefix);
            debug_assert!(can_reply);
            match addr {
                Some(addr) => {
                    let (foff, flen) = freed.unwrap_or((0, u32::MAX));
                    env.reply_4(H_RDV_GRANT, xfer, addr, foff, flen.wrapping_add(1));
                }
                None => {
                    // Message complete; just release the prefix space.
                    if let Some((off, len)) = freed {
                        env.reply_2(H_FREE_ONE, off, len);
                    }
                }
            }
        }
        None => {
            let now = env.now();
            env.state
                .log(now, env.node(), "no receive yet: request recorded");
            env.state.unexpected.push_back(InEnvelope::Rdv {
                src,
                tag,
                total_len,
                xfer,
                prefix,
            });
        }
    }
}

/// Allocate the landing buffer for a matched rendezvous message, absorb the
/// prefix if one was staged, and record the active receive. Returns the
/// address the *remainder* should be stored at (`None` if the prefix
/// covered the whole message), plus the staged prefix space to free.
fn accept_rdv(
    env: &mut AmEnv<'_, MpiSt>,
    posted: usize,
    src: usize,
    tag: i32,
    total_len: usize,
    xfer: u32,
    prefix: Option<(u32, usize)>,
) -> (Option<u32>, Option<(u32, u32)>) {
    let buf_addr = env.mem().alloc(total_len as u32).addr;
    let mut remainder_addr = buf_addr;
    let mut freed = None;
    if let Some((paddr, plen)) = prefix {
        // Copy the prefix into place and release its staging space.
        env.work(env_view(env).memcpy(plen));
        let mut tmp = vec![0u8; plen];
        env.mem().read(paddr, &mut tmp);
        env.mem().write(buf_addr, &tmp);
        remainder_addr = buf_addr + plen as u32;
        let off = env.state.region_off(src, paddr);
        freed = Some((off, plen as u32));
        if plen >= total_len {
            // Whole message fit in the prefix: complete immediately; no
            // grant (the sender expects none).
            let mut data = vec![0u8; total_len];
            env.mem().read(buf_addr, &mut data);
            env.state.posted[posted].state = PostedState::Done(
                data,
                Status {
                    source: src,
                    tag,
                    len: total_len,
                },
            );
            return (None, freed);
        }
    }
    env.state.rdv_recv.insert(
        (src, xfer),
        RdvRecv {
            posted,
            buf_addr,
            total_len,
            tag,
        },
    );
    (Some(remainder_addr), freed)
}

fn h_rdv_req(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    let tag = args.a[0] as i32;
    let len = args.a[1] as usize;
    let xfer = args.a[2];
    env.work(env_view(env).recv_cpu);
    let now = env.now();
    env.state
        .log(now, env.node(), "request-for-address arrived");
    h_rdv_envelope(env, src, tag, len, xfer, None, true);
}

fn h_rdv_grant(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    let xfer = args.a[0];
    let addr = args.a[1];
    // Free the prefix staging space if the grant reports one.
    if args.a[3] != 0 {
        let (off, len) = (args.a[2], args.a[3].wrapping_sub(1));
        if len != u32::MAX {
            env.state.allocs[src].free(off, len);
        }
    }
    // The ADI forbids transferring from the handler: queue for progress.
    let now = env.now();
    env.state.log(
        now,
        env.node(),
        "grant received; store queued for next poll",
    );
    env.state.pending_grants.push((src, xfer, addr));
}

fn h_rdv_done(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    let src = args.src;
    let xfer = args.a[0];
    env.work(env_view(env).recv_cpu);
    let now = env.now();
    env.state
        .log(now, env.node(), "rendezvous data landed: receive complete");
    let rec = env
        .state
        .rdv_recv
        .remove(&(src, xfer))
        .expect("rendezvous receive active");
    env.state.rdv_seen.remove(&(src, xfer));
    let mut data = vec![0u8; rec.total_len];
    env.mem().read(rec.buf_addr, &mut data);
    env.state.posted[rec.posted].state = PostedState::Done(
        data,
        Status {
            source: src,
            tag: rec.tag,
            len: rec.total_len,
        },
    );
}

fn h_send_done(env: &mut AmEnv<'_, MpiSt>, args: AmArgs) {
    env.state.send_done.insert(args.a[0]);
}

// ---------------------------------------------------------------- wrapper

#[derive(Debug)]
enum ReqRec {
    SendDone,
    SendRdv { xfer: u32 },
    Recv { posted: usize },
}

/// MPI endpoint over SP Active Messages.
pub struct MpiAm<'a, 'c> {
    am: &'a mut Am<'c, MpiSt>,
    cfg: MpiAmConfig,
    next_xfer: u32,
    next_req: u64,
    reqs: HashMap<u64, ReqRec>,
    /// Snapshot of rendezvous send data, keyed by xfer.
    rdv_data: HashMap<u32, (Vec<u8>, usize)>, // (data, prefix_already_sent)
}

impl MpiSt {
    /// Initial protocol state (used by the runner when spawning nodes).
    pub fn new(cfg: &MpiAmConfig, me: usize, n: usize, cost: &sp_machine::CostModel) -> Self {
        MpiSt {
            view: ProtoView {
                trace: cfg.trace_protocol,
                free_batch: if cfg.optimized { cfg.free_batch } else { 1 },
                memcpy_setup: cost.memcpy_setup,
                memcpy_ns_per_byte: 1000.0 / cost.memcpy_mb_s,
                recv_cpu: cfg.recv_cpu,
            },
            me,
            stage_base: 0,
            region_size: cfg.region_size,
            allocs: (0..n)
                .map(|_| {
                    RegionAlloc::new(
                        cfg.region_size,
                        cfg.binned_allocator,
                        cfg.bin_size,
                        cfg.bins,
                    )
                })
                .collect(),
            posted: Vec::new(),
            waiting: Vec::new(),
            free_slots: Vec::new(),
            unexpected: VecDeque::new(),
            pending_grants: Vec::new(),
            send_done: HashSet::new(),
            rdv_recv: HashMap::new(),
            deferred_bin_frees: (0..n).map(|_| Vec::new()).collect(),
            rdv_seen: HashSet::new(),
            plog: Vec::new(),
        }
    }

    fn log(&mut self, at: sp_sim::Time, node: usize, what: &'static str) {
        if self.view.trace {
            self.plog.push((at, node, what));
        }
    }

    /// The protocol-event trace: (time, acting node, event).
    pub fn protocol_log(&self) -> &[(sp_sim::Time, usize, &'static str)] {
        &self.plog
    }
}

impl<'a, 'c> MpiAm<'a, 'c> {
    /// Wrap an AM endpoint (state type [`MpiSt`]). Registers the handler
    /// table and allocates the staging regions; must run before any other
    /// allocation (SPMD discipline keeps regions at identical addresses on
    /// every rank).
    pub fn new(am: &'a mut Am<'c, MpiSt>, cfg: MpiAmConfig) -> Self {
        let h = [
            am.register(h_eager),
            am.register(h_eager0),
            am.register(h_free_one),
            am.register(h_free_bins),
            am.register(h_rdv_req),
            am.register(h_rdv_grant),
            am.register(h_rdv_done),
            am.register(h_send_done),
        ];
        debug_assert_eq!(
            h,
            [
                H_EAGER,
                H_EAGER0,
                H_FREE_ONE,
                H_FREE_BINS,
                H_RDV_REQ,
                H_RDV_GRANT,
                H_RDV_DONE,
                H_SEND_DONE
            ]
        );
        let n = am.nodes();
        let stage = am.alloc(cfg.region_size * n as u32);
        am.state_mut().stage_base = stage.addr;
        MpiAm {
            am,
            cfg,
            next_xfer: 1,
            next_req: 0,
            reqs: HashMap::new(),
            rdv_data: HashMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MpiAmConfig {
        &self.cfg
    }

    /// The protocol-event trace (empty unless
    /// [`MpiAmConfig::trace_protocol`] is set): (time, acting node, event).
    pub fn protocol_log(&self) -> &[(sp_sim::Time, usize, &'static str)] {
        self.am.state().protocol_log()
    }

    fn new_req(&mut self, rec: ReqRec) -> Req {
        let id = self.next_req;
        self.next_req += 1;
        self.reqs.insert(id, rec);
        Req(id)
    }

    /// Absolute address of offset `off` inside my staging region at `dst`.
    fn region_addr_at(&self, dst: usize, off: u32) -> GlobalPtr {
        GlobalPtr {
            node: dst,
            addr: self.am.state().stage_base + self.am.node() as u32 * self.cfg.region_size + off,
        }
    }

    /// Allocate staging space at `dst`, polling for frees under pressure.
    fn alloc_region(&mut self, dst: usize, len: u32) -> u32 {
        loop {
            let got = self.am.state_mut().allocs[dst].alloc(len);
            match got {
                Some((off, steps)) => {
                    // First-fit scanning cost vs. a bin hit (§4.2).
                    let cycles = if steps <= 1 {
                        15
                    } else {
                        40 + 15 * steps as u64
                    };
                    self.am.work(self.am.cost().cycles(cycles));
                    return off;
                }
                None => {
                    // Region exhausted: wait for frees.
                    self.progress_once();
                }
            }
        }
    }

    /// Try to allocate without blocking (hybrid prefix "reverts to plain
    /// rendezvous" when no space is available).
    fn try_alloc_region(&mut self, dst: usize, len: u32) -> Option<u32> {
        let got = self.am.state_mut().allocs[dst].alloc(len);
        got.map(|(off, steps)| {
            let cycles = if steps <= 1 {
                15
            } else {
                40 + 15 * steps as u64
            };
            self.am.work(self.am.cost().cycles(cycles));
            off
        })
    }

    fn progress_once(&mut self) {
        self.am.poll();
        self.pump_grants();
    }

    /// Start stores for any rendezvous grants the handlers queued.
    fn pump_grants(&mut self) {
        while let Some((dst, xfer, addr)) = self.am.state_mut().pending_grants.pop() {
            let now = self.am.now();
            let me = self.am.node();
            self.am
                .state_mut()
                .log(now, me, "poll: store data to granted address");
            let (data, prefix_sent) = self
                .rdv_data
                .remove(&xfer)
                .expect("rendezvous data retained");
            let remainder = &data[prefix_sent..];
            debug_assert!(!remainder.is_empty(), "grant for fully-sent message");
            let _ = self.am.store_async(
                GlobalPtr { node: dst, addr },
                remainder,
                Some(H_RDV_DONE),
                &[xfer],
                Some((H_SEND_DONE, [xfer, 0, 0, 0])),
            );
        }
    }

    /// Send a free as a request (mainline context, where replies are not
    /// available).
    fn send_free_request(&mut self, dst: usize, action: FreeAction) {
        match action {
            FreeAction::None => {}
            FreeAction::One(off, len) => self.am.request_2(dst, H_FREE_ONE, off, len),
            FreeAction::Bins(offs) => {
                let mut a = [0u32; 3];
                for (i, &o) in offs.iter().take(3).enumerate() {
                    a[i] = o;
                }
                self.am
                    .request_4(dst, H_FREE_BINS, offs.len().min(3) as u32, a[0], a[1], a[2]);
            }
        }
    }
}

impl Mpi for MpiAm<'_, '_> {
    fn rank(&self) -> usize {
        self.am.node()
    }

    fn size(&self) -> usize {
        self.am.nodes()
    }

    fn now(&self) -> Time {
        self.am.now()
    }

    fn work(&mut self, d: Dur) {
        self.am.work(d);
    }

    fn progress(&mut self) {
        self.progress_once();
    }

    fn isend(&mut self, buf: &[u8], dest: usize, tag: i32) -> Req {
        self.am.work(self.cfg.send_cpu);
        if dest == self.am.node() {
            // Self-send: deliver directly.
            let me = self.am.node();
            let st = self.am.state_mut();
            match st.match_posted(me, tag) {
                Some(p) => {
                    st.posted[p].state = PostedState::Done(
                        buf.to_vec(),
                        Status {
                            source: me,
                            tag,
                            len: buf.len(),
                        },
                    );
                }
                None => {
                    // Stash as a zero-copy eager envelope in a private
                    // arena block.
                    let addr = self.am.alloc(buf.len().max(1) as u32).addr;
                    self.am.mem().write(addr, buf);
                    self.am.state_mut().unexpected.push_back(InEnvelope::Eager {
                        src: me,
                        tag,
                        staged_addr: addr,
                        len: buf.len(),
                    });
                }
            }
            return self.new_req(ReqRec::SendDone);
        }

        if buf.is_empty() {
            self.am.request_1(dest, H_EAGER0, tag as u32);
            return self.new_req(ReqRec::SendDone);
        }

        if buf.len() < self.cfg.eager_limit {
            // Buffered protocol.
            let now = self.am.now();
            let me = self.am.node();
            self.am.state_mut().log(
                now,
                me,
                "MPI_Send: allocate staging space (sender-side), store data",
            );
            let off = self.alloc_region(dest, buf.len() as u32);
            let dst = self.region_addr_at(dest, off);
            let xfer = self.next_xfer;
            self.next_xfer += 1;
            let _ = self
                .am
                .store_async(dst, buf, Some(H_EAGER), &[tag as u32, xfer, 0, 0], None);
            return self.new_req(ReqRec::SendDone);
        }

        // Rendezvous (hybrid when optimized and space permits).
        let xfer = self.next_xfer;
        self.next_xfer += 1;
        let mut prefix_sent = 0usize;
        if self.cfg.optimized {
            let plen = self.cfg.hybrid_prefix.min(buf.len()) as u32;
            if let Some(off) = self.try_alloc_region(dest, plen) {
                let dst = self.region_addr_at(dest, off);
                prefix_sent = plen as usize;
                // The prefix store carries the whole rendezvous envelope;
                // its reply is the grant.
                let _ = self.am.store_async(
                    dst,
                    &buf[..prefix_sent],
                    Some(H_EAGER),
                    &[tag as u32, xfer, FLAG_PREFIX, buf.len() as u32],
                    None,
                );
            }
        }
        if prefix_sent == 0 {
            let now = self.am.now();
            let me = self.am.node();
            self.am
                .state_mut()
                .log(now, me, "MPI_Send: rendezvous request-for-address");
            self.am
                .request_3(dest, H_RDV_REQ, tag as u32, buf.len() as u32, xfer);
        } else {
            let now = self.am.now();
            let me = self.am.node();
            self.am.state_mut().log(
                now,
                me,
                "MPI_Send: hybrid prefix store (doubles as the request)",
            );
        }
        if prefix_sent >= buf.len() {
            // Whole message travelled as the prefix.
            return self.new_req(ReqRec::SendDone);
        }
        self.rdv_data.insert(xfer, (buf.to_vec(), prefix_sent));
        self.new_req(ReqRec::SendRdv { xfer })
    }

    fn irecv(&mut self, source: Option<usize>, tag: Option<i32>) -> Req {
        self.am.work(self.cfg.recv_cpu);
        // Match against already-arrived envelopes, in arrival order.
        let pos = self.am.state().unexpected.iter().position(|e| match e {
            InEnvelope::Eager { src, tag: t, .. } | InEnvelope::Rdv { src, tag: t, .. } => {
                tag_matches(source, tag, *src, *t)
            }
        });
        // Register the posted recv first (envelope consumption needs its
        // index).
        let posted = self.am.state_mut().post(source, tag);
        if let Some(pos) = pos {
            self.am.state_mut().unwait(posted);
            let env = self
                .am
                .state_mut()
                .unexpected
                .remove(pos)
                .expect("position valid");
            match env {
                InEnvelope::Eager {
                    src,
                    tag: t,
                    staged_addr,
                    len,
                } => {
                    // Copy out and free (request context).
                    let data = if len > 0 {
                        let cost = self.am.state().view.memcpy(len);
                        self.am.work(cost);
                        let mut buf = vec![0u8; len];
                        self.am.mem().read(staged_addr, &mut buf);
                        buf
                    } else {
                        Vec::new()
                    };
                    let st = self.am.state_mut();
                    st.posted[posted].state = PostedState::Done(
                        data,
                        Status {
                            source: src,
                            tag: t,
                            len,
                        },
                    );
                    if len > 0 && src != st.me {
                        let off = st.region_off(src, staged_addr);
                        let action = plan_free(st, src, off, len as u32);
                        self.send_free_request(src, action);
                    }
                }
                InEnvelope::Rdv {
                    src,
                    tag: t,
                    total_len,
                    xfer,
                    prefix,
                } => {
                    // Accept: allocate the buffer, absorb any prefix, grant
                    // via request.
                    let now = self.am.now();
                    let me = self.am.node();
                    self.am.state_mut().log(
                        now,
                        me,
                        "MPI_Irecv: matches recorded request; grant address (request)",
                    );
                    self.am.state_mut().rdv_seen.insert((src, xfer));
                    let buf_addr = self.am.alloc(total_len as u32).addr;
                    let mut remainder_addr = buf_addr;
                    let mut freed = FreeAction::None;
                    let mut done = false;
                    if let Some((paddr, plen)) = prefix {
                        let cost = self.am.state().view.memcpy(plen);
                        self.am.work(cost);
                        let mut tmp = vec![0u8; plen];
                        self.am.mem().read(paddr, &mut tmp);
                        self.am.mem().write(buf_addr, &tmp);
                        remainder_addr = buf_addr + plen as u32;
                        let st = self.am.state_mut();
                        let off = st.region_off(src, paddr);
                        freed = plan_free(st, src, off, plen as u32);
                        if plen >= total_len {
                            let mut data = vec![0u8; total_len];
                            self.am.mem().read(buf_addr, &mut data);
                            self.am.state_mut().posted[posted].state = PostedState::Done(
                                data,
                                Status {
                                    source: src,
                                    tag: t,
                                    len: total_len,
                                },
                            );
                            done = true;
                        }
                    }
                    self.send_free_request(src, freed);
                    if !done {
                        self.am.state_mut().rdv_recv.insert(
                            (src, xfer),
                            RdvRecv {
                                posted,
                                buf_addr,
                                total_len,
                                tag: t,
                            },
                        );
                        self.am.request_2(src, H_RDV_GRANT, xfer, remainder_addr);
                    }
                }
            }
        }
        self.new_req(ReqRec::Recv { posted })
    }

    fn test(&mut self, req: Req) -> bool {
        self.progress_once();
        match self.reqs.get(&req.0) {
            None => true,
            Some(ReqRec::SendDone) => true,
            Some(ReqRec::SendRdv { xfer }) => self.am.state().send_done.contains(xfer),
            Some(ReqRec::Recv { posted }) => {
                matches!(self.am.state().posted[*posted].state, PostedState::Done(..))
            }
        }
    }

    fn wait(&mut self, req: Req) -> Option<(Vec<u8>, Status)> {
        let rec = self
            .reqs
            .remove(&req.0)
            .expect("request exists (wait once)");
        match rec {
            ReqRec::SendDone => None,
            ReqRec::SendRdv { xfer } => {
                while !self.am.state().send_done.contains(&xfer) {
                    self.progress_once();
                }
                self.am.state_mut().send_done.remove(&xfer);
                None
            }
            ReqRec::Recv { posted } => {
                while matches!(self.am.state().posted[posted].state, PostedState::Waiting) {
                    self.progress_once();
                }
                let st = self.am.state_mut();
                let out =
                    match std::mem::replace(&mut st.posted[posted].state, PostedState::Consumed) {
                        PostedState::Done(data, status) => Some((data, status)),
                        _ => unreachable!("just checked"),
                    };
                st.free_slots.push(posted);
                out
            }
        }
    }

    /// With `tuned_collectives` the all-to-all staggers destinations (rank
    /// r starts at r+1) instead of MPICH's everyone-hammers-rank-0
    /// schedule — the paper's proposed fix for FT's bottleneck. Otherwise
    /// the generic default runs.
    fn alltoall(&mut self, bufs: &[Vec<u8>]) -> Vec<Vec<u8>> {
        if !self.cfg.tuned_collectives {
            return crate::iface::generic_alltoall(self, bufs);
        }
        let (me, p) = (self.rank(), self.size());
        assert_eq!(bufs.len(), p);
        const TAG: i32 = i32::MAX - 4;
        let recvs: Vec<Req> = (1..p)
            .map(|i| self.irecv(Some((me + p - i) % p), Some(TAG)))
            .collect();
        let mut sends = Vec::with_capacity(p - 1);
        for i in 1..p {
            let d = (me + i) % p;
            sends.push(self.isend(&bufs[d], d, TAG));
        }
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        out[me] = bufs[me].clone();
        for r in recvs {
            let (bytes, st) = self.wait(r).expect("receive yields");
            out[st.source] = bytes;
        }
        for s in sends {
            self.wait(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ff(region: u32) -> RegionAlloc {
        RegionAlloc::new(region, false, 1024, 8)
    }

    #[test]
    fn first_fit_allocates_and_coalesces() {
        let mut a = ff(16 * 1024);
        let (x, _) = a.alloc(4000).unwrap();
        let (y, _) = a.alloc(4000).unwrap();
        let (z, _) = a.alloc(4000).unwrap();
        assert!(x < y && y < z);
        // Free out of order; the region must coalesce back to one block.
        a.free(y, 4000);
        a.free(x, 4000);
        a.free(z, 4000);
        let (w, steps) = a.alloc(16 * 1024).unwrap();
        assert_eq!(w, 0);
        assert_eq!(
            steps, 1,
            "coalescing failed: {} free-list entries scanned",
            steps
        );
    }

    #[test]
    fn binned_allocator_prefers_bins() {
        let mut a = RegionAlloc::new(16 * 1024, true, 1024, 8);
        for i in 0..8u32 {
            let (off, steps) = a.alloc(500).unwrap();
            assert_eq!(off, i * 1024, "bin order");
            assert_eq!(steps, 1, "bin hit must not scan");
        }
        // Ninth small allocation falls through to first-fit territory.
        let (off, _) = a.alloc(500).unwrap();
        assert!(off >= 8 * 1024);
        // Free a bin: next small allocation reuses it.
        a.free(2 * 1024, 500);
        let (off, _) = a.alloc(400).unwrap();
        assert_eq!(off, 2 * 1024);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = ff(8 * 1024);
        assert!(a.alloc(8 * 1024).is_some());
        assert!(a.alloc(1).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        /// Live allocations never overlap and always fit the region, for
        /// arbitrary alloc/free interleavings, with and without bins.
        #[test]
        fn allocations_disjoint(
            ops in prop::collection::vec((any::<bool>(), 1u32..3000), 1..200),
            binned in any::<bool>(),
        ) {
            let region = 16 * 1024u32;
            let mut a = RegionAlloc::new(region, binned, 1024, 8);
            let mut live: Vec<(u32, u32)> = Vec::new();
            for (is_alloc, len) in ops {
                if is_alloc || live.is_empty() {
                    if let Some((off, _)) = a.alloc(len) {
                        prop_assert!(off + len <= region, "allocation escapes the region");
                        for &(o, l) in &live {
                            // Bin allocations may be smaller than the bin
                            // they occupy; compare against the bin extent.
                            let extent = |off: u32, len: u32| {
                                if a.is_bin(off) { (off, off + 1024) } else { (off, off + len) }
                            };
                            let (s1, e1) = extent(off, len);
                            let (s2, e2) = extent(o, l);
                            prop_assert!(e1 <= s2 || e2 <= s1,
                                "overlap: [{s1},{e1}) vs [{s2},{e2})");
                        }
                        live.push((off, len));
                    }
                } else {
                    let (off, len) = live.swap_remove(len as usize % live.len());
                    a.free(off, len);
                }
            }
            // Free everything: the full region must be allocatable again.
            for (off, len) in live.drain(..) {
                a.free(off, len);
            }
            let bin_bytes = if binned { 8 * 1024 } else { 0 };
            prop_assert!(a.alloc(region - bin_bytes).is_some(), "region leaked");
        }
    }
}
