//! The MPI interface subset, with MPICH-style generic collectives as
//! default methods.

use sp_sim::{Dur, Time};

/// Wildcard source (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<usize> = None;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<i32> = None;

/// Completion status of a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sending rank.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Message length in bytes.
    pub len: usize,
}

/// Request handle for non-blocking operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Req(pub(crate) u64);

// Tags reserved for the generic collectives (top of the tag space).
const TAG_BARRIER: i32 = i32::MAX - 1;
const TAG_BCAST: i32 = i32::MAX - 2;
const TAG_REDUCE: i32 = i32::MAX - 3;
const TAG_ALLTOALL: i32 = i32::MAX - 4;
const TAG_GATHER: i32 = i32::MAX - 5;

/// The MPI operations the paper's evaluation requires.
///
/// Implementations provide point-to-point; the collectives are MPICH's
/// *generic* algorithms (built from point-to-point) unless overridden —
/// [`MpiF`](crate::MpiF) overrides `alltoall` the way a tuned native MPI
/// would.
pub trait Mpi {
    /// This process's rank.
    fn rank(&self) -> usize;
    /// Communicator size.
    fn size(&self) -> usize;
    /// Current virtual time.
    fn now(&self) -> Time;
    /// Charge computation time.
    fn work(&mut self, d: Dur);

    /// `MPI_Isend`: start a send; the buffer is captured (reusable
    /// immediately, like a buffered send).
    fn isend(&mut self, buf: &[u8], dest: usize, tag: i32) -> Req;
    /// `MPI_Irecv`: post a receive.
    fn irecv(&mut self, source: Option<usize>, tag: Option<i32>) -> Req;
    /// `MPI_Wait`: complete one request. Receives yield their message.
    fn wait(&mut self, req: Req) -> Option<(Vec<u8>, Status)>;
    /// `MPI_Test`-ish: has the request completed?
    fn test(&mut self, req: Req) -> bool;
    /// Let the progress engine run once (poll the network).
    fn progress(&mut self);

    /// `MPI_Send` (blocks until the message is safely on its way and the
    /// protocol's completion condition holds).
    fn send(&mut self, buf: &[u8], dest: usize, tag: i32) {
        let r = self.isend(buf, dest, tag);
        self.wait(r);
    }

    /// `MPI_Recv`.
    fn recv(&mut self, source: Option<usize>, tag: Option<i32>) -> (Vec<u8>, Status) {
        let r = self.irecv(source, tag);
        self.wait(r).expect("receive yields a message")
    }

    /// `MPI_Waitall`.
    fn waitall(&mut self, reqs: Vec<Req>) -> Vec<Option<(Vec<u8>, Status)>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// `MPI_Sendrecv`.
    fn sendrecv(
        &mut self,
        buf: &[u8],
        dest: usize,
        send_tag: i32,
        source: Option<usize>,
        recv_tag: Option<i32>,
    ) -> (Vec<u8>, Status) {
        let rr = self.irecv(source, recv_tag);
        let sr = self.isend(buf, dest, send_tag);
        let out = self.wait(rr).expect("receive yields a message");
        self.wait(sr);
        out
    }

    /// `MPI_Barrier` (generic: dissemination algorithm, ⌈log₂ p⌉ rounds).
    fn barrier(&mut self) {
        let (me, p) = (self.rank(), self.size());
        let mut round = 1usize;
        while round < p {
            let to = (me + round) % p;
            let from = (me + p - round % p) % p;
            let rr = self.irecv(Some(from), Some(TAG_BARRIER));
            let sr = self.isend(&[], to, TAG_BARRIER);
            self.wait(rr);
            self.wait(sr);
            round <<= 1;
        }
    }

    /// `MPI_Bcast` (generic: binomial tree). Root passes `data`; everyone
    /// returns the broadcast bytes.
    fn bcast(&mut self, root: usize, data: &[u8]) -> Vec<u8> {
        let (me, p) = (self.rank(), self.size());
        let vrank = (me + p - root) % p; // rotate so root is 0
        let mut have: Option<Vec<u8>> = if me == root {
            Some(data.to_vec())
        } else {
            None
        };
        // Receive from parent.
        if vrank != 0 {
            let mut mask = 1usize;
            while mask < p {
                if vrank & mask != 0 {
                    let parent = ((vrank ^ mask) + root) % p;
                    let (bytes, _) = self.recv(Some(parent), Some(TAG_BCAST));
                    have = Some(bytes);
                    break;
                }
                mask <<= 1;
            }
        }
        // Forward to children.
        let data = have.expect("bcast data present");
        let mut mask = {
            // First mask with vrank&mask != 0, or top bit for the root.
            let mut m = 1usize;
            while m < p && vrank & m == 0 {
                m <<= 1;
            }
            m >> 1
        };
        while mask > 0 {
            let vchild = vrank | mask;
            if vchild < p && vchild != vrank {
                let child = (vchild + root) % p;
                self.send(&data, child, TAG_BCAST);
            }
            mask >>= 1;
        }
        data
    }

    /// Generic `MPI_Reduce` of f64 vectors with operator `op` (element
    /// wise); result valid at `root` (binomial tree).
    fn reduce_f64(
        &mut self,
        root: usize,
        mine: &[f64],
        op: fn(f64, f64) -> f64,
    ) -> Option<Vec<f64>> {
        let (me, p) = (self.rank(), self.size());
        let vrank = (me + p - root) % p;
        let mut acc = mine.to_vec();
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = ((vrank ^ mask) + root) % p;
                let bytes: Vec<u8> = acc.iter().flat_map(|v| v.to_le_bytes()).collect();
                self.send(&bytes, parent, TAG_REDUCE);
                return None;
            }
            let vchild = vrank | mask;
            if vchild < p {
                let child = (vchild + root) % p;
                let (bytes, _) = self.recv(Some(child), Some(TAG_REDUCE));
                for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                    let v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                    acc[i] = op(acc[i], v);
                }
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Generic `MPI_Allreduce` (reduce to 0, then broadcast).
    fn allreduce_f64(&mut self, mine: &[f64], op: fn(f64, f64) -> f64) -> Vec<f64> {
        let reduced = self.reduce_f64(0, mine, op);
        let data = reduced.map(|v| v.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<u8>>());
        let bytes = self.bcast(0, data.as_deref().unwrap_or(&[]));
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    }

    /// `MPI_Alltoall`: `bufs[d]` goes to rank `d`; returns what every rank
    /// sent to us, indexed by source.
    ///
    /// Generic MPICH schedule: post all receives, then send to ranks **in
    /// ascending order** — so at the start every processor targets rank 0
    /// simultaneously. This is the convergent pattern the paper identifies
    /// as FT's bottleneck ("all processors try to send to the same
    /// processor at the same time, rather than spreading out the
    /// communication pattern", §4.4).
    fn alltoall(&mut self, bufs: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let (me, p) = (self.rank(), self.size());
        assert_eq!(bufs.len(), p);
        let recvs: Vec<Req> = (0..p)
            .filter(|&s| s != me)
            .map(|s| self.irecv(Some(s), Some(TAG_ALLTOALL)))
            .collect();
        let mut sends = Vec::with_capacity(p - 1);
        #[allow(clippy::needless_range_loop)] // d is a *rank*, not just an index
        for d in 0..p {
            if d != me {
                sends.push(self.isend(&bufs[d], d, TAG_ALLTOALL));
            }
        }
        let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        out[me] = bufs[me].clone();
        for r in recvs {
            let (bytes, st) = self.wait(r).expect("receive yields");
            out[st.source] = bytes;
        }
        for s in sends {
            self.wait(s);
        }
        out
    }

    /// Generic `MPI_Gather` of equal-size contributions to `root`.
    /// (See also `generic_alltoall` for reuse by implementations that
    /// conditionally override `alltoall`.)
    fn gather(&mut self, root: usize, mine: &[u8]) -> Option<Vec<Vec<u8>>> {
        let (me, p) = (self.rank(), self.size());
        if me == root {
            let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
            out[me] = mine.to_vec();
            for _ in 0..p - 1 {
                let (bytes, st) = self.recv(None, Some(TAG_GATHER));
                out[st.source] = bytes;
            }
            Some(out)
        } else {
            self.send(mine, root, TAG_GATHER);
            None
        }
    }
}

/// The generic MPICH all-to-all schedule as a free function, so trait
/// implementations that override `alltoall` conditionally can fall back to
/// it (calling the default method from an override would recurse).
pub(crate) fn generic_alltoall<M: Mpi + ?Sized>(mpi: &mut M, bufs: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let (me, p) = (mpi.rank(), mpi.size());
    assert_eq!(bufs.len(), p);
    let recvs: Vec<Req> = (0..p)
        .filter(|&s| s != me)
        .map(|s| mpi.irecv(Some(s), Some(TAG_ALLTOALL)))
        .collect();
    let mut sends = Vec::with_capacity(p - 1);
    #[allow(clippy::needless_range_loop)] // d is a *rank*, not just an index
    for d in 0..p {
        if d != me {
            sends.push(mpi.isend(&bufs[d], d, TAG_ALLTOALL));
        }
    }
    let mut out: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
    out[me] = bufs[me].clone();
    for r in recvs {
        let (bytes, st) = mpi.wait(r).expect("receive yields");
        out[st.source] = bytes;
    }
    for s in sends {
        mpi.wait(s);
    }
    out
}
