//! SPMD runner for MPI programs over the paper's MPI implementations.

use crate::iface::Mpi;
use crate::mpiam::{MpiAm, MpiAmConfig, MpiSt};
use crate::mpif::{MpiF, MpiFConfig};
use parking_lot::Mutex;
use sp_adapter::SpConfig;
use sp_am::{Am, AmConfig, AmMachine};
use sp_mpl::{Mpl, MplMachine};
use std::sync::Arc;

/// Which MPI implementation (and node flavour) to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiImpl {
    /// Unoptimized MPICH-over-AM (§4.1).
    AmUnoptimized,
    /// Optimized MPICH-over-AM (§4.2).
    AmOptimized,
    /// Optimized MPICH-over-AM with SP-tuned collectives (the paper's
    /// §4.4 future-work configuration).
    AmTuned,
    /// The MPI-F-like native baseline.
    MpiF,
}

impl MpiImpl {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            MpiImpl::AmUnoptimized => "unoptimized AM MPI",
            MpiImpl::AmOptimized => "optimized AM MPI",
            MpiImpl::AmTuned => "AM MPI + tuned collectives",
            MpiImpl::MpiF => "MPI-F",
        }
    }

    /// All implementations, in the paper's legend order (the tuned-
    /// collectives extension last).
    pub fn all() -> [MpiImpl; 4] {
        [
            MpiImpl::AmUnoptimized,
            MpiImpl::AmOptimized,
            MpiImpl::MpiF,
            MpiImpl::AmTuned,
        ]
    }
}

/// Machine-level outcome of an MPI run, beyond the per-rank results: the
/// engine observables the serial-vs-parallel equivalence checks compare.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpiRunReport {
    /// Final virtual time, ns.
    pub end_ns: u64,
    /// Counted engine events executed.
    pub events: u64,
    /// FNV-1a over `(end, events, per-node adapter stats, switch stats)` —
    /// the same observable-state construction the golden pins use. Two runs
    /// with equal hashes moved every packet identically.
    pub report_hash: u64,
    /// Per-shard engine breakdown (empty on a serial run).
    pub shards: Vec<sp_sim::ShardReport>,
    /// Inter-shard synchronization events (0 on a serial run).
    pub sync_events: u64,
    /// Conservative lookahead windows (0 on a serial run).
    pub windows: u64,
    /// PDES profile of a parallel run (window utilization, imbalance,
    /// sync overhead); `None` on a serial run. Integer-valued fields keep
    /// the report `Eq`-comparable for the equivalence checks.
    pub profile: Option<sp_sim::ShardProfile>,
}

/// FNV-1a over the observable end state of any `SpWorld`-backed machine.
fn world_hash<P: Send + 'static>(end_ns: u64, events: u64, w: &sp_adapter::SpWorld<P>) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(end_ns);
    mix(events);
    for node in 0..w.nodes() {
        let a = w.adapter_stats(node);
        mix(a.sent);
        mix(a.received);
        mix(a.dropped_overflow);
        mix(a.doorbells);
        mix(a.lazy_pops);
        mix(a.recv_high_water as u64);
    }
    let s = w.switch.stats();
    mix(s.delivered);
    mix(s.dropped);
    mix(s.wire_bytes);
    mix(s.hops);
    h
}

/// Run `app` SPMD over `nodes` ranks of `imp` on the given SP hardware
/// (thin or wide nodes); returns each rank's result.
pub fn run_mpi<R: Send + 'static>(
    imp: MpiImpl,
    sp: SpConfig,
    seed: u64,
    app: impl Fn(&mut dyn Mpi) -> R + Send + Sync + Clone + 'static,
) -> Vec<R> {
    run_mpi_report(imp, sp, seed, app).0
}

/// [`run_mpi`], additionally returning the [`MpiRunReport`] — end time,
/// event count, world hash, and the parallel engine's shard breakdown.
/// `sp.parallel >= 2` runs the machine on the sharded conservative engine.
pub fn run_mpi_report<R: Send + 'static>(
    imp: MpiImpl,
    sp: SpConfig,
    seed: u64,
    app: impl Fn(&mut dyn Mpi) -> R + Send + Sync + Clone + 'static,
) -> (Vec<R>, MpiRunReport) {
    let nodes = sp.nodes;
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..nodes).map(|_| None).collect()));
    let run;
    match imp {
        MpiImpl::AmUnoptimized | MpiImpl::AmOptimized | MpiImpl::AmTuned => {
            let cfg = match imp {
                MpiImpl::AmOptimized => MpiAmConfig::optimized(),
                MpiImpl::AmTuned => MpiAmConfig {
                    tuned_collectives: true,
                    ..MpiAmConfig::optimized()
                },
                _ => MpiAmConfig::unoptimized(),
            };
            let cost = sp.cost.clone();
            let mut m = AmMachine::new(sp, AmConfig::default(), seed);
            for node in 0..nodes {
                let app = app.clone();
                let results = results.clone();
                let cfg = cfg.clone();
                let st = MpiSt::new(&cfg, node, nodes, &cost);
                m.spawn(format!("r{node}"), st, move |am: &mut Am<'_, MpiSt>| {
                    let mut mpi = MpiAm::new(am, cfg);
                    let r = app(&mut mpi);
                    results.lock()[node] = Some(r);
                });
            }
            // `SP_TRACE_OUT=<path>` captures a full Perfetto trace of
            // this run (AM machines only): per-node tracks, and per-shard
            // window/wait tracks when the parallel engine is active.
            let trace_out = std::env::var("SP_TRACE_OUT").ok();
            let tracer = trace_out.as_ref().map(|_| m.enable_tracing(1 << 16));
            let r = m.run().expect("MPI-AM run completes");
            if let (Some(path), Some(t)) = (trace_out, tracer) {
                let json = sp_trace::chrome::to_chrome_json(&t.snapshot());
                std::fs::write(&path, json).expect("write SP_TRACE_OUT trace");
                println!(
                    "[trace] wrote {path} ({} records, {} dropped to ring overflow)",
                    t.len(),
                    t.dropped()
                );
            }
            let end_ns = r.end_time.as_ns();
            run = MpiRunReport {
                end_ns,
                events: r.events,
                report_hash: world_hash(end_ns, r.events, &r.world),
                shards: r.shards,
                sync_events: r.sync_events,
                windows: r.windows,
                profile: r.profile,
            };
        }
        MpiImpl::MpiF => {
            let cfg = MpiFConfig::default();
            let mut m = MplMachine::new(sp, cfg.transport.clone(), seed);
            for node in 0..nodes {
                let app = app.clone();
                let results = results.clone();
                let cfg = cfg.clone();
                m.spawn(format!("r{node}"), move |mpl: &mut Mpl<'_>| {
                    let mut mpi = MpiF::new(mpl, cfg);
                    let r = app(&mut mpi);
                    results.lock()[node] = Some(r);
                });
            }
            let r = m.run().expect("MPI-F run completes");
            let end_ns = r.end_time.as_ns();
            run = MpiRunReport {
                end_ns,
                events: r.events,
                report_hash: world_hash(end_ns, r.events, &r.world),
                shards: r.shards,
                sync_events: r.sync_events,
                windows: r.windows,
                profile: r.profile,
            };
        }
    }
    let mut out = Vec::with_capacity(nodes);
    for slot in results.lock().iter_mut() {
        out.push(slot.take().expect("every rank produced a result"));
    }
    (out, run)
}
