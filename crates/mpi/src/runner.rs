//! SPMD runner for MPI programs over the paper's MPI implementations.

use crate::iface::Mpi;
use crate::mpiam::{MpiAm, MpiAmConfig, MpiSt};
use crate::mpif::{MpiF, MpiFConfig};
use parking_lot::Mutex;
use sp_adapter::SpConfig;
use sp_am::{Am, AmConfig, AmMachine};
use sp_mpl::{Mpl, MplMachine};
use std::sync::Arc;

/// Which MPI implementation (and node flavour) to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiImpl {
    /// Unoptimized MPICH-over-AM (§4.1).
    AmUnoptimized,
    /// Optimized MPICH-over-AM (§4.2).
    AmOptimized,
    /// Optimized MPICH-over-AM with SP-tuned collectives (the paper's
    /// §4.4 future-work configuration).
    AmTuned,
    /// The MPI-F-like native baseline.
    MpiF,
}

impl MpiImpl {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            MpiImpl::AmUnoptimized => "unoptimized AM MPI",
            MpiImpl::AmOptimized => "optimized AM MPI",
            MpiImpl::AmTuned => "AM MPI + tuned collectives",
            MpiImpl::MpiF => "MPI-F",
        }
    }

    /// All implementations, in the paper's legend order (the tuned-
    /// collectives extension last).
    pub fn all() -> [MpiImpl; 4] {
        [
            MpiImpl::AmUnoptimized,
            MpiImpl::AmOptimized,
            MpiImpl::MpiF,
            MpiImpl::AmTuned,
        ]
    }
}

/// Run `app` SPMD over `nodes` ranks of `imp` on the given SP hardware
/// (thin or wide nodes); returns each rank's result.
pub fn run_mpi<R: Send + 'static>(
    imp: MpiImpl,
    sp: SpConfig,
    seed: u64,
    app: impl Fn(&mut dyn Mpi) -> R + Send + Sync + Clone + 'static,
) -> Vec<R> {
    let nodes = sp.nodes;
    let results: Arc<Mutex<Vec<Option<R>>>> =
        Arc::new(Mutex::new((0..nodes).map(|_| None).collect()));
    match imp {
        MpiImpl::AmUnoptimized | MpiImpl::AmOptimized | MpiImpl::AmTuned => {
            let cfg = match imp {
                MpiImpl::AmOptimized => MpiAmConfig::optimized(),
                MpiImpl::AmTuned => MpiAmConfig {
                    tuned_collectives: true,
                    ..MpiAmConfig::optimized()
                },
                _ => MpiAmConfig::unoptimized(),
            };
            let cost = sp.cost.clone();
            let mut m = AmMachine::new(sp, AmConfig::default(), seed);
            for node in 0..nodes {
                let app = app.clone();
                let results = results.clone();
                let cfg = cfg.clone();
                let st = MpiSt::new(&cfg, node, nodes, &cost);
                m.spawn(format!("r{node}"), st, move |am: &mut Am<'_, MpiSt>| {
                    let mut mpi = MpiAm::new(am, cfg);
                    let r = app(&mut mpi);
                    results.lock()[node] = Some(r);
                });
            }
            m.run().expect("MPI-AM run completes");
        }
        MpiImpl::MpiF => {
            let cfg = MpiFConfig::default();
            let mut m = MplMachine::new(sp, cfg.transport.clone(), seed);
            for node in 0..nodes {
                let app = app.clone();
                let results = results.clone();
                let cfg = cfg.clone();
                m.spawn(format!("r{node}"), move |mpl: &mut Mpl<'_>| {
                    let mut mpi = MpiF::new(mpl, cfg);
                    let r = app(&mut mpi);
                    results.lock()[node] = Some(r);
                });
            }
            m.run().expect("MPI-F run completes");
        }
    }
    let mut out = Vec::with_capacity(nodes);
    for slot in results.lock().iter_mut() {
        out.push(slot.take().expect("every rank produced a result"));
    }
    out
}
