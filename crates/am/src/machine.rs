//! Builder tying an SP machine simulation to per-node AM programs.

use crate::api::Am;
use crate::config::AmConfig;
use crate::mem::MemPool;
use crate::wire::AmPacket;
use crate::AmWorld;
use sp_adapter::SpConfig;
use sp_sim::{NodeId, ShardProfile, ShardReport, Sim, SimError, Time};
use sp_trace::Tracer;

/// A configured SP machine running Active Messages node programs.
///
/// ```
/// use sp_am::{AmConfig, AmMachine};
/// use sp_adapter::SpConfig;
///
/// let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
/// for node in 0..2 {
///     m.spawn(format!("n{node}"), (), |am| {
///         am.barrier();
///     });
/// }
/// let report = m.run().unwrap();
/// assert!(report.end_time.as_us() > 0.0);
/// ```
pub struct AmMachine {
    sim: Sim<AmWorld>,
    mem: MemPool,
    cfg: AmConfig,
    nodes: usize,
    spawned: usize,
    parallel: usize,
}

/// Result of a completed AM simulation.
#[derive(Debug)]
pub struct AmReport {
    /// Final virtual time.
    pub end_time: Time,
    /// Engine events executed.
    pub events: u64,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
    /// Packets dropped to receive-FIFO overflow, summed over all adapters —
    /// the loss source the AM window/NACK machinery exists to survive.
    pub dropped_overflow: u64,
    /// Packets dropped inside the switch fabric (fault injection).
    pub switch_dropped: u64,
    /// Duplicate unpark wake-ups coalesced by the engine.
    pub wakes_coalesced: u64,
    /// Per-shard engine breakdown (empty on a serial run).
    pub shards: Vec<ShardReport>,
    /// Shards requested via [`SpConfig::parallel`] before clamping to the
    /// node count; compare with `shards.len()` to detect a clamp.
    pub shards_requested: usize,
    /// Synchronization (inter-shard hand-off) events, not counted in
    /// `events` — the parallel engine's overhead stream.
    pub sync_events: u64,
    /// Conservative lookahead windows the parallel run advanced through.
    pub windows: u64,
    /// PDES profile of a parallel run (window utilization, imbalance,
    /// sync overhead); `None` on a serial run.
    pub profile: Option<ShardProfile>,
    /// The machine's final hardware state (switch/adapter statistics).
    pub world: AmWorld,
    /// The memory pool (inspect transfer results after the run).
    pub mem: MemPool,
}

impl AmReport {
    /// Simulated events per wall-clock second (engine throughput).
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

impl AmMachine {
    /// Build a machine over `sp` hardware with `am` protocol parameters.
    pub fn new(sp: SpConfig, am: AmConfig, seed: u64) -> Self {
        let nodes = sp.nodes;
        let parallel = sp.parallel;
        let world: AmWorld = sp_adapter::SpWorld::<AmPacket>::new(sp);
        AmMachine {
            sim: Sim::new(world, seed),
            mem: MemPool::new(nodes),
            cfg: am,
            nodes,
            spawned: 0,
            parallel,
        }
    }

    /// Mutate the machine's hardware state before the run (fault
    /// injection, receive-FIFO shrinking, …).
    pub fn configure_world(&mut self, f: impl FnOnce(&mut AmWorld)) -> &mut Self {
        f(self.sim.world_mut());
        self
    }

    /// Cap engine events (livelock guard in tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.sim.set_event_budget(budget);
    }

    /// Schedule a hardware-state mutation at virtual time `at` — the moving
    /// version of [`AmMachine::configure_world`]. Fault harnesses use this
    /// to shrink a FIFO or stall an engine mid-run, deterministically, with
    /// no node program involved. Under a sharded run the call is broadcast:
    /// every shard executes `f` against its own world copy at `at`, so the
    /// closure must be `Fn` (re-runnable) and only mutate state each shard
    /// owns a consistent view of (fault injectors, FIFO capacities, …).
    pub fn schedule_world_at(
        &mut self,
        at: Time,
        f: impl Fn(&mut AmWorld) + Send + Sync + 'static,
    ) {
        self.sim.schedule_call_at(at, move |e| f(e.world()));
    }

    /// Install a virtual-time trace recorder across the whole stack — the
    /// engine, the adapters and switch, and every node's protocol engine —
    /// and return the handle used to snapshot records afterwards. Each node
    /// gets a ring of `per_node_capacity` records (oldest overwritten on
    /// overflow). Call any time before [`AmMachine::run`]; node programs
    /// pick the tracer up from the world when they start.
    pub fn enable_tracing(&mut self, per_node_capacity: usize) -> Tracer {
        let tracer = Tracer::new(self.nodes, per_node_capacity);
        self.install_tracer(tracer.clone());
        tracer
    }

    /// Install an existing trace recorder (e.g. a flight recorder's
    /// bounded ring) across the whole stack. Prefer
    /// [`AmMachine::enable_tracing`] unless the recorder outlives the
    /// machine, as a crash dump's must.
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.sim.set_tracer(tracer.clone());
        self.sim.world_mut().set_tracer(tracer);
    }

    /// The memory pool handle (also available in [`AmReport`]).
    pub fn mem(&self) -> MemPool {
        self.mem.clone()
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Spawn the next node's program with initial state `state`. Programs
    /// must be spawned for nodes `0..nodes` in order.
    pub fn spawn<S: Send + 'static>(
        &mut self,
        name: impl Into<String>,
        state: S,
        prog: impl FnOnce(&mut Am<'_, S>) + Send + 'static,
    ) -> NodeId {
        assert!(self.spawned < self.nodes, "more programs than nodes");
        self.spawned += 1;
        let mem = self.mem.clone();
        let cfg = self.cfg.clone();
        self.sim.spawn(name, move |ctx| {
            let mut am = Am::new(ctx, mem, cfg, state);
            prog(&mut am);
        })
    }

    /// Spawn the same program on every remaining node (SPMD style).
    pub fn spawn_all<S: Send + 'static>(
        &mut self,
        state: impl Fn(usize) -> S + 'static,
        prog: impl Fn(&mut Am<'_, S>) + Send + Sync + Clone + 'static,
    ) {
        for node in self.spawned..self.nodes {
            let p = prog.clone();
            self.spawn(format!("n{node}"), state(node), move |am| p(am));
        }
    }

    /// Run to completion — on the serial engine, or sharded across
    /// [`SpConfig::parallel`] conservative-parallel shards when that is
    /// `>= 2`. Multi-frame topologies, fault injection, and
    /// [`AmMachine::schedule_world_at`] all replay identically under any
    /// shard count; adaptive routing is the one remaining serial-only
    /// feature.
    pub fn run(self) -> Result<AmReport, SimError> {
        assert_eq!(self.spawned, self.nodes, "every node needs a program");
        let mem = self.mem;
        let report = if self.parallel >= 2 {
            self.sim.run_parallel(self.parallel)?
        } else {
            self.sim.run()?
        };
        Ok(AmReport {
            end_time: report.end_time,
            events: report.events,
            wall: report.wall,
            dropped_overflow: report.world.dropped_overflow(),
            switch_dropped: report.world.switch.stats().dropped,
            wakes_coalesced: report.wakes_coalesced,
            shards: report.shards,
            shards_requested: report.shards_requested,
            sync_events: report.sync_events,
            windows: report.windows,
            profile: report.profile,
            world: report.world,
            mem,
        })
    }
}
