//! Protocol statistics, exposed for tests and experiments.

/// Process-global reliability counters, cumulative across every AM port in
/// this process. Experiment binaries print these so retransmissions, NACK
/// storms, and receiver-side drops are visible in every summary line, not
/// just inside per-run `AmStats`.
pub mod gstats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static RETRANSMITTED: AtomicU64 = AtomicU64::new(0);
    static NACKS_SENT: AtomicU64 = AtomicU64::new(0);
    static NACKS_RECEIVED: AtomicU64 = AtomicU64::new(0);
    static DUP_DROPPED: AtomicU64 = AtomicU64::new(0);
    static OOO_DROPPED: AtomicU64 = AtomicU64::new(0);
    static KEEPALIVE_ROUNDS: AtomicU64 = AtomicU64::new(0);
    static RTX_TIMEOUT: AtomicU64 = AtomicU64::new(0);
    static RTX_SACK_GAP: AtomicU64 = AtomicU64::new(0);
    static RTX_KEEPALIVE: AtomicU64 = AtomicU64::new(0);
    static STALE_DROPPED: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn add_retransmitted(n: u64) {
        RETRANSMITTED.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_nacks_sent(n: u64) {
        NACKS_SENT.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_nacks_received(n: u64) {
        NACKS_RECEIVED.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_dup_dropped(n: u64) {
        DUP_DROPPED.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_ooo_dropped(n: u64) {
        OOO_DROPPED.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_keepalive_rounds(n: u64) {
        KEEPALIVE_ROUNDS.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_rtx_timeout(n: u64) {
        RTX_TIMEOUT.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_rtx_sack_gap(n: u64) {
        RTX_SACK_GAP.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_rtx_keepalive(n: u64) {
        RTX_KEEPALIVE.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn add_stale_dropped(n: u64) {
        STALE_DROPPED.fetch_add(n, Ordering::Relaxed);
    }

    /// Packets retransmitted (go-back-N) since process start.
    pub fn retransmitted() -> u64 {
        RETRANSMITTED.load(Ordering::Relaxed)
    }
    /// NACKs sent since process start.
    pub fn nacks_sent() -> u64 {
        NACKS_SENT.load(Ordering::Relaxed)
    }
    /// NACKs received since process start.
    pub fn nacks_received() -> u64 {
        NACKS_RECEIVED.load(Ordering::Relaxed)
    }
    /// Duplicates dropped by receivers since process start.
    pub fn dup_dropped() -> u64 {
        DUP_DROPPED.load(Ordering::Relaxed)
    }
    /// Out-of-order packets dropped by receivers since process start.
    pub fn ooo_dropped() -> u64 {
        OOO_DROPPED.load(Ordering::Relaxed)
    }
    /// Keep-alive probe rounds since process start.
    pub fn keepalive_rounds() -> u64 {
        KEEPALIVE_ROUNDS.load(Ordering::Relaxed)
    }
    /// Packets retransmitted on an adaptive-RTO expiry since process start.
    pub fn rtx_timeout() -> u64 {
        RTX_TIMEOUT.load(Ordering::Relaxed)
    }
    /// Packets retransmitted to fill receiver-reported SACK gaps.
    pub fn rtx_sack_gap() -> u64 {
        RTX_SACK_GAP.load(Ordering::Relaxed)
    }
    /// Packets retransmitted in response to keep-alive probe answers.
    pub fn rtx_keepalive() -> u64 {
        RTX_KEEPALIVE.load(Ordering::Relaxed)
    }
    /// Stale-incarnation packets dropped by receivers since process start.
    pub fn stale_dropped() -> u64 {
        STALE_DROPPED.load(Ordering::Relaxed)
    }

    /// One-line summary of the process-global reliability counters, in the
    /// style of the `[engine]` summary. The retransmit-cause breakdown is
    /// `timeout/sack-gap/keepalive`; the remainder of `rtx` is plain
    /// NACK-driven go-back-N.
    pub fn summary() -> String {
        format!(
            "rtx {} (cause t/s/k {}/{}/{}) | nacks {}/{} (out/in) | dup-drop {} | ooo-drop {} | stale-drop {} | keepalive {}",
            retransmitted(),
            rtx_timeout(),
            rtx_sack_gap(),
            rtx_keepalive(),
            nacks_sent(),
            nacks_received(),
            dup_dropped(),
            ooo_dropped(),
            stale_dropped(),
            keepalive_rounds(),
        )
    }
}

/// Counters kept by each node's [`AmPort`](crate::AmPort).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AmStats {
    /// `am_request_*` calls.
    pub requests_sent: u64,
    /// `am_reply_*` calls.
    pub replies_sent: u64,
    /// `am_store`/`am_store_async` calls.
    pub stores: u64,
    /// `am_get` calls.
    pub gets: u64,
    /// `am_poll` calls.
    pub polls: u64,
    /// Sequenced packets emitted (first transmissions).
    pub packets_sent: u64,
    /// Packets retransmitted (go-back-N).
    pub packets_retransmitted: u64,
    /// AM packets of any kind popped from the receive FIFO. Balances exactly
    /// against the dispositions: `shorts_delivered + data_packets_delivered
    /// + dup_dropped + ooo_dropped + controls_received`.
    pub packets_received: u64,
    /// Pure control packets received (ACK, NACK, keep-alive probe).
    pub controls_received: u64,
    /// Short messages delivered to handlers.
    pub shorts_delivered: u64,
    /// Bulk data packets whose bytes were written to memory.
    pub data_packets_delivered: u64,
    /// Bulk payload bytes delivered.
    pub bulk_bytes_delivered: u64,
    /// Duplicates dropped by the receiver.
    pub dup_dropped: u64,
    /// Out-of-order packets dropped by the receiver.
    pub ooo_dropped: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// NACKs received (each triggers a go-back-N).
    pub nacks_received: u64,
    /// Explicit ACK packets sent (piggybacked ACKs are free).
    pub explicit_acks_sent: u64,
    /// Keep-alive probes sent.
    pub probes_sent: u64,
    /// Keep-alive activations (a probe round for outstanding traffic).
    pub keepalive_rounds: u64,
    /// Packets retransmitted because the adaptive RTO expired.
    pub rtx_timeout: u64,
    /// Packets retransmitted to fill a receiver-reported SACK gap.
    pub rtx_sack_gap: u64,
    /// Packets retransmitted in response to a keep-alive probe answer.
    pub rtx_keepalive: u64,
    /// Packets from (or addressed to) a dead incarnation, dropped by the
    /// epoch check before any sequence processing.
    pub stale_dropped: u64,
    /// Out-of-order packets buffered for selective repeat (total ever
    /// buffered; each is delivered later or wiped into `ooo_dropped` by a
    /// crash).
    pub ooo_buffered: u64,
    /// Out-of-order packets currently held in the selective-repeat buffer
    /// (a gauge: zero at quiescence).
    pub ooo_held: u64,
    /// This node's incarnation epoch (a gauge: crash/restart count).
    pub epoch: u64,
    /// Crash/restart cycles this node performed.
    pub restarts: u64,
    /// Exponential-backoff high-water mark across all channels.
    pub backoff_hwm: u64,
    /// Virtual ns from the last restart to the first delivered packet of
    /// the new incarnation (0 until a post-restart delivery happens).
    pub recovery_ns: u64,
}
