//! Protocol statistics, exposed for tests and experiments.

/// Counters kept by each node's [`AmPort`](crate::AmPort).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AmStats {
    /// `am_request_*` calls.
    pub requests_sent: u64,
    /// `am_reply_*` calls.
    pub replies_sent: u64,
    /// `am_store`/`am_store_async` calls.
    pub stores: u64,
    /// `am_get` calls.
    pub gets: u64,
    /// `am_poll` calls.
    pub polls: u64,
    /// Sequenced packets emitted (first transmissions).
    pub packets_sent: u64,
    /// Packets retransmitted (go-back-N).
    pub packets_retransmitted: u64,
    /// Short messages delivered to handlers.
    pub shorts_delivered: u64,
    /// Bulk data packets whose bytes were written to memory.
    pub data_packets_delivered: u64,
    /// Bulk payload bytes delivered.
    pub bulk_bytes_delivered: u64,
    /// Duplicates dropped by the receiver.
    pub dup_dropped: u64,
    /// Out-of-order packets dropped by the receiver.
    pub ooo_dropped: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// NACKs received (each triggers a go-back-N).
    pub nacks_received: u64,
    /// Explicit ACK packets sent (piggybacked ACKs are free).
    pub explicit_acks_sent: u64,
    /// Keep-alive probes sent.
    pub probes_sent: u64,
    /// Keep-alive activations (a probe round for outstanding traffic).
    pub keepalive_rounds: u64,
}
