//! Per-node memory arenas and global pointers.
//!
//! Bulk transfers move real bytes between node memories. Each node owns a
//! flat byte arena with a bump allocator; a [`GlobalPtr`] names a byte range
//! on a specific node, exactly like a Split-C global pointer. The pool
//! lives outside the simulation world (behind an `Arc`), so benchmark code
//! can inspect memory after the run; the engine's one-thread-at-a-time
//! discipline keeps access deterministic.

use parking_lot::Mutex;
use std::sync::Arc;

/// Address on a specific node: the global address space's pointer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalPtr {
    /// Owning node.
    pub node: usize,
    /// Byte offset within the node's arena.
    pub addr: u32,
}

impl GlobalPtr {
    /// A pointer `delta` bytes further into the same node's arena.
    #[inline]
    pub fn offset(self, delta: u32) -> GlobalPtr {
        GlobalPtr {
            node: self.node,
            addr: self.addr + delta,
        }
    }
}

/// One node's memory arena.
#[derive(Debug)]
pub struct Arena {
    data: Vec<u8>,
    next: u32,
}

const ALIGN: u32 = 8;

impl Arena {
    fn new() -> Self {
        Arena {
            data: Vec::new(),
            next: 0,
        }
    }

    fn alloc(&mut self, len: u32) -> u32 {
        let addr = self.next;
        self.next = (self.next + len).div_ceil(ALIGN) * ALIGN;
        let need = self.next as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        addr
    }

    fn read(&self, addr: u32, out: &mut [u8]) {
        let a = addr as usize;
        out.copy_from_slice(&self.data[a..a + out.len()]);
    }

    fn write(&mut self, addr: u32, bytes: &[u8]) {
        let a = addr as usize;
        let end = a + bytes.len();
        assert!(
            end <= self.data.len(),
            "write past end of arena: {end} > {}",
            self.data.len()
        );
        self.data[a..end].copy_from_slice(bytes);
    }
}

/// The pool of all node arenas (shared handle).
#[derive(Clone)]
pub struct MemPool {
    // (shared state below)
    arenas: Arc<Mutex<Vec<Arena>>>,
}

impl std::fmt::Debug for MemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let arenas = self.arenas.lock();
        f.debug_struct("MemPool")
            .field("nodes", &arenas.len())
            .field(
                "allocated",
                &arenas.iter().map(|a| a.next).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MemPool {
    /// A pool with one empty arena per node.
    pub fn new(nodes: usize) -> Self {
        MemPool {
            arenas: Arc::new(Mutex::new((0..nodes).map(|_| Arena::new()).collect())),
        }
    }

    /// A view of `node`'s arena.
    pub fn on(&self, node: usize) -> Mem {
        Mem {
            pool: self.clone(),
            node,
        }
    }

    /// Allocate `len` bytes on `node` (8-byte aligned bump allocation).
    pub fn alloc(&self, node: usize, len: u32) -> GlobalPtr {
        let addr = self.arenas.lock()[node].alloc(len);
        GlobalPtr { node, addr }
    }

    /// Read `out.len()` bytes at `p`.
    pub fn read(&self, p: GlobalPtr, out: &mut [u8]) {
        self.arenas.lock()[p.node].read(p.addr, out);
    }

    /// Read `len` bytes at `p` into a fresh buffer.
    pub fn read_vec(&self, p: GlobalPtr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read(p, &mut out);
        out
    }

    /// Write `bytes` at `p`.
    pub fn write(&self, p: GlobalPtr, bytes: &[u8]) {
        self.arenas.lock()[p.node].write(p.addr, bytes);
    }

    /// Bytes currently allocated on `node`.
    pub fn allocated(&self, node: usize) -> u32 {
        self.arenas.lock()[node].next
    }
}

/// A [`MemPool`] view pinned to one node, with typed convenience accessors.
#[derive(Clone)]
pub struct Mem {
    pool: MemPool,
    node: usize,
}

impl Mem {
    /// The node this view is pinned to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Allocate `len` bytes locally.
    pub fn alloc(&self, len: u32) -> GlobalPtr {
        self.pool.alloc(self.node, len)
    }

    /// Read from a *local* address.
    pub fn read(&self, addr: u32, out: &mut [u8]) {
        self.pool.read(
            GlobalPtr {
                node: self.node,
                addr,
            },
            out,
        );
    }

    /// Write to a *local* address.
    pub fn write(&self, addr: u32, bytes: &[u8]) {
        self.pool.write(
            GlobalPtr {
                node: self.node,
                addr,
            },
            bytes,
        );
    }

    /// Read a little-endian `f64` at a local address.
    pub fn read_f64(&self, addr: u32) -> f64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Write a little-endian `f64` at a local address.
    pub fn write_f64(&self, addr: u32, v: f64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Read a little-endian `u32` at a local address.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Write a little-endian `u32` at a local address.
    pub fn write_u32(&self, addr: u32, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let pool = MemPool::new(2);
        let a = pool.alloc(0, 5);
        let b = pool.alloc(0, 16);
        let c = pool.alloc(0, 1);
        assert_eq!(a.addr % ALIGN, 0);
        assert_eq!(b.addr % ALIGN, 0);
        assert!(b.addr >= a.addr + 5);
        assert!(c.addr >= b.addr + 16);
        // Other node's arena is independent.
        let d = pool.alloc(1, 8);
        assert_eq!(d.addr, 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let pool = MemPool::new(1);
        let p = pool.alloc(0, 64);
        let data: Vec<u8> = (0..64).collect();
        pool.write(p, &data);
        assert_eq!(pool.read_vec(p, 64), data);
        // Partial interior read.
        assert_eq!(pool.read_vec(p.offset(10), 4), vec![10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "write past end")]
    fn out_of_bounds_write_panics() {
        let pool = MemPool::new(1);
        let p = pool.alloc(0, 8);
        pool.write(p, &[0u8; 64]);
    }

    #[test]
    fn typed_accessors() {
        let pool = MemPool::new(1);
        let mem = pool.on(0);
        let p = mem.alloc(16);
        mem.write_f64(p.addr, 3.25);
        mem.write_u32(p.addr + 8, 0xBEEF);
        assert_eq!(mem.read_f64(p.addr), 3.25);
        assert_eq!(mem.read_u32(p.addr + 8), 0xBEEF);
    }

    #[test]
    fn allocated_tracks_high_water() {
        let pool = MemPool::new(1);
        assert_eq!(pool.allocated(0), 0);
        pool.alloc(0, 100);
        assert!(pool.allocated(0) >= 100);
    }
}
