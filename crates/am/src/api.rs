//! The user-facing Active Messages API: the [`Am`] facade node programs
//! hold, and the [`AmEnv`] environment handlers receive.

use crate::mem::{GlobalPtr, Mem, MemPool};
use crate::port::{AmPort, HandlerFn, HANDLER_NONE};
use crate::stats::AmStats;
use crate::AmCtx;
use sp_sim::{Dur, Time};

/// Index into the node's handler table (returned by [`Am::register`]).
pub type HandlerId = u16;

/// Handle naming an outstanding bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BulkHandle(pub(crate) u32);

/// Addressing/extent info handed to bulk-completion handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkInfo {
    /// Base address the transfer landed at (receiver-local).
    pub base: u32,
    /// Total transfer length in bytes.
    pub len: u32,
}

/// Arguments delivered to a handler.
#[derive(Debug, Clone, Copy)]
pub struct AmArgs {
    /// Argument words (only the first `nargs` are meaningful).
    pub a: [u32; 4],
    /// Number of valid argument words.
    pub nargs: u8,
    /// Node that sent the message (or issued the transfer).
    pub src: usize,
    /// For bulk-completion handlers on the receiving side: where the data
    /// landed.
    pub info: Option<BulkInfo>,
}

/// Environment available inside a handler: per-node state, reply
/// capability, and local memory.
pub struct AmEnv<'a, S> {
    pub(crate) port: &'a mut AmPort<S>,
    pub(crate) ctx: &'a mut AmCtx,
    /// The node program's state (same `S` as in [`Am`]).
    pub state: &'a mut S,
    pub(crate) reply_to: usize,
    pub(crate) reply_allowed: bool,
    pub(crate) replied: bool,
}

impl<'a, S> AmEnv<'a, S> {
    /// This node's index.
    pub fn node(&self) -> usize {
        self.port.node()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.port.nodes()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Local memory view.
    pub fn mem(&self) -> Mem {
        self.port.mem_pool().on(self.port.node())
    }

    /// Charge handler CPU work to the node's clock.
    pub fn work(&mut self, d: Dur) {
        self.ctx.advance(d);
    }

    /// Reply with `n` argument words. Only request handlers (and store
    /// handlers, which run in request context) may reply, at most once —
    /// the GAM 1.1 rule.
    pub fn reply(&mut self, handler: HandlerId, args: &[u32]) {
        assert!(
            self.reply_allowed,
            "am_reply from a reply/completion handler is illegal (GAM 1.1)"
        );
        assert!(!self.replied, "a handler may reply at most once");
        assert!(args.len() <= 4, "replies carry at most 4 words");
        self.replied = true;
        let mut a = [0u32; 4];
        a[..args.len()].copy_from_slice(args);
        self.port
            .send_reply(self.ctx, self.reply_to, handler, args.len() as u8, a);
    }

    /// `am_reply_1`.
    pub fn reply_1(&mut self, handler: HandlerId, a0: u32) {
        self.reply(handler, &[a0]);
    }

    /// `am_reply_2`.
    pub fn reply_2(&mut self, handler: HandlerId, a0: u32, a1: u32) {
        self.reply(handler, &[a0, a1]);
    }

    /// `am_reply_3`.
    pub fn reply_3(&mut self, handler: HandlerId, a0: u32, a1: u32, a2: u32) {
        self.reply(handler, &[a0, a1, a2]);
    }

    /// `am_reply_4`.
    pub fn reply_4(&mut self, handler: HandlerId, a0: u32, a1: u32, a2: u32, a3: u32) {
        self.reply(handler, &[a0, a1, a2, a3]);
    }
}

/// The per-node Active Messages endpoint: GAM 1.1 calls plus state and
/// memory access. Constructed by [`AmMachine::spawn`](crate::AmMachine).
pub struct Am<'c, S> {
    pub(crate) ctx: &'c mut AmCtx,
    pub(crate) port: AmPort<S>,
    pub(crate) state: S,
}

impl<'c, S> Am<'c, S> {
    pub(crate) fn new(ctx: &'c mut AmCtx, mem: MemPool, cfg: crate::AmConfig, state: S) -> Self {
        let me = ctx.id().0;
        let n = ctx.num_nodes();
        let tracer = ctx.world(|w| w.tracer());
        Am {
            ctx,
            port: AmPort::new(me, n, cfg, mem, tracer),
            state,
        }
    }

    /// This node's index.
    pub fn node(&self) -> usize {
        self.port.node()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.port.nodes()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Charge CPU work (computation phases of applications).
    pub fn work(&mut self, d: Dur) {
        self.ctx.advance(d);
    }

    /// The node program's state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// The node program's state, mutably.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Local memory view.
    pub fn mem(&self) -> Mem {
        self.port.mem_pool().on(self.port.node())
    }

    /// The whole memory pool (for address arithmetic on remote nodes).
    pub fn mem_pool(&self) -> &MemPool {
        self.port.mem_pool()
    }

    /// Allocate `len` bytes in local memory.
    pub fn alloc(&mut self, len: u32) -> GlobalPtr {
        self.port.mem_pool().alloc(self.port.node(), len)
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &AmStats {
        self.port.stats()
    }

    /// Direct access to the protocol engine (instrumentation, tests).
    pub fn port(&self) -> &AmPort<S> {
        &self.port
    }

    /// The host cost model of this machine.
    pub fn cost(&self) -> sp_machine::CostModel {
        self.ctx.world(|w| w.cost.clone())
    }

    /// Register `f` in the handler table; every node must register the same
    /// handlers in the same order (as in C, where handler addresses match
    /// across the SPMD program).
    pub fn register(&mut self, f: HandlerFn<S>) -> HandlerId {
        self.port.register(f)
    }

    /// `am_request_M`: send a request with up to 4 argument words; polls
    /// the network afterwards (§1.1: "each call to am_request checks the
    /// network").
    pub fn request(&mut self, dst: usize, handler: HandlerId, args: &[u32]) {
        assert!(args.len() <= 4, "requests carry at most 4 words");
        let mut a = [0u32; 4];
        a[..args.len()].copy_from_slice(args);
        self.port
            .send_request(self.ctx, dst, handler, args.len() as u8, a);
        self.port.poll(self.ctx, &mut self.state);
    }

    /// `am_request_1`.
    pub fn request_1(&mut self, dst: usize, handler: HandlerId, a0: u32) {
        self.request(dst, handler, &[a0]);
    }

    /// `am_request_2`.
    pub fn request_2(&mut self, dst: usize, handler: HandlerId, a0: u32, a1: u32) {
        self.request(dst, handler, &[a0, a1]);
    }

    /// `am_request_3`.
    pub fn request_3(&mut self, dst: usize, handler: HandlerId, a0: u32, a1: u32, a2: u32) {
        self.request(dst, handler, &[a0, a1, a2]);
    }

    /// `am_request_4`.
    pub fn request_4(
        &mut self,
        dst: usize,
        handler: HandlerId,
        a0: u32,
        a1: u32,
        a2: u32,
        a3: u32,
    ) {
        self.request(dst, handler, &[a0, a1, a2, a3]);
    }

    /// `am_poll`: drain and dispatch pending messages; returns how many
    /// were processed.
    pub fn poll(&mut self) -> usize {
        self.port.poll(self.ctx, &mut self.state)
    }

    /// Poll until `pred(state)` holds.
    pub fn poll_until(&mut self, mut pred: impl FnMut(&S) -> bool) {
        while !pred(&self.state) {
            self.port.poll(self.ctx, &mut self.state);
        }
    }

    /// Interrupt-driven reception (the mode the paper mentions but does not
    /// analyze, §1.1): sleep until the adapter raises an arrival interrupt,
    /// pay the kernel dispatch cost, then poll. Far cheaper in CPU cycles
    /// when idle, far worse in latency — AIX interrupt dispatch
    /// (`interrupt_cpu`, default 35 µs) dwarfs the 1.3 µs poll. See the
    /// `ablations` bench for the comparison.
    pub fn wait_message(&mut self) -> usize {
        // Fast path: something already arrived.
        if sp_adapter::host::recv_pending(self.ctx) {
            return self.port.poll(self.ctx, &mut self.state);
        }
        let cost = self.port.config_interrupt_cpu();
        self.ctx.park();
        self.ctx.advance(cost);
        self.port.poll(self.ctx, &mut self.state)
    }

    /// Interrupt-driven wait until `pred(state)` holds.
    pub fn wait_until(&mut self, mut pred: impl FnMut(&S) -> bool) {
        while !pred(&self.state) {
            self.wait_message();
        }
    }

    /// `am_store`: copy `data` to `dst` and run `handler` there when the
    /// transfer completes; **blocks** until the final chunk is acknowledged
    /// (the semantics the paper's blocking-bandwidth test measures).
    pub fn store(&mut self, dst: GlobalPtr, data: &[u8], handler: Option<HandlerId>, args: &[u32]) {
        let h = self.store_async(dst, data, handler, args, None);
        self.wait_bulk(h);
    }

    /// `am_store_async`: start the transfer and return a handle;
    /// `completion` (if any) runs *locally* once the final chunk is
    /// acknowledged, i.e. when the source buffer is reusable end-to-end.
    pub fn store_async(
        &mut self,
        dst: GlobalPtr,
        data: &[u8],
        handler: Option<HandlerId>,
        args: &[u32],
        completion: Option<(HandlerId, [u32; 4])>,
    ) -> BulkHandle {
        assert!(args.len() <= 4);
        let mut a = [0u32; 4];
        a[..args.len()].copy_from_slice(args);
        self.port.start_store(
            self.ctx,
            dst.node,
            dst.addr,
            data.into(),
            handler.unwrap_or(HANDLER_NONE),
            a,
            completion,
        )
    }

    /// `am_store` variant reading the source bytes from local memory.
    pub fn store_from(
        &mut self,
        src_addr: u32,
        dst: GlobalPtr,
        len: u32,
        handler: Option<HandlerId>,
        args: &[u32],
    ) {
        let data = self.port.mem_pool().read_vec(
            GlobalPtr {
                node: self.port.node(),
                addr: src_addr,
            },
            len as usize,
        );
        self.store(dst, &data, handler, args);
    }

    /// `am_get`: fetch `len` bytes from `src` into local `dst_addr`; `handler`
    /// runs locally once the data has arrived. Split-phase: returns a handle.
    pub fn get(
        &mut self,
        src: GlobalPtr,
        dst_addr: u32,
        len: u32,
        handler: Option<HandlerId>,
        args: &[u32],
    ) -> BulkHandle {
        assert!(args.len() <= 4);
        let mut a = [0u32; 4];
        a[..args.len()].copy_from_slice(args);
        self.port.start_get(
            self.ctx,
            src.node,
            src.addr,
            dst_addr,
            len,
            handler.unwrap_or(HANDLER_NONE),
            a,
        )
    }

    /// Blocking `am_get`: fetch and wait for arrival.
    pub fn get_blocking(&mut self, src: GlobalPtr, dst_addr: u32, len: u32) {
        let h = self.get(src, dst_addr, len, None, &[]);
        self.wait_bulk(h);
    }

    /// Has this bulk transfer completed?
    pub fn bulk_done(&self, h: BulkHandle) -> bool {
        self.port.bulk_done(h)
    }

    /// Poll until the bulk transfer completes.
    pub fn wait_bulk(&mut self, h: BulkHandle) {
        while !self.port.bulk_done(h) {
            self.port.poll(self.ctx, &mut self.state);
        }
    }

    /// Global barrier across all nodes (benchmark utility; built from
    /// protocol shorts, so it exercises the same reliable channels).
    pub fn barrier(&mut self) {
        self.port.barrier(self.ctx, &mut self.state);
    }

    /// Poll until every queued outbound packet has been handed to the
    /// adapter (acks may still be pending). Layers whose remote operations
    /// are *served* by the protocol engine (Split-C gets, for example) call
    /// this before leaving a service window, so a peer's multi-chunk
    /// transfer is never stranded behind this node's next compute phase.
    pub fn flush_sends(&mut self) {
        while !self.port.all_sent() {
            self.port.poll(self.ctx, &mut self.state);
        }
    }

    /// Poll until every outbound channel is fully acknowledged (nothing
    /// queued, in flight, or awaiting retransmission). Call before letting
    /// a node program return while peers may still need its traffic —
    /// a program that exits with unacknowledged packets is, to its peers,
    /// a crash (which AM explicitly does not recover from, §1.1).
    pub fn quiesce(&mut self) {
        while !self.port.all_idle() {
            self.port.poll(self.ctx, &mut self.state);
        }
    }

    /// Keep polling for `d` of virtual time, serving peers' retransmission
    /// and keep-alive traffic. The standard graceful-shutdown pattern under
    /// lossy conditions: the *active* side `quiesce`s, the *passive* side
    /// `drain`s long enough to cover the active side's recovery rounds.
    pub fn drain(&mut self, d: Dur) {
        let until = self.now() + d;
        while self.now() < until {
            self.port.poll(self.ctx, &mut self.state);
        }
    }

    /// [`drain`](Am::drain), but the quiet window *restarts* whenever a
    /// packet arrives: return only after `d` of continuous silence. A
    /// fixed-length drain can end while a lossy peer is still
    /// mid-recovery — its retransmissions then go unacknowledged forever
    /// and the peer's `quiesce` never terminates. A recovering peer
    /// retransmits every few keep-alive rounds (microseconds), so any `d`
    /// well above that cadence makes premature exit require an
    /// arbitrarily long run of consecutive losses. Arrivals alone gate
    /// the exit (never this node's own unacknowledged sends — those are
    /// the *active* side's `quiesce` contract), so a dead peer cannot
    /// wedge the drain.
    pub fn drain_quiet(&mut self, d: Dur) {
        let mut deadline = self.now() + d;
        while self.now() < deadline {
            if self.port.poll(self.ctx, &mut self.state) > 0 {
                deadline = self.now() + d;
            }
        }
    }

    /// Crash this node and restart it after `down` of virtual time.
    ///
    /// The protocol loses *all* state — windows, sequence spaces,
    /// retransmit buffers, pending bulk completions, selective-repeat
    /// buffers — and the adapter's send and receive FIFOs are wiped, as a
    /// real crashed host's hardware queues would be. The node's
    /// incarnation epoch is bumped so the survivors' epoch checks can tell
    /// the dead incarnation's still-in-flight packets from the new one's.
    /// While down the node does not poll: peers' traffic piles up, goes
    /// stale, or is lost; anything that arrived during the outage is wiped
    /// again at restart. Registered handlers and the application state `S`
    /// survive (the restarted program begins with them in place — workload
    /// code that wants a cold start resets `S` itself).
    ///
    /// Everything here is node-local and driven by the program's own
    /// schedule, so crash/restart chaos schedules replay byte-identically
    /// at any shard count.
    pub fn crash_restart(&mut self, down: Dur) {
        let me = self.port.node();
        self.ctx.world(|w| {
            w.wipe_node(me);
        });
        self.port.crash_reset(self.ctx);
        self.ctx.advance(down);
        // The outage window's arrivals died with the old incarnation too.
        self.ctx.world(|w| {
            w.wipe_node(me);
        });
        self.port.note_restart(self.ctx);
    }
}
