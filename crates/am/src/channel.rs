//! Sliding-window sender/receiver state machines (pure logic, no I/O).
//!
//! One [`TxChan`]/[`RxChan`] pair exists per (peer, channel) — request and
//! reply traffic have independent sequence spaces and windows (§2.2). All
//! methods are pure state transitions so the protocol invariants can be
//! unit- and property-tested without a simulator; `port.rs` wires them to
//! the adapter.

use crate::wire::{AmPacket, Body, Channel, ShortKind};
use sp_adapter::MAX_PAYLOAD;
use std::collections::VecDeque;

/// A queued outbound bulk transfer.
#[derive(Debug)]
pub(crate) struct BulkTx {
    /// Issuing-node-local transfer id (rides in `Body::Data::xfer`).
    pub id: u32,
    /// Base destination address on the receiving node.
    pub dst_addr: u32,
    /// Completion handler to run on the receiving node (`u16::MAX` = none).
    pub handler: u16,
    /// Handler argument words.
    pub args: [u32; 4],
    /// Source data snapshot.
    pub data: Box<[u8]>,
    /// Whether the final ack should complete handle `id` on *this* node
    /// (false for get-serving transfers, whose `id` belongs to the
    /// requester and completes over there on data arrival).
    pub track_completion: bool,
    /// Bytes already emitted.
    sent: usize,
    /// Packets already emitted of the current chunk.
    chunk_sent: u32,
}

impl BulkTx {
    pub(crate) fn new(
        id: u32,
        dst_addr: u32,
        handler: u16,
        args: [u32; 4],
        data: Box<[u8]>,
    ) -> Self {
        assert!(!data.is_empty(), "zero-length bulk transfer");
        BulkTx {
            id,
            dst_addr,
            handler,
            args,
            data,
            track_completion: true,
            sent: 0,
            chunk_sent: 0,
        }
    }

    /// A transfer whose id belongs to a remote requester (get service).
    pub(crate) fn untracked(
        id: u32,
        dst_addr: u32,
        handler: u16,
        args: [u32; 4],
        data: Box<[u8]>,
    ) -> Self {
        BulkTx {
            track_completion: false,
            ..Self::new(id, dst_addr, handler, args, data)
        }
    }

    /// Packets in the chunk currently being emitted (the last chunk may be
    /// partial).
    fn cur_chunk_packets(&self, chunk_packets: u32) -> u32 {
        let chunk_start = self.sent - (self.chunk_sent as usize * MAX_PAYLOAD);
        let remaining = self.data.len() - chunk_start;
        (remaining.div_ceil(MAX_PAYLOAD)).min(chunk_packets as usize) as u32
    }

    fn mid_chunk(&self) -> bool {
        self.chunk_sent > 0
    }

    fn done(&self) -> bool {
        self.sent >= self.data.len()
    }
}

/// An item waiting in a channel's send queue.
#[derive(Debug)]
pub(crate) enum SendItem {
    /// A short message (request, reply, or get request).
    Short {
        /// Short flavour.
        kind: ShortKind,
        /// Handler id.
        handler: u16,
        /// Valid argument count.
        nargs: u8,
        /// Arguments.
        args: [u32; 4],
    },
    /// A bulk transfer, emitted chunk by chunk.
    Bulk(BulkTx),
}

/// A sent-but-unacked packet saved for retransmission.
#[derive(Debug)]
struct Saved {
    seq: u32,
    offset: u32,
    pkt: AmPacket,
}

/// Sender half of one reliable channel.
#[derive(Debug)]
pub(crate) struct TxChan {
    chan: Channel,
    window: u32,
    chunk_packets: u32,
    next_seq: u32,
    in_flight: u32,
    queue: VecDeque<SendItem>,
    unacked: VecDeque<Saved>,
    /// Retransmission queue (copies of saved packets; they already hold
    /// window slots, so they bypass admission).
    rtx: VecDeque<AmPacket>,
    /// (bulk id, sequence number of its final chunk): completion fires when
    /// the cumulative ack passes the final seq.
    bulk_finals: VecDeque<(u32, u32)>,
}

impl TxChan {
    #[cfg(test)]
    pub(crate) fn new(chan: Channel, window: u32) -> Self {
        Self::with_chunk(chan, window, crate::wire::CHUNK_PACKETS as u32)
    }

    pub(crate) fn with_chunk(chan: Channel, window: u32, chunk_packets: u32) -> Self {
        assert!(window >= chunk_packets, "window smaller than a chunk");
        assert!(chunk_packets >= 1, "chunk must hold at least one packet");
        TxChan {
            chan,
            window,
            chunk_packets,
            next_seq: 0,
            in_flight: 0,
            queue: VecDeque::new(),
            unacked: VecDeque::new(),
            rtx: VecDeque::new(),
            bulk_finals: VecDeque::new(),
        }
    }

    pub(crate) fn push(&mut self, item: SendItem) {
        self.queue.push_back(item);
    }

    /// Anything sent and not yet cumulatively acknowledged?
    pub(crate) fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Anything left to (re)send or await?
    pub(crate) fn idle(&self) -> bool {
        self.queue.is_empty() && self.unacked.is_empty() && self.rtx.is_empty()
    }

    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn in_flight(&self) -> u32 {
        self.in_flight
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn rtx_len(&self) -> usize {
        self.rtx.len()
    }

    /// Build the next packet to put on the wire, or `None` if the window
    /// (or queue) doesn't allow one. Retransmissions go first; then the
    /// current chunk must finish before anything else; then queued items.
    /// The caller stamps the piggybacked ACK fields.
    pub(crate) fn try_emit(&mut self) -> Option<AmPacket> {
        if let Some(pkt) = self.rtx.pop_front() {
            return Some(pkt);
        }
        let item = self.queue.front_mut()?;
        match item {
            SendItem::Short {
                kind,
                handler,
                nargs,
                args,
            } => {
                if self.in_flight + 1 > self.window {
                    return None;
                }
                let pkt = AmPacket {
                    chan: self.chan,
                    seq: self.next_seq,
                    offset: 0,
                    ack_req: 0,
                    ack_rep: 0,
                    body: Body::Short {
                        kind: *kind,
                        handler: *handler,
                        nargs: *nargs,
                        args: *args,
                    },
                };
                self.unacked.push_back(Saved {
                    seq: self.next_seq,
                    offset: 0,
                    pkt: pkt.clone(),
                });
                self.next_seq += 1;
                self.in_flight += 1;
                self.queue.pop_front();
                Some(pkt)
            }
            SendItem::Bulk(bulk) => {
                // Admission control is per chunk: a new chunk needs all its
                // packets' window slots up front ("the window slides by the
                // number of packets in a chunk").
                if !bulk.mid_chunk() {
                    let need = bulk.cur_chunk_packets(self.chunk_packets);
                    if self.in_flight + need > self.window {
                        return None;
                    }
                }
                let off = bulk.sent;
                let len = (bulk.data.len() - off).min(MAX_PAYLOAD);
                let chunk_len = bulk.cur_chunk_packets(self.chunk_packets);
                let offset = bulk.chunk_sent;
                let last_of_chunk = offset + 1 == chunk_len;
                let last_of_xfer = off + len >= bulk.data.len();
                let pkt = AmPacket {
                    chan: self.chan,
                    seq: self.next_seq,
                    offset,
                    ack_req: 0,
                    ack_rep: 0,
                    body: Body::Data {
                        addr: bulk.dst_addr + off as u32,
                        len: len as u16,
                        last_of_chunk,
                        last_of_xfer,
                        handler: bulk.handler,
                        args: bulk.args,
                        base_addr: bulk.dst_addr,
                        total_len: bulk.data.len() as u32,
                        xfer: bulk.id,
                        bytes: bulk.data[off..off + len].into(),
                    },
                };
                self.unacked.push_back(Saved {
                    seq: self.next_seq,
                    offset,
                    pkt: pkt.clone(),
                });
                self.in_flight += 1;
                bulk.sent += len;
                bulk.chunk_sent += 1;
                if last_of_chunk {
                    if last_of_xfer && bulk.track_completion {
                        self.bulk_finals.push_back((bulk.id, self.next_seq));
                    }
                    self.next_seq += 1;
                    bulk.chunk_sent = 0;
                    if bulk.done() {
                        self.queue.pop_front();
                    }
                }
                Some(pkt)
            }
        }
    }

    /// Process a cumulative acknowledgement ("everything below `cum` was
    /// received in order"). Returns `(packets freed, ids of bulk transfers
    /// whose final chunk this ack covers)`.
    pub(crate) fn on_ack(&mut self, cum: u32) -> (u32, Vec<u32>) {
        let mut freed = 0u32;
        while self.unacked.front().is_some_and(|s| s.seq < cum) {
            self.unacked.pop_front();
            self.in_flight -= 1;
            freed += 1;
        }
        // Drop retransmission copies the ack made moot.
        self.rtx.retain(|p| p.seq >= cum);
        let mut completed = Vec::new();
        while self.bulk_finals.front().is_some_and(|&(_, fs)| fs < cum) {
            completed.push(self.bulk_finals.pop_front().expect("front checked").0);
        }
        (freed, completed)
    }

    /// Process a NACK: cumulative-ack everything below `seq`, then queue
    /// go-back-N retransmission of every saved packet from (`seq`,
    /// `offset`) onward. Returns completed bulk ids (from the implied ack)
    /// and the number of packets queued for retransmission.
    pub(crate) fn on_nack(&mut self, seq: u32, offset: u32) -> (Vec<u32>, usize) {
        let (_, completed) = self.on_ack(seq);
        self.rtx.clear();
        for saved in &self.unacked {
            if (saved.seq, saved.offset) >= (seq, offset) {
                self.rtx.push_back(saved.pkt.clone());
            }
        }
        (completed, self.rtx.len())
    }

    /// Highest sequence number sent so far plus one (what a fully caught-up
    /// receiver would report as expected).
    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn next_seq(&self) -> u32 {
        self.next_seq
    }
}

/// What the receiver decided about an incoming packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RxVerdict {
    /// In order: deliver it. `force_ack` is set at chunk boundaries ("each
    /// chunk requires only one acknowledgment") and when the explicit-ACK
    /// threshold is reached.
    Deliver {
        /// Send an explicit ACK now.
        force_ack: bool,
    },
    /// Duplicate of something already delivered: drop, but re-ACK so a
    /// sender whose ACKs got lost can make progress.
    DupDrop,
    /// Out of order (a gap): drop; `nack` says whether to send a NACK (one
    /// per gap, not one per stray packet).
    OooDrop {
        /// Send a NACK now.
        nack: bool,
    },
}

/// Receiver half of one reliable channel.
#[derive(Debug)]
pub(crate) struct RxChan {
    expected_seq: u32,
    expected_offset: u32,
    unacked_packets: u32,
    ack_threshold: u32,
    nack_outstanding: bool,
}

impl RxChan {
    pub(crate) fn new(window: u32, ack_threshold: u32) -> Self {
        let _ = window;
        RxChan {
            expected_seq: 0,
            expected_offset: 0,
            unacked_packets: 0,
            ack_threshold,
            nack_outstanding: false,
        }
    }

    /// Next expected sequence number — the cumulative ACK value this side
    /// piggybacks on every outgoing packet.
    pub(crate) fn cum_ack(&self) -> u32 {
        self.expected_seq
    }

    /// Next expected (seq, in-chunk offset) — the NACK payload.
    pub(crate) fn expected(&self) -> (u32, u32) {
        (self.expected_seq, self.expected_offset)
    }

    /// Note that an ACK for everything so far went out (piggybacked or
    /// explicit).
    pub(crate) fn acked(&mut self) {
        self.unacked_packets = 0;
    }

    /// Classify an incoming sequenced packet. `advances_seq` is true for
    /// shorts and for the last packet of a chunk.
    pub(crate) fn accept(&mut self, seq: u32, offset: u32, advances_seq: bool) -> RxVerdict {
        use std::cmp::Ordering;
        let key = (seq, offset);
        let expected = (self.expected_seq, self.expected_offset);
        match key.cmp(&expected) {
            Ordering::Less => RxVerdict::DupDrop,
            Ordering::Greater => {
                let nack = !self.nack_outstanding;
                self.nack_outstanding = true;
                RxVerdict::OooDrop { nack }
            }
            Ordering::Equal => {
                self.nack_outstanding = false;
                self.unacked_packets += 1;
                if advances_seq {
                    self.expected_seq += 1;
                    self.expected_offset = 0;
                } else {
                    self.expected_offset += 1;
                }
                // Explicit-ACK policy: one ACK per completed chunk (§2.2),
                // and the quarter-window threshold otherwise — checked only
                // at sequence boundaries so a chunk never acks mid-flight.
                let force_ack =
                    advances_seq && (offset > 0 || self.unacked_packets >= self.ack_threshold);
                RxVerdict::Deliver { force_ack }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::wire::CHUNK_PACKETS;

    fn short_item(h: u16) -> SendItem {
        SendItem::Short {
            kind: ShortKind::User,
            handler: h,
            nargs: 1,
            args: [7, 0, 0, 0],
        }
    }

    fn tx(window: u32) -> TxChan {
        TxChan::new(Channel::Request, window)
    }

    #[test]
    fn shorts_get_consecutive_seqs() {
        let mut t = tx(72);
        t.push(short_item(1));
        t.push(short_item(2));
        let a = t.try_emit().unwrap();
        let b = t.try_emit().unwrap();
        assert_eq!((a.seq, b.seq), (0, 1));
        assert_eq!(t.in_flight(), 2);
        assert!(t.try_emit().is_none(), "queue drained");
    }

    #[test]
    fn window_blocks_emission() {
        let mut t = tx(CHUNK_PACKETS as u32); // minimum legal window
        for i in 0..=CHUNK_PACKETS as u16 {
            t.push(short_item(i));
        }
        for _ in 0..CHUNK_PACKETS {
            assert!(t.try_emit().is_some());
        }
        assert!(t.try_emit().is_none(), "window full");
        // Ack one packet; exactly one more may go.
        assert!(t.on_ack(1).1.is_empty());
        assert!(t.try_emit().is_some());
        assert!(t.try_emit().is_none());
    }

    #[test]
    fn chunk_shares_one_seq_and_occupies_its_packets() {
        let mut t = tx(72);
        let data = vec![9u8; CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            5,
            0x100,
            3,
            [0; 4],
            data.into(),
        )));
        let mut seqs = Vec::new();
        let mut offsets = Vec::new();
        while let Some(p) = t.try_emit() {
            seqs.push(p.seq);
            offsets.push(p.offset);
        }
        assert_eq!(seqs.len(), CHUNK_PACKETS, "one full chunk");
        assert!(seqs.iter().all(|&s| s == 0), "chunk packets share seq");
        assert_eq!(offsets, (0..CHUNK_PACKETS as u32).collect::<Vec<_>>());
        assert_eq!(t.in_flight(), CHUNK_PACKETS as u32);
    }
    const CHUNK_BYTES_TEST: usize = crate::wire::CHUNK_BYTES;

    #[test]
    fn two_chunk_pipeline_waits_for_ack() {
        // Window 72 admits exactly two chunks; the third needs an ack.
        let mut t = tx(72);
        let data = vec![1u8; 3 * CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            1,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        let mut n = 0;
        while t.try_emit().is_some() {
            n += 1;
        }
        assert_eq!(n, 2 * CHUNK_PACKETS, "exactly two chunks admitted");
        t.on_ack(1); // first chunk acked
        let mut m = 0;
        while t.try_emit().is_some() {
            m += 1;
        }
        assert_eq!(m, CHUNK_PACKETS, "third chunk flows after first ack");
    }

    #[test]
    fn partial_last_chunk_and_completion() {
        let mut t = tx(72);
        // 1.5 packets worth of data: 2 packets, one (partial) chunk.
        let data = vec![2u8; MAX_PAYLOAD + 10];
        t.push(SendItem::Bulk(BulkTx::new(
            9,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        let a = t.try_emit().unwrap();
        let b = t.try_emit().unwrap();
        assert!(t.try_emit().is_none());
        match (&a.body, &b.body) {
            (
                Body::Data {
                    len: la,
                    last_of_chunk: ca,
                    last_of_xfer: xa,
                    ..
                },
                Body::Data {
                    len: lb,
                    last_of_chunk: cb,
                    last_of_xfer: xb,
                    ..
                },
            ) => {
                assert_eq!((*la as usize, *lb as usize), (MAX_PAYLOAD, 10));
                assert!(!ca && !xa);
                assert!(cb & xb);
            }
            other => panic!("unexpected bodies {other:?}"),
        }
        assert!(t.on_ack(0).1.is_empty());
        assert_eq!(
            t.on_ack(1),
            (2, vec![9]),
            "final ack completes the bulk and frees both packets"
        );
        assert_eq!(t.in_flight(), 0);
        assert!(t.idle());
    }

    #[test]
    fn nack_triggers_go_back_n() {
        let mut t = tx(72);
        for i in 0..5 {
            t.push(short_item(i));
        }
        let sent: Vec<AmPacket> = std::iter::from_fn(|| t.try_emit()).collect();
        assert_eq!(sent.len(), 5);
        // Receiver saw 0,1 then lost 2: NACK(expected=2).
        let (completed, rtx) = t.on_nack(2, 0);
        assert!(completed.is_empty());
        assert_eq!(rtx, 3, "packets 2,3,4 retransmit");
        let r: Vec<u32> = std::iter::from_fn(|| t.try_emit()).map(|p| p.seq).collect();
        assert_eq!(r, vec![2, 3, 4]);
        assert_eq!(t.in_flight(), 3, "retransmits reuse their window slots");
    }

    #[test]
    fn nack_mid_chunk_retransmits_from_offset() {
        let mut t = tx(72);
        let data = vec![3u8; CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            1,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        while t.try_emit().is_some() {}
        let (_, rtx) = t.on_nack(0, 10);
        assert_eq!(rtx, CHUNK_PACKETS - 10);
        let first = t.try_emit().unwrap();
        assert_eq!((first.seq, first.offset), (0, 10));
    }

    #[test]
    fn ack_drops_stale_retransmissions() {
        let mut t = tx(72);
        for i in 0..3 {
            t.push(short_item(i));
        }
        while t.try_emit().is_some() {}
        t.on_nack(0, 0); // retransmit everything
        t.on_ack(2); // but 0,1 arrive fine after all
        let r: Vec<u32> = std::iter::from_fn(|| t.try_emit()).map(|p| p.seq).collect();
        assert_eq!(r, vec![2], "only the still-unacked packet retransmits");
    }

    #[test]
    fn duplicate_nack_is_idempotent() {
        let mut t = tx(72);
        for i in 0..4 {
            t.push(short_item(i));
        }
        while t.try_emit().is_some() {}
        t.on_nack(1, 0);
        let (_, rtx2) = t.on_nack(1, 0);
        assert_eq!(rtx2, 3, "rtx queue rebuilt, not doubled");
        let r: Vec<u32> = std::iter::from_fn(|| t.try_emit()).map(|p| p.seq).collect();
        assert_eq!(r, vec![1, 2, 3]);
    }

    #[test]
    fn rx_in_order_delivery_and_acks() {
        let mut r = RxChan::new(72, 18);
        for seq in 0..17 {
            assert_eq!(
                r.accept(seq, 0, true),
                RxVerdict::Deliver { force_ack: false }
            );
        }
        // 18th unacked packet crosses the quarter-window threshold.
        assert_eq!(
            r.accept(17, 0, true),
            RxVerdict::Deliver { force_ack: true }
        );
        r.acked();
        assert_eq!(r.cum_ack(), 18);
        assert_eq!(
            r.accept(18, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
    }

    #[test]
    fn rx_chunk_completion_forces_ack() {
        let mut r = RxChan::new(72, 18);
        for off in 0..CHUNK_PACKETS as u32 - 1 {
            assert_eq!(
                r.accept(0, off, false),
                RxVerdict::Deliver { force_ack: false }
            );
        }
        assert_eq!(
            r.accept(0, CHUNK_PACKETS as u32 - 1, true),
            RxVerdict::Deliver { force_ack: true },
            "last packet of a chunk forces the per-chunk ack"
        );
        assert_eq!(r.cum_ack(), 1);
    }

    #[test]
    fn rx_gap_nacks_once() {
        let mut r = RxChan::new(72, 18);
        assert_eq!(
            r.accept(0, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        // Packet 1 lost; 2, 3, 4 arrive.
        assert_eq!(r.accept(2, 0, true), RxVerdict::OooDrop { nack: true });
        assert_eq!(r.accept(3, 0, true), RxVerdict::OooDrop { nack: false });
        assert_eq!(r.accept(4, 0, true), RxVerdict::OooDrop { nack: false });
        assert_eq!(r.expected(), (1, 0));
        // Retransmitted 1 arrives: progress resumes, future gaps re-NACK.
        assert_eq!(
            r.accept(1, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.accept(3, 0, true), RxVerdict::OooDrop { nack: true });
    }

    #[test]
    fn rx_duplicates_dropped() {
        let mut r = RxChan::new(72, 18);
        assert_eq!(
            r.accept(0, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.accept(0, 0, true), RxVerdict::DupDrop);
        // Mid-chunk duplicate.
        assert_eq!(
            r.accept(1, 0, false),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.accept(1, 0, false), RxVerdict::DupDrop);
        assert_eq!(
            r.accept(1, 1, false),
            RxVerdict::Deliver { force_ack: false }
        );
    }

    #[test]
    fn shorts_wait_behind_bulk_fifo_order() {
        let mut t = tx(72);
        let data = vec![4u8; 2 * MAX_PAYLOAD];
        t.push(SendItem::Bulk(BulkTx::new(
            1,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        t.push(short_item(42));
        let kinds: Vec<bool> = std::iter::from_fn(|| t.try_emit())
            .map(|p| matches!(p.body, Body::Data { .. }))
            .collect();
        assert_eq!(kinds, vec![true, true, false], "bulk first, then the short");
    }
}

#[cfg(test)]
mod model_tests {
    //! A pure model check: drive a TxChan/RxChan pair over a lossy,
    //! FIFO-per-pair wire and assert exactly-once in-order delivery with
    //! eventual completion, for arbitrary loss patterns.

    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

        #[test]
        fn lossy_wire_exactly_once(
            n_msgs in 1u16..120,
            loss_millis in 0u32..400,
            seed in any::<u64>(),
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut tx = TxChan::new(Channel::Request, 72);
            let mut rx = RxChan::new(72, 18);
            for i in 0..n_msgs {
                tx.push(SendItem::Short {
                    kind: ShortKind::User,
                    handler: i,
                    nargs: 0,
                    args: [0; 4],
                });
            }
            let mut delivered: Vec<u16> = Vec::new();
            // Rounds: emit what the window allows, drop some, deliver the
            // rest in order, then feed back either an ack or a NACK.
            let mut rounds = 0;
            while delivered.len() < n_msgs as usize {
                rounds += 1;
                prop_assert!(rounds < 10_000, "no progress after {rounds} rounds");
                let mut got_any = false;
                let mut nacked = false;
                while let Some(pkt) = tx.try_emit() {
                    if rng.gen_bool(loss_millis as f64 / 1000.0) {
                        continue; // lost on the wire
                    }
                    match rx.accept(pkt.seq, pkt.offset, true) {
                        RxVerdict::Deliver { .. } => {
                            if let Body::Short { handler, .. } = pkt.body {
                                delivered.push(handler);
                            }
                            got_any = true;
                        }
                        RxVerdict::DupDrop => {}
                        RxVerdict::OooDrop { nack } => {
                            if nack && !nacked {
                                nacked = true;
                                let (s, o) = rx.expected();
                                tx.on_nack(s, o);
                            }
                        }
                    }
                }
                // End-of-round feedback (the keep-alive/ACK path, itself
                // lossless here — the sim-level tests cover lossy acks).
                if got_any {
                    let (completed, _) = (tx.on_ack(rx.cum_ack()), ());
                    let _ = completed;
                    rx.acked();
                } else if tx.has_unacked() {
                    // Keep-alive probe: receiver answers with its state.
                    let (s, o) = rx.expected();
                    tx.on_nack(s, o);
                }
            }
            let expect: Vec<u16> = (0..n_msgs).collect();
            prop_assert_eq!(delivered, expect);
            prop_assert!(tx.on_ack(rx.cum_ack()).1.is_empty());
            prop_assert!(tx.idle(), "sender should be quiescent");
        }

        #[test]
        fn lossy_wire_bulk_reassembly(
            len in 1usize..60_000,
            loss_millis in 0u32..300,
            seed in any::<u64>(),
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..len).map(|i| (i as u8) ^ 0x5A).collect();
            let mut tx = TxChan::new(Channel::Request, 72);
            let mut rx = RxChan::new(72, 18);
            tx.push(SendItem::Bulk(BulkTx::new(7, 0, u16::MAX, [0; 4], data.clone().into())));
            let mut assembled = vec![0u8; len];
            let mut done = false;
            let mut rounds = 0;
            while !done {
                rounds += 1;
                prop_assert!(rounds < 20_000, "no progress");
                let mut progressed = false;
                let mut nacked = false;
                while let Some(pkt) = tx.try_emit() {
                    if rng.gen_bool(loss_millis as f64 / 1000.0) {
                        continue;
                    }
                    if let Body::Data { addr, last_of_chunk, last_of_xfer, ref bytes, .. } = pkt.body {
                        match rx.accept(pkt.seq, pkt.offset, last_of_chunk) {
                            RxVerdict::Deliver { .. } => {
                                assembled[addr as usize..addr as usize + bytes.len()]
                                    .copy_from_slice(bytes);
                                progressed = true;
                                if last_of_xfer {
                                    done = true;
                                }
                            }
                            RxVerdict::DupDrop => {}
                            RxVerdict::OooDrop { nack } => {
                                if nack && !nacked {
                                    nacked = true;
                                    let (s, o) = rx.expected();
                                    tx.on_nack(s, o);
                                }
                            }
                        }
                    }
                }
                tx.on_ack(rx.cum_ack());
                rx.acked();
                if !progressed && !done && tx.has_unacked() {
                    let (s, o) = rx.expected();
                    tx.on_nack(s, o);
                }
            }
            prop_assert_eq!(assembled, data);
        }
    }
}
