//! Sliding-window sender/receiver state machines (pure logic, no I/O).
//!
//! One [`TxChan`]/[`RxChan`] pair exists per (peer, channel) — request and
//! reply traffic have independent sequence spaces and windows (§2.2). All
//! methods are pure state transitions so the protocol invariants can be
//! unit- and property-tested without a simulator; `port.rs` wires them to
//! the adapter.

use crate::config::ReliabilityConfig;
use crate::wire::{AmPacket, Body, Channel, ShortKind};
use sp_adapter::MAX_PAYLOAD;
use sp_sim::Time;
use std::collections::{BTreeSet, VecDeque};

/// Jacobson/Karels round-trip estimator feeding the adaptive
/// retransmission timeout. Pure integer arithmetic in virtual nanoseconds
/// (the classic fixed-point update with the /8 and /4 gains), so it is
/// bit-deterministic across platforms and shard counts.
#[derive(Debug, Default)]
pub(crate) struct RttEstimator {
    srtt_ns: u64,
    rttvar_ns: u64,
    samples: u64,
    /// Current exponential-backoff doublings applied to the RTO.
    backoff: u32,
    /// High-water mark of `backoff` over the channel's lifetime.
    backoff_hwm: u32,
}

impl RttEstimator {
    /// Fold in one RTT sample (never from a retransmitted packet — Karn's
    /// rule is enforced by the caller via [`Saved::rtx`]).
    pub(crate) fn sample(&mut self, s_ns: u64) {
        if self.samples == 0 {
            self.srtt_ns = s_ns;
            self.rttvar_ns = s_ns / 2;
        } else {
            let diff = self.srtt_ns.abs_diff(s_ns);
            self.rttvar_ns = (3 * self.rttvar_ns + diff) / 4;
            self.srtt_ns = (7 * self.srtt_ns + s_ns) / 8;
        }
        self.samples += 1;
    }

    /// Current retransmission timeout: `SRTT + max(g, 4·RTTVAR)`, clamped
    /// to `[min_rto, max_rto]`, then backed off. Before the first sample
    /// the conservative initial timeout is `8 × min_rto` (clamped).
    pub(crate) fn rto_ns(&self, rel: &ReliabilityConfig) -> u64 {
        let base = if self.samples == 0 {
            (rel.min_rto_ns * 8).min(rel.max_rto_ns)
        } else {
            (self.srtt_ns + rel.granularity_ns.max(4 * self.rttvar_ns))
                .clamp(rel.min_rto_ns, rel.max_rto_ns)
        };
        base.saturating_shl(self.backoff).min(rel.max_rto_ns)
    }

    /// Double the timeout after an expiry (capped at `backoff_cap`).
    pub(crate) fn back_off(&mut self, rel: &ReliabilityConfig) {
        self.backoff = (self.backoff + 1).min(rel.backoff_cap);
        self.backoff_hwm = self.backoff_hwm.max(self.backoff);
    }

    /// New cumulative progress: the network is moving again.
    pub(crate) fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn srtt_ns(&self) -> u64 {
        self.srtt_ns
    }

    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn rttvar_ns(&self) -> u64 {
        self.rttvar_ns
    }

    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn samples(&self) -> u64 {
        self.samples
    }

    pub(crate) fn backoff_hwm(&self) -> u32 {
        self.backoff_hwm
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (a capped backoff
/// can still push a large RTO past 63 bits in pathological configs).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= 64 {
            return u64::MAX;
        }
        if self.leading_zeros() < shift {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// A queued outbound bulk transfer.
#[derive(Debug)]
pub(crate) struct BulkTx {
    /// Issuing-node-local transfer id (rides in `Body::Data::xfer`).
    pub id: u32,
    /// Base destination address on the receiving node.
    pub dst_addr: u32,
    /// Completion handler to run on the receiving node (`u16::MAX` = none).
    pub handler: u16,
    /// Handler argument words.
    pub args: [u32; 4],
    /// Source data snapshot.
    pub data: Box<[u8]>,
    /// Whether the final ack should complete handle `id` on *this* node
    /// (false for get-serving transfers, whose `id` belongs to the
    /// requester and completes over there on data arrival).
    pub track_completion: bool,
    /// Bytes already emitted.
    sent: usize,
    /// Packets already emitted of the current chunk.
    chunk_sent: u32,
}

impl BulkTx {
    pub(crate) fn new(
        id: u32,
        dst_addr: u32,
        handler: u16,
        args: [u32; 4],
        data: Box<[u8]>,
    ) -> Self {
        assert!(!data.is_empty(), "zero-length bulk transfer");
        BulkTx {
            id,
            dst_addr,
            handler,
            args,
            data,
            track_completion: true,
            sent: 0,
            chunk_sent: 0,
        }
    }

    /// A transfer whose id belongs to a remote requester (get service).
    pub(crate) fn untracked(
        id: u32,
        dst_addr: u32,
        handler: u16,
        args: [u32; 4],
        data: Box<[u8]>,
    ) -> Self {
        BulkTx {
            track_completion: false,
            ..Self::new(id, dst_addr, handler, args, data)
        }
    }

    /// Packets in the chunk currently being emitted (the last chunk may be
    /// partial).
    fn cur_chunk_packets(&self, chunk_packets: u32) -> u32 {
        let chunk_start = self.sent - (self.chunk_sent as usize * MAX_PAYLOAD);
        let remaining = self.data.len() - chunk_start;
        (remaining.div_ceil(MAX_PAYLOAD)).min(chunk_packets as usize) as u32
    }

    fn mid_chunk(&self) -> bool {
        self.chunk_sent > 0
    }

    fn done(&self) -> bool {
        self.sent >= self.data.len()
    }
}

/// An item waiting in a channel's send queue.
#[derive(Debug)]
pub(crate) enum SendItem {
    /// A short message (request, reply, or get request).
    Short {
        /// Short flavour.
        kind: ShortKind,
        /// Handler id.
        handler: u16,
        /// Valid argument count.
        nargs: u8,
        /// Arguments.
        args: [u32; 4],
    },
    /// A bulk transfer, emitted chunk by chunk.
    Bulk(BulkTx),
}

/// A sent-but-unacked packet saved for retransmission.
#[derive(Debug)]
struct Saved {
    seq: u32,
    offset: u32,
    pkt: AmPacket,
    /// When the *original* transmission was emitted (RTT sample base).
    sent_at: Time,
    /// Ever retransmitted? Karn's rule: such packets never produce RTT
    /// samples (the ack is ambiguous between transmissions).
    rtx: bool,
}

/// Sender half of one reliable channel.
#[derive(Debug)]
pub(crate) struct TxChan {
    chan: Channel,
    window: u32,
    chunk_packets: u32,
    next_seq: u32,
    in_flight: u32,
    queue: VecDeque<SendItem>,
    unacked: VecDeque<Saved>,
    /// Retransmission queue (copies of saved packets; they already hold
    /// window slots, so they bypass admission).
    rtx: VecDeque<AmPacket>,
    /// (bulk id, sequence number of its final chunk): completion fires when
    /// the cumulative ack passes the final seq.
    bulk_finals: VecDeque<(u32, u32)>,
    /// Reliability mode (legacy go-back-N when default).
    rel: ReliabilityConfig,
    /// RTT/RTO estimator (only consulted when `rel.adaptive_rto`).
    est: RttEstimator,
    /// When the retransmission timer was last (re)armed: first send while
    /// nothing was outstanding, cumulative progress, or an RTO expiry.
    rto_armed_at: Time,
    /// Sequences the peer has selectively acknowledged (fully held out of
    /// order); never retransmitted, pruned on cumulative advance.
    sacked: BTreeSet<u32>,
    /// Sequences already retransmitted in the current SACK round (pruned on
    /// cumulative advance) — each gap retransmits at most once per round.
    sack_rtxed: BTreeSet<u32>,
}

impl TxChan {
    #[cfg(test)]
    pub(crate) fn new(chan: Channel, window: u32) -> Self {
        Self::with_chunk(
            chan,
            window,
            crate::wire::CHUNK_PACKETS as u32,
            ReliabilityConfig::default(),
        )
    }

    pub(crate) fn with_chunk(
        chan: Channel,
        window: u32,
        chunk_packets: u32,
        rel: ReliabilityConfig,
    ) -> Self {
        assert!(window >= chunk_packets, "window smaller than a chunk");
        assert!(chunk_packets >= 1, "chunk must hold at least one packet");
        TxChan {
            chan,
            window,
            chunk_packets,
            next_seq: 0,
            in_flight: 0,
            queue: VecDeque::new(),
            unacked: VecDeque::new(),
            rtx: VecDeque::new(),
            bulk_finals: VecDeque::new(),
            rel,
            est: RttEstimator::default(),
            rto_armed_at: Time::ZERO,
            sacked: BTreeSet::new(),
            sack_rtxed: BTreeSet::new(),
        }
    }

    pub(crate) fn push(&mut self, item: SendItem) {
        self.queue.push_back(item);
    }

    /// Anything sent and not yet cumulatively acknowledged?
    pub(crate) fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Anything left to (re)send or await?
    pub(crate) fn idle(&self) -> bool {
        self.queue.is_empty() && self.unacked.is_empty() && self.rtx.is_empty()
    }

    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn in_flight(&self) -> u32 {
        self.in_flight
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn rtx_len(&self) -> usize {
        self.rtx.len()
    }

    /// Build the next packet to put on the wire, or `None` if the window
    /// (or queue) doesn't allow one. Retransmissions go first; then the
    /// current chunk must finish before anything else; then queued items.
    /// The caller stamps the piggybacked ACK fields. `now` timestamps fresh
    /// transmissions for the RTT estimator (ignored in legacy mode).
    pub(crate) fn try_emit(&mut self, now: Time) -> Option<AmPacket> {
        if let Some(pkt) = self.rtx.pop_front() {
            return Some(pkt);
        }
        let arm = self.unacked.is_empty();
        let item = self.queue.front_mut()?;
        let emitted = match item {
            SendItem::Short {
                kind,
                handler,
                nargs,
                args,
            } => {
                if self.in_flight + 1 > self.window {
                    return None;
                }
                let pkt = AmPacket {
                    chan: self.chan,
                    seq: self.next_seq,
                    offset: 0,
                    ack_req: 0,
                    ack_rep: 0,
                    src_epoch: 0,
                    dst_epoch: 0,
                    sack_req: 0,
                    sack_rep: 0,
                    body: Body::Short {
                        kind: *kind,
                        handler: *handler,
                        nargs: *nargs,
                        args: *args,
                    },
                };
                self.unacked.push_back(Saved {
                    seq: self.next_seq,
                    offset: 0,
                    pkt: pkt.clone(),
                    sent_at: now,
                    rtx: false,
                });
                self.next_seq += 1;
                self.in_flight += 1;
                self.queue.pop_front();
                Some(pkt)
            }
            SendItem::Bulk(bulk) => {
                // Admission control is per chunk: a new chunk needs all its
                // packets' window slots up front ("the window slides by the
                // number of packets in a chunk").
                if !bulk.mid_chunk() {
                    let need = bulk.cur_chunk_packets(self.chunk_packets);
                    if self.in_flight + need > self.window {
                        return None;
                    }
                }
                let off = bulk.sent;
                let len = (bulk.data.len() - off).min(MAX_PAYLOAD);
                let chunk_len = bulk.cur_chunk_packets(self.chunk_packets);
                let offset = bulk.chunk_sent;
                let last_of_chunk = offset + 1 == chunk_len;
                let last_of_xfer = off + len >= bulk.data.len();
                let pkt = AmPacket {
                    chan: self.chan,
                    seq: self.next_seq,
                    offset,
                    ack_req: 0,
                    ack_rep: 0,
                    src_epoch: 0,
                    dst_epoch: 0,
                    sack_req: 0,
                    sack_rep: 0,
                    body: Body::Data {
                        addr: bulk.dst_addr + off as u32,
                        len: len as u16,
                        last_of_chunk,
                        last_of_xfer,
                        handler: bulk.handler,
                        args: bulk.args,
                        base_addr: bulk.dst_addr,
                        total_len: bulk.data.len() as u32,
                        xfer: bulk.id,
                        bytes: bulk.data[off..off + len].into(),
                    },
                };
                self.unacked.push_back(Saved {
                    seq: self.next_seq,
                    offset,
                    pkt: pkt.clone(),
                    sent_at: now,
                    rtx: false,
                });
                self.in_flight += 1;
                bulk.sent += len;
                bulk.chunk_sent += 1;
                if last_of_chunk {
                    if last_of_xfer && bulk.track_completion {
                        self.bulk_finals.push_back((bulk.id, self.next_seq));
                    }
                    self.next_seq += 1;
                    bulk.chunk_sent = 0;
                    if bulk.done() {
                        self.queue.pop_front();
                    }
                }
                Some(pkt)
            }
        };
        if arm && emitted.is_some() {
            self.rto_armed_at = now;
        }
        emitted
    }

    /// Process a cumulative acknowledgement ("everything below `cum` was
    /// received in order") arriving at `now`. Returns `(packets freed, ids
    /// of bulk transfers whose final chunk this ack covers)`. Freed packets
    /// that were never retransmitted feed the RTT estimator (Karn's rule);
    /// any cumulative progress resets the exponential backoff and re-arms
    /// the retransmission timer.
    pub(crate) fn on_ack(&mut self, cum: u32, now: Time) -> (u32, Vec<u32>) {
        let mut freed = 0u32;
        while self.unacked.front().is_some_and(|s| s.seq < cum) {
            let s = self.unacked.pop_front().expect("front checked");
            if self.rel.adaptive_rto && !s.rtx {
                self.est.sample((now - s.sent_at).as_ns());
            }
            self.in_flight -= 1;
            freed += 1;
        }
        // Drop retransmission copies the ack made moot.
        self.rtx.retain(|p| p.seq >= cum);
        let mut completed = Vec::new();
        while self.bulk_finals.front().is_some_and(|&(_, fs)| fs < cum) {
            completed.push(self.bulk_finals.pop_front().expect("front checked").0);
        }
        if freed > 0 {
            self.est.reset_backoff();
            self.rto_armed_at = now;
            // A cumulative advance starts a fresh SACK round.
            self.sacked.retain(|&s| s >= cum);
            self.sack_rtxed.clear();
        }
        (freed, completed)
    }

    /// Process a NACK: cumulative-ack everything below `seq`, then queue
    /// go-back-N retransmission of every saved packet from (`seq`,
    /// `offset`) onward — skipping sequences the peer has selectively
    /// acknowledged, so SACK mode never resends what the receiver already
    /// holds. Returns completed bulk ids (from the implied ack) and the
    /// number of packets queued for retransmission.
    pub(crate) fn on_nack(&mut self, seq: u32, offset: u32, now: Time) -> (Vec<u32>, usize) {
        let (_, completed) = self.on_ack(seq, now);
        self.rtx.clear();
        for saved in &mut self.unacked {
            if (saved.seq, saved.offset) >= (seq, offset) && !self.sacked.contains(&saved.seq) {
                saved.rtx = true;
                self.rtx.push_back(saved.pkt.clone());
            }
        }
        (completed, self.rtx.len())
    }

    /// Process a piggybacked SACK bitmap (bit `i` set ⇒ the peer fully
    /// holds sequence `cum + 1 + i` out of order). Queues a selective
    /// retransmission of every *gap* sequence below the highest sacked one,
    /// at most once per SACK round (rounds end on cumulative advance).
    /// Returns the number of packets queued. No-op unless `rel.sack`.
    pub(crate) fn on_sack(&mut self, cum: u32, bitmap: u64) -> usize {
        if !self.rel.sack || bitmap == 0 {
            return 0;
        }
        let mut highest = cum;
        for i in 0..64u32 {
            if bitmap & (1u64 << i) != 0 {
                let seq = cum + 1 + i;
                self.sacked.insert(seq);
                highest = highest.max(seq);
            }
        }
        // Sacked copies waiting in the go-back-N queue are moot now.
        let sacked = &self.sacked;
        self.rtx.retain(|p| !sacked.contains(&p.seq));
        let mut queued = 0;
        for saved in &mut self.unacked {
            if saved.seq >= highest {
                break;
            }
            // The first gap is `cum` itself — the cumulative point is
            // stuck at the missing sequence.
            if saved.seq >= cum
                && !self.sacked.contains(&saved.seq)
                && !self.sack_rtxed.contains(&saved.seq)
            {
                saved.rtx = true;
                self.rtx.push_back(saved.pkt.clone());
                queued += 1;
            }
        }
        for saved in &self.unacked {
            if saved.seq >= cum && saved.seq < highest && !self.sacked.contains(&saved.seq) {
                self.sack_rtxed.insert(saved.seq);
            }
        }
        queued
    }

    /// Check the adaptive retransmission timer at `now`: if traffic has
    /// been outstanding for a full RTO with no progress, queue a
    /// retransmission of the oldest unacked sequence (every saved packet
    /// sharing it — one short or one chunk), double the backoff, and
    /// re-arm. Returns the number of packets queued (0 = timer not
    /// expired, not armed, or legacy mode).
    pub(crate) fn maybe_rto(&mut self, now: Time) -> usize {
        if !self.rel.adaptive_rto || self.unacked.is_empty() || !self.rtx.is_empty() {
            return 0;
        }
        let deadline = self.rto_armed_at + sp_sim::Dur::ns(self.est.rto_ns(&self.rel));
        if now < deadline {
            return 0;
        }
        let first_seq = self.unacked.front().expect("nonempty").seq;
        let mut queued = 0;
        for saved in &mut self.unacked {
            if saved.seq != first_seq {
                break;
            }
            saved.rtx = true;
            self.rtx.push_back(saved.pkt.clone());
            queued += 1;
        }
        self.est.back_off(&self.rel);
        self.rto_armed_at = now;
        queued
    }

    /// The RTT estimator (stats surfacing).
    pub(crate) fn estimator(&self) -> &RttEstimator {
        &self.est
    }

    /// Rebuild this channel for a freshly-restarted peer incarnation:
    /// every saved-but-unacked packet (and whatever is still queued) is
    /// reassigned consecutive sequence numbers starting from 0, as if it
    /// had never been sent — the new incarnation's receive state expects a
    /// fresh sequence space. Returns the number of packets queued for
    /// (re)transmission.
    pub(crate) fn reincarnate(&mut self, now: Time) -> usize {
        self.rtx.clear();
        self.sacked.clear();
        self.sack_rtxed.clear();
        // A chunk caught mid-emission must restart whole: its already-sent
        // packets and its remainder have to share one sequence number, and
        // the remainder has not been built yet. Rewind the bulk to the
        // chunk boundary and forget the partial chunk's saved packets (they
        // all carry the old, never-completed `next_seq`).
        let partial_seq = match self.queue.front_mut() {
            Some(SendItem::Bulk(bulk)) if bulk.mid_chunk() => {
                bulk.sent -= bulk.chunk_sent as usize * MAX_PAYLOAD;
                bulk.chunk_sent = 0;
                Some(self.next_seq)
            }
            _ => None,
        };
        let saved: Vec<Saved> = self
            .unacked
            .drain(..)
            .filter(|s| Some(s.seq) != partial_seq)
            .collect();
        self.in_flight = 0;
        self.next_seq = 0;
        let mut old_finals: VecDeque<(u32, u32)> = std::mem::take(&mut self.bulk_finals);
        let mut seq_map: Vec<(u32, u32)> = Vec::new(); // (old seq, new seq)
        let mut prev_old: Option<u32> = None;
        for mut s in saved {
            let new_seq = match prev_old {
                Some(po) if po == s.seq => self.next_seq - 1,
                _ => {
                    let ns = self.next_seq;
                    // A mid-chunk tail keeps sharing one (new) sequence;
                    // allocate the next seq when the old one changes.
                    self.next_seq += 1;
                    seq_map.push((s.seq, ns));
                    ns
                }
            };
            prev_old = Some(s.seq);
            s.pkt.seq = new_seq;
            s.seq = new_seq;
            s.rtx = true; // ambiguous timing: never sample (Karn)
            self.in_flight += 1;
            self.rtx.push_back(s.pkt.clone());
            self.unacked.push_back(s);
        }
        for (id, fs) in old_finals.drain(..) {
            if let Some(&(_, ns)) = seq_map.iter().find(|&&(os, _)| os == fs) {
                self.bulk_finals.push_back((id, ns));
            } else {
                // Final chunk was already acked by the dead incarnation but
                // the completion never fired; it completes immediately once
                // the new incarnation acks seq 0 — pin it to the first seq.
                self.bulk_finals.push_back((id, 0));
            }
        }
        self.est.reset_backoff();
        self.rto_armed_at = now;
        self.rtx.len()
    }

    /// Highest sequence number sent so far plus one (what a fully caught-up
    /// receiver would report as expected).
    #[allow(dead_code)] // diagnostics + tests
    pub(crate) fn next_seq(&self) -> u32 {
        self.next_seq
    }
}

/// What the receiver decided about an incoming packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RxVerdict {
    /// In order: deliver it. `force_ack` is set at chunk boundaries ("each
    /// chunk requires only one acknowledgment") and when the explicit-ACK
    /// threshold is reached.
    Deliver {
        /// Send an explicit ACK now.
        force_ack: bool,
    },
    /// Duplicate of something already delivered: drop, but re-ACK so a
    /// sender whose ACKs got lost can make progress.
    DupDrop,
    /// Out of order (a gap): drop; `nack` says whether to send a NACK (one
    /// per gap, not one per stray packet).
    OooDrop {
        /// Send a NACK now.
        nack: bool,
    },
}

/// Receiver half of one reliable channel.
#[derive(Debug)]
pub(crate) struct RxChan {
    expected_seq: u32,
    expected_offset: u32,
    unacked_packets: u32,
    ack_threshold: u32,
    nack_outstanding: bool,
    /// Sequences fully held out of order (SACK mode only): the source of
    /// the piggybacked SACK bitmap. Pruned as the cumulative point passes.
    held: BTreeSet<u32>,
}

impl RxChan {
    pub(crate) fn new(window: u32, ack_threshold: u32) -> Self {
        let _ = window;
        RxChan {
            expected_seq: 0,
            expected_offset: 0,
            unacked_packets: 0,
            ack_threshold,
            nack_outstanding: false,
            held: BTreeSet::new(),
        }
    }

    /// Record that sequence `seq` is fully buffered out of order (all its
    /// packets held); it will appear in [`RxChan::sack_bits`] until the
    /// cumulative point reaches it.
    pub(crate) fn hold(&mut self, seq: u32) {
        if seq > self.expected_seq {
            self.held.insert(seq);
        }
    }

    /// Is `seq` marked fully held?
    pub(crate) fn holds(&self, seq: u32) -> bool {
        self.held.contains(&seq)
    }

    /// The piggybacked SACK bitmap: bit `i` ⇒ sequence
    /// `cum_ack + 1 + i` fully held. All-zero when nothing is buffered
    /// (and always in legacy mode, where `hold` is never called).
    pub(crate) fn sack_bits(&self) -> u64 {
        let mut bits = 0u64;
        for &s in &self.held {
            if s > self.expected_seq {
                let i = s - self.expected_seq - 1;
                if i < 64 {
                    bits |= 1u64 << i;
                }
            }
        }
        bits
    }

    /// Next expected sequence number — the cumulative ACK value this side
    /// piggybacks on every outgoing packet.
    pub(crate) fn cum_ack(&self) -> u32 {
        self.expected_seq
    }

    /// Next expected (seq, in-chunk offset) — the NACK payload.
    pub(crate) fn expected(&self) -> (u32, u32) {
        (self.expected_seq, self.expected_offset)
    }

    /// Note that an ACK for everything so far went out (piggybacked or
    /// explicit).
    pub(crate) fn acked(&mut self) {
        self.unacked_packets = 0;
    }

    /// Classify an incoming sequenced packet. `advances_seq` is true for
    /// shorts and for the last packet of a chunk.
    pub(crate) fn accept(&mut self, seq: u32, offset: u32, advances_seq: bool) -> RxVerdict {
        use std::cmp::Ordering;
        let key = (seq, offset);
        let expected = (self.expected_seq, self.expected_offset);
        match key.cmp(&expected) {
            Ordering::Less => RxVerdict::DupDrop,
            Ordering::Greater => {
                let nack = !self.nack_outstanding;
                self.nack_outstanding = true;
                RxVerdict::OooDrop { nack }
            }
            Ordering::Equal => {
                self.nack_outstanding = false;
                self.unacked_packets += 1;
                if advances_seq {
                    self.expected_seq += 1;
                    self.expected_offset = 0;
                    self.held.remove(&seq);
                } else {
                    self.expected_offset += 1;
                }
                // Explicit-ACK policy: one ACK per completed chunk (§2.2),
                // and the quarter-window threshold otherwise — checked only
                // at sequence boundaries so a chunk never acks mid-flight.
                let force_ack =
                    advances_seq && (offset > 0 || self.unacked_packets >= self.ack_threshold);
                RxVerdict::Deliver { force_ack }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::wire::CHUNK_PACKETS;

    fn short_item(h: u16) -> SendItem {
        SendItem::Short {
            kind: ShortKind::User,
            handler: h,
            nargs: 1,
            args: [7, 0, 0, 0],
        }
    }

    fn tx(window: u32) -> TxChan {
        TxChan::new(Channel::Request, window)
    }

    #[test]
    fn shorts_get_consecutive_seqs() {
        let mut t = tx(72);
        t.push(short_item(1));
        t.push(short_item(2));
        let a = t.try_emit(Time::ZERO).unwrap();
        let b = t.try_emit(Time::ZERO).unwrap();
        assert_eq!((a.seq, b.seq), (0, 1));
        assert_eq!(t.in_flight(), 2);
        assert!(t.try_emit(Time::ZERO).is_none(), "queue drained");
    }

    #[test]
    fn window_blocks_emission() {
        let mut t = tx(CHUNK_PACKETS as u32); // minimum legal window
        for i in 0..=CHUNK_PACKETS as u16 {
            t.push(short_item(i));
        }
        for _ in 0..CHUNK_PACKETS {
            assert!(t.try_emit(Time::ZERO).is_some());
        }
        assert!(t.try_emit(Time::ZERO).is_none(), "window full");
        // Ack one packet; exactly one more may go.
        assert!(t.on_ack(1, Time::ZERO).1.is_empty());
        assert!(t.try_emit(Time::ZERO).is_some());
        assert!(t.try_emit(Time::ZERO).is_none());
    }

    #[test]
    fn chunk_shares_one_seq_and_occupies_its_packets() {
        let mut t = tx(72);
        let data = vec![9u8; CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            5,
            0x100,
            3,
            [0; 4],
            data.into(),
        )));
        let mut seqs = Vec::new();
        let mut offsets = Vec::new();
        while let Some(p) = t.try_emit(Time::ZERO) {
            seqs.push(p.seq);
            offsets.push(p.offset);
        }
        assert_eq!(seqs.len(), CHUNK_PACKETS, "one full chunk");
        assert!(seqs.iter().all(|&s| s == 0), "chunk packets share seq");
        assert_eq!(offsets, (0..CHUNK_PACKETS as u32).collect::<Vec<_>>());
        assert_eq!(t.in_flight(), CHUNK_PACKETS as u32);
    }
    const CHUNK_BYTES_TEST: usize = crate::wire::CHUNK_BYTES;

    #[test]
    fn two_chunk_pipeline_waits_for_ack() {
        // Window 72 admits exactly two chunks; the third needs an ack.
        let mut t = tx(72);
        let data = vec![1u8; 3 * CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            1,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        let mut n = 0;
        while t.try_emit(Time::ZERO).is_some() {
            n += 1;
        }
        assert_eq!(n, 2 * CHUNK_PACKETS, "exactly two chunks admitted");
        t.on_ack(1, Time::ZERO); // first chunk acked
        let mut m = 0;
        while t.try_emit(Time::ZERO).is_some() {
            m += 1;
        }
        assert_eq!(m, CHUNK_PACKETS, "third chunk flows after first ack");
    }

    #[test]
    fn partial_last_chunk_and_completion() {
        let mut t = tx(72);
        // 1.5 packets worth of data: 2 packets, one (partial) chunk.
        let data = vec![2u8; MAX_PAYLOAD + 10];
        t.push(SendItem::Bulk(BulkTx::new(
            9,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        let a = t.try_emit(Time::ZERO).unwrap();
        let b = t.try_emit(Time::ZERO).unwrap();
        assert!(t.try_emit(Time::ZERO).is_none());
        match (&a.body, &b.body) {
            (
                Body::Data {
                    len: la,
                    last_of_chunk: ca,
                    last_of_xfer: xa,
                    ..
                },
                Body::Data {
                    len: lb,
                    last_of_chunk: cb,
                    last_of_xfer: xb,
                    ..
                },
            ) => {
                assert_eq!((*la as usize, *lb as usize), (MAX_PAYLOAD, 10));
                assert!(!ca && !xa);
                assert!(cb & xb);
            }
            other => panic!("unexpected bodies {other:?}"),
        }
        assert!(t.on_ack(0, Time::ZERO).1.is_empty());
        assert_eq!(
            t.on_ack(1, Time::ZERO),
            (2, vec![9]),
            "final ack completes the bulk and frees both packets"
        );
        assert_eq!(t.in_flight(), 0);
        assert!(t.idle());
    }

    #[test]
    fn nack_triggers_go_back_n() {
        let mut t = tx(72);
        for i in 0..5 {
            t.push(short_item(i));
        }
        let sent: Vec<AmPacket> = std::iter::from_fn(|| t.try_emit(Time::ZERO)).collect();
        assert_eq!(sent.len(), 5);
        // Receiver saw 0,1 then lost 2: NACK(expected=2).
        let (completed, rtx) = t.on_nack(2, 0, Time::ZERO);
        assert!(completed.is_empty());
        assert_eq!(rtx, 3, "packets 2,3,4 retransmit");
        let r: Vec<u32> = std::iter::from_fn(|| t.try_emit(Time::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(r, vec![2, 3, 4]);
        assert_eq!(t.in_flight(), 3, "retransmits reuse their window slots");
    }

    #[test]
    fn nack_mid_chunk_retransmits_from_offset() {
        let mut t = tx(72);
        let data = vec![3u8; CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            1,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        while t.try_emit(Time::ZERO).is_some() {}
        let (_, rtx) = t.on_nack(0, 10, Time::ZERO);
        assert_eq!(rtx, CHUNK_PACKETS - 10);
        let first = t.try_emit(Time::ZERO).unwrap();
        assert_eq!((first.seq, first.offset), (0, 10));
    }

    #[test]
    fn ack_drops_stale_retransmissions() {
        let mut t = tx(72);
        for i in 0..3 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        t.on_nack(0, 0, Time::ZERO); // retransmit everything
        t.on_ack(2, Time::ZERO); // but 0,1 arrive fine after all
        let r: Vec<u32> = std::iter::from_fn(|| t.try_emit(Time::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(r, vec![2], "only the still-unacked packet retransmits");
    }

    #[test]
    fn duplicate_nack_is_idempotent() {
        let mut t = tx(72);
        for i in 0..4 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        t.on_nack(1, 0, Time::ZERO);
        let (_, rtx2) = t.on_nack(1, 0, Time::ZERO);
        assert_eq!(rtx2, 3, "rtx queue rebuilt, not doubled");
        let r: Vec<u32> = std::iter::from_fn(|| t.try_emit(Time::ZERO))
            .map(|p| p.seq)
            .collect();
        assert_eq!(r, vec![1, 2, 3]);
    }

    #[test]
    fn rx_in_order_delivery_and_acks() {
        let mut r = RxChan::new(72, 18);
        for seq in 0..17 {
            assert_eq!(
                r.accept(seq, 0, true),
                RxVerdict::Deliver { force_ack: false }
            );
        }
        // 18th unacked packet crosses the quarter-window threshold.
        assert_eq!(
            r.accept(17, 0, true),
            RxVerdict::Deliver { force_ack: true }
        );
        r.acked();
        assert_eq!(r.cum_ack(), 18);
        assert_eq!(
            r.accept(18, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
    }

    #[test]
    fn rx_chunk_completion_forces_ack() {
        let mut r = RxChan::new(72, 18);
        for off in 0..CHUNK_PACKETS as u32 - 1 {
            assert_eq!(
                r.accept(0, off, false),
                RxVerdict::Deliver { force_ack: false }
            );
        }
        assert_eq!(
            r.accept(0, CHUNK_PACKETS as u32 - 1, true),
            RxVerdict::Deliver { force_ack: true },
            "last packet of a chunk forces the per-chunk ack"
        );
        assert_eq!(r.cum_ack(), 1);
    }

    #[test]
    fn rx_gap_nacks_once() {
        let mut r = RxChan::new(72, 18);
        assert_eq!(
            r.accept(0, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        // Packet 1 lost; 2, 3, 4 arrive.
        assert_eq!(r.accept(2, 0, true), RxVerdict::OooDrop { nack: true });
        assert_eq!(r.accept(3, 0, true), RxVerdict::OooDrop { nack: false });
        assert_eq!(r.accept(4, 0, true), RxVerdict::OooDrop { nack: false });
        assert_eq!(r.expected(), (1, 0));
        // Retransmitted 1 arrives: progress resumes, future gaps re-NACK.
        assert_eq!(
            r.accept(1, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.accept(3, 0, true), RxVerdict::OooDrop { nack: true });
    }

    #[test]
    fn rx_duplicates_dropped() {
        let mut r = RxChan::new(72, 18);
        assert_eq!(
            r.accept(0, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.accept(0, 0, true), RxVerdict::DupDrop);
        // Mid-chunk duplicate.
        assert_eq!(
            r.accept(1, 0, false),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.accept(1, 0, false), RxVerdict::DupDrop);
        assert_eq!(
            r.accept(1, 1, false),
            RxVerdict::Deliver { force_ack: false }
        );
    }

    fn adaptive() -> ReliabilityConfig {
        ReliabilityConfig::adaptive()
    }

    /// The instant `ns` nanoseconds after simulation start.
    fn at(ns: u64) -> Time {
        Time::ZERO + sp_sim::Dur::ns(ns)
    }

    fn tx_adaptive(window: u32) -> TxChan {
        TxChan::with_chunk(Channel::Request, window, CHUNK_PACKETS as u32, adaptive())
    }

    #[test]
    fn estimator_follows_jacobson_updates() {
        let mut e = RttEstimator::default();
        e.sample(80_000);
        assert_eq!(e.srtt_ns(), 80_000, "first sample seeds SRTT");
        assert_eq!(e.rttvar_ns(), 40_000, "first sample seeds RTTVAR at s/2");
        e.sample(80_000);
        assert_eq!(e.srtt_ns(), 80_000, "steady samples keep SRTT");
        assert_eq!(e.rttvar_ns(), 30_000, "variance decays by 3/4 per sample");
        e.sample(160_000);
        assert_eq!(e.srtt_ns(), 90_000, "SRTT moves by 1/8 of the error");
        assert_eq!(e.rttvar_ns(), 42_500, "variance absorbs 1/4 of |err|");
        assert_eq!(e.samples(), 3);
    }

    #[test]
    fn rto_clamps_and_backs_off() {
        let rel = adaptive();
        let mut e = RttEstimator::default();
        // Before any sample: conservative 8 x min_rto.
        assert_eq!(e.rto_ns(&rel), 8 * rel.min_rto_ns);
        e.sample(100_000);
        // SRTT + max(g, 4*RTTVAR) = 100_000 + 200_000.
        assert_eq!(e.rto_ns(&rel), 300_000);
        e.back_off(&rel);
        assert_eq!(e.rto_ns(&rel), 600_000, "one expiry doubles the RTO");
        for _ in 0..20 {
            e.back_off(&rel);
        }
        assert_eq!(
            e.rto_ns(&rel),
            rel.max_rto_ns,
            "backoff saturates at the cap / max clamp"
        );
        assert_eq!(e.backoff_hwm(), rel.backoff_cap);
        e.reset_backoff();
        assert_eq!(e.rto_ns(&rel), 300_000, "progress resets the backoff");
        assert_eq!(e.backoff_hwm(), rel.backoff_cap, "high water survives");
        // Tiny samples clamp up to min_rto.
        let mut tiny = RttEstimator::default();
        tiny.sample(10);
        assert_eq!(tiny.rto_ns(&rel), rel.min_rto_ns);
    }

    #[test]
    fn karns_rule_skips_retransmitted_samples() {
        let mut t = tx_adaptive(72);
        for i in 0..3 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        // A NACK at seq 2 implies an ack of 0..2 (two clean samples) and
        // marks packet 2 as a retransmission.
        let (_, rtx) = t.on_nack(2, 0, at(50_000));
        assert_eq!(rtx, 1);
        assert_eq!(t.estimator().samples(), 2, "clean packets sample on ack");
        assert_eq!(t.estimator().srtt_ns(), 50_000);
        while t.try_emit(at(60_000)).is_some() {}
        t.on_ack(3, at(1_000_000));
        assert_eq!(t.estimator().samples(), 2, "Karn: ambiguous ack, no sample");
        assert_eq!(t.estimator().srtt_ns(), 50_000, "estimate untouched");
        assert!(t.idle());
    }

    #[test]
    fn rto_expiry_retransmits_oldest_and_backs_off() {
        let mut t = tx_adaptive(72);
        for i in 0..3 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        let rto = 8 * adaptive().min_rto_ns; // no samples yet
        assert_eq!(t.maybe_rto(at(rto - 1)), 0, "timer not yet expired");
        assert_eq!(t.maybe_rto(at(rto)), 1, "oldest sequence retransmits");
        let p = t.try_emit(at(rto)).unwrap();
        assert_eq!(p.seq, 0, "RTO resends the window head, not everything");
        // Re-armed with doubled RTO: the next check must wait 2x from the
        // expiry instant.
        assert_eq!(t.maybe_rto(at(rto + 2 * rto - 1)), 0);
        assert_eq!(t.maybe_rto(at(rto + 2 * rto)), 1);
        let _ = t.try_emit(at(3 * rto));
        // Progress clears the backoff.
        t.on_ack(3, at(3 * rto));
        assert!(t.idle());
        assert_eq!(t.maybe_rto(at(100 * rto)), 0, "nothing outstanding");
    }

    #[test]
    fn legacy_mode_never_arms_the_timer() {
        let mut t = tx(72);
        t.push(short_item(1));
        let _ = t.try_emit(Time::ZERO);
        assert_eq!(t.maybe_rto(at(u64::MAX / 2)), 0);
    }

    /// Regression (pre-fix this failed): once the receiver reports a
    /// sequence as selectively held, neither a SACK round nor a subsequent
    /// go-back-N NACK may retransmit it.
    #[test]
    fn sack_never_resends_what_the_receiver_holds() {
        let mut t = tx_adaptive(72);
        for i in 0..6 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        // Receiver got 0, lost 1 and 3, holds 2, 4, 5: cum=1,
        // bitmap bits for cum+1+i => seqs 2,4,5 are bits 0,2,3.
        t.on_ack(1, at(1_000));
        let queued = t.on_sack(1, 0b1101);
        assert_eq!(queued, 2, "only the gaps (1 and 3) retransmit");
        let seqs: Vec<u32> = std::iter::from_fn(|| t.try_emit(at(2_000)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(seqs, vec![1, 3]);
        // The same bitmap again: this round already resent the gaps.
        assert_eq!(t.on_sack(1, 0b1101), 0, "one retransmit per gap per round");
        // A go-back-N NACK (e.g. a keep-alive answer) must also skip the
        // held sequences.
        let (_, rtx) = t.on_nack(1, 0, at(3_000));
        assert_eq!(rtx, 2, "NACK resends 1 and 3 only, never 2/4/5");
        let seqs: Vec<u32> = std::iter::from_fn(|| t.try_emit(at(4_000)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(seqs, vec![1, 3]);
        // Cumulative progress past the held run clears the bookkeeping.
        let (freed, _) = t.on_ack(6, at(5_000));
        assert_eq!(freed, 5, "the five still-unacked packets free");
        assert!(t.idle());
    }

    #[test]
    fn sack_ignored_in_legacy_mode() {
        let mut t = tx(72);
        for i in 0..4 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        assert_eq!(t.on_sack(0, 0b110), 0, "legacy mode ignores SACK bitmaps");
        let (_, rtx) = t.on_nack(1, 0, Time::ZERO);
        assert_eq!(rtx, 3, "go-back-N untouched by the ignored bitmap");
    }

    #[test]
    fn rx_holds_feed_the_sack_bitmap() {
        let mut r = RxChan::new(72, 18);
        assert_eq!(
            r.accept(0, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        // 1 lost; 2 and 4 arrive whole out of order.
        r.hold(2);
        r.hold(4);
        assert!(r.holds(2) && r.holds(4) && !r.holds(3));
        // cum=1: bit i => seq 2+i, so seqs 2,4 are bits 0 and 2.
        assert_eq!(r.sack_bits(), 0b101);
        // Holding at or below the expected sequence is a no-op.
        r.hold(1);
        assert_eq!(r.sack_bits(), 0b101);
        // The gap fills: delivery walks through the held run.
        assert_eq!(
            r.accept(1, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(
            r.accept(2, 0, true),
            RxVerdict::Deliver { force_ack: false }
        );
        assert_eq!(r.sack_bits(), 0b1, "seq 4 re-bases against cum=3");
    }

    #[test]
    fn reincarnate_renumbers_and_replays_everything() {
        let mut t = tx(72);
        for i in 0..3 {
            t.push(short_item(i));
        }
        while t.try_emit(Time::ZERO).is_some() {}
        t.on_ack(1, Time::ZERO); // packet 0 acked by the old incarnation
        let rtx = t.reincarnate(at(1_000));
        assert_eq!(rtx, 2, "both unacked packets replay");
        let seqs: Vec<u32> = std::iter::from_fn(|| t.try_emit(at(2_000)))
            .map(|p| p.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1], "fresh sequence space from zero");
        assert_eq!(t.next_seq(), 2);
        let (freed, _) = t.on_ack(2, at(3_000));
        assert_eq!(freed, 2);
        assert_eq!(
            t.estimator().samples(),
            0,
            "replayed packets are Karn-ambiguous: no samples"
        );
        assert!(t.idle());
    }

    #[test]
    fn reincarnate_mid_chunk_restarts_the_chunk_whole() {
        let mut t = tx(72);
        let data = vec![7u8; CHUNK_BYTES_TEST];
        t.push(SendItem::Bulk(BulkTx::new(
            3,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        // Emit only half the chunk, then the peer reincarnates.
        for _ in 0..CHUNK_PACKETS / 2 {
            assert!(t.try_emit(Time::ZERO).is_some());
        }
        let rtx = t.reincarnate(at(500));
        assert_eq!(rtx, 0, "the partial chunk is forgotten, not replayed");
        let pkts: Vec<AmPacket> = std::iter::from_fn(|| t.try_emit(at(600))).collect();
        assert_eq!(pkts.len(), CHUNK_PACKETS, "chunk re-emits whole");
        assert!(pkts.iter().all(|p| p.seq == 0), "one shared fresh seq");
        assert_eq!(
            pkts.iter().map(|p| p.offset).collect::<Vec<_>>(),
            (0..CHUNK_PACKETS as u32).collect::<Vec<_>>()
        );
        // The final ack must still complete the bulk under its new seq.
        let (_, completed) = t.on_ack(1, at(1_000));
        assert_eq!(completed, vec![3]);
        assert!(t.idle());
    }

    #[test]
    fn shorts_wait_behind_bulk_fifo_order() {
        let mut t = tx(72);
        let data = vec![4u8; 2 * MAX_PAYLOAD];
        t.push(SendItem::Bulk(BulkTx::new(
            1,
            0,
            u16::MAX,
            [0; 4],
            data.into(),
        )));
        t.push(short_item(42));
        let kinds: Vec<bool> = std::iter::from_fn(|| t.try_emit(Time::ZERO))
            .map(|p| matches!(p.body, Body::Data { .. }))
            .collect();
        assert_eq!(kinds, vec![true, true, false], "bulk first, then the short");
    }
}

#[cfg(test)]
mod model_tests {
    //! A pure model check: drive a TxChan/RxChan pair over a lossy,
    //! FIFO-per-pair wire and assert exactly-once in-order delivery with
    //! eventual completion, for arbitrary loss patterns.

    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

        #[test]
        fn lossy_wire_exactly_once(
            n_msgs in 1u16..120,
            loss_millis in 0u32..400,
            seed in any::<u64>(),
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut tx = TxChan::new(Channel::Request, 72);
            let mut rx = RxChan::new(72, 18);
            for i in 0..n_msgs {
                tx.push(SendItem::Short {
                    kind: ShortKind::User,
                    handler: i,
                    nargs: 0,
                    args: [0; 4],
                });
            }
            let mut delivered: Vec<u16> = Vec::new();
            // Rounds: emit what the window allows, drop some, deliver the
            // rest in order, then feed back either an ack or a NACK.
            let mut rounds = 0;
            while delivered.len() < n_msgs as usize {
                rounds += 1;
                prop_assert!(rounds < 10_000, "no progress after {rounds} rounds");
                let mut got_any = false;
                let mut nacked = false;
                while let Some(pkt) = tx.try_emit(Time::ZERO) {
                    if rng.gen_bool(loss_millis as f64 / 1000.0) {
                        continue; // lost on the wire
                    }
                    match rx.accept(pkt.seq, pkt.offset, true) {
                        RxVerdict::Deliver { .. } => {
                            if let Body::Short { handler, .. } = pkt.body {
                                delivered.push(handler);
                            }
                            got_any = true;
                        }
                        RxVerdict::DupDrop => {}
                        RxVerdict::OooDrop { nack } => {
                            if nack && !nacked {
                                nacked = true;
                                let (s, o) = rx.expected();
                                tx.on_nack(s, o, Time::ZERO);
                            }
                        }
                    }
                }
                // End-of-round feedback (the keep-alive/ACK path, itself
                // lossless here — the sim-level tests cover lossy acks).
                if got_any {
                    tx.on_ack(rx.cum_ack(), Time::ZERO);
                    rx.acked();
                } else if tx.has_unacked() {
                    // Keep-alive probe: receiver answers with its state.
                    let (s, o) = rx.expected();
                    tx.on_nack(s, o, Time::ZERO);
                }
            }
            let expect: Vec<u16> = (0..n_msgs).collect();
            prop_assert_eq!(delivered, expect);
            prop_assert!(tx.on_ack(rx.cum_ack(), Time::ZERO).1.is_empty());
            prop_assert!(tx.idle(), "sender should be quiescent");
        }

        #[test]
        fn lossy_wire_bulk_reassembly(
            len in 1usize..60_000,
            loss_millis in 0u32..300,
            seed in any::<u64>(),
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let data: Vec<u8> = (0..len).map(|i| (i as u8) ^ 0x5A).collect();
            let mut tx = TxChan::new(Channel::Request, 72);
            let mut rx = RxChan::new(72, 18);
            tx.push(SendItem::Bulk(BulkTx::new(7, 0, u16::MAX, [0; 4], data.clone().into())));
            let mut assembled = vec![0u8; len];
            let mut done = false;
            let mut rounds = 0;
            while !done {
                rounds += 1;
                prop_assert!(rounds < 20_000, "no progress");
                let mut progressed = false;
                let mut nacked = false;
                while let Some(pkt) = tx.try_emit(Time::ZERO) {
                    if rng.gen_bool(loss_millis as f64 / 1000.0) {
                        continue;
                    }
                    if let Body::Data { addr, last_of_chunk, last_of_xfer, ref bytes, .. } = pkt.body {
                        match rx.accept(pkt.seq, pkt.offset, last_of_chunk) {
                            RxVerdict::Deliver { .. } => {
                                assembled[addr as usize..addr as usize + bytes.len()]
                                    .copy_from_slice(bytes);
                                progressed = true;
                                if last_of_xfer {
                                    done = true;
                                }
                            }
                            RxVerdict::DupDrop => {}
                            RxVerdict::OooDrop { nack } => {
                                if nack && !nacked {
                                    nacked = true;
                                    let (s, o) = rx.expected();
                                    tx.on_nack(s, o, Time::ZERO);
                                }
                            }
                        }
                    }
                }
                tx.on_ack(rx.cum_ack(), Time::ZERO);
                rx.acked();
                if !progressed && !done && tx.has_unacked() {
                    let (s, o) = rx.expected();
                    tx.on_nack(s, o, Time::ZERO);
                }
            }
            prop_assert_eq!(assembled, data);
        }
    }
}
