//! SP AM wire format.
//!
//! One [`AmPacket`] rides in one TB2 packet. Protocol bookkeeping (channel,
//! sequence number, piggybacked cumulative ACKs, bulk addressing) lives in
//! the 32-byte adapter header, so a full chunk packet still carries 224
//! payload bytes and the paper's chunk arithmetic (36 × 224 = 8064) holds.

use sp_adapter::MAX_PAYLOAD;

/// Packets per bulk-transfer chunk (§2.2 footnote: 8064-byte chunks).
pub const CHUNK_PACKETS: usize = 36;
/// Bytes per bulk-transfer chunk.
pub const CHUNK_BYTES: usize = CHUNK_PACKETS * MAX_PAYLOAD;

/// The two independent reliable channels between every node pair.
///
/// Requests (and store/get-request traffic) and replies (and get data)
/// travel on separate sequence spaces with separate windows, the classic
/// Active-Messages deadlock-avoidance split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Requests, store data, get requests. Window: 72 packets.
    Request,
    /// Replies, get data flowing back. Window: 76 packets.
    Reply,
}

impl Channel {
    /// Index (0/1) for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Channel::Request => 0,
            Channel::Reply => 1,
        }
    }

    /// Both channels.
    pub const BOTH: [Channel; 2] = [Channel::Request, Channel::Reply];
}

/// Short-message flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortKind {
    /// A user request/reply carrying a handler and up to 4 words.
    User,
    /// An `am_get` request: the protocol engine on the target streams
    /// `len` bytes from `src_addr` (its memory) back on the reply channel,
    /// landing at `dst_addr` on the requester, whose `handler` then runs.
    GetReq {
        /// Address to read on the *target* node.
        src_addr: u32,
        /// Address to write on the *requesting* node.
        dst_addr: u32,
        /// Transfer length in bytes.
        len: u32,
        /// Requester's transfer handle, echoed in the data packets.
        xfer: u32,
    },
    /// Benchmark-utility barrier token (`go = false`: a hit reported to
    /// node 0; `go = true`: node 0's release broadcast).
    Barrier {
        /// Release flag.
        go: bool,
    },
}

/// Packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Body {
    /// Request/reply with handler index and argument words.
    Short {
        /// Flavour (user message or get request).
        kind: ShortKind,
        /// Handler table index on the destination (for `GetReq`: on the
        /// *requester*, run when the fetched data has arrived).
        handler: u16,
        /// Number of valid argument words (0..=4).
        nargs: u8,
        /// Argument words.
        args: [u32; 4],
    },
    /// One packet of a bulk transfer (store data, or get data coming back).
    Data {
        /// Destination address on the receiving node.
        addr: u32,
        /// Payload bytes (also implied by `bytes.len()`; kept for symmetry
        /// with the real header's length field).
        len: u16,
        /// Last packet of its chunk (triggers the per-chunk ACK).
        last_of_chunk: bool,
        /// Last packet of the whole transfer (triggers the handler).
        last_of_xfer: bool,
        /// Handler to run on the receiving node when the transfer
        /// completes; `u16::MAX` means none.
        handler: u16,
        /// Handler argument words.
        args: [u32; 4],
        /// Base address of the whole transfer (handler info).
        base_addr: u32,
        /// Total transfer length (handler info).
        total_len: u32,
        /// Issuing node's transfer id: lets an `am_get` requester match the
        /// arriving data to its handle.
        xfer: u32,
        /// The data.
        bytes: Box<[u8]>,
    },
    /// Explicit acknowledgement (ACK content rides in the shared header
    /// fields `ack_req`/`ack_rep`).
    Ack,
    /// Negative acknowledgement: "I expected sequence `seq` (at `offset`
    /// within its chunk); retransmit from there."
    Nack {
        /// Next sequence number the receiver expects on `chan`.
        seq: u32,
        /// Next in-chunk packet index expected (0 for short messages).
        offset: u32,
        /// `true` when this NACK answers a keep-alive probe rather than an
        /// out-of-order arrival — lets the sender attribute the resulting
        /// retransmissions to the keep-alive path. Rides in a header flag
        /// bit, so the NACK payload stays 8 bytes.
        probe: bool,
    },
    /// Keep-alive probe: the receiver answers with an ACK or NACK
    /// reflecting its current expected sequence number.
    Probe,
}

/// One SP AM packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmPacket {
    /// Which reliable channel this packet belongs to (for control packets:
    /// which channel it talks about).
    pub chan: Channel,
    /// Sequence number (shared by all packets of a chunk); ignored for
    /// control packets.
    pub seq: u32,
    /// In-chunk packet index (0 for shorts and controls).
    pub offset: u32,
    /// Piggybacked cumulative ACK: the sender's next expected sequence
    /// number on its *request* receive channel (i.e. it has every request
    /// packet below this).
    pub ack_req: u32,
    /// Same for the reply channel.
    pub ack_rep: u32,
    /// Sender's incarnation epoch: bumped every time the sending node
    /// crash/restarts, so packets from a dead incarnation are recognizably
    /// stale. `0` forever on the legacy (no-crash) protocol, making the
    /// field invisible to every pre-epoch golden run.
    pub src_epoch: u32,
    /// The sender's view of the *receiver's* incarnation epoch. A receiver
    /// whose own epoch is newer drops the packet as stale and advertises
    /// its current epoch back.
    pub dst_epoch: u32,
    /// Selective-ACK bitmap for the request channel, piggybacked like
    /// `ack_req`: bit `i` set means the receiver fully holds sequence
    /// `ack_req + 1 + i` out of order. All-zero (and ignored) in legacy
    /// go-back-N mode.
    pub sack_req: u64,
    /// Same for the reply channel.
    pub sack_rep: u64,
    /// Body.
    pub body: Body,
}

impl AmPacket {
    /// Payload bytes this packet occupies on the wire (protocol fields ride
    /// in the 32-byte adapter header; see module docs).
    pub fn payload_bytes(&self) -> usize {
        match &self.body {
            Body::Short { nargs, .. } => 12 + 4 * (*nargs as usize),
            Body::Data { bytes, .. } => bytes.len(),
            Body::Ack | Body::Probe => 4,
            Body::Nack { .. } => 8,
        }
    }

    /// Whether this is a control packet (outside the sequence space).
    pub fn is_control(&self) -> bool {
        matches!(self.body, Body::Ack | Body::Nack { .. } | Body::Probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(nargs: u8) -> AmPacket {
        AmPacket {
            chan: Channel::Request,
            seq: 3,
            offset: 0,
            ack_req: 0,
            ack_rep: 0,
            src_epoch: 0,
            dst_epoch: 0,
            sack_req: 0,
            sack_rep: 0,
            body: Body::Short {
                kind: ShortKind::User,
                handler: 1,
                nargs,
                args: [0; 4],
            },
        }
    }

    #[test]
    fn chunk_geometry_matches_paper() {
        assert_eq!(CHUNK_BYTES, 8064);
        assert_eq!(CHUNK_PACKETS, 36);
    }

    #[test]
    fn short_payload_grows_per_word() {
        // 1-word request: 16 payload bytes => 48 wire bytes; each extra
        // word adds 4 bytes.
        assert_eq!(short(1).payload_bytes(), 16);
        assert_eq!(short(4).payload_bytes(), 28);
    }

    #[test]
    fn data_payload_is_byte_count() {
        let p = AmPacket {
            chan: Channel::Request,
            seq: 0,
            offset: 0,
            ack_req: 0,
            ack_rep: 0,
            src_epoch: 0,
            dst_epoch: 0,
            sack_req: 0,
            sack_rep: 0,
            body: Body::Data {
                addr: 0,
                len: 224,
                last_of_chunk: true,
                last_of_xfer: false,
                handler: u16::MAX,
                args: [0; 4],
                base_addr: 0,
                total_len: 8064,
                xfer: 0,
                bytes: vec![0u8; 224].into_boxed_slice(),
            },
        };
        assert_eq!(p.payload_bytes(), MAX_PAYLOAD);
        assert!(!p.is_control());
    }

    #[test]
    fn control_classification() {
        for body in [
            Body::Ack,
            Body::Nack {
                seq: 0,
                offset: 0,
                probe: false,
            },
            Body::Probe,
        ] {
            let p = AmPacket {
                chan: Channel::Reply,
                seq: 0,
                offset: 0,
                ack_req: 0,
                ack_rep: 0,
                src_epoch: 0,
                dst_epoch: 0,
                sack_req: 0,
                sack_rep: 0,
                body,
            };
            assert!(p.is_control());
            assert!(p.payload_bytes() <= 8);
        }
    }

    #[test]
    fn channel_indices() {
        assert_eq!(Channel::Request.idx(), 0);
        assert_eq!(Channel::Reply.idx(), 1);
        assert_eq!(Channel::BOTH.len(), 2);
    }
}
