//! # sp-am — SP Active Messages (the paper's contribution)
//!
//! A full implementation of the Generic Active Messages 1.1 interface
//! layered **directly on the TB2 adapter model** (`sp-adapter`), using no
//! other communication software — exactly the structure of the paper's
//! SP AM (§2). The interface is the paper's Table 1:
//!
//! | function            | operation                                         |
//! |---------------------|---------------------------------------------------|
//! | `am_request_M`      | send an M-word request (M = 1..4)                 |
//! | `am_reply_M`        | send an M-word reply (from a request handler)     |
//! | `am_store`          | send a long message, blocking                     |
//! | `am_store_async`    | send a long message, non-blocking                 |
//! | `am_get`            | fetch data from a remote node                     |
//! | `am_poll`           | poll the network                                  |
//!
//! (Rust spelling: [`Am::request_1`]…[`Am::request_4`], [`AmEnv::reply_1`]…,
//! [`Am::store`], [`Am::store_async`], [`Am::get`], [`Am::poll`].)
//!
//! ## Reliability layer (paper §2.2)
//!
//! SP AM provides reliable, **ordered** delivery, optimized for the SP
//! switch's lossless behaviour; packets are lost only to receive-FIFO
//! overflow (and, in tests, fault injection):
//!
//! * per-destination **sequence numbers** with a **sliding window** — 72
//!   packets for the request channel, 76 for the reply channel;
//! * acknowledgements **piggybacked** on every request/reply going the
//!   other way; **explicit ACKs** when a quarter of the window's worth of
//!   packets is pending;
//! * an out-of-sequence packet is **dropped and NACKed**, forcing go-back-N
//!   retransmission of the missing and all subsequent packets;
//! * bulk transfers are cut into **8064-byte chunks of 36 packets** that
//!   share one sequence number (the window slides by 36; address offsets
//!   order packets within the chunk; one ACK per chunk), and chunk *N+2*
//!   launches only after the ACK of chunk *N* — a 2-deep pipeline whose
//!   per-chunk send overhead exceeds one round-trip, keeping it full;
//! * a **keep-alive** protocol — timeouts emulated by counting unsuccessful
//!   polls — probes the peer, which answers with a NACK/ACK that restarts
//!   any lost traffic.
//!
//! ## Using it
//!
//! Build an [`AmMachine`], spawn one program per node, and interact through
//! the [`Am`] facade. Handlers are plain functions over your per-node state
//! type `S`:
//!
//! ```
//! use sp_am::{Am, AmArgs, AmEnv, AmMachine};
//!
//! fn pong(env: &mut AmEnv<'_, u32>, args: AmArgs) {
//!     *env.state += args.a[0];
//!     env.reply_1(args.a[1] as u16, 99); // args.a[1] carries the reply handler id
//! }
//! fn done(env: &mut AmEnv<'_, u32>, args: AmArgs) {
//!     *env.state += args.a[0];
//! }
//!
//! let mut m = AmMachine::new(sp_adapter::SpConfig::thin(2), sp_am::AmConfig::default(), 7);
//! m.spawn("client", 0u32, |am| {
//!     let pong_h = am.register(pong);
//!     let done_h = am.register(done);
//!     am.request_2(1, pong_h, 1, done_h as u32);
//!     while *am.state() == 0 {
//!         am.poll();
//!     }
//!     assert_eq!(*am.state(), 99);
//! });
//! m.spawn("server", 0u32, |am| {
//!     am.register(pong); // same table on every node
//!     am.register(done);
//!     while *am.state() == 0 {
//!         am.poll();
//!     }
//! });
//! m.run().unwrap();
//! ```

#![warn(missing_docs)]

mod api;
mod channel;
mod config;
mod machine;
mod mem;
mod port;
mod stats;
mod wire;

pub use api::{Am, AmArgs, AmEnv, BulkHandle, HandlerId};
pub use config::{AmConfig, ReliabilityConfig};
pub use machine::{AmMachine, AmReport};
pub use mem::{GlobalPtr, Mem, MemPool};
pub use port::AmPort;
pub use stats::{gstats, AmStats};
pub use wire::{AmPacket, Body, Channel, CHUNK_BYTES, CHUNK_PACKETS};

/// World type used by every SP AM simulation.
pub type AmWorld = sp_adapter::SpWorld<wire::AmPacket>;
/// Node context type used by every SP AM simulation.
pub type AmCtx = sp_adapter::SpCtx<wire::AmPacket>;
