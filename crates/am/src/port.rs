//! The per-node protocol engine: wires the pure channel state machines to
//! the adapter, dispatches handlers, and implements bulk transfers, the
//! explicit-ACK/NACK machinery, and the keep-alive protocol.

use crate::api::{AmArgs, AmEnv, BulkHandle, BulkInfo};
use crate::channel::{BulkTx, RxChan, RxVerdict, SendItem, TxChan};
use crate::config::AmConfig;
use crate::mem::MemPool;
use crate::stats::{gstats, AmStats};
use crate::wire::{AmPacket, Body, Channel, ShortKind};
use crate::AmCtx;
use sp_adapter::host;
use sp_trace::{Kind as TraceKind, Tracer, Track};
use std::collections::{HashMap, HashSet};

/// Handler table index.
pub(crate) const HANDLER_NONE: u16 = u16::MAX;

pub(crate) type HandlerFn<S> = fn(&mut AmEnv<'_, S>, AmArgs);

struct Peer {
    tx: [TxChan; 2],
    rx: [RxChan; 2],
}

/// Per-node SP AM protocol state. Most users interact through the
/// [`Am`](crate::Am) facade instead.
pub struct AmPort<S> {
    me: usize,
    n: usize,
    cfg: AmConfig,
    mem: MemPool,
    handlers: Vec<HandlerFn<S>>,
    peers: Vec<Peer>,
    /// Bulk handles whose transfer has completed (sender-side final ack for
    /// stores; local data arrival for gets).
    completed: HashSet<u32>,
    /// Sender-side completion handlers for async stores.
    completions: HashMap<u32, (u16, [u32; 4])>,
    next_bulk_id: u32,
    idle_polls: u32,
    /// Set during a poll when an ack freed window slots or a sequenced
    /// packet was delivered — i.e. the protocol made forward progress.
    made_progress: bool,
    barrier_hits: u32,
    barrier_go: bool,
    tracer: Option<Tracer>,
    pub(crate) stats: AmStats,
}

impl<S> AmPort<S> {
    pub(crate) fn new(
        me: usize,
        n: usize,
        cfg: AmConfig,
        mem: MemPool,
        tracer: Option<Tracer>,
    ) -> Self {
        let peers = (0..n)
            .map(|_| Peer {
                tx: [
                    TxChan::with_chunk(Channel::Request, cfg.window_request, cfg.chunk_packets),
                    TxChan::with_chunk(Channel::Reply, cfg.window_reply, cfg.chunk_packets),
                ],
                rx: [
                    RxChan::new(cfg.window_request, cfg.ack_threshold(cfg.window_request)),
                    RxChan::new(cfg.window_reply, cfg.ack_threshold(cfg.window_reply)),
                ],
            })
            .collect();
        AmPort {
            me,
            n,
            cfg,
            mem,
            handlers: Vec::new(),
            peers,
            completed: HashSet::new(),
            completions: HashMap::new(),
            next_bulk_id: 0,
            idle_polls: 0,
            made_progress: false,
            barrier_hits: 0,
            barrier_go: false,
            tracer,
            stats: AmStats::default(),
        }
    }

    /// Record a protocol-layer span on this node's program track.
    #[inline]
    fn t_span(&self, begin: sp_sim::Time, end: sp_sim::Time, kind: TraceKind, arg: u64) {
        if let Some(t) = &self.tracer {
            t.span(
                begin.as_ns(),
                end.as_ns(),
                Track::program(self.me),
                kind,
                arg,
            );
        }
    }

    /// Record a protocol-layer instant on this node's program track.
    #[inline]
    fn t_instant(&self, at: sp_sim::Time, kind: TraceKind, arg: u64) {
        if let Some(t) = &self.tracer {
            t.instant(at.as_ns(), Track::program(self.me), kind, arg);
        }
    }

    /// This node's index.
    pub fn node(&self) -> usize {
        self.me
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Statistics so far.
    pub fn stats(&self) -> &AmStats {
        &self.stats
    }

    /// The memory pool.
    pub fn mem_pool(&self) -> &MemPool {
        &self.mem
    }

    #[allow(dead_code)] // exposed for layered protocols and tests
    pub(crate) fn config(&self) -> &AmConfig {
        &self.cfg
    }

    pub(crate) fn config_interrupt_cpu(&self) -> sp_sim::Dur {
        self.cfg.interrupt_cpu
    }

    pub(crate) fn register(&mut self, f: HandlerFn<S>) -> u16 {
        let id = self.handlers.len() as u16;
        assert!(id < HANDLER_NONE, "handler table full");
        self.handlers.push(f);
        id
    }

    // ----- send paths ------------------------------------------------

    /// Queue a user request and push it toward the wire.
    pub(crate) fn send_request(
        &mut self,
        ctx: &mut AmCtx,
        dst: usize,
        handler: u16,
        nargs: u8,
        args: [u32; 4],
    ) {
        let words = (nargs as u64).saturating_sub(1);
        let t0 = ctx.now();
        ctx.advance(self.cfg.request_cpu + self.cfg.per_word_cpu * words);
        self.t_span(t0, ctx.now(), TraceKind::AmRequest, dst as u64);
        self.stats.requests_sent += 1;
        self.peers[dst].tx[Channel::Request.idx()].push(SendItem::Short {
            kind: ShortKind::User,
            handler,
            nargs,
            args,
        });
        self.pump_peer(ctx, dst);
    }

    /// Queue a reply (only legal from a request handler; enforced by
    /// [`AmEnv`](crate::AmEnv)).
    pub(crate) fn send_reply(
        &mut self,
        ctx: &mut AmCtx,
        dst: usize,
        handler: u16,
        nargs: u8,
        args: [u32; 4],
    ) {
        let words = (nargs as u64).saturating_sub(1);
        let t0 = ctx.now();
        ctx.advance(self.cfg.reply_cpu + self.cfg.per_word_cpu * words);
        self.t_span(t0, ctx.now(), TraceKind::AmReply, dst as u64);
        self.stats.replies_sent += 1;
        self.peers[dst].tx[Channel::Reply.idx()].push(SendItem::Short {
            kind: ShortKind::User,
            handler,
            nargs,
            args,
        });
        self.pump_peer(ctx, dst);
    }

    /// Start a bulk store toward `dst_node` (non-blocking). `handler` runs
    /// on the receiver when the data has landed; `completion` runs locally
    /// when the final chunk is acknowledged.
    #[allow(clippy::too_many_arguments)] // mirrors am_store's C signature
    pub(crate) fn start_store(
        &mut self,
        ctx: &mut AmCtx,
        dst_node: usize,
        dst_addr: u32,
        data: Box<[u8]>,
        handler: u16,
        args: [u32; 4],
        completion: Option<(u16, [u32; 4])>,
    ) -> BulkHandle {
        ctx.advance(self.cfg.bulk_setup_cpu);
        self.t_instant(ctx.now(), TraceKind::AmStore, data.len() as u64);
        self.stats.stores += 1;
        let id = self.alloc_bulk_id();
        if data.is_empty() {
            // Degenerate zero-length store: nothing to move; complete now.
            self.completed.insert(id);
            return BulkHandle(id);
        }
        if let Some(c) = completion {
            self.completions.insert(id, c);
        }
        self.peers[dst_node].tx[Channel::Request.idx()].push(SendItem::Bulk(BulkTx::new(
            id, dst_addr, handler, args, data,
        )));
        self.pump_peer(ctx, dst_node);
        BulkHandle(id)
    }

    /// Start a get: fetch `len` bytes from (`src_node`, `src_addr`) into
    /// local `dst_addr`; `handler` runs locally when the data has arrived.
    #[allow(clippy::too_many_arguments)] // mirrors am_get's C signature
    pub(crate) fn start_get(
        &mut self,
        ctx: &mut AmCtx,
        src_node: usize,
        src_addr: u32,
        dst_addr: u32,
        len: u32,
        handler: u16,
        args: [u32; 4],
    ) -> BulkHandle {
        ctx.advance(self.cfg.bulk_setup_cpu);
        self.t_instant(ctx.now(), TraceKind::AmGet, len as u64);
        self.stats.gets += 1;
        let id = self.alloc_bulk_id();
        if len == 0 {
            self.completed.insert(id);
            return BulkHandle(id);
        }
        self.peers[src_node].tx[Channel::Request.idx()].push(SendItem::Short {
            kind: ShortKind::GetReq {
                src_addr,
                dst_addr,
                len,
                xfer: id,
            },
            handler,
            nargs: 4,
            args,
        });
        self.pump_peer(ctx, src_node);
        BulkHandle(id)
    }

    fn alloc_bulk_id(&mut self) -> u32 {
        let id = self.next_bulk_id;
        self.next_bulk_id += 1;
        id
    }

    /// Has this bulk transfer completed (stores: final ack received; gets:
    /// data arrived locally)?
    pub(crate) fn bulk_done(&self, h: BulkHandle) -> bool {
        self.completed.contains(&h.0)
    }

    // ----- pump: move queued packets to the send FIFO -----------------

    /// Emit as many queued packets toward `dst` as the windows and the send
    /// FIFO allow, batching doorbells.
    pub(crate) fn pump_peer(&mut self, ctx: &mut AmCtx, dst: usize) {
        let mut free = host::send_fifo_free(ctx);
        let mut pending_doorbell = 0usize;
        for chan in Channel::BOTH {
            loop {
                if free == 0 {
                    break;
                }
                let Some(mut pkt) = self.peers[dst].tx[chan.idx()].try_emit() else {
                    break;
                };
                let is_data = matches!(pkt.body, Body::Data { .. });
                if is_data {
                    ctx.advance(self.cfg.bulk_per_packet_cpu);
                    self.stats.packets_sent += 1;
                    if self.tracer.is_some() {
                        if let Body::Data { last_of_chunk, .. } = pkt.body {
                            if pkt.offset == 0 {
                                self.t_instant(ctx.now(), TraceKind::AmChunkStart, pkt.seq as u64);
                            }
                            if last_of_chunk {
                                self.t_instant(ctx.now(), TraceKind::AmChunkEnd, pkt.seq as u64);
                            }
                        }
                    }
                } else {
                    self.stats.packets_sent += 1;
                }
                self.stamp_acks(dst, &mut pkt);
                let bytes = pkt.payload_bytes();
                host::write_packet(ctx, dst, bytes, pkt).expect("send FIFO free count was checked");
                free -= 1;
                pending_doorbell += 1;
                if pending_doorbell >= self.cfg.doorbell_batch {
                    host::ring_doorbell(ctx, pending_doorbell);
                    pending_doorbell = 0;
                }
            }
        }
        if pending_doorbell > 0 {
            host::ring_doorbell(ctx, pending_doorbell);
        }
    }

    /// Pump every peer that has queued or retransmittable traffic.
    pub(crate) fn pump_all(&mut self, ctx: &mut AmCtx) {
        for dst in 0..self.n {
            if !self.peers[dst].tx[0].idle() || !self.peers[dst].tx[1].idle() {
                self.pump_peer(ctx, dst);
            }
        }
    }

    /// Stamp the piggybacked cumulative ACKs and note that the peer is now
    /// fully acknowledged.
    fn stamp_acks(&mut self, dst: usize, pkt: &mut AmPacket) {
        let peer = &mut self.peers[dst];
        pkt.ack_req = peer.rx[Channel::Request.idx()].cum_ack();
        pkt.ack_rep = peer.rx[Channel::Reply.idx()].cum_ack();
        peer.rx[0].acked();
        peer.rx[1].acked();
    }

    /// Send a control packet (ACK/NACK/probe) immediately, outside the
    /// sequence space.
    fn send_control(&mut self, ctx: &mut AmCtx, dst: usize, chan: Channel, body: Body) {
        debug_assert!(matches!(body, Body::Ack | Body::Nack { .. } | Body::Probe));
        let mut pkt = AmPacket {
            chan,
            seq: 0,
            offset: 0,
            ack_req: 0,
            ack_rep: 0,
            body,
        };
        self.stamp_acks(dst, &mut pkt);
        let bytes = pkt.payload_bytes();
        // Control packets bypass the send queue; if the FIFO is full they
        // are simply not sent — the keep-alive protocol covers the loss.
        if host::send_fifo_free(ctx) > 0 {
            let _ = host::write_packet(ctx, dst, bytes, pkt);
            host::ring_doorbell(ctx, 1);
        }
    }

    // ----- poll: receive, dispatch, ack, keep-alive --------------------

    /// One `am_poll`: drain the receive FIFO, dispatching handlers and
    /// control processing; run the keep-alive counter; pump all peers.
    /// Returns the number of packets processed.
    pub(crate) fn poll(&mut self, ctx: &mut AmCtx, state: &mut S) -> usize {
        self.stats.polls += 1;
        let t0 = ctx.now();
        ctx.advance(self.cfg.poll_cpu);
        self.t_span(t0, ctx.now(), TraceKind::AmPoll, 0);
        self.made_progress = false;
        let mut processed = 0usize;
        while let Some(wpkt) = host::poll_packet(ctx) {
            processed += 1;
            let d0 = ctx.now();
            ctx.advance(self.cfg.dispatch_cpu);
            self.t_span(d0, ctx.now(), TraceKind::AmDispatch, wpkt.src as u64);
            self.handle_packet(ctx, state, wpkt.src, wpkt.payload);
        }
        // Keep-alive: the paper emulates timeouts "by counting the number
        // of unsuccessful polls". A poll is unsuccessful if it made no
        // forward progress (receiving only probes from an equally stuck
        // peer must not reset the counter, or two lossy peers can starve
        // each other's keep-alive forever).
        if self.made_progress {
            self.idle_polls = 0;
        } else if self.any_unacked() {
            self.idle_polls += 1;
            if self.idle_polls >= self.cfg.keepalive_polls {
                self.idle_polls = 0;
                self.keepalive_round(ctx);
            }
        }
        self.pump_all(ctx);
        processed
    }

    fn any_unacked(&self) -> bool {
        self.peers
            .iter()
            .any(|p| p.tx[0].has_unacked() || p.tx[1].has_unacked())
    }

    /// True when every outbound channel is quiescent (nothing queued,
    /// unacked, or pending retransmission).
    pub fn all_idle(&self) -> bool {
        self.peers.iter().all(|p| p.tx[0].idle() && p.tx[1].idle())
    }

    /// True when every outbound channel has *emitted* everything it was
    /// asked to send (queues and retransmission buffers empty; acks may
    /// still be outstanding).
    pub fn all_sent(&self) -> bool {
        self.peers
            .iter()
            .all(|p| p.tx.iter().all(|t| t.queue_len() == 0 && t.rtx_len() == 0))
    }

    /// Probe every peer with unacknowledged traffic; the peer answers with
    /// a NACK reflecting its expected sequence number, which acts as an ACK
    /// if everything actually arrived, or restarts lost traffic otherwise.
    fn keepalive_round(&mut self, ctx: &mut AmCtx) {
        self.stats.keepalive_rounds += 1;
        gstats::add_keepalive_rounds(1);
        let mut probes = 0u64;
        for dst in 0..self.n {
            for chan in Channel::BOTH {
                if self.peers[dst].tx[chan.idx()].has_unacked() {
                    self.stats.probes_sent += 1;
                    probes += 1;
                    self.send_control(ctx, dst, chan, Body::Probe);
                }
            }
        }
        self.t_instant(ctx.now(), TraceKind::AmKeepalive, probes);
    }

    fn handle_packet(&mut self, ctx: &mut AmCtx, state: &mut S, src: usize, pkt: AmPacket) {
        self.stats.packets_received += 1;
        // Piggybacked cumulative ACKs ride on every packet.
        self.process_ack(ctx, state, src, Channel::Request, pkt.ack_req);
        self.process_ack(ctx, state, src, Channel::Reply, pkt.ack_rep);
        let chan = pkt.chan;
        match pkt.body {
            Body::Ack => {
                self.stats.controls_received += 1;
            }
            Body::Nack { seq, offset } => {
                self.made_progress = true;
                self.stats.controls_received += 1;
                self.stats.nacks_received += 1;
                gstats::add_nacks_received(1);
                let (completed, rtx) = self.peers[src].tx[chan.idx()].on_nack(seq, offset);
                self.t_instant(ctx.now(), TraceKind::AmNackIn, rtx as u64);
                if rtx > 0 {
                    self.t_instant(ctx.now(), TraceKind::AmRetransmit, rtx as u64);
                }
                self.stats.packets_retransmitted += rtx as u64;
                gstats::add_retransmitted(rtx as u64);
                self.finish_bulks(ctx, state, completed);
                self.pump_peer(ctx, src);
            }
            Body::Probe => {
                self.stats.controls_received += 1;
                let (es, eo) = self.peers[src].rx[chan.idx()].expected();
                self.send_control(
                    ctx,
                    src,
                    chan,
                    Body::Nack {
                        seq: es,
                        offset: eo,
                    },
                );
                self.t_instant(ctx.now(), TraceKind::AmNackOut, 0);
                self.stats.nacks_sent += 1;
                gstats::add_nacks_sent(1);
            }
            Body::Short {
                kind,
                handler,
                nargs,
                args,
            } => {
                let verdict = self.peers[src].rx[chan.idx()].accept(pkt.seq, pkt.offset, true);
                match verdict {
                    RxVerdict::Deliver { force_ack } => {
                        self.made_progress = true;
                        self.stats.shorts_delivered += 1;
                        match kind {
                            ShortKind::User => {
                                self.invoke(
                                    ctx,
                                    state,
                                    handler,
                                    AmArgs {
                                        a: args,
                                        nargs,
                                        src,
                                        info: None,
                                    },
                                    chan == Channel::Request,
                                );
                            }
                            ShortKind::GetReq {
                                src_addr,
                                dst_addr,
                                len,
                                xfer,
                            } => {
                                self.serve_get(
                                    ctx, src, src_addr, dst_addr, len, xfer, handler, args,
                                );
                            }
                            ShortKind::Barrier { go } => {
                                if go {
                                    self.barrier_go = true;
                                } else {
                                    self.barrier_hits += 1;
                                }
                            }
                        }
                        if force_ack {
                            self.explicit_ack(ctx, src, chan);
                        }
                    }
                    RxVerdict::DupDrop => {
                        self.stats.dup_dropped += 1;
                        gstats::add_dup_dropped(1);
                        self.t_instant(ctx.now(), TraceKind::AmDupDrop, pkt.seq as u64);
                        self.explicit_ack(ctx, src, chan);
                    }
                    RxVerdict::OooDrop { nack } => {
                        self.stats.ooo_dropped += 1;
                        gstats::add_ooo_dropped(1);
                        self.t_instant(ctx.now(), TraceKind::AmOooDrop, pkt.seq as u64);
                        if nack {
                            self.send_nack(ctx, src, chan);
                        }
                    }
                }
            }
            Body::Data {
                addr,
                len,
                last_of_chunk,
                last_of_xfer,
                handler,
                args,
                base_addr,
                total_len,
                xfer,
                bytes,
            } => {
                let verdict =
                    self.peers[src].rx[chan.idx()].accept(pkt.seq, pkt.offset, last_of_chunk);
                match verdict {
                    RxVerdict::Deliver { force_ack } => {
                        self.made_progress = true;
                        debug_assert_eq!(len as usize, bytes.len());
                        self.stats.data_packets_delivered += 1;
                        self.stats.bulk_bytes_delivered += bytes.len() as u64;
                        self.mem.write(
                            crate::GlobalPtr {
                                node: self.me,
                                addr,
                            },
                            &bytes,
                        );
                        if last_of_xfer {
                            if chan == Channel::Reply {
                                // Get data arrived back home: the handle
                                // completes here.
                                self.completed.insert(xfer);
                            }
                            if handler != HANDLER_NONE {
                                self.invoke(
                                    ctx,
                                    state,
                                    handler,
                                    AmArgs {
                                        a: args,
                                        nargs: 4,
                                        src,
                                        info: Some(BulkInfo {
                                            base: base_addr,
                                            len: total_len,
                                        }),
                                    },
                                    chan == Channel::Request,
                                );
                            }
                        }
                        if force_ack || last_of_xfer {
                            self.explicit_ack(ctx, src, chan);
                        }
                    }
                    RxVerdict::DupDrop => {
                        self.stats.dup_dropped += 1;
                        gstats::add_dup_dropped(1);
                        self.t_instant(ctx.now(), TraceKind::AmDupDrop, pkt.seq as u64);
                        self.explicit_ack(ctx, src, chan);
                    }
                    RxVerdict::OooDrop { nack } => {
                        self.stats.ooo_dropped += 1;
                        gstats::add_ooo_dropped(1);
                        self.t_instant(ctx.now(), TraceKind::AmOooDrop, pkt.seq as u64);
                        if nack {
                            self.send_nack(ctx, src, chan);
                        }
                    }
                }
            }
        }
    }

    fn explicit_ack(&mut self, ctx: &mut AmCtx, dst: usize, chan: Channel) {
        self.stats.explicit_acks_sent += 1;
        self.send_control(ctx, dst, chan, Body::Ack);
    }

    fn send_nack(&mut self, ctx: &mut AmCtx, dst: usize, chan: Channel) {
        let (es, eo) = self.peers[dst].rx[chan.idx()].expected();
        self.t_instant(ctx.now(), TraceKind::AmNackOut, 0);
        self.stats.nacks_sent += 1;
        gstats::add_nacks_sent(1);
        self.send_control(
            ctx,
            dst,
            chan,
            Body::Nack {
                seq: es,
                offset: eo,
            },
        );
    }

    fn process_ack(&mut self, ctx: &mut AmCtx, state: &mut S, src: usize, chan: Channel, cum: u32) {
        let (freed, completed) = self.peers[src].tx[chan.idx()].on_ack(cum);
        if freed > 0 {
            self.made_progress = true;
            self.t_instant(
                ctx.now(),
                TraceKind::AmAck,
                cum as u64 | (chan.idx() as u64) << 32,
            );
        }
        self.finish_bulks(ctx, state, completed);
    }

    fn finish_bulks(&mut self, ctx: &mut AmCtx, state: &mut S, ids: Vec<u32>) {
        for id in ids {
            self.completed.insert(id);
            if let Some((handler, args)) = self.completions.remove(&id) {
                self.invoke(
                    ctx,
                    state,
                    handler,
                    AmArgs {
                        a: args,
                        nargs: 4,
                        src: self.me,
                        info: None,
                    },
                    false,
                );
            }
        }
    }

    /// Serve a get request: stream the requested bytes back on the reply
    /// channel. The data packets carry the *requester's* handler/args/id.
    #[allow(clippy::too_many_arguments)] // the get-request wire fields
    fn serve_get(
        &mut self,
        ctx: &mut AmCtx,
        requester: usize,
        src_addr: u32,
        dst_addr: u32,
        len: u32,
        xfer: u32,
        handler: u16,
        args: [u32; 4],
    ) {
        let data = self.mem.read_vec(
            crate::GlobalPtr {
                node: self.me,
                addr: src_addr,
            },
            len as usize,
        );
        self.peers[requester].tx[Channel::Reply.idx()].push(SendItem::Bulk(BulkTx::untracked(
            xfer,
            dst_addr,
            handler,
            args,
            data.into_boxed_slice(),
        )));
        self.pump_peer(ctx, requester);
    }

    fn invoke(
        &mut self,
        ctx: &mut AmCtx,
        state: &mut S,
        handler: u16,
        args: AmArgs,
        reply_allowed: bool,
    ) {
        let f = *self
            .handlers
            .get(handler as usize)
            .unwrap_or_else(|| panic!("node {}: unregistered handler {handler}", self.me));
        let mut env = AmEnv {
            port: self,
            ctx,
            state,
            reply_to: args.src,
            reply_allowed,
            replied: false,
        };
        f(&mut env, args);
    }

    /// Diagnostic snapshot of channel state (debugging aid).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (p, peer) in self.peers.iter().enumerate() {
            for chan in Channel::BOTH {
                let tx = &peer.tx[chan.idx()];
                let rx = &peer.rx[chan.idx()];
                if !tx.idle() || rx.expected() != (0, 0) {
                    let _ = write!(
                        s,
                        "[{me}->{p} {chan:?}] tx: in_flight={} unacked={} queue={} rtx={} next={} | rx expects {:?}; ",
                        tx.in_flight(),
                        tx.has_unacked(),
                        tx.queue_len(),
                        tx.rtx_len(),
                        tx.next_seq(),
                        rx.expected(),
                        me = self.me,
                    );
                }
            }
        }
        s
    }

    // ----- barrier ----------------------------------------------------

    /// A simple dissemination barrier built from protocol-level shorts
    /// (node 0 collects hits, then broadcasts go). Used by benchmarks.
    pub(crate) fn barrier(&mut self, ctx: &mut AmCtx, state: &mut S) {
        if self.n == 1 {
            return;
        }
        if self.me == 0 {
            while self.barrier_hits < (self.n - 1) as u32 {
                self.poll(ctx, state);
            }
            self.barrier_hits = 0;
            for dst in 1..self.n {
                self.peers[dst].tx[Channel::Request.idx()].push(SendItem::Short {
                    kind: ShortKind::Barrier { go: true },
                    handler: HANDLER_NONE,
                    nargs: 0,
                    args: [0; 4],
                });
                self.pump_peer(ctx, dst);
            }
        } else {
            self.peers[0].tx[Channel::Request.idx()].push(SendItem::Short {
                kind: ShortKind::Barrier { go: false },
                handler: HANDLER_NONE,
                nargs: 0,
                args: [0; 4],
            });
            self.pump_peer(ctx, 0);
            while !self.barrier_go {
                self.poll(ctx, state);
            }
            self.barrier_go = false;
        }
    }
}
