//! The per-node protocol engine: wires the pure channel state machines to
//! the adapter, dispatches handlers, and implements bulk transfers, the
//! explicit-ACK/NACK machinery, and the keep-alive protocol.

use crate::api::{AmArgs, AmEnv, BulkHandle, BulkInfo};
use crate::channel::{BulkTx, RxChan, RxVerdict, SendItem, TxChan};
use crate::config::AmConfig;
use crate::mem::MemPool;
use crate::stats::{gstats, AmStats};
use crate::wire::{AmPacket, Body, Channel, ShortKind};
use crate::AmCtx;
use sp_adapter::host;
use sp_trace::{Kind as TraceKind, Tracer, Track};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Handler table index.
pub(crate) const HANDLER_NONE: u16 = u16::MAX;

pub(crate) type HandlerFn<S> = fn(&mut AmEnv<'_, S>, AmArgs);

struct Peer {
    tx: [TxChan; 2],
    rx: [RxChan; 2],
}

/// Per-node SP AM protocol state. Most users interact through the
/// [`Am`](crate::Am) facade instead.
pub struct AmPort<S> {
    me: usize,
    n: usize,
    cfg: AmConfig,
    mem: MemPool,
    handlers: Vec<HandlerFn<S>>,
    peers: Vec<Peer>,
    /// Bulk handles whose transfer has completed (sender-side final ack for
    /// stores; local data arrival for gets).
    completed: HashSet<u32>,
    /// Sender-side completion handlers for async stores.
    completions: HashMap<u32, (u16, [u32; 4])>,
    next_bulk_id: u32,
    idle_polls: u32,
    /// Set during a poll when an ack freed window slots or a sequenced
    /// packet was delivered — i.e. the protocol made forward progress.
    made_progress: bool,
    barrier_hits: u32,
    barrier_go: bool,
    /// This node's incarnation epoch: bumped on every crash/restart so the
    /// survivors can tell the old incarnation's in-flight packets from the
    /// new one's. 0 forever on the legacy (no-crash) protocol.
    my_epoch: u32,
    /// Latest incarnation epoch observed from each peer.
    peer_epochs: Vec<u32>,
    /// Selective-repeat buffers, one per (peer, channel): out-of-order
    /// packets held keyed by (seq, offset) until the gap below them fills.
    /// Only populated in SACK mode; a `BTreeMap` so drain order (and the
    /// derived SACK bitmap) is deterministic.
    ooo_buf: Vec<[BTreeMap<(u32, u32), AmPacket>; 2]>,
    /// Set between a restart and the first delivered packet of the new
    /// incarnation (recovery-time measurement).
    restarted_at: Option<sp_sim::Time>,
    tracer: Option<Tracer>,
    pub(crate) stats: AmStats,
}

impl<S> AmPort<S> {
    pub(crate) fn new(
        me: usize,
        n: usize,
        cfg: AmConfig,
        mem: MemPool,
        tracer: Option<Tracer>,
    ) -> Self {
        let peers = (0..n)
            .map(|_| Peer {
                tx: [
                    TxChan::with_chunk(
                        Channel::Request,
                        cfg.window_request,
                        cfg.chunk_packets,
                        cfg.reliability,
                    ),
                    TxChan::with_chunk(
                        Channel::Reply,
                        cfg.window_reply,
                        cfg.chunk_packets,
                        cfg.reliability,
                    ),
                ],
                rx: [
                    RxChan::new(cfg.window_request, cfg.ack_threshold(cfg.window_request)),
                    RxChan::new(cfg.window_reply, cfg.ack_threshold(cfg.window_reply)),
                ],
            })
            .collect();
        AmPort {
            me,
            n,
            cfg,
            mem,
            handlers: Vec::new(),
            peers,
            completed: HashSet::new(),
            completions: HashMap::new(),
            next_bulk_id: 0,
            idle_polls: 0,
            made_progress: false,
            barrier_hits: 0,
            barrier_go: false,
            my_epoch: 0,
            peer_epochs: vec![0; n],
            ooo_buf: (0..n).map(|_| [BTreeMap::new(), BTreeMap::new()]).collect(),
            restarted_at: None,
            tracer,
            stats: AmStats::default(),
        }
    }

    /// A fresh receive channel for `chan` (construction and crash/epoch
    /// resets share the window/threshold arithmetic).
    fn fresh_rx(&self, chan: Channel) -> RxChan {
        let window = match chan {
            Channel::Request => self.cfg.window_request,
            Channel::Reply => self.cfg.window_reply,
        };
        RxChan::new(window, self.cfg.ack_threshold(window))
    }

    /// A fresh send channel for `chan` (crash resets).
    fn fresh_tx(&self, chan: Channel) -> TxChan {
        let window = match chan {
            Channel::Request => self.cfg.window_request,
            Channel::Reply => self.cfg.window_reply,
        };
        TxChan::with_chunk(chan, window, self.cfg.chunk_packets, self.cfg.reliability)
    }

    /// Record a protocol-layer span on this node's program track.
    #[inline]
    fn t_span(&self, begin: sp_sim::Time, end: sp_sim::Time, kind: TraceKind, arg: u64) {
        if let Some(t) = &self.tracer {
            t.span(
                begin.as_ns(),
                end.as_ns(),
                Track::program(self.me),
                kind,
                arg,
            );
        }
    }

    /// Record a protocol-layer instant on this node's program track.
    #[inline]
    fn t_instant(&self, at: sp_sim::Time, kind: TraceKind, arg: u64) {
        if let Some(t) = &self.tracer {
            t.instant(at.as_ns(), Track::program(self.me), kind, arg);
        }
    }

    /// This node's index.
    pub fn node(&self) -> usize {
        self.me
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Statistics so far.
    pub fn stats(&self) -> &AmStats {
        &self.stats
    }

    /// The memory pool.
    pub fn mem_pool(&self) -> &MemPool {
        &self.mem
    }

    #[allow(dead_code)] // exposed for layered protocols and tests
    pub(crate) fn config(&self) -> &AmConfig {
        &self.cfg
    }

    pub(crate) fn config_interrupt_cpu(&self) -> sp_sim::Dur {
        self.cfg.interrupt_cpu
    }

    pub(crate) fn register(&mut self, f: HandlerFn<S>) -> u16 {
        let id = self.handlers.len() as u16;
        assert!(id < HANDLER_NONE, "handler table full");
        self.handlers.push(f);
        id
    }

    // ----- send paths ------------------------------------------------

    /// Queue a user request and push it toward the wire.
    pub(crate) fn send_request(
        &mut self,
        ctx: &mut AmCtx,
        dst: usize,
        handler: u16,
        nargs: u8,
        args: [u32; 4],
    ) {
        let words = (nargs as u64).saturating_sub(1);
        let t0 = ctx.now();
        ctx.advance(self.cfg.request_cpu + self.cfg.per_word_cpu * words);
        self.t_span(t0, ctx.now(), TraceKind::AmRequest, dst as u64);
        self.stats.requests_sent += 1;
        self.peers[dst].tx[Channel::Request.idx()].push(SendItem::Short {
            kind: ShortKind::User,
            handler,
            nargs,
            args,
        });
        self.pump_peer(ctx, dst);
    }

    /// Queue a reply (only legal from a request handler; enforced by
    /// [`AmEnv`](crate::AmEnv)).
    pub(crate) fn send_reply(
        &mut self,
        ctx: &mut AmCtx,
        dst: usize,
        handler: u16,
        nargs: u8,
        args: [u32; 4],
    ) {
        let words = (nargs as u64).saturating_sub(1);
        let t0 = ctx.now();
        ctx.advance(self.cfg.reply_cpu + self.cfg.per_word_cpu * words);
        self.t_span(t0, ctx.now(), TraceKind::AmReply, dst as u64);
        self.stats.replies_sent += 1;
        self.peers[dst].tx[Channel::Reply.idx()].push(SendItem::Short {
            kind: ShortKind::User,
            handler,
            nargs,
            args,
        });
        self.pump_peer(ctx, dst);
    }

    /// Start a bulk store toward `dst_node` (non-blocking). `handler` runs
    /// on the receiver when the data has landed; `completion` runs locally
    /// when the final chunk is acknowledged.
    #[allow(clippy::too_many_arguments)] // mirrors am_store's C signature
    pub(crate) fn start_store(
        &mut self,
        ctx: &mut AmCtx,
        dst_node: usize,
        dst_addr: u32,
        data: Box<[u8]>,
        handler: u16,
        args: [u32; 4],
        completion: Option<(u16, [u32; 4])>,
    ) -> BulkHandle {
        ctx.advance(self.cfg.bulk_setup_cpu);
        self.t_instant(ctx.now(), TraceKind::AmStore, data.len() as u64);
        self.stats.stores += 1;
        let id = self.alloc_bulk_id();
        if data.is_empty() {
            // Degenerate zero-length store: nothing to move; complete now.
            self.completed.insert(id);
            return BulkHandle(id);
        }
        if let Some(c) = completion {
            self.completions.insert(id, c);
        }
        self.peers[dst_node].tx[Channel::Request.idx()].push(SendItem::Bulk(BulkTx::new(
            id, dst_addr, handler, args, data,
        )));
        self.pump_peer(ctx, dst_node);
        BulkHandle(id)
    }

    /// Start a get: fetch `len` bytes from (`src_node`, `src_addr`) into
    /// local `dst_addr`; `handler` runs locally when the data has arrived.
    #[allow(clippy::too_many_arguments)] // mirrors am_get's C signature
    pub(crate) fn start_get(
        &mut self,
        ctx: &mut AmCtx,
        src_node: usize,
        src_addr: u32,
        dst_addr: u32,
        len: u32,
        handler: u16,
        args: [u32; 4],
    ) -> BulkHandle {
        ctx.advance(self.cfg.bulk_setup_cpu);
        self.t_instant(ctx.now(), TraceKind::AmGet, len as u64);
        self.stats.gets += 1;
        let id = self.alloc_bulk_id();
        if len == 0 {
            self.completed.insert(id);
            return BulkHandle(id);
        }
        self.peers[src_node].tx[Channel::Request.idx()].push(SendItem::Short {
            kind: ShortKind::GetReq {
                src_addr,
                dst_addr,
                len,
                xfer: id,
            },
            handler,
            nargs: 4,
            args,
        });
        self.pump_peer(ctx, src_node);
        BulkHandle(id)
    }

    fn alloc_bulk_id(&mut self) -> u32 {
        let id = self.next_bulk_id;
        self.next_bulk_id += 1;
        id
    }

    /// Has this bulk transfer completed (stores: final ack received; gets:
    /// data arrived locally)?
    pub(crate) fn bulk_done(&self, h: BulkHandle) -> bool {
        self.completed.contains(&h.0)
    }

    // ----- pump: move queued packets to the send FIFO -----------------

    /// Emit as many queued packets toward `dst` as the windows and the send
    /// FIFO allow, batching doorbells.
    pub(crate) fn pump_peer(&mut self, ctx: &mut AmCtx, dst: usize) {
        let mut free = host::send_fifo_free(ctx);
        let mut pending_doorbell = 0usize;
        for chan in Channel::BOTH {
            loop {
                if free == 0 {
                    break;
                }
                let now = ctx.now();
                let Some(mut pkt) = self.peers[dst].tx[chan.idx()].try_emit(now) else {
                    break;
                };
                let is_data = matches!(pkt.body, Body::Data { .. });
                if is_data {
                    ctx.advance(self.cfg.bulk_per_packet_cpu);
                    self.stats.packets_sent += 1;
                    if self.tracer.is_some() {
                        if let Body::Data { last_of_chunk, .. } = pkt.body {
                            if pkt.offset == 0 {
                                self.t_instant(ctx.now(), TraceKind::AmChunkStart, pkt.seq as u64);
                            }
                            if last_of_chunk {
                                self.t_instant(ctx.now(), TraceKind::AmChunkEnd, pkt.seq as u64);
                            }
                        }
                    }
                } else {
                    self.stats.packets_sent += 1;
                }
                self.stamp_acks(dst, &mut pkt);
                let bytes = pkt.payload_bytes();
                host::write_packet(ctx, dst, bytes, pkt).expect("send FIFO free count was checked");
                free -= 1;
                pending_doorbell += 1;
                if pending_doorbell >= self.cfg.doorbell_batch {
                    host::ring_doorbell(ctx, pending_doorbell);
                    pending_doorbell = 0;
                }
            }
        }
        if pending_doorbell > 0 {
            host::ring_doorbell(ctx, pending_doorbell);
        }
    }

    /// Pump every peer that has queued or retransmittable traffic.
    pub(crate) fn pump_all(&mut self, ctx: &mut AmCtx) {
        for dst in 0..self.n {
            if !self.peers[dst].tx[0].idle() || !self.peers[dst].tx[1].idle() {
                self.pump_peer(ctx, dst);
            }
        }
    }

    /// Stamp the piggybacked cumulative ACKs (plus, in the adaptive modes,
    /// the SACK bitmaps and incarnation epochs) and note that the peer is
    /// now fully acknowledged. In legacy mode the extra fields stay zero,
    /// keeping every pre-reliability run byte-identical.
    fn stamp_acks(&mut self, dst: usize, pkt: &mut AmPacket) {
        let peer = &mut self.peers[dst];
        pkt.ack_req = peer.rx[Channel::Request.idx()].cum_ack();
        pkt.ack_rep = peer.rx[Channel::Reply.idx()].cum_ack();
        if self.cfg.reliability.sack {
            pkt.sack_req = peer.rx[Channel::Request.idx()].sack_bits();
            pkt.sack_rep = peer.rx[Channel::Reply.idx()].sack_bits();
        }
        pkt.src_epoch = self.my_epoch;
        pkt.dst_epoch = self.peer_epochs[dst];
        peer.rx[0].acked();
        peer.rx[1].acked();
    }

    /// Send a control packet (ACK/NACK/probe) immediately, outside the
    /// sequence space.
    fn send_control(&mut self, ctx: &mut AmCtx, dst: usize, chan: Channel, body: Body) {
        debug_assert!(matches!(body, Body::Ack | Body::Nack { .. } | Body::Probe));
        let mut pkt = AmPacket {
            chan,
            seq: 0,
            offset: 0,
            ack_req: 0,
            ack_rep: 0,
            src_epoch: 0,
            dst_epoch: 0,
            sack_req: 0,
            sack_rep: 0,
            body,
        };
        self.stamp_acks(dst, &mut pkt);
        let bytes = pkt.payload_bytes();
        // Control packets bypass the send queue; if the FIFO is full they
        // are simply not sent — the keep-alive protocol covers the loss.
        if host::send_fifo_free(ctx) > 0 {
            let _ = host::write_packet(ctx, dst, bytes, pkt);
            host::ring_doorbell(ctx, 1);
        }
    }

    // ----- poll: receive, dispatch, ack, keep-alive --------------------

    /// One `am_poll`: drain the receive FIFO, dispatching handlers and
    /// control processing; run the keep-alive counter; pump all peers.
    /// Returns the number of packets processed.
    pub(crate) fn poll(&mut self, ctx: &mut AmCtx, state: &mut S) -> usize {
        self.stats.polls += 1;
        let t0 = ctx.now();
        ctx.advance(self.cfg.poll_cpu);
        self.t_span(t0, ctx.now(), TraceKind::AmPoll, 0);
        self.made_progress = false;
        let mut processed = 0usize;
        while let Some(wpkt) = host::poll_packet(ctx) {
            processed += 1;
            let d0 = ctx.now();
            ctx.advance(self.cfg.dispatch_cpu);
            self.t_span(d0, ctx.now(), TraceKind::AmDispatch, wpkt.src as u64);
            self.handle_packet(ctx, state, wpkt.src, wpkt.payload);
        }
        // Keep-alive: the paper emulates timeouts "by counting the number
        // of unsuccessful polls". A poll is unsuccessful if it made no
        // forward progress (receiving only probes from an equally stuck
        // peer must not reset the counter, or two lossy peers can starve
        // each other's keep-alive forever).
        if self.made_progress {
            self.idle_polls = 0;
        } else if self.any_unacked() {
            self.idle_polls += 1;
            if self.idle_polls >= self.cfg.keepalive_polls {
                self.idle_polls = 0;
                self.keepalive_round(ctx);
            }
        }
        if self.cfg.reliability.adaptive_rto {
            self.rto_sweep(ctx);
        }
        self.pump_all(ctx);
        processed
    }

    /// Check every channel's adaptive retransmission timer: an expiry
    /// queues a retransmission of the oldest unacked sequence and doubles
    /// the channel's backoff (see [`TxChan::maybe_rto`]).
    fn rto_sweep(&mut self, ctx: &mut AmCtx) {
        let now = ctx.now();
        for dst in 0..self.n {
            for chan in Channel::BOTH {
                let rtx = self.peers[dst].tx[chan.idx()].maybe_rto(now);
                if rtx > 0 {
                    self.stats.packets_retransmitted += rtx as u64;
                    self.stats.rtx_timeout += rtx as u64;
                    gstats::add_retransmitted(rtx as u64);
                    gstats::add_rtx_timeout(rtx as u64);
                    let hwm = self.peers[dst].tx[chan.idx()].estimator().backoff_hwm();
                    self.stats.backoff_hwm = self.stats.backoff_hwm.max(hwm as u64);
                    self.t_instant(now, TraceKind::AmRtoRtx, rtx as u64);
                }
            }
        }
    }

    fn any_unacked(&self) -> bool {
        self.peers
            .iter()
            .any(|p| p.tx[0].has_unacked() || p.tx[1].has_unacked())
    }

    /// True when every outbound channel is quiescent (nothing queued,
    /// unacked, or pending retransmission).
    pub fn all_idle(&self) -> bool {
        self.peers.iter().all(|p| p.tx[0].idle() && p.tx[1].idle())
    }

    /// True when every outbound channel has *emitted* everything it was
    /// asked to send (queues and retransmission buffers empty; acks may
    /// still be outstanding).
    pub fn all_sent(&self) -> bool {
        self.peers
            .iter()
            .all(|p| p.tx.iter().all(|t| t.queue_len() == 0 && t.rtx_len() == 0))
    }

    /// Probe every peer with unacknowledged traffic; the peer answers with
    /// a NACK reflecting its expected sequence number, which acts as an ACK
    /// if everything actually arrived, or restarts lost traffic otherwise.
    fn keepalive_round(&mut self, ctx: &mut AmCtx) {
        self.stats.keepalive_rounds += 1;
        gstats::add_keepalive_rounds(1);
        let mut probes = 0u64;
        for dst in 0..self.n {
            for chan in Channel::BOTH {
                if self.peers[dst].tx[chan.idx()].has_unacked() {
                    self.stats.probes_sent += 1;
                    probes += 1;
                    self.send_control(ctx, dst, chan, Body::Probe);
                }
            }
        }
        self.t_instant(ctx.now(), TraceKind::AmKeepalive, probes);
    }

    fn handle_packet(&mut self, ctx: &mut AmCtx, state: &mut S, src: usize, pkt: AmPacket) {
        self.stats.packets_received += 1;
        // Incarnation-epoch checks come before *any* ack or sequence
        // processing: state carried by a dead incarnation's packet must
        // never touch the live channels. Legacy runs carry all-zero epochs
        // and skip straight through.
        if pkt.src_epoch < self.peer_epochs[src] {
            // From a dead incarnation of the peer: drop on the floor.
            self.stats.stale_dropped += 1;
            gstats::add_stale_dropped(1);
            self.t_instant(ctx.now(), TraceKind::AmStaleDrop, pkt.src_epoch as u64);
            return;
        }
        if pkt.src_epoch > self.peer_epochs[src] {
            // The peer restarted: adopt its new incarnation before
            // processing the packet that announced it.
            self.adopt_epoch(ctx, src, pkt.src_epoch);
        }
        if pkt.dst_epoch < self.my_epoch {
            // Addressed to a dead incarnation of *this* node — the sender
            // has not heard about the restart yet. Drop, and advertise the
            // current epoch back (the ACK carries `src_epoch = my_epoch`)
            // so the sender adopts and replays.
            self.stats.stale_dropped += 1;
            gstats::add_stale_dropped(1);
            self.t_instant(ctx.now(), TraceKind::AmStaleDrop, pkt.dst_epoch as u64);
            self.explicit_ack(ctx, src, pkt.chan);
            return;
        }
        // Piggybacked cumulative ACKs (and SACK bitmaps) ride on every
        // packet.
        self.process_ack(ctx, state, src, Channel::Request, pkt.ack_req);
        self.process_ack(ctx, state, src, Channel::Reply, pkt.ack_rep);
        self.process_sack(ctx, src, Channel::Request, pkt.ack_req, pkt.sack_req);
        self.process_sack(ctx, src, Channel::Reply, pkt.ack_rep, pkt.sack_rep);
        let chan = pkt.chan;
        match pkt.body {
            Body::Ack => {
                self.stats.controls_received += 1;
            }
            Body::Nack { seq, offset, probe } => {
                self.made_progress = true;
                self.stats.controls_received += 1;
                self.stats.nacks_received += 1;
                gstats::add_nacks_received(1);
                let (completed, rtx) =
                    self.peers[src].tx[chan.idx()].on_nack(seq, offset, ctx.now());
                self.t_instant(ctx.now(), TraceKind::AmNackIn, rtx as u64);
                if rtx > 0 {
                    self.t_instant(ctx.now(), TraceKind::AmRetransmit, rtx as u64);
                }
                self.stats.packets_retransmitted += rtx as u64;
                gstats::add_retransmitted(rtx as u64);
                if probe && rtx > 0 {
                    self.stats.rtx_keepalive += rtx as u64;
                    gstats::add_rtx_keepalive(rtx as u64);
                }
                self.finish_bulks(ctx, state, completed);
                self.pump_peer(ctx, src);
            }
            Body::Probe => {
                self.stats.controls_received += 1;
                let (es, eo) = self.peers[src].rx[chan.idx()].expected();
                // The probe answer is flagged so the sender attributes any
                // resulting retransmissions to the keep-alive path.
                self.send_control(
                    ctx,
                    src,
                    chan,
                    Body::Nack {
                        seq: es,
                        offset: eo,
                        probe: true,
                    },
                );
                self.t_instant(ctx.now(), TraceKind::AmNackOut, 0);
                self.stats.nacks_sent += 1;
                gstats::add_nacks_sent(1);
            }
            Body::Short { .. } | Body::Data { .. } => {
                self.handle_sequenced(ctx, state, src, pkt);
            }
        }
    }

    /// Does this packet advance the sequence number (shorts and chunk-final
    /// data packets do; mid-chunk packets advance only the offset)?
    fn advances_seq(pkt: &AmPacket) -> bool {
        match &pkt.body {
            Body::Short { .. } => true,
            Body::Data { last_of_chunk, .. } => *last_of_chunk,
            _ => unreachable!("control packets are not sequenced"),
        }
    }

    /// Run one sequenced (short or data) packet through the receive window:
    /// deliver in-order arrivals (then drain anything the advance released
    /// from the selective-repeat buffer), re-ACK duplicates, and handle
    /// gaps — go-back-N NACK in legacy mode, buffer-and-SACK otherwise.
    fn handle_sequenced(&mut self, ctx: &mut AmCtx, state: &mut S, src: usize, pkt: AmPacket) {
        let chan = pkt.chan;
        let advances = Self::advances_seq(&pkt);
        let verdict = self.peers[src].rx[chan.idx()].accept(pkt.seq, pkt.offset, advances);
        match verdict {
            RxVerdict::Deliver { force_ack } => {
                self.deliver_sequenced(ctx, state, src, pkt, force_ack);
                self.drain_held(ctx, state, src, chan);
            }
            RxVerdict::DupDrop => {
                self.stats.dup_dropped += 1;
                gstats::add_dup_dropped(1);
                self.t_instant(ctx.now(), TraceKind::AmDupDrop, pkt.seq as u64);
                self.explicit_ack(ctx, src, chan);
            }
            RxVerdict::OooDrop { nack } => {
                if self.cfg.reliability.sack {
                    self.buffer_ooo(ctx, src, chan, pkt, nack);
                } else {
                    self.stats.ooo_dropped += 1;
                    gstats::add_ooo_dropped(1);
                    self.t_instant(ctx.now(), TraceKind::AmOooDrop, pkt.seq as u64);
                    if nack {
                        self.send_nack(ctx, src, chan);
                    }
                }
            }
        }
    }

    /// Deliver one in-order sequenced packet (the window has already
    /// accepted it).
    fn deliver_sequenced(
        &mut self,
        ctx: &mut AmCtx,
        state: &mut S,
        src: usize,
        pkt: AmPacket,
        force_ack: bool,
    ) {
        self.made_progress = true;
        if let Some(t0) = self.restarted_at.take() {
            // First delivery of the new incarnation: recovery complete.
            self.stats.recovery_ns = (ctx.now() - t0).as_ns();
            self.t_instant(ctx.now(), TraceKind::AmRecovered, self.stats.recovery_ns);
        }
        let chan = pkt.chan;
        match pkt.body {
            Body::Short {
                kind,
                handler,
                nargs,
                args,
            } => {
                self.stats.shorts_delivered += 1;
                match kind {
                    ShortKind::User => {
                        self.invoke(
                            ctx,
                            state,
                            handler,
                            AmArgs {
                                a: args,
                                nargs,
                                src,
                                info: None,
                            },
                            chan == Channel::Request,
                        );
                    }
                    ShortKind::GetReq {
                        src_addr,
                        dst_addr,
                        len,
                        xfer,
                    } => {
                        self.serve_get(ctx, src, src_addr, dst_addr, len, xfer, handler, args);
                    }
                    ShortKind::Barrier { go } => {
                        if go {
                            self.barrier_go = true;
                        } else {
                            self.barrier_hits += 1;
                        }
                    }
                }
                if force_ack {
                    self.explicit_ack(ctx, src, chan);
                }
            }
            Body::Data {
                addr,
                len,
                last_of_xfer,
                handler,
                args,
                base_addr,
                total_len,
                xfer,
                bytes,
                ..
            } => {
                debug_assert_eq!(len as usize, bytes.len());
                self.stats.data_packets_delivered += 1;
                self.stats.bulk_bytes_delivered += bytes.len() as u64;
                self.mem.write(
                    crate::GlobalPtr {
                        node: self.me,
                        addr,
                    },
                    &bytes,
                );
                if last_of_xfer {
                    if chan == Channel::Reply {
                        // Get data arrived back home: the handle completes
                        // here.
                        self.completed.insert(xfer);
                    }
                    if handler != HANDLER_NONE {
                        self.invoke(
                            ctx,
                            state,
                            handler,
                            AmArgs {
                                a: args,
                                nargs: 4,
                                src,
                                info: Some(BulkInfo {
                                    base: base_addr,
                                    len: total_len,
                                }),
                            },
                            chan == Channel::Request,
                        );
                    }
                }
                if force_ack || last_of_xfer {
                    self.explicit_ack(ctx, src, chan);
                }
            }
            _ => unreachable!("only sequenced packets reach delivery"),
        }
    }

    /// SACK mode: hold an out-of-order packet instead of dropping it. When
    /// the packet completes a fully-held sequence (every in-chunk offset up
    /// to the chunk-final present), the sequence enters the advertised SACK
    /// bitmap; the gap advertisement goes out as an explicit ACK on the
    /// first packet of a gap (`first_of_gap`, the slot legacy mode uses for
    /// its NACK) and whenever a sequence becomes newly fully held.
    fn buffer_ooo(
        &mut self,
        ctx: &mut AmCtx,
        src: usize,
        chan: Channel,
        pkt: AmPacket,
        first_of_gap: bool,
    ) {
        let seq = pkt.seq;
        let buf = &mut self.ooo_buf[src][chan.idx()];
        if buf.contains_key(&(seq, pkt.offset)) {
            // Duplicate of something already held: treat like any other
            // duplicate (drop and re-advertise).
            self.stats.dup_dropped += 1;
            gstats::add_dup_dropped(1);
            self.t_instant(ctx.now(), TraceKind::AmDupDrop, seq as u64);
            self.explicit_ack(ctx, src, chan);
            return;
        }
        let cum = self.peers[src].rx[chan.idx()].cum_ack();
        if seq > cum + 64 {
            // Beyond the 64-bit SACK horizon: unadvertisable, so holding it
            // would be invisible to the sender. Drop like legacy (the RTO
            // or a later round recovers it). Windows keep sequences within
            // the horizon except for degenerate all-shorts bursts.
            self.stats.ooo_dropped += 1;
            gstats::add_ooo_dropped(1);
            self.t_instant(ctx.now(), TraceKind::AmOooDrop, seq as u64);
            return;
        }
        buf.insert((seq, pkt.offset), pkt);
        self.stats.ooo_buffered += 1;
        self.stats.ooo_held += 1;
        self.t_instant(ctx.now(), TraceKind::AmOooHold, seq as u64);
        // Fully held? The chunk-final packet (or the short itself) must be
        // present along with every offset below it.
        let buf = &self.ooo_buf[src][chan.idx()];
        let final_off = buf
            .range((seq, 0)..=(seq, u32::MAX))
            .find_map(|((_, o), p)| Self::advances_seq(p).then_some(*o));
        let fully_held = final_off.is_some_and(|fo| (0..=fo).all(|o| buf.contains_key(&(seq, o))));
        let mut newly_held = false;
        if fully_held && !self.peers[src].rx[chan.idx()].holds(seq) {
            self.peers[src].rx[chan.idx()].hold(seq);
            newly_held = true;
        }
        if first_of_gap || newly_held {
            self.explicit_ack(ctx, src, chan);
        }
    }

    /// After an in-order delivery advanced the window, feed any buffered
    /// packets that are now next-in-line back through delivery, and discard
    /// buffered copies the advance made moot.
    fn drain_held(&mut self, ctx: &mut AmCtx, state: &mut S, src: usize, chan: Channel) {
        if !self.cfg.reliability.sack {
            return;
        }
        loop {
            let expected = self.peers[src].rx[chan.idx()].expected();
            let Some(pkt) = self.ooo_buf[src][chan.idx()].remove(&expected) else {
                break;
            };
            self.stats.ooo_held -= 1;
            let advances = Self::advances_seq(&pkt);
            match self.peers[src].rx[chan.idx()].accept(pkt.seq, pkt.offset, advances) {
                RxVerdict::Deliver { force_ack } => {
                    self.deliver_sequenced(ctx, state, src, pkt, force_ack);
                }
                v => unreachable!("buffered packet at the expected position: {v:?}"),
            }
        }
        // Anything left below the cumulative point was delivered through
        // the in-order path while a copy sat in the buffer: a duplicate.
        let cum = self.peers[src].rx[chan.idx()].cum_ack();
        let buf = &mut self.ooo_buf[src][chan.idx()];
        let moot: Vec<(u32, u32)> = buf.range(..(cum, 0)).map(|(k, _)| *k).collect();
        for k in moot {
            buf.remove(&k);
            self.stats.ooo_held -= 1;
            self.stats.dup_dropped += 1;
            gstats::add_dup_dropped(1);
        }
    }

    /// Process a piggybacked SACK bitmap for our outbound `chan` toward
    /// `src`: gap sequences the peer does *not* hold retransmit selectively
    /// (at most once per round).
    fn process_sack(&mut self, ctx: &mut AmCtx, src: usize, chan: Channel, cum: u32, bitmap: u64) {
        let rtx = self.peers[src].tx[chan.idx()].on_sack(cum, bitmap);
        if rtx > 0 {
            self.made_progress = true;
            self.stats.packets_retransmitted += rtx as u64;
            self.stats.rtx_sack_gap += rtx as u64;
            gstats::add_retransmitted(rtx as u64);
            gstats::add_rtx_sack_gap(rtx as u64);
            self.t_instant(ctx.now(), TraceKind::AmSackRtx, rtx as u64);
            self.pump_peer(ctx, src);
        }
    }

    /// Adopt a peer's new incarnation: its old receive state is
    /// meaningless (the new incarnation restarts its sequence space from
    /// zero), and everything we had in flight toward the old incarnation
    /// replays under fresh sequence numbers.
    fn adopt_epoch(&mut self, ctx: &mut AmCtx, src: usize, epoch: u32) {
        self.peer_epochs[src] = epoch;
        self.t_instant(ctx.now(), TraceKind::AmEpochAdopt, epoch as u64);
        for chan in Channel::BOTH {
            let held = self.ooo_buf[src][chan.idx()].len() as u64;
            self.ooo_buf[src][chan.idx()].clear();
            self.stats.ooo_held -= held;
            self.stats.ooo_dropped += held;
            gstats::add_ooo_dropped(held);
            self.peers[src].rx[chan.idx()] = self.fresh_rx(chan);
            let rtx = self.peers[src].tx[chan.idx()].reincarnate(ctx.now());
            if rtx > 0 {
                self.stats.packets_retransmitted += rtx as u64;
                gstats::add_retransmitted(rtx as u64);
                self.t_instant(ctx.now(), TraceKind::AmRetransmit, rtx as u64);
            }
        }
    }

    /// Crash this node: every piece of protocol state is lost — windows,
    /// sequence spaces, retransmit buffers, bulk completions, epoch views,
    /// selective-repeat buffers — and the incarnation epoch is bumped so
    /// survivors can tell the dead incarnation's in-flight packets from
    /// the new one's. Counters in [`AmStats`] survive: they belong to the
    /// measurement harness, not the crashed program. Call
    /// [`AmPort::note_restart`] when the node comes back up.
    pub(crate) fn crash_reset(&mut self, ctx: &mut AmCtx) {
        self.my_epoch += 1;
        self.stats.epoch = self.my_epoch as u64;
        self.stats.restarts += 1;
        self.t_instant(ctx.now(), TraceKind::AmCrash, self.my_epoch as u64);
        for src in 0..self.n {
            for chan in Channel::BOTH {
                let held = self.ooo_buf[src][chan.idx()].len() as u64;
                self.ooo_buf[src][chan.idx()].clear();
                self.stats.ooo_held -= held;
                self.stats.ooo_dropped += held;
                gstats::add_ooo_dropped(held);
                self.peers[src].rx[chan.idx()] = self.fresh_rx(chan);
                self.peers[src].tx[chan.idx()] = self.fresh_tx(chan);
            }
        }
        self.peer_epochs = vec![0; self.n];
        self.completed.clear();
        self.completions.clear();
        self.idle_polls = 0;
        self.barrier_hits = 0;
        self.barrier_go = false;
    }

    /// The crashed node is back up: start the recovery-time clock and
    /// record the restart on the trace.
    pub(crate) fn note_restart(&mut self, ctx: &mut AmCtx) {
        self.restarted_at = Some(ctx.now());
        self.t_instant(ctx.now(), TraceKind::AmRestart, self.my_epoch as u64);
    }

    fn explicit_ack(&mut self, ctx: &mut AmCtx, dst: usize, chan: Channel) {
        self.stats.explicit_acks_sent += 1;
        self.send_control(ctx, dst, chan, Body::Ack);
    }

    fn send_nack(&mut self, ctx: &mut AmCtx, dst: usize, chan: Channel) {
        let (es, eo) = self.peers[dst].rx[chan.idx()].expected();
        self.t_instant(ctx.now(), TraceKind::AmNackOut, 0);
        self.stats.nacks_sent += 1;
        gstats::add_nacks_sent(1);
        self.send_control(
            ctx,
            dst,
            chan,
            Body::Nack {
                seq: es,
                offset: eo,
                probe: false,
            },
        );
    }

    fn process_ack(&mut self, ctx: &mut AmCtx, state: &mut S, src: usize, chan: Channel, cum: u32) {
        let (freed, completed) = self.peers[src].tx[chan.idx()].on_ack(cum, ctx.now());
        if freed > 0 {
            self.made_progress = true;
            self.t_instant(
                ctx.now(),
                TraceKind::AmAck,
                cum as u64 | (chan.idx() as u64) << 32,
            );
        }
        self.finish_bulks(ctx, state, completed);
    }

    fn finish_bulks(&mut self, ctx: &mut AmCtx, state: &mut S, ids: Vec<u32>) {
        for id in ids {
            self.completed.insert(id);
            if let Some((handler, args)) = self.completions.remove(&id) {
                self.invoke(
                    ctx,
                    state,
                    handler,
                    AmArgs {
                        a: args,
                        nargs: 4,
                        src: self.me,
                        info: None,
                    },
                    false,
                );
            }
        }
    }

    /// Serve a get request: stream the requested bytes back on the reply
    /// channel. The data packets carry the *requester's* handler/args/id.
    #[allow(clippy::too_many_arguments)] // the get-request wire fields
    fn serve_get(
        &mut self,
        ctx: &mut AmCtx,
        requester: usize,
        src_addr: u32,
        dst_addr: u32,
        len: u32,
        xfer: u32,
        handler: u16,
        args: [u32; 4],
    ) {
        let data = self.mem.read_vec(
            crate::GlobalPtr {
                node: self.me,
                addr: src_addr,
            },
            len as usize,
        );
        self.peers[requester].tx[Channel::Reply.idx()].push(SendItem::Bulk(BulkTx::untracked(
            xfer,
            dst_addr,
            handler,
            args,
            data.into_boxed_slice(),
        )));
        self.pump_peer(ctx, requester);
    }

    fn invoke(
        &mut self,
        ctx: &mut AmCtx,
        state: &mut S,
        handler: u16,
        args: AmArgs,
        reply_allowed: bool,
    ) {
        let f = *self
            .handlers
            .get(handler as usize)
            .unwrap_or_else(|| panic!("node {}: unregistered handler {handler}", self.me));
        let mut env = AmEnv {
            port: self,
            ctx,
            state,
            reply_to: args.src,
            reply_allowed,
            replied: false,
        };
        f(&mut env, args);
    }

    /// Diagnostic snapshot of channel state (debugging aid).
    #[doc(hidden)]
    pub fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (p, peer) in self.peers.iter().enumerate() {
            for chan in Channel::BOTH {
                let tx = &peer.tx[chan.idx()];
                let rx = &peer.rx[chan.idx()];
                if !tx.idle() || rx.expected() != (0, 0) {
                    let _ = write!(
                        s,
                        "[{me}->{p} {chan:?}] tx: in_flight={} unacked={} queue={} rtx={} next={} | rx expects {:?}; ",
                        tx.in_flight(),
                        tx.has_unacked(),
                        tx.queue_len(),
                        tx.rtx_len(),
                        tx.next_seq(),
                        rx.expected(),
                        me = self.me,
                    );
                }
            }
        }
        s
    }

    // ----- barrier ----------------------------------------------------

    /// A simple dissemination barrier built from protocol-level shorts
    /// (node 0 collects hits, then broadcasts go). Used by benchmarks.
    pub(crate) fn barrier(&mut self, ctx: &mut AmCtx, state: &mut S) {
        if self.n == 1 {
            return;
        }
        if self.me == 0 {
            while self.barrier_hits < (self.n - 1) as u32 {
                self.poll(ctx, state);
            }
            self.barrier_hits = 0;
            for dst in 1..self.n {
                self.peers[dst].tx[Channel::Request.idx()].push(SendItem::Short {
                    kind: ShortKind::Barrier { go: true },
                    handler: HANDLER_NONE,
                    nargs: 0,
                    args: [0; 4],
                });
                self.pump_peer(ctx, dst);
            }
        } else {
            self.peers[0].tx[Channel::Request.idx()].push(SendItem::Short {
                kind: ShortKind::Barrier { go: false },
                handler: HANDLER_NONE,
                nargs: 0,
                args: [0; 4],
            });
            self.pump_peer(ctx, 0);
            while !self.barrier_go {
                self.poll(ctx, state);
            }
            self.barrier_go = false;
        }
    }
}
