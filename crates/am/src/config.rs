//! SP AM software-cost and protocol configuration.

use sp_sim::Dur;

/// SP AM protocol parameters and software costs.
///
/// Protocol constants are the paper's (§2.2); software costs are calibrated
/// to Table 2 (request 7.7–8.2 µs, reply 4.0–4.4 µs, empty poll 1.3 µs,
/// +1.8 µs per received message) and §2.3's 51 µs round trip.
#[derive(Debug, Clone)]
pub struct AmConfig {
    /// Sliding-window size for the request channel, in packets
    /// (≥ 2 chunks = 72, §2.2).
    pub window_request: u32,
    /// Sliding-window size for the reply channel, in packets (76: the extra
    /// slots accommodate start-up request traffic, §2.2).
    pub window_reply: u32,
    /// Receiver issues an explicit ACK once this many packets are received
    /// but unacknowledged ("when one-quarter of the window remains
    /// unacknowledged"). Expressed as a divisor of the window size.
    pub ack_threshold_div: u32,
    /// Packets per bulk-transfer chunk (36 on the SP: 36 × 224 B = 8064 B,
    /// §2.2). Exposed for the chunk-size ablation; the window must hold at
    /// least two chunks.
    pub chunk_packets: u32,
    /// Consecutive unsuccessful polls (with traffic outstanding) before the
    /// keep-alive protocol probes the peer (§2.2: "timeouts are emulated by
    /// counting the number of unsuccessful polls").
    pub keepalive_polls: u32,
    /// CPU cost of the `am_request_*` path beyond the raw hardware
    /// operations (window bookkeeping, sequence stamping, retransmit
    /// buffering).
    pub request_cpu: Dur,
    /// Same for `am_reply_*` (no post-send poll, less bookkeeping).
    pub reply_cpu: Dur,
    /// Extra CPU per argument word beyond the first.
    pub per_word_cpu: Dur,
    /// CPU cost of `am_poll` finding the network empty (minus the hardware
    /// head check charged by the adapter layer).
    pub poll_cpu: Dur,
    /// CPU dispatch cost per received message (header decode, sequence
    /// check, handler dispatch) on top of the adapter's copy-out cost.
    pub dispatch_cpu: Dur,
    /// Cost of taking a receive interrupt (kernel dispatch + context): the
    /// reason the paper analyzes the *polling* mode — AIX interrupt
    /// dispatch dwarfed the 1.3 µs poll. Used by
    /// [`Am::wait_message`](crate::Am::wait_message).
    pub interrupt_cpu: Dur,
    /// Per-bulk-transfer setup cost (`am_store`/`am_get` call overhead).
    pub bulk_setup_cpu: Dur,
    /// Per-packet CPU on the bulk send path beyond the FIFO write
    /// (offset/length arithmetic, window accounting amortized per chunk).
    pub bulk_per_packet_cpu: Dur,
    /// How many packet lengths a bulk sender accumulates per doorbell
    /// (batching the MicroChannel length stores, §2.1).
    pub doorbell_batch: usize,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            window_request: 72,
            window_reply: 76,
            ack_threshold_div: 4,
            chunk_packets: crate::CHUNK_PACKETS as u32,
            keepalive_polls: 4096,
            request_cpu: Dur::us(4.3),
            reply_cpu: Dur::us(1.7),
            per_word_cpu: Dur::ns(120),
            poll_cpu: Dur::us(1.2),
            dispatch_cpu: Dur::ns(400),
            interrupt_cpu: Dur::us(35.0),
            bulk_setup_cpu: Dur::us(2.0),
            bulk_per_packet_cpu: Dur::ns(350),
            doorbell_batch: 8,
        }
    }
}

impl AmConfig {
    /// Explicit-ACK threshold in packets for a window of `window` packets.
    #[inline]
    pub fn ack_threshold(&self, window: u32) -> u32 {
        (window / self.ack_threshold_div).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let c = AmConfig::default();
        assert_eq!(c.window_request, 72);
        assert_eq!(c.window_reply, 76);
        // Window must fit at least two chunks for the pipelined chunk
        // protocol (§2.2).
        assert!(c.window_request as usize >= 2 * crate::CHUNK_PACKETS);
        assert_eq!(c.ack_threshold(72), 18);
    }

    #[test]
    fn ack_threshold_never_zero() {
        let c = AmConfig::default();
        assert_eq!(c.ack_threshold(1), 1);
        assert_eq!(c.ack_threshold(3), 1);
    }
}
