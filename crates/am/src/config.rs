//! SP AM software-cost and protocol configuration.

use sp_sim::Dur;

/// Reliability-layer mode switches and timer parameters.
///
/// The default is the paper's protocol exactly — go-back-N retransmission
/// driven by NACKs and poll-counting keep-alives, no retransmission timer,
/// no selective repeat — so every golden pin and pre-reliability chaos
/// reproducer stays byte-identical. The adaptive extensions layer on top:
///
/// * `adaptive_rto` arms a per-channel retransmission timeout fed by a
///   Jacobson-style SRTT/RTTVAR estimator (Karn's rule: retransmitted
///   packets never produce samples), with exponential backoff capped at
///   `backoff_cap` doublings;
/// * `sack` switches the receiver to selective repeat: out-of-order
///   packets are buffered instead of dropped, a SACK bitmap piggybacks on
///   ACKs, and the sender retransmits only the gap sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Enable the RTT-estimated retransmission timeout.
    pub adaptive_rto: bool,
    /// Enable selective repeat (SACK bitmap + out-of-order buffering);
    /// go-back-N remains the fallback whenever this is off.
    pub sack: bool,
    /// Lower clamp on the computed RTO, virtual ns.
    pub min_rto_ns: u64,
    /// Upper clamp on the (backed-off) RTO, virtual ns.
    pub max_rto_ns: u64,
    /// Timer granularity `g` in `RTO = SRTT + max(g, 4·RTTVAR)`, ns.
    pub granularity_ns: u64,
    /// Maximum exponential-backoff doublings after repeated expiries.
    pub backoff_cap: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            adaptive_rto: false,
            sack: false,
            min_rto_ns: 50_000,
            max_rto_ns: 4_000_000,
            granularity_ns: 10_000,
            backoff_cap: 6,
        }
    }
}

impl ReliabilityConfig {
    /// Both adaptive extensions on, default timer parameters.
    pub fn adaptive() -> Self {
        ReliabilityConfig {
            adaptive_rto: true,
            sack: true,
            ..ReliabilityConfig::default()
        }
    }

    /// `true` when this is exactly the legacy paper protocol.
    pub fn is_legacy(&self) -> bool {
        *self == ReliabilityConfig::default()
    }

    /// Canonical single-line text form (inverse of
    /// [`ReliabilityConfig::parse_fields`]); the form embedded in chaos
    /// schedule files and hashed into replay reports.
    pub fn format_fields(&self) -> String {
        format!(
            "adaptive_rto {} sack {} min_rto_ns {} max_rto_ns {} granularity_ns {} backoff_cap {}",
            self.adaptive_rto as u32,
            self.sack as u32,
            self.min_rto_ns,
            self.max_rto_ns,
            self.granularity_ns,
            self.backoff_cap,
        )
    }

    /// Parse the `format_fields` form from already-split label/value pairs
    /// (`[v_adaptive, v_sack, v_min, v_max, v_gran, v_cap]`).
    pub fn from_values(v: &[u64]) -> Option<ReliabilityConfig> {
        if v.len() != 6 || v[0] > 1 || v[1] > 1 {
            return None;
        }
        Some(ReliabilityConfig {
            adaptive_rto: v[0] == 1,
            sack: v[1] == 1,
            min_rto_ns: v[2],
            max_rto_ns: v[3],
            granularity_ns: v[4],
            backoff_cap: v[5] as u32,
        })
    }

    /// FNV-1a hash of the canonical text form. Embedded in chaos replay
    /// reports so a schedule replayed under a *different* reliability
    /// configuration fails the byte-compare loudly instead of silently
    /// diverging.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.format_fields().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// SP AM protocol parameters and software costs.
///
/// Protocol constants are the paper's (§2.2); software costs are calibrated
/// to Table 2 (request 7.7–8.2 µs, reply 4.0–4.4 µs, empty poll 1.3 µs,
/// +1.8 µs per received message) and §2.3's 51 µs round trip.
#[derive(Debug, Clone)]
pub struct AmConfig {
    /// Sliding-window size for the request channel, in packets
    /// (≥ 2 chunks = 72, §2.2).
    pub window_request: u32,
    /// Sliding-window size for the reply channel, in packets (76: the extra
    /// slots accommodate start-up request traffic, §2.2).
    pub window_reply: u32,
    /// Receiver issues an explicit ACK once this many packets are received
    /// but unacknowledged ("when one-quarter of the window remains
    /// unacknowledged"). Expressed as a divisor of the window size.
    pub ack_threshold_div: u32,
    /// Packets per bulk-transfer chunk (36 on the SP: 36 × 224 B = 8064 B,
    /// §2.2). Exposed for the chunk-size ablation; the window must hold at
    /// least two chunks.
    pub chunk_packets: u32,
    /// Consecutive unsuccessful polls (with traffic outstanding) before the
    /// keep-alive protocol probes the peer (§2.2: "timeouts are emulated by
    /// counting the number of unsuccessful polls").
    pub keepalive_polls: u32,
    /// CPU cost of the `am_request_*` path beyond the raw hardware
    /// operations (window bookkeeping, sequence stamping, retransmit
    /// buffering).
    pub request_cpu: Dur,
    /// Same for `am_reply_*` (no post-send poll, less bookkeeping).
    pub reply_cpu: Dur,
    /// Extra CPU per argument word beyond the first.
    pub per_word_cpu: Dur,
    /// CPU cost of `am_poll` finding the network empty (minus the hardware
    /// head check charged by the adapter layer).
    pub poll_cpu: Dur,
    /// CPU dispatch cost per received message (header decode, sequence
    /// check, handler dispatch) on top of the adapter's copy-out cost.
    pub dispatch_cpu: Dur,
    /// Cost of taking a receive interrupt (kernel dispatch + context): the
    /// reason the paper analyzes the *polling* mode — AIX interrupt
    /// dispatch dwarfed the 1.3 µs poll. Used by
    /// [`Am::wait_message`](crate::Am::wait_message).
    pub interrupt_cpu: Dur,
    /// Per-bulk-transfer setup cost (`am_store`/`am_get` call overhead).
    pub bulk_setup_cpu: Dur,
    /// Per-packet CPU on the bulk send path beyond the FIFO write
    /// (offset/length arithmetic, window accounting amortized per chunk).
    pub bulk_per_packet_cpu: Dur,
    /// How many packet lengths a bulk sender accumulates per doorbell
    /// (batching the MicroChannel length stores, §2.1).
    pub doorbell_batch: usize,
    /// Reliability-layer mode (legacy go-back-N by default; see
    /// [`ReliabilityConfig`]).
    pub reliability: ReliabilityConfig,
}

impl Default for AmConfig {
    fn default() -> Self {
        AmConfig {
            window_request: 72,
            window_reply: 76,
            ack_threshold_div: 4,
            chunk_packets: crate::CHUNK_PACKETS as u32,
            keepalive_polls: 4096,
            request_cpu: Dur::us(4.3),
            reply_cpu: Dur::us(1.7),
            per_word_cpu: Dur::ns(120),
            poll_cpu: Dur::us(1.2),
            dispatch_cpu: Dur::ns(400),
            interrupt_cpu: Dur::us(35.0),
            bulk_setup_cpu: Dur::us(2.0),
            bulk_per_packet_cpu: Dur::ns(350),
            doorbell_batch: 8,
            reliability: ReliabilityConfig::default(),
        }
    }
}

impl AmConfig {
    /// Explicit-ACK threshold in packets for a window of `window` packets.
    #[inline]
    pub fn ack_threshold(&self, window: u32) -> u32 {
        (window / self.ack_threshold_div).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let c = AmConfig::default();
        assert_eq!(c.window_request, 72);
        assert_eq!(c.window_reply, 76);
        // Window must fit at least two chunks for the pipelined chunk
        // protocol (§2.2).
        assert!(c.window_request as usize >= 2 * crate::CHUNK_PACKETS);
        assert_eq!(c.ack_threshold(72), 18);
    }

    #[test]
    fn ack_threshold_never_zero() {
        let c = AmConfig::default();
        assert_eq!(c.ack_threshold(1), 1);
        assert_eq!(c.ack_threshold(3), 1);
    }

    #[test]
    fn reliability_default_is_legacy() {
        assert!(ReliabilityConfig::default().is_legacy());
        assert!(!ReliabilityConfig::adaptive().is_legacy());
        assert!(AmConfig::default().reliability.is_legacy());
    }

    #[test]
    fn reliability_fields_round_trip() {
        for r in [
            ReliabilityConfig::default(),
            ReliabilityConfig::adaptive(),
            ReliabilityConfig {
                adaptive_rto: true,
                sack: false,
                min_rto_ns: 7,
                max_rto_ns: 9_000_000,
                granularity_ns: 1,
                backoff_cap: 11,
            },
        ] {
            let text = r.format_fields();
            let vals: Vec<u64> = text
                .split_whitespace()
                .skip(1)
                .step_by(2)
                .map(|v| v.parse().unwrap())
                .collect();
            assert_eq!(ReliabilityConfig::from_values(&vals), Some(r));
        }
    }

    #[test]
    fn reliability_hash_separates_configs() {
        let legacy = ReliabilityConfig::default().hash();
        let adaptive = ReliabilityConfig::adaptive().hash();
        assert_ne!(legacy, adaptive);
        let mut tweaked = ReliabilityConfig::adaptive();
        tweaked.min_rto_ns += 1;
        assert_ne!(adaptive, tweaked.hash());
        // Stable across calls (pure function of the fields).
        assert_eq!(legacy, ReliabilityConfig::default().hash());
    }
}
