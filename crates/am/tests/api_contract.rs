//! API-contract tests: GAM rules enforced at runtime, degenerate
//! arguments, statistics precision, and misuse panics.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};

#[derive(Default)]
struct St {
    count: u32,
    last: [u32; 4],
    nargs: u8,
}

fn record(env: &mut AmEnv<'_, St>, args: AmArgs) {
    env.state.count += 1;
    env.state.last = args.a;
    env.state.nargs = args.nargs;
}

fn replying(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.count += 1;
    env.reply_1(0, 7);
}

fn illegal_second_reply(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.reply_1(0, 1);
    env.reply_1(0, 2); // must panic: one reply per handler
}

fn replying_from_reply(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.reply_1(0, 9); // must panic when invoked as a reply handler
}

#[test]
fn argument_words_delivered_exactly() {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.request_4(1, 0, 11, 22, 33, 44);
        am.request_2(1, 0, 55, 66);
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.poll_until(|s| s.count >= 1);
        assert_eq!((am.state().last, am.state().nargs), ([11, 22, 33, 44], 4));
        am.poll_until(|s| s.count >= 2);
        assert_eq!(am.state().last[..2], [55, 66]);
        assert_eq!(am.state().nargs, 2);
        am.barrier();
    });
    m.run().unwrap();
}

#[test]
fn double_reply_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.register(illegal_second_reply);
        am.request_1(1, 1, 0);
        am.poll_until(|s| s.count >= 1);
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.register(illegal_second_reply);
        am.poll_until(|_| false);
    });
    let err = m.run().unwrap_err();
    std::panic::set_hook(prev);
    assert!(format!("{err}").contains("at most once"), "got: {err}");
}

#[test]
fn reply_from_reply_handler_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(replying_from_reply); // handler 0: replies (illegal as reply target)
        am.register(replying); // handler 1: request handler replying with handler 0
        am.request_1(1, 1, 0);
        am.poll_until(|s| s.count >= 1); // reply dispatch panics first
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(replying_from_reply);
        am.register(replying);
        am.poll_until(|s| s.count >= 1);
        am.drain(sp_sim::Dur::ms(1.0));
    });
    let err = m.run().unwrap_err();
    std::panic::set_hook(prev);
    assert!(format!("{err}").contains("illegal"), "got: {err}");
}

#[test]
fn zero_length_store_and_get_complete_immediately() {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
    m.spawn("a", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        let h = am.store_async(GlobalPtr { node: 1, addr: 0 }, &[], None, &[], None);
        assert!(
            am.bulk_done(h),
            "zero-length store must complete immediately"
        );
        let g = am.get(GlobalPtr { node: 1, addr: 0 }, 0, 0, None, &[]);
        assert!(am.bulk_done(g), "zero-length get must complete immediately");
        am.barrier();
    });
    m.spawn("b", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.barrier();
    });
    m.run().unwrap();
}

#[test]
fn single_node_barrier_and_self_bulk() {
    let mut m = AmMachine::new(SpConfig::thin(1), AmConfig::default(), 1);
    m.spawn("solo", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.barrier(); // no peers: must return immediately
        let dst = am.alloc(1024);
        let data = vec![9u8; 1024];
        am.store(dst, &data, Some(0), &[]);
        assert_eq!(am.state().count, 1, "loopback store handler ran");
        let got = am.mem_pool().read_vec(dst, 1024);
        assert_eq!(got, data);
    });
    m.run().unwrap();
}

#[test]
fn store_from_local_memory() {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        let src = am.alloc(512);
        am.mem().write(src.addr, &vec![0x42u8; 512]);
        am.barrier();
        am.store_from(src.addr, GlobalPtr { node: 1, addr: 0 }, 512, Some(0), &[]);
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.alloc(512);
        am.barrier();
        am.poll_until(|s| s.count >= 1);
        assert_eq!(
            am.mem_pool().read_vec(GlobalPtr { node: 1, addr: 0 }, 512),
            vec![0x42u8; 512]
        );
        am.barrier();
    });
    m.run().unwrap();
}

#[test]
fn stats_count_precisely() {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 1);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.register(replying);
        for _ in 0..7 {
            am.request_1(1, 0, 0);
        }
        let data = vec![1u8; 10_000];
        am.store(GlobalPtr { node: 1, addr: 0 }, &data, None, &[]);
        let dst = am.alloc(100);
        let _ = am.get(GlobalPtr { node: 1, addr: 0 }, dst.addr, 100, None, &[]);
        am.quiesce();
        let s = am.stats();
        assert_eq!(s.requests_sent, 7);
        assert_eq!(s.stores, 1);
        assert_eq!(s.gets, 1);
        assert_eq!(s.packets_retransmitted, 0);
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.register(replying);
        am.alloc(10_000);
        am.poll_until(|s| s.count >= 7);
        am.barrier();
    });
    m.run().unwrap();
}

#[test]
fn get_from_wide_node_machine() {
    // The whole stack also runs on the wide-node cost model.
    let mut m = AmMachine::new(SpConfig::wide(2), AmConfig::default(), 1);
    m.spawn("holder", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        let p = am.alloc(4096);
        am.mem().write(p.addr, &vec![0x99u8; 4096]);
        am.barrier();
        am.barrier();
    });
    m.spawn("getter", St::default(), |am: &mut Am<'_, St>| {
        am.register(record);
        am.barrier();
        let dst = am.alloc(4096);
        am.get_blocking(GlobalPtr { node: 0, addr: 0 }, dst.addr, 4096);
        assert_eq!(am.mem().read_u32(dst.addr), u32::from_le_bytes([0x99; 4]));
        am.barrier();
    });
    m.run().unwrap();
}
