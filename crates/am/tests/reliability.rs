//! End-to-end reliability-layer tests on a real two-node machine:
//! crash/restart with the incarnation-epoch handshake, and the adaptive
//! (RTT-estimated RTO + SACK) mode under random loss — exercising the
//! full port/adapter/switch stack rather than the channel state machines.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, AmStats, ReliabilityConfig};
use sp_switch::FaultInjector;
use std::sync::Arc;

#[derive(Default)]
struct St {
    bits: u32,
    count: u32,
}

fn set_bit(env: &mut AmEnv<'_, St>, args: AmArgs) {
    env.state.bits |= args.a[0];
}

#[test]
fn crash_restart_epoch_handshake_redelivers_everything() {
    // The receiver crashes after the first delivery: its adapter FIFOs and
    // all AM channel state are wiped, it stays dark for 200µs, then
    // restarts with a bumped incarnation epoch. The sender's channels must
    // reincarnate and replay, and every request must still land (handlers
    // are idempotent bit-sets, since crash-straddling packets may
    // legitimately be redelivered).
    let n = 20u32;
    let goal = (1u64 << n) as u32 - 1;
    let cfg = AmConfig {
        keepalive_polls: 32,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 7);
    let stats = Arc::new(parking_lot::Mutex::new((
        AmStats::default(),
        AmStats::default(),
    )));
    let (s0, s1) = (stats.clone(), stats.clone());
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        am.register(set_bit);
        for i in 0..n {
            am.request_1(1, 0, 1 << i);
        }
        am.quiesce(); // every request acked by the *new* incarnation
        s0.lock().0 = am.stats().clone();
    });
    m.spawn("receiver", St::default(), move |am: &mut Am<'_, St>| {
        am.register(set_bit);
        am.poll_until(|s| s.bits != 0);
        am.crash_restart(sp_sim::Dur::us(200.0));
        am.poll_until(|s| s.bits == goal);
        // Serve the sender's recovery traffic before exiting.
        am.drain(sp_sim::Dur::ms(5.0));
        s1.lock().1 = am.stats().clone();
    });
    m.run().unwrap();
    let (tx, rx) = &*stats.lock();
    assert_eq!(rx.restarts, 1, "exactly one crash/restart");
    assert_eq!(rx.epoch, 1, "restart must bump the incarnation epoch");
    assert!(rx.recovery_ns > 0, "restart must clock time-to-recover");
    assert!(
        tx.packets_retransmitted > 0,
        "the wiped window can only arrive by retransmission"
    );
}

/// 300 in-order requests under 5% random loss; returns (sender, receiver)
/// stats after full quiescence.
fn run_lossy(rel: ReliabilityConfig) -> (AmStats, AmStats) {
    fn ordered(env: &mut AmEnv<'_, St>, args: AmArgs) {
        assert_eq!(args.a[0], env.state.count, "delivery must stay in order");
        env.state.count += 1;
    }
    let cfg = AmConfig {
        keepalive_polls: 64,
        reliability: rel,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 3);
    m.configure_world(|w| {
        w.switch
            .set_fault_injector(FaultInjector::bernoulli(0.05, 5))
    });
    let stats = Arc::new(parking_lot::Mutex::new((
        AmStats::default(),
        AmStats::default(),
    )));
    let (s0, s1) = (stats.clone(), stats.clone());
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        am.register(ordered);
        for i in 0..300u32 {
            am.request_1(1, 0, i);
        }
        am.quiesce();
        s0.lock().0 = am.stats().clone();
    });
    m.spawn("receiver", St::default(), move |am: &mut Am<'_, St>| {
        am.register(ordered);
        am.poll_until(|s| s.count == 300);
        am.drain(sp_sim::Dur::ms(5.0));
        s1.lock().1 = am.stats().clone();
    });
    m.run().unwrap();
    let (tx, rx) = &*stats.lock();
    (tx.clone(), rx.clone())
}

#[test]
fn adaptive_mode_survives_loss_and_attributes_every_retransmit() {
    let (tx, rx) = run_lossy(ReliabilityConfig::adaptive());
    assert!(tx.packets_retransmitted > 0, "5% loss must force recovery");
    assert!(
        tx.rtx_timeout + tx.rtx_sack_gap + tx.rtx_keepalive > 0,
        "adaptive retransmits must carry a cause"
    );
    assert!(
        rx.ooo_buffered > 0,
        "SACK mode must hold out-of-order packets instead of dropping them"
    );
    assert_eq!(rx.ooo_dropped, 0, "nothing should be go-back-N discarded");
}

#[test]
fn legacy_mode_never_uses_the_adaptive_machinery() {
    let (tx, rx) = run_lossy(ReliabilityConfig::default());
    assert!(tx.packets_retransmitted > 0, "5% loss must force recovery");
    assert_eq!(tx.rtx_timeout, 0, "no adaptive RTO in legacy mode");
    assert_eq!(tx.rtx_sack_gap, 0, "no SACK gaps in legacy mode");
    assert_eq!(rx.ooo_buffered, 0, "legacy receivers drop out-of-order");
}
