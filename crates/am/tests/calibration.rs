//! Calibration checks against the paper's own microbenchmarks (§2.3–§2.5,
//! Table 2). These are the numbers the cost model is *fit* to; everything
//! else in the reproduction is predicted.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine};

#[derive(Default)]
struct PingState {
    pongs: u32,
    pings: u32,
}

fn pong_handler(env: &mut AmEnv<'_, PingState>, args: AmArgs) {
    env.state.pings += 1;
    env.reply_1(args.a[0] as u16, 0);
}

fn done_handler(env: &mut AmEnv<'_, PingState>, _args: AmArgs) {
    env.state.pongs += 1;
}

/// One-word round-trip time over `iters` ping-pongs, in microseconds.
fn round_trip_us(iters: u32) -> f64 {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 42);
    let out = std::sync::Arc::new(parking_lot::Mutex::new(0.0f64));
    let out2 = out.clone();
    m.spawn(
        "pinger",
        PingState::default(),
        move |am: &mut Am<'_, PingState>| {
            let pong = am.register(pong_handler);
            let done = am.register(done_handler);
            let _ = pong;
            // Warmup round.
            am.request_1(1, 0, done as u32);
            am.poll_until(|s| s.pongs >= 1);
            let t0 = am.now();
            for i in 0..iters {
                am.request_1(1, 0, done as u32);
                am.poll_until(move |s| s.pongs >= i + 2);
            }
            let dt = am.now() - t0;
            *out2.lock() = dt.as_us() / iters as f64;
        },
    );
    m.spawn(
        "ponger",
        PingState::default(),
        move |am: &mut Am<'_, PingState>| {
            am.register(pong_handler);
            am.register(done_handler);
            am.poll_until(move |s| s.pings > iters);
        },
    );
    m.run().unwrap();
    let v = *out.lock();
    v
}

#[test]
fn one_word_round_trip_is_near_51us() {
    let rtt = round_trip_us(100);
    eprintln!("AM 1-word round trip: {rtt:.2} us (paper: 51.0)");
    assert!(
        (46.0..56.0).contains(&rtt),
        "AM round trip {rtt:.2} us, paper says 51.0 us"
    );
}
