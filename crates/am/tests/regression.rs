//! Pinned regressions: exact machine/seed/loss combinations that once
//! wedged the protocol, kept as cheap deterministic tests. Each carries an
//! event budget so a reintroduced livelock fails fast instead of hanging
//! the suite.

use sp_adapter::SpConfig;
use sp_am::{Am, AmConfig, AmEnv, AmMachine, GlobalPtr};
use sp_switch::FaultInjector;

#[derive(Default)]
struct St {
    done: bool,
}

fn mark_done(env: &mut AmEnv<'_, St>, _args: sp_am::AmArgs) {
    env.state.done = true;
}

/// `properties::get_roundtrip` case 18 (len=386, 3.6% loss) used to
/// livelock: the holder exited on `quiesce()` while the get *request* was
/// still lost in flight — its own outbound was idle, so quiesce returned
/// before the holder ever heard of the get — and the getter then
/// retransmitted at the dead node forever (visible as an endless
/// `RecvDrop` stream on the holder's adapter track). The shutdown
/// handshake (getter confirms arrival before the holder may exit) plus an
/// event budget pins the exact inputs as a fast deterministic regression.
#[test]
fn short_lossy_get_terminates() {
    let len = 386usize;
    let seed = 8181350357016536514u64;
    let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(7)).collect();
    let data2 = data.clone();
    let cfg = AmConfig {
        keepalive_polls: 48,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, seed);
    m.configure_world(|w| {
        w.switch
            .set_fault_injector(FaultInjector::bernoulli(0.036, seed))
    });
    m.set_event_budget(2_000_000);
    m.spawn("holder", St::default(), move |am: &mut Am<'_, St>| {
        am.register(mark_done);
        let p = am.alloc(len as u32);
        am.mem().write(p.addr, &data2);
        am.barrier();
        am.poll_until(|s| s.done);
        am.quiesce();
    });
    m.spawn("getter", St::default(), move |am: &mut Am<'_, St>| {
        am.register(mark_done);
        am.barrier();
        let dst = am.alloc(len as u32);
        am.get_blocking(GlobalPtr { node: 0, addr: 0 }, dst.addr, len as u32);
        am.request_1(0, 0, 0); // confirm arrival so the holder may exit
        am.drain_quiet(sp_sim::Dur::ms(5.0));
    });
    let tracer = m.enable_tracing(64);
    let report = match m.run() {
        Ok(r) => r,
        Err(e) => {
            for r in tracer.snapshot() {
                eprintln!(
                    "{:>12} {:<14} {:<12} dur={} arg={:#x}",
                    r.at,
                    r.track.label(),
                    format!("{:?}", r.kind),
                    r.dur,
                    r.arg
                );
            }
            panic!("run must terminate (was a livelock): {e:?}");
        }
    };
    assert_eq!(
        report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len),
        data
    );
}

#[derive(Default)]
struct Seen {
    ids: Vec<u32>,
}

fn record_id(env: &mut AmEnv<'_, Seen>, args: sp_am::AmArgs) {
    env.state.ids.push(args.a[0]);
}

/// Fabric-level duplicates (an injected `FaultKind::Duplicate` delivers a
/// second copy of the packet out of a stale fabric buffer) must be
/// absorbed by the receiver's DupDrop/re-ACK path exactly like
/// retransmit-induced duplicates: every message delivered once, in order,
/// and each extra copy counted as a duplicate drop.
#[test]
fn fabric_duplicates_are_dropped_and_reacked() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const MSGS: u32 = 12;
    let cfg = AmConfig {
        keepalive_polls: 48,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 7);
    m.configure_world(|w| {
        // Indices 0/2/4 are early requests of the one-way stream; each
        // spawns a delayed second copy arriving well after the original.
        w.switch
            .set_fault_injector(FaultInjector::dup_at([0, 2, 4]))
    });
    m.set_event_budget(2_000_000);
    let dup_dropped = Arc::new(AtomicU64::new(0));
    let dup_seen = dup_dropped.clone();
    m.spawn("sender", Seen::default(), move |am: &mut Am<'_, Seen>| {
        am.register(record_id);
        for i in 0..MSGS {
            am.request_1(1, 0, i);
        }
        am.drain_quiet(sp_sim::Dur::ms(2.0));
        am.quiesce();
    });
    m.spawn("receiver", Seen::default(), move |am: &mut Am<'_, Seen>| {
        am.register(record_id);
        am.poll_until(|s| s.ids.len() == MSGS as usize);
        // Sit through the duplicates' late arrivals.
        am.drain_quiet(sp_sim::Dur::ms(2.0));
        dup_seen.store(am.stats().dup_dropped, Ordering::Relaxed);
        assert_eq!(
            am.state().ids,
            (0..MSGS).collect::<Vec<_>>(),
            "exactly-once, in-order delivery despite fabric duplicates"
        );
    });
    let report = m.run().expect("run must terminate");
    assert_eq!(report.world.switch.stats().duplicated, 3);
    assert_eq!(
        dup_dropped.load(Ordering::Relaxed),
        3,
        "each fabric-level duplicate must hit the receiver's DupDrop path"
    );
}
