//! End-to-end protocol tests: bulk transfers, ordering, reliability under
//! injected loss, receive-FIFO overflow, and the keep-alive path.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};
use sp_switch::FaultInjector;
use std::sync::Arc;

#[derive(Default)]
struct St {
    flags: u32,
    count: u32,
}

fn bump_flag(env: &mut AmEnv<'_, St>, args: AmArgs) {
    env.state.flags |= args.a[0];
}

fn bump_count(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.count += 1;
}

/// Two-node machine with a configurable fault injector, running `sender`
/// and `receiver` programs.
fn run_pair(
    fault: Option<FaultInjector>,
    sender: impl FnOnce(&mut Am<'_, St>) + Send + 'static,
    receiver: impl FnOnce(&mut Am<'_, St>) + Send + 'static,
) -> sp_am::AmReport {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 7);
    if let Some(f) = fault {
        m.configure_world(|w| w.switch.set_fault_injector(f));
    }
    m.spawn("sender", St::default(), sender);
    m.spawn("receiver", St::default(), receiver);
    m.run().expect("simulation completes")
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

#[test]
fn store_delivers_bytes_and_runs_handler() {
    let len = 3 * 8064 + 1000; // 3 full chunks + partial
    let data = pattern(len, 1);
    let data2 = data.clone();
    let report = run_pair(
        None,
        move |am| {
            am.register(bump_flag);
            am.barrier(); // receiver allocates its landing area first
            let dst = GlobalPtr { node: 1, addr: 64 };
            am.store(dst, &data2, Some(0), &[0x5]);
        },
        move |am| {
            am.register(bump_flag);
            am.alloc(64 + len as u32);
            am.barrier();
            am.poll_until(|s| s.flags == 0x5);
        },
    );
    // Receiver's arena must hold the exact bytes (the receiver program
    // must allocate; allocation happens implicitly because node 1's arena
    // grows on write — so check content via the pool).
    let got = report.mem.read_vec(GlobalPtr { node: 1, addr: 64 }, len);
    assert_eq!(got, data);
}

#[test]
fn get_fetches_remote_bytes() {
    let len = 2 * 8064 + 17;
    let data = pattern(len, 9);
    let data2 = data.clone();
    let report = run_pair(
        None,
        move |am| {
            am.register(bump_flag);
            // Publish data in local memory, then let the peer pull it.
            let src = am.alloc(len as u32);
            am.mem().write(src.addr, &data2);
            am.barrier(); // peer may now issue the get
            am.barrier(); // wait until peer finished
        },
        move |am| {
            am.register(bump_flag);
            am.barrier();
            let dst = am.alloc(len as u32);
            am.get_blocking(GlobalPtr { node: 0, addr: 0 }, dst.addr, len as u32);
            am.barrier();
        },
    );
    let got = report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len);
    // Receiver allocated at its own addr 0 (after barrier flags region? the
    // arena was empty, so dst.addr == 0).
    assert_eq!(got, data);
}

#[test]
fn get_handler_runs_locally_on_arrival() {
    let data = pattern(500, 3);
    run_pair(
        None,
        move |am| {
            am.register(bump_flag);
            let src = am.alloc(500);
            am.mem().write(src.addr, &data);
            am.barrier();
            am.barrier();
        },
        |am| {
            am.register(bump_flag);
            am.barrier();
            let dst = am.alloc(500);
            let h = am.get(
                GlobalPtr { node: 0, addr: 0 },
                dst.addr,
                500,
                Some(0),
                &[0x9],
            );
            am.poll_until(|s| s.flags == 0x9);
            assert!(am.bulk_done(h));
            am.barrier();
        },
    );
}

#[test]
fn async_store_completion_fires_on_final_ack() {
    let data = pattern(8064 * 2, 5);
    run_pair(
        None,
        move |am| {
            am.register(bump_flag);
            am.register(bump_count);
            am.barrier();
            let dst = GlobalPtr { node: 1, addr: 0 };
            let h = am.store_async(dst, &data, Some(0), &[0x1], Some((1, [0; 4])));
            am.poll_until(|s| s.count >= 1); // local completion handler ran
            assert!(am.bulk_done(h));
            am.barrier();
        },
        |am| {
            am.register(bump_flag);
            am.register(bump_count);
            am.alloc(8064 * 2);
            am.barrier();
            am.poll_until(|s| s.flags == 0x1);
            am.barrier();
        },
    );
}

#[test]
fn many_interleaved_requests_arrive_in_order() {
    // Each request carries a sequence tag; the receiving handler checks
    // monotonicity via state.count.
    fn ordered(env: &mut AmEnv<'_, St>, args: AmArgs) {
        assert_eq!(
            args.a[0], env.state.count,
            "requests delivered out of order"
        );
        env.state.count += 1;
    }
    run_pair(
        None,
        |am| {
            am.register(ordered);
            for i in 0..500u32 {
                am.request_1(1, 0, i);
            }
            am.barrier();
        },
        |am| {
            am.register(ordered);
            am.poll_until(|s| s.count == 500);
            am.barrier();
        },
    );
}

#[test]
fn store_survives_random_loss() {
    // 2% of all packets (data, acks, nacks alike) dropped: the transfer
    // must still complete exactly, via NACK/go-back-N and keep-alive.
    let len = 5 * 8064;
    let data = pattern(len, 11);
    let data2 = data.clone();
    let cfg = AmConfig {
        keepalive_polls: 64,
        ..AmConfig::default()
    }; // recover promptly in the test
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 7);
    m.configure_world(|w| {
        w.switch
            .set_fault_injector(FaultInjector::bernoulli(0.02, 99))
    });
    m.mem().alloc(1, len as u32); // receiver landing area
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        am.store(GlobalPtr { node: 1, addr: 0 }, &data2, Some(0), &[1]);
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        am.poll_until(|s| s.flags == 1);
        // Graceful shutdown under loss: serve the sender's recovery
        // traffic (a lost final ACK) before exiting.
        am.drain(sp_sim::Dur::ms(5.0));
    });
    let report = m.run().unwrap();
    assert_eq!(
        report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len),
        data
    );
    let drops = report.world.switch.stats().dropped;
    assert!(drops > 0, "fault injector should have dropped something");
}

#[test]
fn requests_survive_targeted_loss_of_first_packet() {
    let cfg = AmConfig {
        keepalive_polls: 64,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 7);
    // Drop the very first wire packet (the first request).
    m.configure_world(|w| w.switch.set_fault_injector(FaultInjector::drop_at([0])));
    m.spawn("sender", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_count);
        for _ in 0..10 {
            am.request_1(1, 0, 0);
        }
        am.barrier();
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_count);
        am.poll_until(|s| s.count == 10);
        am.barrier();
    });
    let report = m.run().unwrap();
    // Exactly-once despite the retransmission.
    assert_eq!(report.world.switch.stats().dropped, 1);
}

#[test]
fn delivery_is_exactly_once_under_duplication_pressure() {
    // Heavy loss forces go-back-N retransmission, which re-sends packets
    // the receiver may already have. Handler executions must still be
    // exactly once per request, in order.
    fn ordered(env: &mut AmEnv<'_, St>, args: AmArgs) {
        assert_eq!(
            args.a[0], env.state.count,
            "duplicate or reorder leaked through"
        );
        env.state.count += 1;
    }
    let cfg = AmConfig {
        keepalive_polls: 64,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 3);
    m.configure_world(|w| {
        w.switch
            .set_fault_injector(FaultInjector::bernoulli(0.05, 5))
    });
    m.spawn("sender", St::default(), |am: &mut Am<'_, St>| {
        am.register(ordered);
        for i in 0..300u32 {
            am.request_1(1, 0, i);
        }
        am.quiesce(); // all 300 delivered and acknowledged
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(ordered);
        am.poll_until(|s| s.count == 300);
        am.drain(sp_sim::Dur::ms(5.0));
    });
    let report = m.run().unwrap();
    assert!(report.world.switch.stats().dropped > 0);
}

#[test]
fn recv_fifo_overflow_recovers_via_flow_control() {
    // Shrink the receiver FIFO so the request window overruns it while the
    // receiver sleeps; flow control must retransmit the losses.
    let cfg = AmConfig {
        keepalive_polls: 64,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 3);
    m.configure_world(|w| w.set_recv_capacity(1, 8));
    m.spawn("sender", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_count);
        for _ in 0..60u32 {
            am.request_1(1, 0, 0);
        }
        am.barrier();
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_count);
        // Sleep while the sender floods; the FIFO (8 entries) overflows.
        am.work(sp_sim::Dur::ms(2.0));
        am.poll_until(|s| s.count == 60);
        am.barrier();
    });
    let report = m.run().unwrap();
    assert!(
        report.world.adapter_stats(1).dropped_overflow > 0,
        "test intended to overflow the FIFO"
    );
}

#[test]
fn reordering_fault_triggers_nack_path() {
    let cfg = AmConfig {
        keepalive_polls: 64,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 3);
    m.configure_world(|w| {
        let mut inj = FaultInjector::none();
        inj.delay_indices.insert(2);
        w.switch.set_fault_injector(inj);
    });
    fn ordered(env: &mut AmEnv<'_, St>, args: AmArgs) {
        assert_eq!(args.a[0], env.state.count);
        env.state.count += 1;
    }
    m.spawn("sender", St::default(), |am: &mut Am<'_, St>| {
        am.register(ordered);
        for i in 0..20u32 {
            am.request_1(1, 0, i);
        }
        am.barrier();
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(ordered);
        am.poll_until(|s| s.count == 20);
        am.barrier();
    });
    m.run().unwrap();
}

#[test]
fn barrier_synchronizes_eight_nodes() {
    let n = 8;
    let mut m = AmMachine::new(SpConfig::thin(n), AmConfig::default(), 7);
    let times = Arc::new(parking_lot::Mutex::new(vec![0.0f64; n]));
    for node in 0..n {
        let times = times.clone();
        m.spawn(
            format!("n{node}"),
            St::default(),
            move |am: &mut Am<'_, St>| {
                // Stagger arrival; everyone must leave after the last arriver.
                am.work(sp_sim::Dur::us(50.0 * node as f64));
                am.barrier();
                times.lock()[node] = am.now().as_us();
            },
        );
    }
    m.run().unwrap();
    let times = times.lock();
    let last_arrival = 50.0 * (n - 1) as f64;
    for (i, &t) in times.iter().enumerate() {
        assert!(
            t >= last_arrival,
            "node {i} left the barrier at {t:.1}us before the last arrival"
        );
    }
}

#[test]
fn bidirectional_stores_do_not_deadlock() {
    let len = 4 * 8064;
    let a = pattern(len, 1);
    let b = pattern(len, 2);
    let (a2, b2) = (a.clone(), b.clone());
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 7);
    m.spawn("n0", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        let _dst_local = am.alloc(len as u32);
        am.barrier();
        am.store(GlobalPtr { node: 1, addr: 0 }, &a2, Some(0), &[1]);
        am.poll_until(|s| s.flags & 2 == 2);
        am.barrier();
    });
    m.spawn("n1", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        let _dst_local = am.alloc(len as u32);
        am.barrier();
        am.store(GlobalPtr { node: 0, addr: 0 }, &b2, Some(0), &[2]);
        am.poll_until(|s| s.flags & 1 == 1);
        am.barrier();
    });
    let report = m.run().unwrap();
    assert_eq!(report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len), a);
    assert_eq!(report.mem.read_vec(GlobalPtr { node: 0, addr: 0 }, len), b);
}

#[test]
fn keepalive_recovers_lost_tail() {
    // Drop the *last* data packet of a store and every explicit ack for a
    // while: only the keep-alive probe can recover.
    let len = 300; // two packets
    let data = pattern(len, 8);
    let data2 = data.clone();
    let cfg = AmConfig {
        keepalive_polls: 32,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 3);
    // Packet indices: 0 = first data packet, 1 = second (last_of_xfer).
    m.configure_world(|w| w.switch.set_fault_injector(FaultInjector::drop_at([1])));
    m.mem().alloc(1, len as u32); // receiver landing area
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        am.store(GlobalPtr { node: 1, addr: 0 }, &data2, Some(0), &[1]);
        am.barrier();
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        am.poll_until(|s| s.flags == 1);
        am.barrier();
    });
    let report = m.run().unwrap();
    assert_eq!(
        report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len),
        data
    );
}

#[test]
fn stats_reflect_traffic() {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 7);
    let stats = Arc::new(parking_lot::Mutex::new(sp_am::AmStats::default()));
    let stats2 = stats.clone();
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump_count);
        for _ in 0..10 {
            am.request_1(1, 0, 0);
        }
        am.barrier();
        *stats2.lock() = am.stats().clone();
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_count);
        am.poll_until(|s| s.count == 10);
        am.barrier();
    });
    m.run().unwrap();
    let s = stats.lock();
    assert_eq!(s.requests_sent, 10);
    assert!(s.packets_sent >= 10);
    assert_eq!(
        s.packets_retransmitted, 0,
        "lossless run must not retransmit"
    );
}

#[test]
fn chunk_pipeline_matches_figure_2() {
    // Chunk N+2 may only be transmitted after the ack for chunk N (§2.2,
    // Figure 2); verify from the measured trace of a 5-chunk store.
    use sp_trace::{Kind, Track};
    let chunks = 5usize;
    let len = chunks * sp_am::CHUNK_BYTES;
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 7);
    let tracer = m.enable_tracing(1 << 16);
    m.mem().alloc(1, len as u32);
    m.spawn("tx", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        am.store(
            GlobalPtr { node: 1, addr: 0 },
            &vec![1u8; len],
            Some(0),
            &[1],
        );
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump_flag);
        am.poll_until(|s| s.flags == 1);
    });
    m.run().unwrap();

    // The sender is node 0; chunk emissions and incoming acks land on its
    // program track. AmAck packs `cum | channel << 32` (Request = 0).
    let trace: Vec<_> = tracer
        .snapshot()
        .into_iter()
        .filter(|r| r.track == Track::program(0))
        .collect();
    let start_of = |seq: u32| {
        trace
            .iter()
            .find_map(|r| (r.kind == Kind::AmChunkStart && r.arg == seq as u64).then_some(r.at))
            .expect("chunk start recorded")
    };
    let ack_covering = |seq: u32| {
        trace
            .iter()
            .find_map(|r| {
                (r.kind == Kind::AmAck && r.arg >> 32 == 0 && r.arg as u32 > seq).then_some(r.at)
            })
            .expect("ack recorded")
    };
    // Chunks 0 and 1 go out immediately; chunk n (n >= 2) waits for the
    // ack of chunk n-2.
    assert!(
        start_of(1) < ack_covering(0),
        "second chunk must not wait for any ack"
    );
    for n in 2..chunks as u32 {
        assert!(
            start_of(n) >= ack_covering(n - 2),
            "chunk {n} started before the ack for chunk {}",
            n - 2
        );
    }
}
