//! Interrupt-driven reception (§1.1: "Interrupt-driven reception is also
//! available but not used in this analysis"): correctness, the
//! latency-vs-CPU trade-off against polling, and mixed-mode operation.

use parking_lot::Mutex;
use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine};
use std::sync::Arc;

#[derive(Default)]
struct St {
    count: u32,
}

fn pong(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.count += 1;
    env.reply_1(1, 0);
}

fn bump(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.count += 1;
}

fn rtt(interrupt_server: bool, iters: u32) -> (f64, u64) {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 42);
    let out = Arc::new(Mutex::new(0.0f64));
    let polls = Arc::new(Mutex::new(0u64));
    let out2 = out.clone();
    m.spawn("client", St::default(), move |am: &mut Am<'_, St>| {
        am.register(pong);
        am.register(bump);
        am.request_1(1, 0, 0);
        am.poll_until(|s| s.count >= 1);
        let t0 = am.now();
        for i in 0..iters {
            am.request_1(1, 0, 0);
            am.poll_until(move |s| s.count >= i + 2);
        }
        *out2.lock() = (am.now() - t0).as_us() / iters as f64;
    });
    let polls2 = polls.clone();
    m.spawn("server", St::default(), move |am: &mut Am<'_, St>| {
        am.register(pong);
        am.register(bump);
        if interrupt_server {
            am.wait_until(move |s| s.count > iters);
        } else {
            am.poll_until(move |s| s.count > iters);
        }
        *polls2.lock() = am.stats().polls;
    });
    m.run().expect("interrupt ping-pong completes");
    let r = *out.lock();
    let p = *polls.lock();
    (r, p)
}

#[test]
fn interrupt_reception_is_correct_but_slower() {
    let (poll_rtt, poll_polls) = rtt(false, 60);
    let (int_rtt, int_polls) = rtt(true, 60);
    eprintln!("polling: {poll_rtt:.1} us RTT, {poll_polls} polls");
    eprintln!("interrupts: {int_rtt:.1} us RTT, {int_polls} polls");
    // The paper's reason for polling: interrupt dispatch (~35 us) dwarfs
    // the 1.3 us poll, so latency suffers...
    assert!(
        int_rtt > poll_rtt + 20.0,
        "interrupt RTT {int_rtt:.1} should pay the dispatch cost over {poll_rtt:.1}"
    );
    // ...but the server burns drastically fewer CPU polls while idle.
    assert!(
        int_polls * 10 < poll_polls,
        "interrupt mode should poll ≫ less: {int_polls} vs {poll_polls}"
    );
}

#[test]
fn wait_message_sees_already_arrived_packets() {
    // No sleep-forever when the packet raced ahead of the wait.
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 3);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump);
        am.request_1(1, 0, 0);
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump);
        am.work(sp_sim::Dur::ms(1.0)); // the packet lands while we compute
        am.wait_until(|s| s.count >= 1);
        am.barrier();
    });
    m.run().expect("no deadlock");
}

#[test]
fn mixed_mode_nodes_interoperate() {
    // One interrupt-driven server, three polling clients.
    let n = 4;
    let mut m = AmMachine::new(SpConfig::thin(n), AmConfig::default(), 9);
    m.spawn("server", St::default(), move |am: &mut Am<'_, St>| {
        am.register(pong);
        am.register(bump);
        am.wait_until(move |s| s.count >= 3 * 10);
    });
    for i in 1..n {
        m.spawn(
            format!("client{i}"),
            St::default(),
            move |am: &mut Am<'_, St>| {
                am.register(pong);
                am.register(bump);
                for k in 0..10u32 {
                    am.request_1(0, 0, 0);
                    am.poll_until(move |s| s.count > k);
                }
            },
        );
    }
    m.run().expect("mixed-mode run completes");
}
