//! Property-based tests on protocol invariants: arbitrary payloads survive
//! arbitrary loss patterns exactly once, in order; memory round-trips;
//! bulk transfers reassemble to identity.

use proptest::prelude::*;
use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr, MemPool};
use sp_switch::FaultInjector;

#[derive(Default)]
struct St {
    done: bool,
    seen: Vec<u32>,
}

fn mark_done(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.done = true;
}

fn record(env: &mut AmEnv<'_, St>, args: AmArgs) {
    env.state.seen.push(args.a[0]);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any payload, any single-transfer length, any loss probability up to
    /// 5%: the stored bytes arrive exactly.
    #[test]
    fn store_reassembles_identity(
        len in 1usize..40_000,
        salt in any::<u8>(),
        loss_millis in 0u32..50,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i as u8) ^ salt).collect();
        let data2 = data.clone();
        let cfg = AmConfig { keepalive_polls: 64, ..AmConfig::default() };
        let mut m = AmMachine::new(SpConfig::thin(2), cfg, seed);
        if loss_millis > 0 {
            m.configure_world(|w| {
                w.switch.set_fault_injector(FaultInjector::bernoulli(loss_millis as f64 / 1000.0, seed))
            });
        }
        m.mem().alloc(1, len as u32); // receiver landing area
        m.spawn("tx", St::default(), move |am: &mut Am<'_, St>| {
            am.register(mark_done);
            am.store(GlobalPtr { node: 1, addr: 0 }, &data2, Some(0), &[]);
        });
        m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
            am.register(mark_done);
            am.poll_until(|s| s.done);
            // Serve the sender's final-ack recovery before exiting.
            am.drain_quiet(sp_sim::Dur::ms(5.0));
        });
        let report = m.run().unwrap();
        prop_assert_eq!(report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len), data);
    }

    /// Request streams are delivered exactly once, in order, under loss.
    #[test]
    fn requests_exactly_once_in_order(
        count in 1u32..150,
        loss_millis in 0u32..60,
        seed in any::<u64>(),
    ) {
        let cfg = AmConfig { keepalive_polls: 48, ..AmConfig::default() };
        let mut m = AmMachine::new(SpConfig::thin(2), cfg, seed);
        if loss_millis > 0 {
            m.configure_world(|w| {
                w.switch.set_fault_injector(FaultInjector::bernoulli(loss_millis as f64 / 1000.0, seed))
            });
        }
        m.spawn("tx", St::default(), move |am: &mut Am<'_, St>| {
            am.register(record);
            for i in 0..count {
                am.request_1(1, 0, i);
            }
            am.quiesce();
        });
        let expect: Vec<u32> = (0..count).collect();
        m.spawn("rx", St::default(), move |am: &mut Am<'_, St>| {
            am.register(record);
            am.poll_until(|s| s.seen.len() as u32 >= count);
            assert_eq!(am.state().seen, expect, "must be exactly-once, in-order");
            am.drain_quiet(sp_sim::Dur::ms(5.0));
        });
        m.run().unwrap();
    }

    /// Gets return exactly the remote bytes, under loss.
    #[test]
    fn get_roundtrip(
        len in 1usize..20_000,
        loss_millis in 0u32..40,
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(7)).collect();
        let data2 = data.clone();
        let cfg = AmConfig { keepalive_polls: 48, ..AmConfig::default() };
        let mut m = AmMachine::new(SpConfig::thin(2), cfg, seed);
        if loss_millis > 0 {
            m.configure_world(|w| {
                w.switch.set_fault_injector(FaultInjector::bernoulli(loss_millis as f64 / 1000.0, seed))
            });
        }
        m.spawn("holder", St::default(), move |am: &mut Am<'_, St>| {
            am.register(mark_done);
            let p = am.alloc(len as u32);
            am.mem().write(p.addr, &data2);
            am.barrier();
            // Serve the get until the getter confirms arrival, then wait
            // for our reply data to be fully acknowledged. Exiting on
            // `quiesce` alone is wrong: if the get *request* is lost, our
            // outbound is already idle and we'd leave the getter
            // retransmitting at a dead node forever.
            am.poll_until(|s| s.done);
            am.quiesce();
        });
        m.spawn("getter", St::default(), move |am: &mut Am<'_, St>| {
            am.register(mark_done);
            am.barrier();
            let dst = am.alloc(len as u32);
            am.get_blocking(GlobalPtr { node: 0, addr: 0 }, dst.addr, len as u32);
            am.request_1(0, 0, 0); // confirm arrival so the holder may exit
            am.drain_quiet(sp_sim::Dur::ms(5.0));
        });
        let report = m.run().unwrap();
        prop_assert_eq!(report.mem.read_vec(GlobalPtr { node: 1, addr: 0 }, len), data);
    }

    /// Memory pool read/write roundtrips for arbitrary writes.
    #[test]
    fn mempool_roundtrip(writes in prop::collection::vec((0u32..1000, prop::collection::vec(any::<u8>(), 1..64)), 1..20)) {
        let pool = MemPool::new(1);
        pool.alloc(0, 2048);
        let mut shadow = vec![0u8; 2048];
        for (addr, bytes) in &writes {
            let addr = (*addr).min(2048 - bytes.len() as u32);
            pool.write(GlobalPtr { node: 0, addr }, bytes);
            shadow[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
        }
        prop_assert_eq!(pool.read_vec(GlobalPtr { node: 0, addr: 0 }, 2048), shadow);
    }
}
