//! Bandwidth shape checks against §2.4: asymptotic payload rate ~34.3 MB/s,
//! pipelined async stores beating blocking stores at small sizes, and the
//! chunk pipeline staying busy.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};
use std::sync::Arc;

#[derive(Default)]
struct St {
    stores_done: u32,
}

fn on_store(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.stores_done += 1;
}

/// One-way bandwidth of transferring `total` bytes as `n`-byte async
/// stores, in MB/s of payload.
fn async_store_bandwidth(total: usize, n: usize) -> f64 {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 42);
    let out = Arc::new(parking_lot::Mutex::new(0.0f64));
    let out2 = out.clone();
    let count = total.div_ceil(n) as u32;
    m.spawn("tx", St::default(), move |am: &mut Am<'_, St>| {
        am.register(on_store);
        let data = vec![0xABu8; n];
        am.barrier();
        let t0 = am.now();
        let mut handles = Vec::with_capacity(count as usize);
        for i in 0..count {
            let dst = GlobalPtr {
                node: 1,
                addr: (i as u64 % 64) as u32 * 16384,
            };
            handles.push(am.store_async(dst, &data, None, &[], None));
        }
        for h in handles {
            am.wait_bulk(h);
        }
        let dt = am.now() - t0;
        *out2.lock() = (count as usize * n) as f64 / dt.as_secs() / 1e6;
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(on_store);
        // Pre-touch the landing area so arena writes are in bounds.
        am.alloc(64 * 16384 + 65536);
        am.barrier();
        am.barrier();
    });
    m.run().unwrap();
    let v = *out.lock();
    v
}

/// One-way bandwidth of `count` blocking stores of `n` bytes.
fn sync_store_bandwidth(count: u32, n: usize) -> f64 {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 42);
    let out = Arc::new(parking_lot::Mutex::new(0.0f64));
    let out2 = out.clone();
    m.spawn("tx", St::default(), move |am: &mut Am<'_, St>| {
        am.register(on_store);
        let data = vec![0xCDu8; n];
        am.barrier();
        let t0 = am.now();
        for _ in 0..count {
            am.store(GlobalPtr { node: 1, addr: 0 }, &data, None, &[]);
        }
        let dt = am.now() - t0;
        *out2.lock() = (count as usize * n) as f64 / dt.as_secs() / 1e6;
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(on_store);
        am.alloc(1 << 20);
        am.barrier();
        am.barrier();
    });
    m.run().unwrap();
    let v = *out.lock();
    v
}

#[test]
fn asymptotic_bandwidth_near_34mb_s() {
    let bw = async_store_bandwidth(1 << 19, 1 << 16); // 512 KB in 64 KB stores
    eprintln!("async store r_inf: {bw:.2} MB/s (paper: 34.3)");
    assert!(
        (32.0..36.0).contains(&bw),
        "asymptotic bandwidth {bw:.2} MB/s, want ~34.3"
    );
}

#[test]
fn async_half_power_point_is_small() {
    // Paper: n_1/2 ~ 260 bytes for pipelined async stores. At 256 bytes the
    // rate must already exceed ~half of r_inf's neighborhood (>12 MB/s),
    // and at 64 bytes it must be clearly below half.
    let at_256 = async_store_bandwidth(1 << 17, 256);
    let at_64 = async_store_bandwidth(1 << 15, 64);
    eprintln!("async store: 64B -> {at_64:.2} MB/s, 256B -> {at_256:.2} MB/s");
    assert!(
        at_256 > 12.0,
        "256-byte async stores reached only {at_256:.2} MB/s"
    );
    assert!(
        at_64 < 17.0,
        "64-byte async stores too fast ({at_64:.2} MB/s) for a ~260B n_1/2"
    );
}

#[test]
fn sync_stores_slower_at_small_sizes_but_converge() {
    // Blocking stores pay a round trip per transfer: at 1 KB they must be
    // well below the async rate, but by 64 KB the chunk pipeline hides the
    // ack latency ("virtually no distinction ... for very large sizes").
    let sync_1k = sync_store_bandwidth(64, 1024);
    let async_1k = async_store_bandwidth(1 << 16, 1024);
    let sync_64k = sync_store_bandwidth(8, 1 << 16);
    eprintln!("1KB: sync {sync_1k:.2} vs async {async_1k:.2} MB/s; 64KB sync {sync_64k:.2} MB/s");
    assert!(
        sync_1k < async_1k * 0.8,
        "blocking stores should lag at 1 KB"
    );
    assert!(
        sync_64k > 30.0,
        "64 KB blocking stores must approach r_inf, got {sync_64k:.2}"
    );
}
