//! Host-side adapter operations, with their MicroChannel / cache-flush /
//! copy costs charged to the calling node's virtual clock.
//!
//! These functions are the Rust equivalent of the few dozen lines of
//! user-level C that the paper's SP AM uses to talk to the TB2 firmware
//! (§2.1): build a packet in the send FIFO, flush it, store its length
//! across the I/O bus; poll the receive FIFO, copy entries out, flush and
//! lazily pop them. Protocol layers add their *own* software costs on top.

use crate::unit::{FifoFull, WirePacket};
use crate::world::fw_send_step;
use crate::SpCtx;
use sp_sim::Dur;
use sp_trace::{Kind, Track};

/// Write one packet into the caller's send FIFO (host copy + cache-line
/// flush are charged), *without* making it visible to the firmware — call
/// [`ring_doorbell`] to publish written packets. Returns [`FifoFull`] if no
/// entry is free (the caller should poll and retry).
pub fn write_packet<P: Send + 'static>(
    ctx: &mut SpCtx<P>,
    dst: usize,
    payload_bytes: usize,
    payload: P,
) -> Result<(), FifoFull> {
    let src = ctx.id().0;
    let pkt = WirePacket::new(src, dst, payload_bytes, payload);
    let t0 = ctx.now();
    // One fused world-access + time charge; a full FIFO charges nothing
    // (the caller never touched the hardware).
    ctx.world_then_advance(|w| {
        debug_assert!(dst < w.nodes(), "destination {dst} out of range");
        let wire_bytes = pkt.wire_bytes;
        let cost = w.cost.packet_host_cost(wire_bytes);
        match w.adapters[src].push_send(pkt) {
            Ok(()) => {
                if let Some(t) = &w.tracer {
                    t.span(
                        t0.as_ns(),
                        (t0 + cost).as_ns(),
                        Track::program(src),
                        Kind::HostWrite,
                        wire_bytes as u64,
                    );
                }
                (Ok(()), cost)
            }
            Err(e) => (Err(e), Dur::ZERO),
        }
    })
}

/// Publish the oldest `count` written-but-unpublished packets by storing
/// their lengths into the adapter's packet-length array. One MicroChannel
/// store is charged regardless of `count` — this is the paper's bulk
/// optimization of "writing the lengths of several packets at a time".
pub fn ring_doorbell<P: Send + Clone + 'static>(ctx: &mut SpCtx<P>, count: usize) {
    let src = ctx.id().0;
    let t0 = ctx.now();
    let scan = ctx.world_then_advance(|w| {
        let cost = w.cost.pio_write;
        if let Some(t) = &w.tracer {
            t.span(
                t0.as_ns(),
                (t0 + cost).as_ns(),
                Track::program(src),
                Kind::HostDoorbell,
                count as u64,
            );
        }
        (w.cfg.fw_scan_delay, cost)
    });
    let kick = ctx.world(|w| {
        let a = &mut w.adapters[src];
        let marked = a.mark_ready(count);
        debug_assert_eq!(
            marked, count,
            "doorbell for packets that were never written"
        );
        a.stats.doorbells += 1;
        if a.fw_send_active {
            false
        } else {
            a.fw_send_active = true;
            true
        }
    });
    if kick {
        let gen = ctx.now().as_ns();
        ctx.schedule_hot(scan, fw_send_step, src as u64, gen);
    }
}

/// Convenience: write one packet and immediately publish it.
pub fn send_packet<P: Send + Clone + 'static>(
    ctx: &mut SpCtx<P>,
    dst: usize,
    payload_bytes: usize,
    payload: P,
) -> Result<(), FifoFull> {
    write_packet(ctx, dst, payload_bytes, payload)?;
    ring_doorbell(ctx, 1);
    Ok(())
}

/// Number of free send-FIFO entries (a cached host-memory read; free).
pub fn send_fifo_free<P: Send + 'static>(ctx: &mut SpCtx<P>) -> usize {
    let src = ctx.id().0;
    ctx.world(|w| w.adapters[src].send_capacity - w.adapters[src].send_fifo.len())
}

/// Poll the receive FIFO for one packet.
///
/// * Empty: charges the cheap head check and returns `None`.
/// * Non-empty: charges the copy out of the FIFO entry, the cache flush of
///   the entry (preparation for wrap-around), and — every
///   `recv_pop_batch`-th packet — one MicroChannel store for the lazy pop.
pub fn poll_packet<P: Send + 'static>(ctx: &mut SpCtx<P>) -> Option<WirePacket<P>> {
    let me = ctx.id().0;
    let t0 = ctx.now();
    ctx.world_then_advance(|w| {
        let pop_batch = w.cfg.recv_pop_batch;
        let empty_check = w.cfg.recv_empty_check;
        let a = &mut w.adapters[me];
        let track = Track::program(me);
        match a.recv_fifo.pop_front() {
            None => {
                // Idle moment: flush any pending lazy pops so consumed
                // entries stop holding FIFO capacity (otherwise a partial
                // batch could pin a small FIFO at "full" forever).
                if a.recv_unpopped > 0 {
                    let flushed = a.recv_unpopped as u64;
                    a.recv_unpopped = 0;
                    a.stats.lazy_pops += 1;
                    if let Some(t) = &w.tracer {
                        let mid = t0 + empty_check;
                        t.span(t0.as_ns(), mid.as_ns(), track, Kind::HostPollEmpty, 0);
                        t.span(
                            mid.as_ns(),
                            (mid + w.cost.pio_write).as_ns(),
                            track,
                            Kind::HostLazyPop,
                            flushed,
                        );
                    }
                    (None, empty_check + w.cost.pio_write)
                } else {
                    if let Some(t) = &w.tracer {
                        t.span(
                            t0.as_ns(),
                            (t0 + empty_check).as_ns(),
                            track,
                            Kind::HostPollEmpty,
                            0,
                        );
                    }
                    (None, empty_check)
                }
            }
            Some(pkt) => {
                a.recv_unpopped += 1;
                // Copy out + flush the entry's *used* lines in preparation
                // for wrap-around.
                let copy = w.cost.packet_host_cost(pkt.wire_bytes);
                let mut cost = copy;
                let mut popped = 0u64;
                if a.recv_unpopped >= pop_batch {
                    popped = a.recv_unpopped as u64;
                    a.recv_unpopped = 0;
                    a.stats.lazy_pops += 1;
                    cost += w.cost.pio_write;
                }
                if let Some(t) = &w.tracer {
                    let mid = t0 + copy;
                    t.span(
                        t0.as_ns(),
                        mid.as_ns(),
                        track,
                        Kind::HostPollHit,
                        pkt.wire_bytes as u64,
                    );
                    if popped > 0 {
                        t.span(
                            mid.as_ns(),
                            (t0 + cost).as_ns(),
                            track,
                            Kind::HostLazyPop,
                            popped,
                        );
                    }
                    // Drain-side occupancy sample: deliveries record the
                    // rising edge, pops record the falling edge, so the
                    // FIFO-depth gauge sees both directions.
                    t.counter(
                        t0.as_ns(),
                        Track::adapter(me),
                        Kind::RecvOccupancy,
                        a.recv_fifo.len() as u64,
                    );
                }
                (Some(pkt), cost)
            }
        }
    })
}

/// True if a packet is waiting in the receive FIFO (free cached check; used
/// by layers that want to batch their poll bookkeeping).
pub fn recv_pending<P: Send + 'static>(ctx: &mut SpCtx<P>) -> bool {
    let me = ctx.id().0;
    ctx.world(|w| !w.adapters[me].recv_fifo.is_empty())
}

/// Busy-poll until a packet arrives, charging `spin_cost` per empty check
/// on top of the hardware check cost. Used by raw (protocol-less)
/// calibration benchmarks.
pub fn spin_recv<P: Send + 'static>(ctx: &mut SpCtx<P>, spin_cost: Dur) -> WirePacket<P> {
    loop {
        if let Some(pkt) = poll_packet(ctx) {
            return pkt;
        }
        ctx.advance(spin_cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{SpConfig, SpWorld};
    use sp_sim::Sim;

    fn two_node_sim() -> Sim<SpWorld<u64>> {
        Sim::new(SpWorld::new(SpConfig::thin(2)), 1)
    }

    #[test]
    fn packet_crosses_machine() {
        let mut sim = two_node_sim();
        sim.spawn("sender", |ctx| {
            send_packet(ctx, 1, 24, 0xDEAD).unwrap();
        });
        sim.spawn("receiver", |ctx| {
            let pkt = spin_recv(ctx, Dur::ns(200));
            assert_eq!(pkt.payload, 0xDEAD);
            assert_eq!(pkt.src, 0);
            assert_eq!(pkt.wire_bytes, 56);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world.adapter_stats(0).sent, 1);
        assert_eq!(report.world.adapter_stats(1).received, 1);
        // One-way raw time for a small packet: ~15-25 us on the calibrated
        // machine (the full raw round-trip target is ~47 us).
        let t = report.end_time.as_us();
        assert!((10.0..30.0).contains(&t), "one-way raw time {t:.1} us");
    }

    #[test]
    fn doorbell_batching_publishes_fifo_order() {
        let mut sim = two_node_sim();
        sim.spawn("sender", |ctx| {
            for i in 0..5u64 {
                write_packet(ctx, 1, 100, i).unwrap();
            }
            ring_doorbell(ctx, 5);
        });
        sim.spawn("receiver", |ctx| {
            for expect in 0..5u64 {
                let pkt = spin_recv(ctx, Dur::ns(200));
                assert_eq!(pkt.payload, expect, "FIFO order violated");
            }
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world.adapter_stats(0).doorbells, 1);
    }

    #[test]
    fn send_fifo_backpressure() {
        let mut sim = two_node_sim();
        sim.spawn("sender", |ctx| {
            // Fill the FIFO without ever ringing the doorbell: the 129th
            // write must fail.
            for i in 0..128u64 {
                write_packet(ctx, 1, 10, i).unwrap();
            }
            assert_eq!(write_packet(ctx, 1, 10, 999), Err(FifoFull));
            assert_eq!(send_fifo_free(ctx), 0);
            // Publishing lets the firmware drain; entries free up.
            ring_doorbell(ctx, 128);
            loop {
                ctx.advance(Dur::us(5.0));
                if send_fifo_free(ctx) > 0 {
                    break;
                }
            }
            write_packet(ctx, 1, 10, 1000).unwrap();
            ring_doorbell(ctx, 1);
        });
        sim.spawn("receiver", |ctx| {
            for _ in 0..129 {
                let _ = spin_recv(ctx, Dur::ns(200));
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn recv_overflow_drops_and_counts() {
        let mut sim = Sim::new(
            {
                let mut w: SpWorld<u64> = SpWorld::new(SpConfig::thin(2));
                w.set_recv_capacity(1, 4);
                w
            },
            1,
        );
        sim.spawn("sender", |ctx| {
            for i in 0..16u64 {
                write_packet(ctx, 1, 100, i).unwrap();
            }
            ring_doorbell(ctx, 16);
        });
        sim.spawn("receiver", |ctx| {
            // Sleep long enough that all 16 packets arrive before any poll.
            ctx.advance(Dur::ms(1.0));
            let mut got = 0;
            while let Some(_p) = poll_packet(ctx) {
                got += 1;
            }
            assert_eq!(got, 4, "only the FIFO capacity may survive");
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world.adapter_stats(1).dropped_overflow, 12);
    }

    #[test]
    fn lazy_pop_charges_one_pio_per_batch() {
        let mut sim = two_node_sim();
        sim.spawn("sender", |ctx| {
            for i in 0..32u64 {
                write_packet(ctx, 1, 32, i).unwrap();
            }
            ring_doorbell(ctx, 32);
        });
        sim.spawn("receiver", |ctx| {
            // Let all 32 packets land, then drain them back-to-back: the
            // pops must batch (one MicroChannel access per 16 packets).
            ctx.advance(Dur::ms(1.0));
            for _ in 0..32 {
                assert!(poll_packet(ctx).is_some(), "packet should be waiting");
            }
        });
        let report = sim.run().unwrap();
        // 32 packets at the default batch of 16 = exactly 2 lazy pops.
        assert_eq!(report.world.adapter_stats(1).lazy_pops, 2);
    }

    #[test]
    fn idle_poll_flushes_partial_pop_batch() {
        // Consumed-but-unpopped entries hold capacity; an empty poll must
        // release them so a small FIFO cannot wedge at "full".
        let mut sim = Sim::new(
            {
                let mut w: SpWorld<u64> = SpWorld::new(SpConfig::thin(2));
                w.set_recv_capacity(1, 4);
                w
            },
            1,
        );
        sim.spawn("sender", |ctx| {
            // First wave fills the 4-entry FIFO.
            for i in 0..4u64 {
                write_packet(ctx, 1, 16, i).unwrap();
            }
            ring_doorbell(ctx, 4);
            ctx.advance(Dur::ms(1.0));
            // Second wave must be accepted after the receiver drained.
            for i in 4..8u64 {
                write_packet(ctx, 1, 16, i).unwrap();
            }
            ring_doorbell(ctx, 4);
        });
        sim.spawn("receiver", |ctx| {
            ctx.advance(Dur::us(500.0));
            for _ in 0..4 {
                assert!(poll_packet(ctx).is_some());
            }
            // Empty poll flushes the partial pop batch (4 < 16).
            assert!(poll_packet(ctx).is_none());
            // Second wave arrives into the freed capacity.
            for _ in 0..4 {
                let _ = spin_recv(ctx, Dur::us(1.0));
            }
        });
        let report = sim.run().unwrap();
        assert_eq!(report.world.adapter_stats(1).dropped_overflow, 0);
        assert_eq!(report.world.adapter_stats(1).received, 8);
    }

    #[test]
    fn loopback_send_to_self() {
        let mut sim = Sim::new(SpWorld::new(SpConfig::thin(1)), 1);
        sim.spawn("solo", |ctx| {
            send_packet(ctx, 0, 8, 7u64).unwrap();
            let pkt = spin_recv(ctx, Dur::ns(200));
            assert_eq!(pkt.payload, 7);
            assert_eq!(pkt.src, 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn bulk_stream_hits_asymptotic_bandwidth() {
        // 2000 full packets, lengths rung in batches of 8: payload rate must
        // land on the paper's r_inf of ~34.3 MB/s.
        let mut sim = two_node_sim();
        const N: u64 = 2000;
        sim.spawn("sender", |ctx| {
            let mut written = 0u64;
            while written < N {
                let mut batch = 0;
                while batch < 8 && written < N {
                    match write_packet(ctx, 1, crate::MAX_PAYLOAD, written) {
                        Ok(()) => {
                            batch += 1;
                            written += 1;
                        }
                        Err(FifoFull) => break,
                    }
                }
                if batch > 0 {
                    ring_doorbell(ctx, batch);
                } else {
                    ctx.advance(Dur::us(2.0));
                }
            }
        });
        sim.spawn("receiver", |ctx| {
            for _ in 0..N {
                let _ = spin_recv(ctx, Dur::us(0.2));
            }
        });
        let report = sim.run().unwrap();
        let bytes = N * crate::MAX_PAYLOAD as u64;
        let mb_s = bytes as f64 / report.end_time.as_secs() / 1e6;
        assert!(
            (32.0..35.5).contains(&mb_s),
            "asymptotic payload bandwidth {mb_s:.2} MB/s, want ~34.3"
        );
    }
}
