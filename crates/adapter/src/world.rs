//! The simulated SP machine: switch + one adapter per node + host cost
//! model, plus the firmware event chains that move packets.

use crate::config::AdapterConfig;
use crate::unit::{Adapter, AdapterStats, WirePacket};
use sp_machine::CostModel;
use sp_sim::{Dur, EventCtx, ShardMsg, Shardable, Time};
use sp_switch::{RoutePolicy, Switch, SwitchConfig, Topology, Transit};
use sp_trace::{Kind, Tracer, Track};

/// Configuration of a whole simulated SP partition.
#[derive(Debug, Clone)]
pub struct SpConfig {
    /// Number of processing nodes (must equal `topology.nodes()`).
    pub nodes: usize,
    /// Host cost model (thin or wide nodes).
    pub cost: CostModel,
    /// Switch fabric parameters.
    pub switch: SwitchConfig,
    /// How the switch frames are arranged and cabled.
    pub topology: Topology,
    /// Adapter firmware/DMA parameters.
    pub adapter: AdapterConfig,
    /// Number of engine shards to run the simulation on (1 = the classic
    /// serial engine; >= 2 selects [`sp_sim::Sim::run_parallel`], which
    /// requires a single-frame, fault-free, round-robin-routed partition).
    pub parallel: usize,
}

impl SpConfig {
    /// A partition of `nodes` thin nodes on a single switch frame with
    /// default fabric and adapter parameters — the configuration of every
    /// experiment except the wide-node MPI figures.
    pub fn thin(nodes: usize) -> Self {
        SpConfig {
            nodes,
            cost: CostModel::thin(),
            switch: SwitchConfig::default(),
            topology: Topology::single_frame(nodes),
            adapter: AdapterConfig::default(),
            parallel: 1,
        }
    }

    /// A partition of `nodes` wide nodes (model 590): larger cache lines, a
    /// faster memory system and I/O bus.
    pub fn wide(nodes: usize) -> Self {
        SpConfig {
            cost: CostModel::wide(),
            ..SpConfig::thin(nodes)
        }
    }

    /// A thin-node partition of `frames` switch frames with
    /// `nodes_per_frame` nodes each, cabled all-to-all: cross-frame packets
    /// pay one extra switch stage and contend for the inter-frame cables.
    pub fn multi_frame(frames: usize, nodes_per_frame: usize) -> Self {
        let topology = Topology::multi_frame(frames, nodes_per_frame);
        SpConfig {
            nodes: topology.nodes(),
            topology,
            ..SpConfig::thin(1)
        }
    }

    /// The same partition with the given switch routing policy (builder
    /// style): `SpConfig::multi_frame(2, 4).routed(RoutePolicy::Adaptive)`.
    pub fn routed(mut self, policy: sp_switch::RoutePolicy) -> Self {
        self.switch.route_policy = policy;
        self
    }

    /// The same partition simulated on `shards` engine shards (builder
    /// style): `SpConfig::thin(8).parallel(4)`. `1` keeps the serial
    /// engine; see [`SpConfig::parallel`] for the restrictions `>= 2`
    /// imposes.
    pub fn parallel(mut self, shards: usize) -> Self {
        self.parallel = shards;
        self
    }
}

/// World state of an SP-machine simulation with protocol payload `P`.
pub struct SpWorld<P: Send + 'static> {
    // (fields below)
    /// Host cost model, read by protocol layers to charge their own costs.
    pub cost: CostModel,
    /// The switch fabric (exposed for fault injection and statistics).
    pub switch: Switch,
    pub(crate) cfg: AdapterConfig,
    pub(crate) adapters: Vec<Adapter<P>>,
    pub(crate) inflight: InflightSlab<P>,
    pub(crate) tracer: Option<Tracer>,
    /// Present when this world is one shard of a parallel run (see
    /// [`Shardable`] below); `None` on the serial engine, keeping the
    /// classic path byte-identical to the golden pins.
    pub(crate) shard: Option<SpShard<P>>,
}

/// Per-shard state of a parallel [`SpWorld`]: the shard's identity, the
/// node→shard ownership map, the precomputed conservative lookahead, and
/// the outbox of packets bound for other shards.
pub(crate) struct SpShard<P: Send + 'static> {
    pub(crate) id: usize,
    pub(crate) owner: Vec<usize>,
    pub(crate) lookahead: Dur,
    pub(crate) outbox: Vec<ShardMsg<SpMsg<P>>>,
}

/// A packet crossing shards: phase 1 (injection-link claim) already ran on
/// the source shard's fabric; the destination shard finishes the transit
/// with an ejection-link claim at `nominal` (see [`Switch::eject_phase`]).
pub struct SpMsg<P> {
    pub(crate) pkt: WirePacket<P>,
    pub(crate) nominal: Time,
}

impl<P> std::fmt::Debug for SpMsg<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpMsg")
            .field("src", &self.pkt.src)
            .field("dst", &self.pkt.dst)
            .field("wire_bytes", &self.pkt.wire_bytes)
            .field("nominal", &self.nominal)
            .finish()
    }
}

/// Parking space for packets crossing the switch: allocation-free `Hot`
/// events carry only integers, so a packet in transit parks here and its
/// slot index rides through the event chain. Slots are recycled LIFO; with
/// the single-runner discipline the reuse order is deterministic.
pub(crate) struct InflightSlab<P: Send + 'static> {
    slots: Vec<Option<WirePacket<P>>>,
    free: Vec<u32>,
}

impl<P: Send + 'static> InflightSlab<P> {
    fn new() -> Self {
        InflightSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn insert(&mut self, pkt: WirePacket<P>) -> u64 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(pkt);
                i as u64
            }
            None => {
                self.slots.push(Some(pkt));
                (self.slots.len() - 1) as u64
            }
        }
    }

    pub(crate) fn get(&self, slot: u64) -> &WirePacket<P> {
        self.slots[slot as usize]
            .as_ref()
            .expect("in-flight slot occupied")
    }

    pub(crate) fn take(&mut self, slot: u64) -> WirePacket<P> {
        let pkt = self.slots[slot as usize]
            .take()
            .expect("in-flight slot occupied");
        self.free.push(slot as u32);
        pkt
    }
}

impl<P: Send + 'static> std::fmt::Debug for SpWorld<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpWorld")
            .field("nodes", &self.adapters.len())
            .field("switch", self.switch.stats())
            .finish_non_exhaustive()
    }
}

impl<P: Send + 'static> SpWorld<P> {
    /// Build the machine.
    pub fn new(cfg: SpConfig) -> Self {
        assert_eq!(
            cfg.nodes,
            cfg.topology.nodes(),
            "node count disagrees with the topology"
        );
        let recv_capacity = cfg.adapter.recv_entries_per_node * cfg.nodes.max(1);
        let adapters = (0..cfg.nodes)
            .map(|_| Adapter::new(cfg.adapter.send_entries, recv_capacity))
            .collect();
        SpWorld {
            cost: cfg.cost,
            switch: Switch::with_topology(cfg.topology, cfg.switch),
            cfg: cfg.adapter,
            adapters,
            inflight: InflightSlab::new(),
            tracer: None,
            shard: None,
        }
    }

    /// Install a trace recorder on the whole machine: host FIFO operations,
    /// firmware send/receive, deliveries and drops, and (via the embedded
    /// switch) per-hop transit and link occupancy.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.switch.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The installed trace recorder, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Packets dropped to receive-FIFO overflow, summed over all adapters.
    pub fn dropped_overflow(&self) -> u64 {
        self.adapters.iter().map(|a| a.stats.dropped_overflow).sum()
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.adapters.len()
    }

    /// Adapter configuration.
    pub fn adapter_config(&self) -> &AdapterConfig {
        &self.cfg
    }

    /// Adapter statistics for `node`.
    pub fn adapter_stats(&self, node: usize) -> &AdapterStats {
        &self.adapters[node].stats
    }

    /// Artificially shrink node `node`'s receive-FIFO capacity (tests use
    /// this to force overflow drops cheaply).
    pub fn set_recv_capacity(&mut self, node: usize, capacity: usize) {
        self.adapters[node].recv_capacity = capacity;
    }

    /// Stall node `node`'s send engine until `until` (max-combined with any
    /// existing stall): the firmware pops no send-FIFO entry before then.
    /// Models a send-DMA or firmware hiccup.
    pub fn stall_send(&mut self, node: usize, until: sp_sim::Time) {
        let a = &mut self.adapters[node];
        a.send_stall_until = a.send_stall_until.max(until);
    }

    /// Stall node `node`'s receive engine until `until` (max-combined):
    /// arriving packets queue behind the stall as if the engine were busy.
    pub fn stall_recv(&mut self, node: usize, until: sp_sim::Time) {
        let a = &mut self.adapters[node];
        a.recv_busy_until = a.recv_busy_until.max(until);
    }

    /// Packets sitting in node `node`'s receive FIFO, delivered but not yet
    /// read by the host.
    pub fn recv_backlog(&self, node: usize) -> usize {
        self.adapters[node].recv_fifo.len()
    }
}

/// Firmware send engine: take the head ready packet, spend per-packet
/// processing + DMA time, hand it to the switch, and chain to the next
/// packet. The chain parks (`fw_send_active = false`) when the FIFO has no
/// ready head entry; the next doorbell restarts it after the scan delay.
///
/// This and the chains it feeds are allocation-free `Hot` events
/// (`fn(ctx, u64, u64)`): the node id / FIFO slot ride as the integer
/// arguments and in-flight packets park in [`InflightSlab`]. The second
/// argument is unused here.
pub(crate) fn fw_send_step<P: Send + Clone + 'static>(
    e: &mut EventCtx<'_, SpWorld<P>>,
    node: u64,
    _b: u64,
) {
    let node = node as usize;
    let now = e.now();
    // Injected send-engine stall: hold the chain (without popping) until
    // the stall expires.
    let stall = e.world().adapters[node].send_stall_until;
    if now < stall {
        e.schedule_hot_at(stall, fw_send_step, node as u64, 0);
        return;
    }
    let (pkt, done) = {
        let w = e.world();
        match w.adapters[node].pop_ready() {
            None => {
                w.adapters[node].fw_send_active = false;
                return;
            }
            Some(pkt) => {
                let occupancy = w.cfg.fw_send_per_packet + w.cfg.dma(pkt.wire_bytes);
                let done = now + occupancy;
                if let Some(t) = &w.tracer {
                    t.span(
                        now.as_ns(),
                        done.as_ns(),
                        Track::adapter(node),
                        Kind::FwSend,
                        pkt.wire_bytes as u64,
                    );
                }
                (pkt, done)
            }
        }
    };
    let dst = pkt.dst;
    // Sharded mode splits every non-loopback transit in two: the injection
    // link is claimed here on the source shard, and the destination shard
    // finishes the ejection exactly one lookahead later (a sync event, so
    // the counted-event stream stays identical to the serial engine).
    // Loopback never leaves the shard and keeps the serial path.
    enum Routed {
        Deliver {
            slot: u64,
            at: Time,
            dup: Option<(u64, Time)>,
        },
        Dropped,
        LocalEject {
            slot: u64,
            ts: Time,
            nominal: Time,
        },
        RemoteEject,
    }
    let routed = {
        let w = e.world();
        w.adapters[node].stats.sent += 1;
        let sharded = match &w.shard {
            Some(sh) if dst != node => Some((now + sh.lookahead, sh.id, sh.owner[dst])),
            _ => None,
        };
        match sharded {
            Some((ts, my_shard, dst_shard)) => {
                let (_, nominal) = w.switch.inject_phase(node, dst, pkt.wire_bytes, done);
                if dst_shard == my_shard {
                    let slot = w.inflight.insert(pkt);
                    Routed::LocalEject { slot, ts, nominal }
                } else {
                    let msg = SpMsg { pkt, nominal };
                    let sh = w.shard.as_mut().expect("sharded implies shard");
                    sh.outbox.push(ShardMsg { ts, dst_shard, msg });
                    Routed::RemoteEject
                }
            }
            None => match w.switch.transit(node, dst, pkt.wire_bytes, done) {
                Transit::Delivered { at, dup_at, .. } => {
                    // A fabric-duplicated packet reaches the receive engine
                    // twice: the second, identical copy parks in its own
                    // slab slot.
                    let dup = dup_at.map(|d| (w.inflight.insert(pkt.clone()), d));
                    let slot = w.inflight.insert(pkt);
                    Routed::Deliver { slot, at, dup }
                }
                Transit::Dropped => Routed::Dropped,
            },
        }
    };
    match routed {
        Routed::Deliver { slot, at, dup } => {
            if let Some((dup_slot, dup_at)) = dup {
                e.schedule_hot_at(dup_at, fw_recv_step, dst as u64, dup_slot);
            }
            e.schedule_hot_at(at, fw_recv_step, dst as u64, slot);
        }
        Routed::Dropped => {}
        Routed::LocalEject { slot, ts, nominal } => {
            e.schedule_sync_hot_at(ts, eject_step, slot, nominal.as_ns());
        }
        Routed::RemoteEject => {}
    }
    e.schedule_hot_at(done, fw_send_step, node as u64, 0);
}

/// Phase 2 of a sharded transit, running on the *destination* shard as a
/// sync event: claim the ejection link at `nominal` and chain into the
/// (counted) firmware receive step — so the counted-event stream matches
/// the serial engine event for event.
fn eject_step<P: Send + Clone + 'static>(
    e: &mut EventCtx<'_, SpWorld<P>>,
    slot: u64,
    nominal_ns: u64,
) {
    eject_and_recv(e, slot, Time(nominal_ns));
}

/// Shared tail of phase 2 (local [`eject_step`] and cross-shard
/// [`Shardable::apply_msg`]): finish the switch transit and schedule the
/// firmware receive at the delivery instant. The claim depends only on
/// `nominal` and the ejection link's occupancy — not on the instant this
/// event executes — so running it one lookahead after injection reproduces
/// the serial claim exactly as long as per-link claim order is preserved.
fn eject_and_recv<P: Send + 'static>(e: &mut EventCtx<'_, SpWorld<P>>, slot: u64, nominal: Time) {
    let (dst, at) = {
        let w = e.world();
        let pkt = w.inflight.get(slot);
        let (src, dst, wire_bytes) = (pkt.src, pkt.dst, pkt.wire_bytes);
        let ser = w.switch.serialization(wire_bytes);
        let hop_start = nominal - w.switch.config().hop_latency - ser;
        let at = w
            .switch
            .eject_phase(src, dst, wire_bytes, nominal, hop_start);
        (dst, at)
    };
    e.schedule_hot_at(at, fw_recv_step, dst as u64, slot);
}

/// Firmware receive engine: per-packet processing + DMA into the host-memory
/// receive FIFO; drops on overflow. `slot` is the packet's [`InflightSlab`]
/// index.
pub(crate) fn fw_recv_step<P: Send + 'static>(
    e: &mut EventCtx<'_, SpWorld<P>>,
    dst: u64,
    slot: u64,
) {
    let now = e.now();
    let finish = {
        let w = e.world();
        let wire_bytes = w.inflight.get(slot).wire_bytes;
        let start = now.max(w.adapters[dst as usize].recv_busy_until);
        let finish = start + w.cfg.fw_recv_per_packet + w.cfg.dma(wire_bytes);
        w.adapters[dst as usize].recv_busy_until = finish;
        if let Some(t) = &w.tracer {
            t.span(
                start.as_ns(),
                finish.as_ns(),
                Track::adapter(dst as usize),
                Kind::FwRecv,
                wire_bytes as u64,
            );
        }
        finish
    };
    e.schedule_hot_at(finish, deliver_step, dst, slot);
}

/// Final hop: unpark the slab slot into the destination's receive FIFO.
fn deliver_step<P: Send + 'static>(e: &mut EventCtx<'_, SpWorld<P>>, dst: u64, slot: u64) {
    let now = e.now();
    let accepted = {
        let w = e.world();
        let pkt = w.inflight.take(slot);
        let wire_bytes = pkt.wire_bytes as u64;
        let dst = dst as usize;
        let accepted = w.adapters[dst].deliver(pkt);
        if let Some(t) = &w.tracer {
            let track = Track::adapter(dst);
            if accepted {
                t.instant(now.as_ns(), track, Kind::RecvDeliver, wire_bytes);
                let occupancy = w.adapters[dst].recv_occupancy() as u64;
                t.counter(now.as_ns(), track, Kind::RecvOccupancy, occupancy);
            } else {
                t.instant(now.as_ns(), track, Kind::RecvDrop, wire_bytes);
            }
        }
        accepted
    };
    if accepted {
        // Interrupt line: wake the host if it is sleeping on arrival
        // (a latched signal otherwise; pure-polling layers never park,
        // so this is free for them).
        e.unpark(sp_sim::NodeId(dst as usize));
    }
}

/// Sharding the SP machine for the conservative-parallel engine.
///
/// The conservative lookahead is the minimum virtual-time distance between
/// a source-shard event and its earliest possible effect on another shard.
/// The only cross-shard channel is a packet transit, whose ejection-link
/// claim happens at `nominal >= send_event_time + fw_send_per_packet +
/// dma(wire) + serialization(wire) + hop_latency`; with `serialization =
/// for_bytes(wire) + packet_gap` and `dma, for_bytes > 0`, the bound
/// `fw_send_per_packet + packet_gap + hop_latency` (≈ 4.63 µs at default
/// calibration) is strictly below every nominal — so phase 2 scheduled at
/// exactly `send_event_time + lookahead` both satisfies the engine's
/// conservative-advancement contract and still precedes the delivery
/// instant it computes.
///
/// Per-ejection-link claim order is what makes the two-phase transit
/// reproduce the serial fabric: phase-2 timestamps are the send-event
/// times shifted by the constant lookahead, so claims replay in the serial
/// engine's event order (ties between *different* source nodes landing on
/// the same destination in the same nanosecond are resolved by shard
/// deposit order instead of global event sequence — the equivalence suite
/// pins real workloads to rule this out where it matters).
impl<P: Send + Clone + 'static> Shardable for SpWorld<P> {
    type Msg = SpMsg<P>;

    fn lookahead(&self) -> Dur {
        self.cfg.fw_send_per_packet
            + self.switch.config().packet_gap
            + self.switch.config().hop_latency
    }

    fn split(self, num_shards: usize, owner: &[usize]) -> Vec<Self> {
        let topo = self.switch.topology().clone();
        assert_eq!(
            topo.frames(),
            1,
            "parallel SpWorld requires a single-frame topology \
             (cross-frame cables would couple shards below the lookahead)"
        );
        assert_eq!(
            self.switch.config().route_policy,
            RoutePolicy::RoundRobin,
            "parallel SpWorld requires round-robin routing \
             (adaptive routing reads link occupancy across shards)"
        );
        assert!(
            self.switch.fault_free(),
            "parallel SpWorld requires a fault-free fabric \
             (per-shard injectors would classify disjoint packet substreams)"
        );
        let nodes = self.adapters.len();
        let recv_capacity = self.cfg.recv_entries_per_node * nodes.max(1);
        let lookahead = Shardable::lookahead(&self);
        let mut shards: Vec<SpWorld<P>> = (0..num_shards)
            .map(|sid| {
                let mut switch = Switch::with_topology(topo.clone(), self.switch.config().clone());
                if let Some(t) = &self.tracer {
                    switch.set_tracer(t.clone());
                }
                SpWorld {
                    cost: self.cost.clone(),
                    switch,
                    cfg: self.cfg.clone(),
                    // Full-length vector so node indexing works everywhere;
                    // only owned slots (overwritten below) are ever touched.
                    adapters: (0..nodes)
                        .map(|_| Adapter::new(self.cfg.send_entries, recv_capacity))
                        .collect(),
                    inflight: InflightSlab::new(),
                    tracer: self.tracer.clone(),
                    shard: Some(SpShard {
                        id: sid,
                        owner: owner.to_vec(),
                        lookahead,
                        outbox: Vec::new(),
                    }),
                }
            })
            .collect();
        // Move each node's (possibly pre-configured: shrunken FIFO,
        // injected stall) adapter onto its owner shard.
        for (i, adapter) in self.adapters.into_iter().enumerate() {
            shards[owner[i]].adapters[i] = adapter;
        }
        shards
    }

    fn merge(parts: Vec<Self>) -> Self {
        let mut parts = parts.into_iter();
        let mut base = parts.next().expect("at least one shard");
        let owner = base
            .shard
            .take()
            .expect("shard 0 carries the owner map")
            .owner;
        for (sid, mut part) in parts.enumerate() {
            let sid = sid + 1;
            part.shard = None;
            base.switch.absorb_stats(part.switch.stats());
            for (i, adapter) in part.adapters.into_iter().enumerate() {
                if owner[i] == sid {
                    base.adapters[i] = adapter;
                }
            }
        }
        base
    }

    fn apply_msg(e: &mut EventCtx<'_, Self>, msg: SpMsg<P>) {
        let slot = e.world().inflight.insert(msg.pkt);
        eject_and_recv(e, slot, msg.nominal);
    }

    fn take_messages(&mut self) -> Vec<ShardMsg<SpMsg<P>>> {
        match &mut self.shard {
            Some(sh) => std::mem::take(&mut sh.outbox),
            None => Vec::new(),
        }
    }
}
