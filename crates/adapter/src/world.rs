//! The simulated SP machine: switch + one adapter per node + host cost
//! model, plus the firmware event chains that move packets.

use crate::config::AdapterConfig;
use crate::unit::{Adapter, AdapterStats, WirePacket};
use sp_machine::CostModel;
use sp_sim::{Dur, EventCtx, ShardMsg, Shardable, Time};
use sp_switch::{LinkId, RoutePolicy, StagedTransit, Switch, SwitchConfig, Topology, Transit};
use sp_trace::{Kind, Tracer, Track};

/// Configuration of a whole simulated SP partition.
#[derive(Debug, Clone)]
pub struct SpConfig {
    /// Number of processing nodes (must equal `topology.nodes()`).
    pub nodes: usize,
    /// Host cost model (thin or wide nodes).
    pub cost: CostModel,
    /// Switch fabric parameters.
    pub switch: SwitchConfig,
    /// How the switch frames are arranged and cabled.
    pub topology: Topology,
    /// Adapter firmware/DMA parameters.
    pub adapter: AdapterConfig,
    /// Number of engine shards to run the simulation on (1 = the classic
    /// serial engine; >= 2 selects [`sp_sim::Sim::run_parallel`]).
    /// Multi-frame topologies, fault injection, and pre-scheduled world
    /// events all run sharded with results bit-identical to serial; the
    /// one remaining restriction is round-robin routing (the adaptive
    /// policy reads link occupancy across shards).
    pub parallel: usize,
}

impl SpConfig {
    /// A partition of `nodes` thin nodes on a single switch frame with
    /// default fabric and adapter parameters — the configuration of every
    /// experiment except the wide-node MPI figures.
    pub fn thin(nodes: usize) -> Self {
        SpConfig {
            nodes,
            cost: CostModel::thin(),
            switch: SwitchConfig::default(),
            topology: Topology::single_frame(nodes),
            adapter: AdapterConfig::default(),
            parallel: 1,
        }
    }

    /// A partition of `nodes` wide nodes (model 590): larger cache lines, a
    /// faster memory system and I/O bus.
    pub fn wide(nodes: usize) -> Self {
        SpConfig {
            cost: CostModel::wide(),
            ..SpConfig::thin(nodes)
        }
    }

    /// A thin-node partition of `frames` switch frames with
    /// `nodes_per_frame` nodes each, cabled all-to-all: cross-frame packets
    /// pay one extra switch stage and contend for the inter-frame cables.
    pub fn multi_frame(frames: usize, nodes_per_frame: usize) -> Self {
        let topology = Topology::multi_frame(frames, nodes_per_frame);
        SpConfig {
            nodes: topology.nodes(),
            topology,
            ..SpConfig::thin(1)
        }
    }

    /// A thin-node partition on a folded-Clos fat tree of full
    /// frames-of-16: `radix^(levels-1)` leaf frames under `levels - 1`
    /// spine tiers, thinned per tier by `oversubscription`. Cross-frame
    /// packets climb to the lowest common spine group and back down,
    /// paying one switch stage per up/down link crossed.
    pub fn fat_tree(levels: usize, radix: usize, oversubscription: usize) -> Self {
        SpConfig::with_topology(Topology::fat_tree(levels, radix, oversubscription))
    }

    /// A thin-node partition over an arbitrary prebuilt [`Topology`].
    pub fn with_topology(topology: Topology) -> Self {
        SpConfig {
            nodes: topology.nodes(),
            topology,
            ..SpConfig::thin(1)
        }
    }

    /// The same partition with the given switch routing policy (builder
    /// style): `SpConfig::multi_frame(2, 4).routed(RoutePolicy::Adaptive)`.
    pub fn routed(mut self, policy: sp_switch::RoutePolicy) -> Self {
        self.switch.route_policy = policy;
        self
    }

    /// The same partition simulated on `shards` engine shards (builder
    /// style): `SpConfig::thin(8).parallel(4)`. `1` keeps the serial
    /// engine; see [`SpConfig::parallel`] for the restrictions `>= 2`
    /// imposes.
    pub fn parallel(mut self, shards: usize) -> Self {
        self.parallel = shards;
        self
    }
}

/// World state of an SP-machine simulation with protocol payload `P`.
pub struct SpWorld<P: Send + 'static> {
    // (fields below)
    /// Host cost model, read by protocol layers to charge their own costs.
    pub cost: CostModel,
    /// The switch fabric (exposed for fault injection and statistics).
    pub switch: Switch,
    pub(crate) cfg: AdapterConfig,
    pub(crate) adapters: Vec<Adapter<P>>,
    pub(crate) inflight: InflightSlab<P>,
    pub(crate) tracer: Option<Tracer>,
    /// Present when this world is one shard of a parallel run (see
    /// [`Shardable`] below); `None` on the serial engine, keeping the
    /// classic path byte-identical to the golden pins.
    pub(crate) shard: Option<SpShard<P>>,
}

/// Per-shard state of a parallel [`SpWorld`]: the shard's identity, the
/// node→shard ownership map, the precomputed conservative lookahead (which
/// is also the per-stage timestamp shift), the staging mode, and the
/// outbox of packets bound for other shards.
pub(crate) struct SpShard<P: Send + 'static> {
    pub(crate) owner: Vec<usize>,
    pub(crate) lookahead: Dur,
    pub(crate) mode: ShardMode,
    pub(crate) outbox: Vec<ShardMsg<SpMsg<P>>>,
}

/// How the sharded fabric stages a transit (see the [`Shardable`] impl's
/// docs for the lookahead derivation of each mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardMode {
    /// Single frame, no fabric-wide injector: the origin classifies (its
    /// injection-link injector lives on the source shard) and claims the
    /// injection link; one message hop later the destination shard
    /// finishes at the ejection link.
    TwoPhase,
    /// Multi-frame topology and/or a live fabric-wide injector: the origin
    /// only claims the injection link; the fabric shard
    /// ([`FABRIC_SHARD`]) owns the fabric-wide injector, every
    /// injection-link injector, and the cables, so it classifies those
    /// streams — and claims any cable stage — in serial order; the
    /// destination shard finishes at the ejection link two hops later.
    Pipelined,
}

/// The shard that runs the pipelined mode's fabric stage. Any fixed shard
/// works (the stage only needs *one* owner for the fabric-wide injector,
/// the injection-link injectors, and the cables); shard 0 always exists.
pub(crate) const FABRIC_SHARD: usize = 0;

/// A packet advancing through the sharded fabric's staged pipeline. The
/// carried [`StagedTransit`] holds the original (unshifted) fabric
/// timestamps and accumulated fault verdicts, so every stage classifies
/// and claims with inputs bit-identical to the serial walk no matter which
/// shard executes it.
pub enum SpMsg<P> {
    /// Final stage, on the shard owning the destination node: classify and
    /// claim the ejection link, then chain into firmware receive.
    Eject {
        /// The in-flight packet.
        pkt: WirePacket<P>,
        /// Carried fabric state (see [`Switch::eject_phase`]).
        t: StagedTransit,
    },
    /// Pipelined middle stage, on the fabric shard: fabric-wide and
    /// injection-link classification plus the cable stage of a cross-frame
    /// path (see [`Switch::fabric_phase`]).
    Fabric {
        /// The in-flight packet.
        pkt: WirePacket<P>,
        /// Carried fabric state.
        t: StagedTransit,
        /// The generating send event's ordering stamp, re-used as the
        /// forwarded ejection message's [`ShardMsg::seq`].
        gen: u64,
    },
}

impl<P> std::fmt::Debug for SpMsg<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (stage, pkt, t) = match self {
            SpMsg::Eject { pkt, t } => ("Eject", pkt, t),
            SpMsg::Fabric { pkt, t, .. } => ("Fabric", pkt, t),
        };
        f.debug_struct(stage)
            .field("src", &pkt.src)
            .field("dst", &pkt.dst)
            .field("wire_bytes", &pkt.wire_bytes)
            .field("arrival", &t.arrival)
            .finish()
    }
}

/// Parking space for packets crossing the switch: allocation-free `Hot`
/// events carry only integers, so a packet in transit parks here and its
/// slot index rides through the event chain. Slots are recycled LIFO; with
/// the single-runner discipline the reuse order is deterministic.
pub(crate) struct InflightSlab<P: Send + 'static> {
    slots: Vec<Option<WirePacket<P>>>,
    free: Vec<u32>,
}

impl<P: Send + 'static> InflightSlab<P> {
    fn new() -> Self {
        InflightSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn insert(&mut self, pkt: WirePacket<P>) -> u64 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(pkt);
                i as u64
            }
            None => {
                self.slots.push(Some(pkt));
                (self.slots.len() - 1) as u64
            }
        }
    }

    pub(crate) fn get(&self, slot: u64) -> &WirePacket<P> {
        self.slots[slot as usize]
            .as_ref()
            .expect("in-flight slot occupied")
    }

    pub(crate) fn take(&mut self, slot: u64) -> WirePacket<P> {
        let pkt = self.slots[slot as usize]
            .take()
            .expect("in-flight slot occupied");
        self.free.push(slot as u32);
        pkt
    }
}

impl<P: Send + 'static> std::fmt::Debug for SpWorld<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpWorld")
            .field("nodes", &self.adapters.len())
            .field("switch", self.switch.stats())
            .finish_non_exhaustive()
    }
}

impl<P: Send + 'static> SpWorld<P> {
    /// Build the machine.
    pub fn new(cfg: SpConfig) -> Self {
        assert_eq!(
            cfg.nodes,
            cfg.topology.nodes(),
            "node count disagrees with the topology"
        );
        let recv_capacity = cfg.adapter.recv_entries_per_node * cfg.nodes.max(1);
        let adapters = (0..cfg.nodes)
            .map(|_| Adapter::new(cfg.adapter.send_entries, recv_capacity))
            .collect();
        SpWorld {
            cost: cfg.cost,
            switch: Switch::with_topology(cfg.topology, cfg.switch),
            cfg: cfg.adapter,
            adapters,
            inflight: InflightSlab::new(),
            tracer: None,
            shard: None,
        }
    }

    /// Install a trace recorder on the whole machine: host FIFO operations,
    /// firmware send/receive, deliveries and drops, and (via the embedded
    /// switch) per-hop transit and link occupancy.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.switch.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The installed trace recorder, if any.
    pub fn tracer(&self) -> Option<Tracer> {
        self.tracer.clone()
    }

    /// Packets dropped to receive-FIFO overflow, summed over all adapters.
    pub fn dropped_overflow(&self) -> u64 {
        self.adapters.iter().map(|a| a.stats.dropped_overflow).sum()
    }

    /// Number of nodes in the partition.
    pub fn nodes(&self) -> usize {
        self.adapters.len()
    }

    /// Adapter configuration.
    pub fn adapter_config(&self) -> &AdapterConfig {
        &self.cfg
    }

    /// Adapter statistics for `node`.
    pub fn adapter_stats(&self, node: usize) -> &AdapterStats {
        &self.adapters[node].stats
    }

    /// Artificially shrink node `node`'s receive-FIFO capacity (tests use
    /// this to force overflow drops cheaply).
    pub fn set_recv_capacity(&mut self, node: usize, capacity: usize) {
        self.adapters[node].recv_capacity = capacity;
    }

    /// Stall node `node`'s send engine until `until` (max-combined with any
    /// existing stall): the firmware pops no send-FIFO entry before then.
    /// Models a send-DMA or firmware hiccup.
    pub fn stall_send(&mut self, node: usize, until: sp_sim::Time) {
        let a = &mut self.adapters[node];
        a.send_stall_until = a.send_stall_until.max(until);
    }

    /// Stall node `node`'s receive engine until `until` (max-combined):
    /// arriving packets queue behind the stall as if the engine were busy.
    pub fn stall_recv(&mut self, node: usize, until: sp_sim::Time) {
        let a = &mut self.adapters[node];
        a.recv_busy_until = a.recv_busy_until.max(until);
    }

    /// Packets sitting in node `node`'s receive FIFO, delivered but not yet
    /// read by the host.
    pub fn recv_backlog(&self, node: usize) -> usize {
        self.adapters[node].recv_fifo.len()
    }

    /// Crash-wipe node `node`'s adapter: written-but-unsent send-FIFO
    /// entries and delivered-but-unread receive-FIFO entries are lost, as
    /// the hardware queues of a crashed host would be. Returns `(send
    /// entries lost, recv entries lost)`; both are also accumulated on
    /// [`AdapterStats::wiped_send`]/[`AdapterStats::wiped_recv`]. Strictly
    /// node-local state, so the operation is shard-safe: each shard owns
    /// its nodes' adapters. Packets already in flight through the switch
    /// are *not* wiped — they arrive at the restarted node and are the
    /// protocol layer's (epoch check's) problem.
    pub fn wipe_node(&mut self, node: usize) -> (u64, u64) {
        let a = &mut self.adapters[node];
        let send_lost = a.send_fifo.len() as u64;
        let recv_lost = a.recv_fifo.len() as u64;
        a.send_fifo.clear();
        a.recv_fifo.clear();
        a.recv_unpopped = 0;
        a.stats.wiped_send += send_lost;
        a.stats.wiped_recv += recv_lost;
        (send_lost, recv_lost)
    }

    /// Whether a parallel split of this world takes the pipelined staging
    /// (three stages through the fabric shard) instead of the two-phase
    /// staging. Multi-frame topologies need the fabric shard for cable
    /// claims; a live fabric-wide injector needs it so one shard
    /// classifies the whole packet stream in serial order.
    fn pipelined_split(&self) -> bool {
        self.switch.topology().frames() > 1 || !self.switch.global_fault_is_noop()
    }
}

/// Firmware send engine: take the head ready packet, spend per-packet
/// processing + DMA time, hand it to the switch, and chain to the next
/// packet. The chain parks (`fw_send_active = false`) when the FIFO has no
/// ready head entry; the next doorbell restarts it after the scan delay.
///
/// This and the chains it feeds are allocation-free `Hot` events
/// (`fn(ctx, u64, u64)`): the node id / FIFO slot ride as the integer
/// arguments and in-flight packets park in [`InflightSlab`]. The second
/// argument, `gen`, is the instant this event was *scheduled* (as ns):
/// the order the serial engine assigns event sequence numbers, which the
/// sharded mode stamps into outbound [`ShardMsg::seq`] so same-nanosecond
/// sends from different shards claim shared links in serial order.
pub(crate) fn fw_send_step<P: Send + Clone + 'static>(
    e: &mut EventCtx<'_, SpWorld<P>>,
    node: u64,
    gen: u64,
) {
    let node = node as usize;
    let now = e.now();
    // Injected send-engine stall: hold the chain (without popping) until
    // the stall expires.
    let stall = e.world().adapters[node].send_stall_until;
    if now < stall {
        e.schedule_hot_at(stall, fw_send_step, node as u64, now.as_ns());
        return;
    }
    let (pkt, done) = {
        let w = e.world();
        match w.adapters[node].pop_ready() {
            None => {
                w.adapters[node].fw_send_active = false;
                return;
            }
            Some(pkt) => {
                let occupancy = w.cfg.fw_send_per_packet + w.cfg.dma(pkt.wire_bytes);
                let done = now + occupancy;
                if let Some(t) = &w.tracer {
                    t.span(
                        now.as_ns(),
                        done.as_ns(),
                        Track::adapter(node),
                        Kind::FwSend,
                        pkt.wire_bytes as u64,
                    );
                }
                (pkt, done)
            }
        }
    };
    let dst = pkt.dst;
    // Sharded mode stages every non-loopback transit through the outbox:
    // the injection link is claimed here on the source shard, and the
    // remaining stages — the pipelined mode's fabric stage, then the
    // ejection-link claim on the destination's owner — each run exactly
    // one lookahead later as barrier-applied sync events, so the counted
    // event stream stays identical to the serial engine. Every eject
    // (same-shard destinations included) rides the outbox so the barrier's
    // `(ts, seq)` sort orders all claims of a shared link the way the
    // serial event queue would. Loopback never enters the fabric and keeps
    // the serial path.
    enum Routed {
        Deliver {
            slot: u64,
            at: Time,
            dup: Option<(u64, Time)>,
        },
        Dropped,
        Staged,
    }
    let routed = {
        let w = e.world();
        w.adapters[node].stats.sent += 1;
        let sharded = match &w.shard {
            Some(sh) if dst != node => Some((now + sh.lookahead, sh.mode)),
            _ => None,
        };
        match sharded {
            Some((ts, mode)) => {
                let classify = mode == ShardMode::TwoPhase;
                match w
                    .switch
                    .origin_phase(node, dst, pkt.wire_bytes, done, classify)
                {
                    // Dropped crossing the injection link (two-phase mode
                    // classifies it here, on the owning shard).
                    None => Routed::Dropped,
                    Some(t) => {
                        let sh = w.shard.as_mut().expect("sharded implies shard");
                        let (dst_shard, msg) = match mode {
                            ShardMode::TwoPhase => (sh.owner[dst], SpMsg::Eject { pkt, t }),
                            ShardMode::Pipelined => (FABRIC_SHARD, SpMsg::Fabric { pkt, t, gen }),
                        };
                        sh.outbox.push(ShardMsg {
                            ts,
                            seq: gen,
                            dst_shard,
                            msg,
                        });
                        Routed::Staged
                    }
                }
            }
            None => match w.switch.transit(node, dst, pkt.wire_bytes, done) {
                Transit::Delivered { at, dup_at, .. } => {
                    // A fabric-duplicated packet reaches the receive engine
                    // twice: the second, identical copy parks in its own
                    // slab slot.
                    let dup = dup_at.map(|d| (w.inflight.insert(pkt.clone()), d));
                    let slot = w.inflight.insert(pkt);
                    Routed::Deliver { slot, at, dup }
                }
                Transit::Dropped => Routed::Dropped,
            },
        }
    };
    match routed {
        Routed::Deliver { slot, at, dup } => {
            if let Some((dup_slot, dup_at)) = dup {
                e.schedule_hot_at(dup_at, fw_recv_step, dst as u64, dup_slot);
            }
            e.schedule_hot_at(at, fw_recv_step, dst as u64, slot);
        }
        Routed::Dropped | Routed::Staged => {}
    }
    e.schedule_hot_at(done, fw_send_step, node as u64, now.as_ns());
}

/// Final stage of a staged transit, applied on the destination shard as a
/// barrier sync event: classify and claim the ejection link with the
/// carried serial-time inputs, then chain into the (counted) firmware
/// receive step. The claim depends only on the carried [`StagedTransit`]
/// and the ejection link's occupancy — not on the instant this event
/// executes — so running it a constant shift after injection reproduces
/// the serial claim exactly, as long as per-link claim order is preserved
/// (which the barrier's `(ts, seq)` sort guarantees).
fn eject_and_recv<P: Send + Clone + 'static>(
    e: &mut EventCtx<'_, SpWorld<P>>,
    pkt: WirePacket<P>,
    t: StagedTransit,
) {
    let dst = t.dst as u64;
    let (slot, at, dup) = {
        let w = e.world();
        match w.switch.eject_phase(t) {
            // Dropped crossing the ejection link.
            None => return,
            Some((at, dup_at)) => {
                let dup = dup_at.map(|d| (w.inflight.insert(pkt.clone()), d));
                let slot = w.inflight.insert(pkt);
                (slot, at, dup)
            }
        }
    };
    if let Some((dup_slot, dup_at)) = dup {
        e.schedule_hot_at(dup_at, fw_recv_step, dst, dup_slot);
    }
    e.schedule_hot_at(at, fw_recv_step, dst, slot);
}

/// Firmware receive engine: per-packet processing + DMA into the host-memory
/// receive FIFO; drops on overflow. `slot` is the packet's [`InflightSlab`]
/// index.
pub(crate) fn fw_recv_step<P: Send + 'static>(
    e: &mut EventCtx<'_, SpWorld<P>>,
    dst: u64,
    slot: u64,
) {
    let now = e.now();
    let finish = {
        let w = e.world();
        let wire_bytes = w.inflight.get(slot).wire_bytes;
        let start = now.max(w.adapters[dst as usize].recv_busy_until);
        let finish = start + w.cfg.fw_recv_per_packet + w.cfg.dma(wire_bytes);
        w.adapters[dst as usize].recv_busy_until = finish;
        if let Some(t) = &w.tracer {
            t.span(
                start.as_ns(),
                finish.as_ns(),
                Track::adapter(dst as usize),
                Kind::FwRecv,
                wire_bytes as u64,
            );
        }
        finish
    };
    e.schedule_hot_at(finish, deliver_step, dst, slot);
}

/// Final hop: unpark the slab slot into the destination's receive FIFO.
fn deliver_step<P: Send + 'static>(e: &mut EventCtx<'_, SpWorld<P>>, dst: u64, slot: u64) {
    let now = e.now();
    let accepted = {
        let w = e.world();
        let pkt = w.inflight.take(slot);
        let wire_bytes = pkt.wire_bytes as u64;
        let dst = dst as usize;
        let accepted = w.adapters[dst].deliver(pkt);
        if let Some(t) = &w.tracer {
            let track = Track::adapter(dst);
            if accepted {
                t.instant(now.as_ns(), track, Kind::RecvDeliver, wire_bytes);
                let occupancy = w.adapters[dst].recv_occupancy() as u64;
                t.counter(now.as_ns(), track, Kind::RecvOccupancy, occupancy);
            } else {
                t.instant(now.as_ns(), track, Kind::RecvDrop, wire_bytes);
            }
        }
        accepted
    };
    if accepted {
        // Interrupt line: wake the host if it is sleeping on arrival
        // (a latched signal otherwise; pure-polling layers never park,
        // so this is free for them).
        e.unpark(sp_sim::NodeId(dst as usize));
    }
}

/// Sharding the SP machine for the conservative-parallel engine.
///
/// The conservative lookahead is the minimum virtual-time distance between
/// a source-shard event and its earliest possible effect on another shard.
/// The only cross-shard channel is a packet transit, staged through the
/// outbox in one of two shapes chosen at [`Shardable::split`] time:
///
/// * **Two-phase** (single frame, no fabric-wide injector): the origin
///   classifies (its injection-link injector lives on the source shard)
///   and claims the injection link; one message hop later the
///   destination's owner classifies and claims the ejection link. That
///   claim lands at `nominal >= send_event_time + fw_send_per_packet +
///   dma(wire) + serialization(wire) + hop_latency`; with `serialization
///   = for_bytes(wire) + packet_gap` and `dma, for_bytes > 0`, the bound
///   `L = fw_send_per_packet + packet_gap + hop_latency` (≈ 4.63 µs at
///   default calibration) is strictly below every nominal — so the eject
///   stage at exactly `send_event_time + L` satisfies the engine's
///   conservative-advancement contract and still precedes the delivery
///   instant it computes.
/// * **Pipelined** (multi-frame topology and/or a live fabric-wide
///   injector): two message hops — origin (injection-link claim only) →
///   fabric shard (fabric-wide + injection-link classification, plus the
///   cable stage of a cross-frame path) → destination owner (ejection).
///   Each hop shifts the stage timestamp by the declared lookahead
///   `W = L / 2`, so the eject stage lands at `send_event_time + 2W <=
///   send_event_time + L`, still strictly below every delivery instant;
///   the fabric stage at `send_event_time + W` precedes its cable claim
///   by the same argument. Concentrating the fabric-wide injector, all
///   injection-link injectors, and the cables on one shard keeps each
///   injector's classification stream — and each cable's claim order —
///   identical to serial, including the serial coupling where a
///   fabric-wide drop skips the injection link's own classification.
///
/// Claims and classifications replay in the serial engine's event order
/// because every stage of a per-link stream carries the same constant
/// shift, and the barrier applies messages in `(ts, seq)` order where
/// `seq` is the generating send event's *scheduling* instant — the order
/// the serial engine assigns event sequence numbers. Same-nanosecond
/// sends from different shards therefore claim shared links exactly as
/// serial does; the only residual tie (two sends scheduled at the same
/// instant *and* firing at the same instant) falls back to source-shard
/// order.
impl<P: Send + Clone + 'static> Shardable for SpWorld<P> {
    type Msg = SpMsg<P>;

    fn lookahead(&self) -> Dur {
        let l = self.cfg.fw_send_per_packet
            + self.switch.config().packet_gap
            + self.switch.config().hop_latency;
        if self.pipelined_split() {
            Dur(l.as_ns() / 2)
        } else {
            l
        }
    }

    fn split(self, num_shards: usize, owner: &[usize]) -> Vec<Self> {
        let topo = self.switch.topology().clone();
        assert_eq!(
            self.switch.config().route_policy,
            RoutePolicy::RoundRobin,
            "parallel SpWorld requires round-robin routing \
             (adaptive routing reads link occupancy across shards)"
        );
        let mode = if self.pipelined_split() {
            ShardMode::Pipelined
        } else {
            ShardMode::TwoPhase
        };
        let lookahead = Shardable::lookahead(&self);
        assert!(
            lookahead > Dur::ZERO,
            "degenerate calibration: staged-transit lookahead is zero"
        );
        let mut base = self;
        let (global_fault, link_faults) = base.switch.take_fault_injectors();
        let nodes = base.adapters.len();
        let recv_capacity = base.cfg.recv_entries_per_node * nodes.max(1);
        let mut shards: Vec<SpWorld<P>> = (0..num_shards)
            .map(|_sid| {
                let mut switch = Switch::with_topology(topo.clone(), base.switch.config().clone());
                if let Some(t) = &base.tracer {
                    switch.set_tracer(t.clone());
                }
                if mode == ShardMode::TwoPhase {
                    // The two-phase pipeline never consults the fabric-wide
                    // injector; a mid-run install must fail loudly instead
                    // of silently diverging from serial.
                    switch.seal_global_fault();
                }
                SpWorld {
                    cost: base.cost.clone(),
                    switch,
                    cfg: base.cfg.clone(),
                    // Full-length vector so node indexing works everywhere;
                    // only owned slots (overwritten below) are ever touched.
                    adapters: (0..nodes)
                        .map(|_| Adapter::new(base.cfg.send_entries, recv_capacity))
                        .collect(),
                    inflight: InflightSlab::new(),
                    tracer: base.tracer.clone(),
                    shard: Some(SpShard {
                        owner: owner.to_vec(),
                        lookahead,
                        mode,
                        outbox: Vec::new(),
                    }),
                }
            })
            .collect();
        // Re-home each fault injector onto the one shard that classifies
        // the corresponding packet stream, so every injector sees the
        // complete stream in serial order. (Injectors installed *mid-run*
        // via a broadcast world event land on every shard's fabric copy;
        // only the owning shard's copy ever classifies, so those work the
        // same way.)
        if mode == ShardMode::Pipelined {
            shards[FABRIC_SHARD].switch.set_fault_injector(global_fault);
        }
        for (link, inj) in link_faults.into_iter().enumerate() {
            let Some(inj) = inj else { continue };
            let sid = if link < nodes {
                // Injection link of node `link`: classified at the origin
                // (two-phase) or at the fabric stage (pipelined).
                match mode {
                    ShardMode::TwoPhase => owner[link],
                    ShardMode::Pipelined => FABRIC_SHARD,
                }
            } else if link < 2 * nodes {
                // Ejection link of node `link - nodes`: always classified
                // on the destination's owner.
                owner[link - nodes]
            } else {
                // Cross-frame cable: only the fabric stage touches it.
                FABRIC_SHARD
            };
            shards[sid]
                .switch
                .set_link_fault_injector(link as LinkId, inj);
        }
        // Move each node's (possibly pre-configured: shrunken FIFO,
        // injected stall) adapter onto its owner shard.
        for (i, adapter) in base.adapters.into_iter().enumerate() {
            shards[owner[i]].adapters[i] = adapter;
        }
        shards
    }

    fn merge(parts: Vec<Self>) -> Self {
        let mut parts = parts.into_iter();
        let mut base = parts.next().expect("at least one shard");
        let owner = base
            .shard
            .take()
            .expect("shard 0 carries the owner map")
            .owner;
        for (sid, mut part) in parts.enumerate() {
            let sid = sid + 1;
            part.shard = None;
            base.switch.absorb_stats(part.switch.stats());
            for (i, adapter) in part.adapters.into_iter().enumerate() {
                if owner[i] == sid {
                    base.adapters[i] = adapter;
                }
            }
        }
        base
    }

    fn apply_msg(e: &mut EventCtx<'_, Self>, msg: SpMsg<P>) {
        match msg {
            SpMsg::Eject { pkt, t } => eject_and_recv(e, pkt, t),
            SpMsg::Fabric { pkt, t, gen } => {
                let now = e.now();
                let w = e.world();
                if let Some(t2) = w.switch.fabric_phase(t) {
                    let sh = w.shard.as_mut().expect("fabric stage runs sharded");
                    let ts = now + sh.lookahead;
                    let dst_shard = sh.owner[t2.dst];
                    sh.outbox.push(ShardMsg {
                        ts,
                        seq: gen,
                        dst_shard,
                        msg: SpMsg::Eject { pkt, t: t2 },
                    });
                }
            }
        }
    }

    fn take_messages(&mut self) -> Vec<ShardMsg<SpMsg<P>>> {
        match &mut self.shard {
            Some(sh) => std::mem::take(&mut sh.outbox),
            None => Vec::new(),
        }
    }
}
