//! Adapter timing/geometry configuration.

use sp_sim::Dur;

/// TB2 firmware and DMA timing constants.
///
/// Together with [`sp_machine::CostModel`] these are the calibration
/// surface of the reproduction; they are fit to the paper's §2.3/§2.4
/// microbenchmarks (47 µs raw round-trip, 34.3 MB/s asymptotic payload
/// bandwidth) and nothing else.
#[derive(Debug, Clone)]
pub struct AdapterConfig {
    /// Delay between the host's length-array store and the firmware picking
    /// the packet up (i860 polling loop + MicroChannel turnaround).
    pub fw_scan_delay: Dur,
    /// Per-packet firmware processing on the send side (header checks,
    /// route selection, DMA setup).
    pub fw_send_per_packet: Dur,
    /// Per-packet firmware processing on the receive side.
    pub fw_recv_per_packet: Dur,
    /// MicroChannel DMA bandwidth between host memory and adapter, MB/s
    /// (80 MB/s peak on the 32-bit MicroChannel; sustained is close for
    /// aligned packet-sized bursts).
    pub dma_mb_s: f64,
    /// How many consumed receive-FIFO entries the host accumulates before
    /// paying one MicroChannel access to pop them ("done lazily ... to
    /// reduce the number of microchannel accesses", §2.1).
    pub recv_pop_batch: usize,
    /// Host cost of checking the receive FIFO head when it is empty (a
    /// cached load plus a compare; the *adapter* wrote the entry by DMA so
    /// the first check after an arrival takes a cache miss, folded into the
    /// per-packet copy cost instead).
    pub recv_empty_check: Dur,
    /// Send FIFO entries (128 on TB2).
    pub send_entries: usize,
    /// Receive FIFO entries per active source node (64 on TB2).
    pub recv_entries_per_node: usize,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        AdapterConfig {
            fw_scan_delay: Dur::us(7.0),
            fw_send_per_packet: Dur::us(4.0),
            fw_recv_per_packet: Dur::us(4.0),
            dma_mb_s: 110.0,
            recv_pop_batch: 16,
            recv_empty_check: Dur::ns(100),
            send_entries: crate::unit::SEND_FIFO_ENTRIES,
            recv_entries_per_node: crate::unit::RECV_ENTRIES_PER_NODE,
        }
    }
}

impl AdapterConfig {
    /// Time to DMA `bytes` across the MicroChannel.
    #[inline]
    pub fn dma(&self, bytes: usize) -> Dur {
        Dur::for_bytes(bytes as u64, self.dma_mb_s)
    }
}
