//! # sp-adapter — the TB2 network adapter model
//!
//! The SP's nodes attach to the switch through the "TB2" communication
//! adapter (paper §1.2, Fig. 1): a MicroChannel card with an Intel i860,
//! 8 MB of DRAM, two DMA engines and a Memory/Switch Management Unit. The
//! standard firmware exposes, to **one user process per node**, a pair of
//! memory-mapped FIFOs in *host* memory plus a packet-length array in
//! *adapter* memory:
//!
//! * **send FIFO** — 128 entries of 256 bytes, each holding one packet
//!   (32-byte header + up to 224 bytes of payload). The host builds a packet
//!   in the next entry, explicitly flushes the cache lines (the RS/6000
//!   memory bus is not coherent), then stores the packet's byte count into
//!   the corresponding **packet-length array** slot across the MicroChannel
//!   (~1 µs per access; bulk senders batch several length stores into one).
//!   The firmware polls the length array and DMAs ready packets to the MSMU.
//! * **receive FIFO** — 64 entries per active node; the adapter DMAs
//!   arriving packets in, the host copies them out, flushes the entry in
//!   preparation for wrap-around, and **lazily** pops the adapter-side FIFO
//!   pointer (one MicroChannel access per batch of pops).
//!
//! Packets that arrive while the receive FIFO is full are **dropped** — the
//! only loss source in a healthy SP, and the reason SP AM carries a
//! sliding-window/NACK reliability layer.
//!
//! This crate models all of the above as a [`SpWorld`] usable as the world
//! type of an [`sp_sim::Sim`], and a [`host`] module of host-side operations
//! that charge the [`sp_machine::CostModel`] costs. The protocol layers
//! (`sp-am`, `sp-mpl`, `sp-mpi`'s MPI-F baseline) are written against this
//! interface exactly as the paper's layers were written against the real
//! firmware. The payload type `P` is generic: each protocol defines its own
//! wire representation; the adapter sees only byte counts.

#![warn(missing_docs)]

mod config;
pub mod host;
mod unit;
mod world;

pub use config::AdapterConfig;
pub use unit::gstats;
pub use unit::{
    AdapterStats, FifoFull, WirePacket, ENTRY_BYTES, HEADER_BYTES, MAX_PAYLOAD,
    RECV_ENTRIES_PER_NODE, SEND_FIFO_ENTRIES,
};
pub use world::{SpConfig, SpMsg, SpWorld};

// Downstream crates configure the fabric through `SpConfig.switch`; re-export
// the routing policy so they need not depend on `sp-switch` directly.
pub use sp_switch::RoutePolicy;

/// The world type every SP-machine simulation uses, parameterized by the
/// protocol's wire payload.
pub type SpCtx<P> = sp_sim::NodeCtx<SpWorld<P>>;
