//! Packet geometry, the per-node adapter state machine, and its statistics.

use std::collections::VecDeque;

/// Process-global adapter counters, cumulative across every adapter in
/// this process. Experiment binaries print these so silent receive-FIFO
/// overflow is visible in every summary line.
pub mod gstats {
    use std::sync::atomic::{AtomicU64, Ordering};

    static DROPPED: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn record_drop() {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }

    /// Packets dropped to receive-FIFO overflow since process start.
    pub fn dropped_overflow() -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }
}

/// Bytes per FIFO entry (= max packet size on the wire).
pub const ENTRY_BYTES: usize = 256;
/// Packet header bytes (destination, route, sequence bookkeeping).
pub const HEADER_BYTES: usize = 32;
/// Maximum payload bytes per packet (`ENTRY_BYTES - HEADER_BYTES`).
pub const MAX_PAYLOAD: usize = ENTRY_BYTES - HEADER_BYTES;
/// Send FIFO entries on TB2.
pub const SEND_FIFO_ENTRIES: usize = 128;
/// Receive FIFO entries per active source node on TB2.
pub const RECV_ENTRIES_PER_NODE: usize = 64;

/// Error returned when the send FIFO has no free entry; the caller must
/// poll (letting the firmware drain) and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull;

impl std::fmt::Display for FifoFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "send FIFO full")
    }
}

impl std::error::Error for FifoFull {}

/// One packet as the adapter sees it: addressing, a wire byte count, and an
/// opaque protocol payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePacket<P> {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Bytes transferred on the wire (header + payload), `<= ENTRY_BYTES`.
    pub wire_bytes: usize,
    /// Protocol-defined content.
    pub payload: P,
}

impl<P> WirePacket<P> {
    /// Build a packet carrying `payload_bytes` of protocol payload.
    /// Panics if the payload exceeds [`MAX_PAYLOAD`].
    pub fn new(src: usize, dst: usize, payload_bytes: usize, payload: P) -> Self {
        assert!(
            payload_bytes <= MAX_PAYLOAD,
            "payload {payload_bytes} exceeds {MAX_PAYLOAD}"
        );
        WirePacket {
            src,
            dst,
            wire_bytes: HEADER_BYTES + payload_bytes,
            payload,
        }
    }
}

/// Counters kept by each adapter, exposed for tests and experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdapterStats {
    /// Packets handed to the switch.
    pub sent: u64,
    /// Packets delivered into the receive FIFO.
    pub received: u64,
    /// Packets dropped because the receive FIFO was full — the loss source
    /// SP AM's flow control exists to survive.
    pub dropped_overflow: u64,
    /// Doorbell (length-array) MicroChannel stores performed by the host.
    pub doorbells: u64,
    /// Lazy receive-FIFO pops (MicroChannel accesses) performed by the host.
    pub lazy_pops: u64,
    /// High-water mark of receive FIFO occupancy.
    pub recv_high_water: usize,
    /// Written-but-unsent send-FIFO entries lost to a crash wipe.
    pub wiped_send: u64,
    /// Delivered-but-unread receive-FIFO entries lost to a crash wipe.
    pub wiped_recv: u64,
}

/// Send-FIFO entry state: written by the host, made ready by a doorbell.
#[derive(Debug)]
pub(crate) struct SendEntry<P> {
    pub(crate) pkt: WirePacket<P>,
    pub(crate) ready: bool,
}

/// Per-node adapter state.
#[derive(Debug)]
pub(crate) struct Adapter<P> {
    /// Send FIFO: host appends, firmware pops ready entries from the front.
    pub(crate) send_fifo: VecDeque<SendEntry<P>>,
    pub(crate) send_capacity: usize,
    /// Whether a firmware send-scan event chain is currently active.
    pub(crate) fw_send_active: bool,
    /// Injected send-engine stall: the firmware pops no packet before this.
    pub(crate) send_stall_until: sp_sim::Time,
    /// When the receive engine finishes its current packet.
    pub(crate) recv_busy_until: sp_sim::Time,
    /// Receive FIFO: packets DMA'd into host memory, not yet read.
    pub(crate) recv_fifo: VecDeque<WirePacket<P>>,
    /// Entries read by the host but not yet popped (still hold capacity).
    pub(crate) recv_unpopped: usize,
    /// Total receive FIFO capacity (64 × active nodes).
    pub(crate) recv_capacity: usize,
    pub(crate) stats: AdapterStats,
}

impl<P> Adapter<P> {
    pub(crate) fn new(send_capacity: usize, recv_capacity: usize) -> Self {
        Adapter {
            send_fifo: VecDeque::with_capacity(send_capacity),
            send_capacity,
            fw_send_active: false,
            send_stall_until: sp_sim::Time::ZERO,
            recv_busy_until: sp_sim::Time::ZERO,
            recv_fifo: VecDeque::new(),
            recv_unpopped: 0,
            recv_capacity,
            stats: AdapterStats::default(),
        }
    }

    /// Entries currently holding receive-FIFO capacity.
    pub(crate) fn recv_occupancy(&self) -> usize {
        self.recv_fifo.len() + self.recv_unpopped
    }

    /// Host-side: append a written (not yet ready) packet.
    pub(crate) fn push_send(&mut self, pkt: WirePacket<P>) -> Result<(), FifoFull> {
        if self.send_fifo.len() >= self.send_capacity {
            return Err(FifoFull);
        }
        self.send_fifo.push_back(SendEntry { pkt, ready: false });
        Ok(())
    }

    /// Host-side doorbell: mark the oldest `count` unready entries ready.
    /// Returns how many were marked (tests assert it equals `count`).
    pub(crate) fn mark_ready(&mut self, count: usize) -> usize {
        let mut marked = 0;
        for entry in self.send_fifo.iter_mut() {
            if marked == count {
                break;
            }
            if !entry.ready {
                entry.ready = true;
                marked += 1;
            }
        }
        marked
    }

    /// Firmware-side: take the head packet if it is ready.
    pub(crate) fn pop_ready(&mut self) -> Option<WirePacket<P>> {
        if self.send_fifo.front().is_some_and(|e| e.ready) {
            Some(self.send_fifo.pop_front().expect("front checked").pkt)
        } else {
            None
        }
    }

    /// Adapter-side: deliver a packet into the receive FIFO, or drop it on
    /// overflow. Returns whether it was accepted.
    pub(crate) fn deliver(&mut self, pkt: WirePacket<P>) -> bool {
        if self.recv_occupancy() >= self.recv_capacity {
            self.stats.dropped_overflow += 1;
            gstats::record_drop();
            return false;
        }
        self.recv_fifo.push_back(pkt);
        self.stats.received += 1;
        self.stats.recv_high_water = self.stats.recv_high_water.max(self.recv_occupancy());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(n: usize) -> WirePacket<u32> {
        WirePacket::new(0, 1, n, n as u32)
    }

    #[test]
    fn geometry_constants_match_paper() {
        // chunk = 36 packets x 224 payload bytes = 8064 bytes (§2.2 fn. 1)
        assert_eq!(MAX_PAYLOAD * 36, 8064);
        assert_eq!(ENTRY_BYTES, HEADER_BYTES + MAX_PAYLOAD);
    }

    #[test]
    fn wire_packet_size() {
        let p = pkt(24);
        assert_eq!(p.wire_bytes, 56);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversize_payload_rejected() {
        let _ = pkt(MAX_PAYLOAD + 1);
    }

    #[test]
    fn send_fifo_fills_and_rejects() {
        let mut a: Adapter<u32> = Adapter::new(2, 64);
        a.push_send(pkt(1)).unwrap();
        a.push_send(pkt(2)).unwrap();
        assert_eq!(a.push_send(pkt(3)), Err(FifoFull));
    }

    #[test]
    fn doorbell_marks_in_fifo_order() {
        let mut a: Adapter<u32> = Adapter::new(8, 64);
        for i in 0..4 {
            a.push_send(pkt(i)).unwrap();
        }
        assert!(a.pop_ready().is_none(), "nothing ready before doorbell");
        assert_eq!(a.mark_ready(2), 2);
        assert_eq!(a.pop_ready().unwrap().payload, 0);
        assert_eq!(a.pop_ready().unwrap().payload, 1);
        assert!(a.pop_ready().is_none(), "entries 2,3 not yet ready");
        assert_eq!(a.mark_ready(5), 2, "only 2 unready entries remained");
    }

    #[test]
    fn recv_fifo_overflow_drops() {
        let mut a: Adapter<u32> = Adapter::new(8, 2);
        assert!(a.deliver(pkt(0)));
        assert!(a.deliver(pkt(1)));
        assert!(!a.deliver(pkt(2)), "third packet must drop");
        assert_eq!(a.stats.dropped_overflow, 1);
        assert_eq!(a.stats.received, 2);
    }

    #[test]
    fn unpopped_entries_hold_capacity() {
        let mut a: Adapter<u32> = Adapter::new(8, 2);
        assert!(a.deliver(pkt(0)));
        let _read = a.recv_fifo.pop_front().unwrap();
        a.recv_unpopped += 1; // host read it but did not pop yet
        assert!(a.deliver(pkt(1)));
        assert!(
            !a.deliver(pkt(2)),
            "lazy pop must still count against capacity"
        );
        a.recv_unpopped = 0; // lazy pop happened
        assert!(a.deliver(pkt(3)));
    }

    #[test]
    fn high_water_tracks_max() {
        let mut a: Adapter<u32> = Adapter::new(8, 4);
        for i in 0..3 {
            assert!(a.deliver(pkt(i)));
        }
        assert_eq!(a.stats.recv_high_water, 3);
        a.recv_fifo.clear();
        assert!(a.deliver(pkt(9)));
        assert_eq!(a.stats.recv_high_water, 3, "high water must not regress");
    }
}
