//! Split-C experiments: Table 4 (machine characteristics), Table 5
//! (absolute benchmark times) and Figure 4 (normalized cpu/net split).

use crate::fmt::Series;
use parking_lot::Mutex;
use sp_logp::{Logp, LogpParams, LogpWorld};
use sp_sim::Sim;
use sp_splitc::apps::{mm, radix_sort, sample_sort, MmConfig, RadixConfig, SampleConfig};
use sp_splitc::{run_spmd, AppTimes, Gas, Platform};
use std::sync::Arc;

/// Table 4 row: a machine's characteristics, configured and measured.
#[derive(Debug, Clone)]
pub struct MachineRow {
    /// Machine name.
    pub name: &'static str,
    /// CPU description.
    pub cpu: &'static str,
    /// Per-message overhead, µs (configured).
    pub overhead_us: f64,
    /// Measured one-word round-trip latency, µs.
    pub rtt_us: f64,
    /// Measured asymptotic bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
}

/// Measure RTT and bandwidth of a LogGP machine model.
fn logp_measurements(params: LogpParams) -> (f64, f64) {
    let rtt = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let rtt2 = rtt.clone();
    let mut sim = Sim::new(LogpWorld::new(2), 1);
    let (pa, pb) = (params.clone(), params);
    sim.spawn("a", move |ctx| {
        let mut lp = Logp::new(ctx, pa);
        let recv = |lp: &mut Logp<'_>| loop {
            if let Some(m) = lp.poll() {
                return m;
            }
        };
        // RTT.
        lp.send(1, 0, [0; 4], &[]);
        recv(&mut lp);
        let t0 = lp.now();
        let iters = 50;
        for _ in 0..iters {
            lp.send(1, 0, [0; 4], &[]);
            recv(&mut lp);
        }
        let rtt_us = (lp.now() - t0).as_us() / iters as f64;
        // Bandwidth: stream 4 KB messages.
        let chunk = vec![0u8; 4096];
        let t1 = lp.now();
        for _ in 0..200 {
            lp.send(1, 1, [0; 4], &chunk);
        }
        recv(&mut lp); // done token
        let bw = (200.0 * 4096.0) / (lp.now() - t1).as_secs() / 1e6;
        *rtt2.lock() = (rtt_us, bw);
    });
    sim.spawn("b", move |ctx| {
        let mut lp = Logp::new(ctx, pb);
        let recv = |lp: &mut Logp<'_>| loop {
            if let Some(m) = lp.poll() {
                return m;
            }
        };
        for _ in 0..51 {
            recv(&mut lp);
            lp.send(0, 0, [0; 4], &[]);
        }
        for _ in 0..200 {
            recv(&mut lp);
        }
        lp.send(0, 2, [0; 4], &[]);
    });
    sim.run().expect("logp measurement completes");
    let v = *rtt.lock();
    v
}

/// Table 4: the four machines (SP measured on the detailed model).
pub fn table4(sp_rtt: f64, sp_bw: f64) -> Vec<MachineRow> {
    let mut rows = Vec::new();
    for (params, cpu) in [
        (LogpParams::cm5(), "33 MHz Sparc-2"),
        (LogpParams::cs2(), "40 MHz Sparc"),
        (LogpParams::unet(), "50/60 MHz Sparc-20"),
    ] {
        let (rtt, bw) = logp_measurements(params.clone());
        rows.push(MachineRow {
            name: params.name,
            cpu,
            overhead_us: (params.o_send + params.o_recv).as_us(),
            rtt_us: rtt,
            bandwidth_mb_s: bw,
        });
    }
    rows.push(MachineRow {
        name: "IBM SP (AM)",
        cpu: "66 MHz RS6000",
        overhead_us: 6.0,
        rtt_us: sp_rtt,
        bandwidth_mb_s: sp_bw,
    });
    rows
}

/// The five benchmarks of Table 5 (paper row order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// mm, 128×128 blocks.
    MmLarge,
    /// mm, 16×16 blocks.
    MmSmall,
    /// Sample sort, fine-grain.
    SmpSortSm,
    /// Sample sort, bulk.
    SmpSortLg,
    /// Radix sort, fine-grain.
    RdxSortSm,
    /// Radix sort, bulk.
    RdxSortLg,
}

impl App {
    /// Table 5 row label.
    pub fn label(&self) -> &'static str {
        match self {
            App::MmLarge => "mm 128x128",
            App::MmSmall => "mm 16x16",
            App::SmpSortSm => "smpsort sm",
            App::SmpSortLg => "smpsort lg",
            App::RdxSortSm => "rdxsort sm",
            App::RdxSortLg => "rdxsort lg",
        }
    }

    /// All rows in paper order.
    pub fn all() -> [App; 6] {
        [
            App::MmLarge,
            App::MmSmall,
            App::SmpSortSm,
            App::SmpSortLg,
            App::RdxSortSm,
            App::RdxSortLg,
        ]
    }
}

/// Keys per node used for the sort rows (scaled class; see EXPERIMENTS.md).
pub fn sort_keys_per_node(quick: bool) -> usize {
    if quick {
        4 * 1024
    } else {
        16 * 1024
    }
}

/// Run one app on one platform (8 processors); returns the slowest node's
/// times (total + comm).
pub fn run_app(app: App, platform: Platform, quick: bool) -> AppTimes {
    let nodes = 8;
    let keys = sort_keys_per_node(quick);
    let times: Vec<AppTimes> = match app {
        App::MmLarge | App::MmSmall => {
            let cfg = if app == App::MmLarge {
                MmConfig::large()
            } else {
                MmConfig::small()
            };
            run_spmd(platform, nodes, 5, move |g: &mut dyn Gas| {
                mm::run(g, &cfg).0
            })
        }
        App::SmpSortSm | App::SmpSortLg => {
            let cfg = SampleConfig {
                keys_per_node: keys,
                ..SampleConfig::paper(app == App::SmpSortLg)
            };
            run_spmd(platform, nodes, 9, move |g: &mut dyn Gas| {
                sample_sort::run(g, &cfg).0
            })
        }
        App::RdxSortSm | App::RdxSortLg => {
            let cfg = RadixConfig {
                keys_per_node: keys,
                ..RadixConfig::paper(app == App::RdxSortLg)
            };
            run_spmd(platform, nodes, 9, move |g: &mut dyn Gas| {
                radix_sort::run(g, &cfg).0
            })
        }
    };
    times
        .into_iter()
        .max_by(|a, b| a.total.cmp(&b.total))
        .expect("nodes > 0")
}

/// Table 5 / Figure 4 data: `times[app][platform]`.
pub fn table5(quick: bool) -> Vec<(App, Vec<(Platform, AppTimes)>)> {
    App::all()
        .into_iter()
        .map(|app| {
            let row = Platform::all()
                .into_iter()
                .map(|p| (p, run_app(app, p, quick)))
                .collect();
            (app, row)
        })
        .collect()
}

/// Figure 4: the same data normalized to SP AM's total time, split into
/// cpu and net components (two series per platform).
pub fn fig4(data: &[(App, Vec<(Platform, AppTimes)>)]) -> Vec<(App, Vec<Series>)> {
    data.iter()
        .map(|(app, row)| {
            let sp_am_total = row
                .iter()
                .find(|(p, _)| *p == Platform::SpAm)
                .expect("SP AM present")
                .1
                .total
                .as_secs();
            let series = row
                .iter()
                .flat_map(|(p, t)| {
                    [
                        Series {
                            label: format!("{} cpu", p.name()),
                            points: vec![(0.0, t.cpu().as_secs() / sp_am_total)],
                        },
                        Series {
                            label: format!("{} net", p.name()),
                            points: vec![(0.0, t.comm.as_secs() / sp_am_total)],
                        },
                    ]
                })
                .collect();
            (*app, series)
        })
        .collect()
}
