//! Open-loop datacenter traffic on a 512-node fat tree: saturation curves
//! (offered load vs goodput) and request-latency quantiles per routing
//! policy, driven by the seeded `sp-traffic` workload generator.
//!
//! ```text
//! cargo run --release --bin traffic
//! cargo run --release --bin traffic -- --parallel 4
//! ```
//!
//! `--parallel N` shards the conservative-parallel engine N ways for the
//! round-robin sweep (default 4). Adaptive routing is the engine's one
//! serial-only feature, so its sweep always runs on one shard — the
//! workload, schedule, and metrics are identical either way (asserted by
//! the determinism tests in `tests/tests/traffic.rs`).
//!
//! Set `SP_BENCH_QUICK=1` for the CI-sized sweep, `SP_BENCH_TRAFFIC_JSON=
//! <path>` to write the headline metrics as JSON lines, and
//! `SP_BENCH_TRAFFIC_BASELINE=<path>` to compare against a saved baseline
//! (fails only on an order-of-magnitude regression, mirroring
//! `SP_BENCH_TOPO_BASELINE`).

use sp_adapter::{RoutePolicy, SpConfig};
use sp_bench::quick;
use sp_traffic::{run_traffic, saturation_sweep, Incast, LoadPoint, TrafficConfig};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let shards: usize = match args.iter().position(|a| a == "--parallel") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("traffic: --parallel needs a shard count");
                std::process::exit(1);
            }),
        None => 4,
    };
    let quick = quick();

    // 512 leaves: 32 frames of 16 under one full-bisection spine tier.
    // The binding resource is not server CPU (~4.3 us/request) but the
    // down-lanes feeding the 4 server frames: the sweep's sustained
    // drain rate plateaus near 160 MB/s while offered load spans
    // ~100-3600 MB/s, so the curve brackets the knee from both sides
    // (p50 sits near the unloaded service time at the bottom scale and
    // grows to milliseconds of queueing delay at the top).
    let sp = SpConfig::fat_tree(2, 32, 1);
    let base = TrafficConfig {
        horizon_ns: if quick { 250_000 } else { 500_000 },
        ..TrafficConfig::new(64)
    };
    let scales: &[f64] = if quick {
        &[0.125, 0.5, 2.0]
    } else {
        &[0.125, 0.25, 0.5, 1.0, 2.0, 4.0]
    };
    println!(
        "open-loop traffic: {} nodes ({} servers), fat_tree(2, 32, 1), horizon {} us",
        sp.nodes,
        base.servers,
        base.horizon_ns as f64 / 1_000.0
    );

    let mut metrics = Vec::new();
    let mut sweeps = Vec::new();
    for policy in [RoutePolicy::RoundRobin, RoutePolicy::Adaptive] {
        let sp = sp.clone().routed(policy).parallel(shards);
        let points = saturation_sweep(&base, &sp, scales);
        let engine = match points[0].report.shards {
            1 => "serial".to_string(),
            n => format!("{n} shards"),
        };
        println!("\n==== saturation sweep: {policy:?} ({engine}) ====\n");
        println!(
            "{:>6} {:>7} {:>12} {:>12} {:>10} {:>10} {:>10} {:>8}",
            "scale",
            "flows",
            "offered MB/s",
            "goodput MB/s",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "drops"
        );
        println!("{}", "-".repeat(82));
        for p in &points {
            let r = &p.report;
            if !(r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns && r.p999_ns <= r.max_ns) {
                println!("TRAFFIC CHECK FAILED: latency quantiles out of order");
                std::process::exit(1);
            }
            println!(
                "{:>6.2} {:>7} {:>12.1} {:>12.1} {:>10.2} {:>10.2} {:>10.2} {:>8}",
                p.scale,
                r.flows,
                r.offered_mb_s,
                r.goodput_mb_s,
                r.p50_ns as f64 / 1_000.0,
                r.p99_ns as f64 / 1_000.0,
                r.p999_ns as f64 / 1_000.0,
                r.dropped_overflow,
            );
        }
        let tag = match policy {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::Adaptive => "adaptive",
        };
        // Headline quantiles come from the scale present in both quick and
        // full sweeps, just under the knee.
        let nominal = &points[scales.iter().position(|&s| s == 0.5).unwrap_or(0)].report;
        metrics.push((format!("traffic/{tag}-p50-ns"), nominal.p50_ns as f64));
        metrics.push((format!("traffic/{tag}-p99-ns"), nominal.p99_ns as f64));
        metrics.push((format!("traffic/{tag}-p999-ns"), nominal.p999_ns as f64));
        metrics.push((
            format!("traffic/{tag}-drops"),
            points
                .iter()
                .map(|p| p.report.dropped_overflow)
                .sum::<u64>() as f64,
        ));
        sweeps.push((tag, points));
    }
    report_saturation(&sweeps);

    // Incast: a synchronized fan-in burst into one server on top of a
    // light background load — the FIFO-overflow stress the reliability
    // layer exists for.
    let fan_in = if quick { 32 } else { 64 };
    let incast_cfg = TrafficConfig {
        incast: Some(Incast {
            fan_in,
            server: 0,
            at_ns: base.horizon_ns / 2,
            bytes: 1024,
        }),
        ..base.clone().scaled(0.25)
    };
    println!("\n==== incast: {fan_in} clients -> server 0, 1 KiB each ====\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8}",
        "policy", "p99 (us)", "p999 (us)", "max (us)", "drops"
    );
    println!("{}", "-".repeat(54));
    for policy in [RoutePolicy::RoundRobin, RoutePolicy::Adaptive] {
        let r = run_traffic(&incast_cfg, sp.clone().routed(policy).parallel(shards));
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>8}",
            format!("{policy:?}"),
            r.p99_ns as f64 / 1_000.0,
            r.p999_ns as f64 / 1_000.0,
            r.max_ns as f64 / 1_000.0,
            r.dropped_overflow,
        );
        let tag = match policy {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::Adaptive => "adaptive",
        };
        metrics.push((format!("traffic/incast-{tag}-p999-ns"), r.p999_ns as f64));
        metrics.push((
            format!("traffic/incast-{tag}-drops"),
            r.dropped_overflow as f64,
        ));
    }

    if let Ok(path) = std::env::var("SP_BENCH_TRAFFIC_JSON") {
        write_json(&path, &metrics);
        println!("\nwrote {} metrics to {path}", metrics.len());
    }
    if let Ok(path) = std::env::var("SP_BENCH_TRAFFIC_BASELINE") {
        if !compare_baseline(&path, &metrics) {
            std::process::exit(1);
        }
    }
    sp_bench::print_engine_summary();
}

/// The headline read of the sweep: where each policy's goodput stops
/// tracking offered load. Absolute delivery efficiency (goodput/offered)
/// is diluted by the drain tail — the last flows issued at the horizon
/// still need a full service time — so the knee is read *relatively*:
/// the first point whose efficiency falls below half the lightest
/// load's.
fn report_saturation(sweeps: &[(&str, Vec<LoadPoint>)]) {
    println!();
    for (tag, points) in sweeps {
        let eff = |p: &LoadPoint| p.report.goodput_mb_s / p.report.offered_mb_s.max(1e-9);
        let floor = 0.5 * eff(&points[0]);
        let knee = points.iter().skip(1).find(|p| eff(p) < floor);
        match knee {
            Some(p) => println!(
                "{tag}: goodput falls off offered load at scale {:.2} ({:.1} of {:.1} MB/s)",
                p.scale, p.report.goodput_mb_s, p.report.offered_mb_s
            ),
            None => println!("{tag}: goodput tracks offered load across the whole sweep"),
        }
    }
}

fn write_json(path: &str, metrics: &[(String, f64)]) {
    let mut f = std::fs::File::create(path).expect("create SP_BENCH_TRAFFIC_JSON file");
    for (id, value) in metrics {
        writeln!(f, "{{\"id\":\"{id}\",\"value\":{value:.3}}}").expect("write metric");
    }
}

/// Pull `"key":<number>` out of a JSON line (hand-rolled, like the topo
/// bench: the workspace has no JSON dependency).
fn json_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull `"key":"<string>"` out of a JSON line.
fn json_string<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Compare against a saved baseline. All traffic metrics are
/// lower-is-better (latency quantiles and drop counts), so only an
/// order-of-magnitude growth fails the run.
fn compare_baseline(path: &str, metrics: &[(String, f64)]) -> bool {
    let base = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            println!("\nno traffic baseline at {path} ({e}); skipping comparison");
            return true;
        }
    };
    println!("\ncomparison vs baseline {path} (fail = metric grew 10x):");
    let mut ok = true;
    for line in base.lines().filter(|l| !l.trim().is_empty()) {
        let (Some(id), Some(old)) = (json_string(line, "id"), json_number(line, "value")) else {
            continue;
        };
        let Some((_, cur)) = metrics.iter().find(|(i, _)| i == id) else {
            println!("  {id:<32} missing from current run");
            continue;
        };
        let ratio = if old > 0.0 { cur / old } else { 1.0 };
        let verdict = if ratio > 10.0 {
            ok = false;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {id:<32} base {old:>12.1}  cur {cur:>12.1}  x{ratio:<6.2} {verdict}");
    }
    if !ok {
        println!("traffic metrics regressed by more than an order of magnitude");
    }
    ok
}
