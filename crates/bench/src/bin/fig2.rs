//! Regenerates Figure 2 (the flow-control protocol diagram) from *measured*
//! protocol events: the chunk pipeline of a large store — chunk N+2 starts
//! only after the ACK for chunk N — printed as a timeline.
//!
//! The events come from the unified trace recorder ([`sp_trace`]): the AM
//! layer stamps `AmChunkStart`/`AmChunkEnd` instants as chunks enter the
//! send FIFO and `AmAck` instants as cumulative acknowledgements free
//! window slots, all on the sender's program track.

use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};
use sp_trace::{Kind, Track};

#[derive(Default)]
struct St {
    done: bool,
}

fn mark(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.done = true;
}

fn main() {
    let chunks = 6usize;
    let len = chunks * sp_am::CHUNK_BYTES;
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 7);
    let tracer = m.enable_tracing(1 << 16);
    m.mem().alloc(1, len as u32);
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        let data = vec![0xF1u8; len];
        am.register(mark);
        am.store(GlobalPtr { node: 1, addr: 0 }, &data, Some(0), &[]);
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(mark);
        am.poll_until(|s| s.done);
    });
    m.run().expect("store completes");

    let us = |ns: u64| ns as f64 / 1_000.0;
    println!("Figure 2: flow-control protocol — measured chunk pipeline");
    println!(
        "({chunks} chunks of {} bytes; sender-side events)\n",
        sp_am::CHUNK_BYTES
    );
    println!("{:>12}  event", "time (us)");
    println!("{}", "-".repeat(60));
    let mut chunk_start = vec![None; chunks + 1];
    let mut acked_through = Vec::new();
    for r in tracer
        .snapshot()
        .iter()
        .filter(|r| r.track == Track::program(0))
    {
        match r.kind {
            Kind::AmChunkStart => {
                chunk_start[r.arg as usize] = Some(r.at);
                println!(
                    "{:>12.1}  chunk {} -> first packet enters send FIFO",
                    us(r.at),
                    r.arg + 1
                );
            }
            Kind::AmChunkEnd => {
                println!(
                    "{:>12.1}  chunk {} fully handed to adapter",
                    us(r.at),
                    r.arg + 1
                );
            }
            // Request-channel acks only (the reply channel carries no data
            // in this experiment); the low word is the cumulative sequence.
            Kind::AmAck if r.arg >> 32 == 0 => {
                let cum = r.arg as u32;
                acked_through.push((cum, r.at));
                println!("{:>12.1}  <- ack: chunks 1..{} delivered", us(r.at), cum);
            }
            _ => {}
        }
    }
    // Verify the Figure 2 invariant: chunk N+2 starts only after the ack
    // for chunk N.
    #[allow(clippy::needless_range_loop)] // n is a chunk number, not an index
    for n in 2..chunks {
        let start = chunk_start[n].expect("chunk started");
        let ack_n_minus_2 = acked_through
            .iter()
            .find(|&&(cum, _)| cum as usize >= n - 1)
            .map(|&(_, at)| at)
            .expect("ack observed");
        assert!(
            start >= ack_n_minus_2,
            "chunk {} started at {} before the ack for chunk {} at {}",
            n + 1,
            start,
            n - 1,
            ack_n_minus_2
        );
    }
    println!("\ninvariant checked: chunk N+2 is transmitted only after the ack for chunk N");
    println!("(\"initially, two chunks are transmitted and the next chunk is sent only when");
    println!("the previous to last chunk is acknowledged\" — paper Figure 2).");
    sp_bench::print_engine_summary();
}
