//! Regenerates Figure 2 (the flow-control protocol diagram) from *measured*
//! protocol events: the chunk pipeline of a large store — chunk N+2 starts
//! only after the ACK for chunk N — printed as a timeline.

use parking_lot::Mutex;
use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr, TraceEvent};
use std::sync::Arc;

#[derive(Default)]
struct St {
    done: bool,
}

fn mark(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.done = true;
}

fn main() {
    let chunks = 6usize;
    let len = chunks * sp_am::CHUNK_BYTES;
    let cfg = AmConfig {
        trace_chunks: true,
        ..AmConfig::default()
    };
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 7);
    m.mem().alloc(1, len as u32);
    let trace = Arc::new(Mutex::new(Vec::new()));
    let trace2 = trace.clone();
    m.spawn("sender", St::default(), move |am: &mut Am<'_, St>| {
        let data = vec![0xF1u8; len];
        am.register(mark);
        am.store(GlobalPtr { node: 1, addr: 0 }, &data, Some(0), &[]);
        *trace2.lock() = am.port().trace().to_vec();
    });
    m.spawn("receiver", St::default(), |am: &mut Am<'_, St>| {
        am.register(mark);
        am.poll_until(|s| s.done);
    });
    m.run().expect("store completes");

    let trace = trace.lock();
    println!("Figure 2: flow-control protocol — measured chunk pipeline");
    println!("({chunks} chunks of 8064 bytes; sender-side events)\n");
    println!("{:>12}  event", "time (us)");
    println!("{}", "-".repeat(60));
    let mut chunk_start = vec![None; chunks + 1];
    let mut acked_through = Vec::new();
    for ev in trace.iter() {
        match *ev {
            TraceEvent::ChunkStart { seq, at } => {
                chunk_start[seq as usize] = Some(at);
                println!(
                    "{:>12.1}  chunk {} -> first packet enters send FIFO",
                    at.as_us(),
                    seq + 1
                );
            }
            TraceEvent::ChunkEnd { seq, at } => {
                println!(
                    "{:>12.1}  chunk {} fully handed to adapter",
                    at.as_us(),
                    seq + 1
                );
            }
            TraceEvent::AckIn { cum, at } => {
                acked_through.push((cum, at));
                println!("{:>12.1}  <- ack: chunks 1..{} delivered", at.as_us(), cum);
            }
        }
    }
    // Verify the Figure 2 invariant: chunk N+2 starts only after the ack
    // for chunk N.
    #[allow(clippy::needless_range_loop)] // n is a chunk number, not an index
    for n in 2..chunks {
        let start = chunk_start[n].expect("chunk started");
        let ack_n_minus_2 = acked_through
            .iter()
            .find(|&&(cum, _)| cum as usize >= n - 1)
            .map(|&(_, at)| at)
            .expect("ack observed");
        assert!(
            start >= ack_n_minus_2,
            "chunk {} started at {} before the ack for chunk {} at {}",
            n + 1,
            start,
            n - 1,
            ack_n_minus_2
        );
    }
    println!("\ninvariant checked: chunk N+2 is transmitted only after the ack for chunk N");
    println!("(\"initially, two chunks are transmitted and the next chunk is sent only when");
    println!("the previous to last chunk is acknowledged\" — paper Figure 2).");
    sp_bench::print_engine_summary();
}
