//! Diagnostic: blocking 2 KB remote-read latency through the Split-C layer
//! on SP AM vs SP MPL (investigating the mm 16x16 Table 5 relation).

use sp_splitc::{run_spmd, Gas, GlobalPtr, Platform};

fn main() {
    for platform in [Platform::SpAm, Platform::SpMpl] {
        let out = run_spmd(platform, 2, 3, |g: &mut dyn Gas| {
            let buf = g.alloc(2048);
            g.mem().write(buf.addr, &vec![7u8; 2048]);
            g.barrier();
            if g.node() == 0 {
                let t0 = g.now();
                let iters = 50;
                for _ in 0..iters {
                    g.read_into(
                        GlobalPtr {
                            node: 1,
                            addr: buf.addr,
                        },
                        buf.addr,
                        2048,
                    );
                }
                let per = (g.now() - t0).as_us() / iters as f64;
                g.barrier();
                per
            } else {
                g.barrier();
                0.0
            }
        });
        println!(
            "{:>12}: {:.1} us per blocking 2KB read",
            platform.name(),
            out[0]
        );
    }
    sp_bench::print_engine_summary();
}
