//! Regenerates Figure 8: MPI point-to-point per-hop latencies on thin
//! nodes (4-node ring), four layers.

use sp_bench::fmt::print_series;

fn main() {
    let quick = sp_bench::quick();
    let series = sp_bench::mpi_exp::fig_latency(false, quick);
    println!("Figure 8: MPI per-hop latency on thin SP nodes (us)\n");
    print_series("bytes", &series);
    println!("\nexpected shape (paper): am_store lowest; optimized AM MPI beats MPI-F for");
    println!("small messages on thin nodes; unoptimized AM MPI highest.");
    sp_bench::print_engine_summary();
}
