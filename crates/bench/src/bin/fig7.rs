//! Regenerates Figure 7: bandwidth of the buffered, rendezvous, and hybrid
//! MPI protocols over message size.

use sp_bench::fmt::print_series;

fn main() {
    let quick = sp_bench::quick();
    let series = sp_bench::mpi_exp::fig7(quick);
    println!("Figure 7: performance of buffered and rendezvous protocols (MB/s)\n");
    print_series("bytes", &series);
    println!("\nexpected shape (paper): buffered best for small sizes (extra copy hurts as");
    println!("sizes grow); rendezvous poor for small sizes (handshake latency) but best");
    println!("asymptotically; hybrid follows buffered at small sizes and rendezvous at");
    println!("large, with no dip at the switch.");
    sp_bench::print_engine_summary();
}
