//! Regenerates Figure 3: bandwidth of blocking and non-blocking bulk
//! transfers (six curves) over message size.

use sp_bench::fmt::print_series;

fn main() {
    let quick = sp_bench::quick();
    let series = sp_bench::micro::fig3(quick);
    println!("Figure 3: Bandwidth of blocking and non-blocking bulk transfers (MB/s)\n");
    print_series("bytes", &series);
    println!("\nexpected shape: all curves converge to ~34.3 MB/s; async store/get rise");
    println!("fastest (n1/2 ~260 B); sync store next (~2800 B), sync get slower (~3000 B,");
    println!("get-request overhead); MPL slowest to rise; async == sync above one 8064-B chunk.");
    sp_bench::print_engine_summary();
}
