//! Regenerates Figure 4: Split-C benchmark times normalized to the SP AM
//! version, split into cpu and net components.

use sp_splitc::Platform;

fn main() {
    let quick = sp_bench::quick();
    let data = sp_bench::splitc_exp::table5(quick);
    println!("Figure 4: Split-C results normalized to SP AM (cpu / net split)\n");
    for (app, row) in &data {
        let sp_total = row
            .iter()
            .find(|(p, _)| *p == Platform::SpAm)
            .expect("SP AM row")
            .1
            .total
            .as_secs();
        println!("{}:", app.label());
        println!(
            "{:>16}  {:>8}  {:>8}  {:>8}",
            "platform", "cpu", "net", "total"
        );
        for (p, t) in row {
            println!(
                "{:>16}  {:>8.2}  {:>8.2}  {:>8.2}",
                p.name(),
                t.cpu().as_secs() / sp_total,
                t.comm.as_secs() / sp_total,
                t.total.as_secs() / sp_total
            );
        }
        println!();
    }
    println!("expected shape (paper): SP bars lowest cpu (fastest processor); SP AM net");
    println!("below SP MPL net everywhere, drastically so for the sm sort variants.");
    sp_bench::print_engine_summary();
}
