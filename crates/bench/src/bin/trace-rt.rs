//! Trace a one-word AM round trip, print the measured latency breakdown
//! (the paper's §2.3 cost attribution, reconstructed from spans instead of
//! added constants), and export the full trace as Chrome trace-event JSON
//! loadable in Perfetto / `chrome://tracing`.
//!
//! ```text
//! cargo run --bin trace-rt -- --out trace.json
//! ```

use sp_bench::trace_rt;
use sp_trace::{chrome, Metrics};

fn main() {
    let mut out = String::from("target/trace-rt.json");
    let mut iters: u32 = 8;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--iters" => {
                iters = args
                    .next()
                    .expect("--iters needs a count")
                    .parse()
                    .expect("--iters takes an integer")
            }
            other => panic!("unknown argument {other:?} (expected --out/--iters)"),
        }
    }
    assert!(iters >= 1, "--iters must be at least 1");

    let (records, report, dropped) = trace_rt::run_one_word(iters);
    println!(
        "traced {} one-word round trips: {} records ({} lost to ring overflow), {} engine events\n",
        iters,
        records.len(),
        dropped,
        report.events
    );

    // Last measured iteration: steady state, far from warmup effects.
    let bd = trace_rt::breakdown(&records, iters as u64 - 1);
    println!("{bd}");

    println!("\n{}", Metrics::aggregate_with_dropped(&records, dropped));

    let json = chrome::to_chrome_json(&records);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "\nwrote {} ({} bytes) — load in Perfetto or chrome://tracing",
        out,
        json.len()
    );
    sp_bench::print_engine_summary();
}
