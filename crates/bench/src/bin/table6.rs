//! Regenerates Table 6: NAS kernels on 16 thin nodes, MPI-F vs MPI-AM,
//! then sweeps the problem classes (reduced / S / W) on MPI-AM to exercise
//! the fast-pathed engine on the scaled-up grids, reporting virtual time
//! and per-run engine throughput. `SP_BENCH_QUICK=1` keeps only the
//! reduced class.

fn main() {
    let ranks = 16;
    let rows = sp_bench::nas_exp::table6(ranks);
    println!("Table 6: NAS kernel run times on {ranks} thin nodes (scaled class, seconds)\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>8}  {:>10}",
        "Benchmark", "MPI-F", "MPI-AM", "ratio", "checksums"
    );
    println!("{}", "-".repeat(60));
    for r in rows {
        println!(
            "{:>10}  {:>9.3}s  {:>9.3}s  {:>8.2}  {:>10}",
            r.kernel.name(),
            r.mpif_s,
            r.mpiam_s,
            r.mpiam_s / r.mpif_s,
            if r.checksums_agree { "agree" } else { "DIFFER" }
        );
    }
    println!("\nexpected shape (paper): MPI-AM close to MPI-F on every kernel; FT pays for");
    println!("MPICH's generic Alltoall (convergent schedule); both implementations compute");
    println!("identical numerics.");

    let quick = sp_bench::quick();
    let points = sp_bench::nas_exp::class_sweep(ranks, quick);
    println!(
        "\nClass sweep: MPI-AM on {ranks} thin nodes{}\n",
        if quick { " (quick: reduced only)" } else { "" }
    );
    println!(
        "{:>10}  {:>8}  {:>11}  {:>12}  {:>12}",
        "Benchmark", "class", "virtual", "events", "events/sec"
    );
    println!("{}", "-".repeat(62));
    for p in points {
        println!(
            "{:>10}  {:>8}  {:>10.3}s  {:>12}  {:>12.0}",
            p.kernel.name(),
            p.class.name(),
            p.virtual_s,
            p.events,
            p.events_per_sec
        );
    }
    sp_bench::print_engine_summary();
}
