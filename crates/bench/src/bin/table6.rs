//! Regenerates Table 6: NAS kernels on 16 thin nodes, MPI-F vs MPI-AM.

fn main() {
    let ranks = 16;
    let rows = sp_bench::nas_exp::table6(ranks);
    println!("Table 6: NAS kernel run times on {ranks} thin nodes (scaled class, seconds)\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>8}  {:>10}",
        "Benchmark", "MPI-F", "MPI-AM", "ratio", "checksums"
    );
    println!("{}", "-".repeat(60));
    for r in rows {
        println!(
            "{:>10}  {:>9.3}s  {:>9.3}s  {:>8.2}  {:>10}",
            r.kernel.name(),
            r.mpif_s,
            r.mpiam_s,
            r.mpiam_s / r.mpif_s,
            if r.checksums_agree { "agree" } else { "DIFFER" }
        );
    }
    println!("\nexpected shape (paper): MPI-AM close to MPI-F on every kernel; FT pays for");
    println!("MPICH's generic Alltoall (convergent schedule); both implementations compute");
    println!("identical numerics.");
    sp_bench::print_engine_summary();
}
