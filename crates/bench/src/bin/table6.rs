//! Regenerates Table 6: NAS kernels on 16 thin nodes, MPI-F vs MPI-AM,
//! then sweeps the problem classes (reduced / S / W) on MPI-AM to exercise
//! the fast-pathed engine on the scaled-up grids, reporting virtual time
//! and per-run engine throughput. `SP_BENCH_QUICK=1` keeps only the
//! reduced class.

fn main() {
    let ranks = 16;
    // `table6 --parallel` runs only the parallel engine check, with the
    // per-shard profile and a Perfetto trace of the 4-shard run — the
    // shard-telemetry smoke path, skipping the full table regeneration.
    if std::env::args().any(|a| a == "--parallel") {
        parallel_engine_check(ranks, true);
        sp_bench::print_engine_summary();
        return;
    }
    let rows = sp_bench::nas_exp::table6(ranks);
    println!("Table 6: NAS kernel run times on {ranks} thin nodes (scaled class, seconds)\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>8}  {:>10}",
        "Benchmark", "MPI-F", "MPI-AM", "ratio", "checksums"
    );
    println!("{}", "-".repeat(60));
    for r in rows {
        println!(
            "{:>10}  {:>9.3}s  {:>9.3}s  {:>8.2}  {:>10}",
            r.kernel.name(),
            r.mpif_s,
            r.mpiam_s,
            r.mpiam_s / r.mpif_s,
            if r.checksums_agree { "agree" } else { "DIFFER" }
        );
    }
    println!("\nexpected shape (paper): MPI-AM close to MPI-F on every kernel; FT pays for");
    println!("MPICH's generic Alltoall (convergent schedule); both implementations compute");
    println!("identical numerics.");

    let quick = sp_bench::quick();
    let points = sp_bench::nas_exp::class_sweep(ranks, quick);
    println!(
        "\nClass sweep: MPI-AM on {ranks} thin nodes{}\n",
        if quick { " (quick: reduced only)" } else { "" }
    );
    println!(
        "{:>10}  {:>8}  {:>11}  {:>12}  {:>12}",
        "Benchmark", "class", "virtual", "events", "events/sec"
    );
    println!("{}", "-".repeat(62));
    for p in points {
        println!(
            "{:>10}  {:>8}  {:>10.3}s  {:>12}  {:>12.0}",
            p.kernel.name(),
            p.class.name(),
            p.virtual_s,
            p.events,
            p.events_per_sec
        );
    }

    let wides = sp_bench::nas_exp::wide_sweep(ranks, quick);
    println!(
        "\nWide-node sweep: MPI-AM on {ranks} thin vs wide nodes{}\n",
        if quick { " (quick: reduced only)" } else { "" }
    );
    println!(
        "{:>10}  {:>8}  {:>6}  {:>11}  {:>8}  {:>8}",
        "Benchmark", "class", "nodes", "virtual", "comp", "comm"
    );
    println!("{}", "-".repeat(62));
    for p in &wides {
        println!(
            "{:>10}  {:>8}  {:>6}  {:>10.3}s  {:>7.1}%  {:>7.1}%",
            p.kernel.name(),
            p.class.name(),
            p.flavour,
            p.virtual_s,
            p.comp_frac * 100.0,
            p.comm_frac * 100.0,
        );
    }
    println!("\nexpected shape: the compute charge is the same Power2 rate on both flavours,");
    println!("so wide nodes (faster memcpy and PIO) shrink the comm share and total time.");

    parallel_engine_check(ranks, false);
    sp_bench::print_engine_summary();
}

/// Validate the sharded engine against the serial one on a real kernel:
/// MG (reduced class) on MPI-AM, serial vs 4 conservative-parallel shards,
/// with the per-shard breakdown from the run report. Any divergence in
/// virtual time, event count, or the observable-state hash is a bug.
/// With `export`, the 4-shard run also writes a Perfetto trace (per-shard
/// tracks with lookahead-window and barrier-wait spans) next to the cwd.
fn parallel_engine_check(ranks: usize, export: bool) {
    use sp_mpi::runner::MpiImpl;
    use sp_nas::{Kernel, NasClass};

    let run = |shards: usize| {
        sp_nas::run_kernel_on(
            Kernel::Mg,
            MpiImpl::AmOptimized,
            sp_adapter::SpConfig::thin(ranks).parallel(shards),
            5,
            NasClass::Reduced,
        )
    };
    let (rs, serial) = run(1);
    if export {
        std::env::set_var("SP_TRACE_OUT", "table6-mg-4shard.trace.json");
    }
    let (rp, parallel) = run(4);
    if export {
        std::env::remove_var("SP_TRACE_OUT");
    }
    println!("\nParallel engine check: MG reduced, serial vs 4 shards\n");
    println!(
        "  serial:   {:>9.3}s  {:>9} events  hash {:016x}",
        rs.time.as_secs(),
        serial.events,
        serial.report_hash
    );
    println!(
        "  parallel: {:>9.3}s  {:>9} events  hash {:016x}  ({} windows, {} sync events)",
        rp.time.as_secs(),
        parallel.events,
        parallel.report_hash,
        parallel.windows,
        parallel.sync_events
    );
    for s in &parallel.shards {
        println!(
            "    shard {}: {} nodes, {} events, {} sync",
            s.shard, s.nodes, s.events, s.sync_events
        );
    }
    if let Some(p) = &sp_sim::stats::last_parallel_profile() {
        println!(
            "\n  shard profile ({} windows, {} ns of windowed virtual time):",
            p.windows, p.window_ns
        );
        for s in 0..p.num_shards() {
            println!(
                "    shard {s}: {:>5.1}% window utilization, busy {:>9} ns, active in {}/{} windows",
                p.window_utilization(s) * 100.0,
                p.busy_ns[s],
                p.active_windows[s],
                p.windows,
            );
        }
        println!("  {}", p.summary());
    }
    assert_eq!(
        (serial.end_ns, serial.events, serial.report_hash),
        (parallel.end_ns, parallel.events, parallel.report_hash),
        "parallel MG run diverged from serial"
    );
    println!("  verdict: identical end time, event count, and report hash");
}
