//! Regenerates Table 2: cost of `am_request_N` and `am_reply_N` calls.
//! Paper values: request 7.7/7.9/8.0/8.2 µs, reply 4.0/4.1/4.3/4.4 µs,
//! empty poll 1.3 µs, +1.8 µs per received message.

fn main() {
    let t = sp_bench::micro::table2();
    println!("Table 2: cost of am_request_N / am_reply_N (microseconds)\n");
    println!("{:>14}  {:>6}  {:>6}  {:>6}  {:>6}", "N", 1, 2, 3, 4);
    println!("{}", "-".repeat(52));
    print!("{:>14}", "am_request_N");
    for v in t.request {
        print!("  {v:>6.1}");
    }
    println!();
    print!("{:>14}", "am_reply_N");
    for v in t.reply {
        print!("  {v:>6.1}");
    }
    println!("\n");
    println!("empty am_poll: {:.1} us   (paper: 1.3)", t.poll_empty);
    println!(
        "per received message: {:.1} us   (paper: ~1.8)",
        t.per_message
    );
    println!("\npaper: request 7.7 / 7.9 / 8.0 / 8.2, reply 4.0 / 4.1 / 4.3 / 4.4");
    sp_bench::print_engine_summary();
}
