//! Runs every table/figure regeneration in sequence (the full evaluation
//! pass). `SP_BENCH_QUICK=1` shrinks sweeps for a smoke run.

use std::process::Command;

fn main() {
    let bins = [
        "table2",
        "fig2",
        "fig5-6",
        "table3",
        "fig3",
        "table4",
        "table5",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "table6",
        "ablations",
        "trace-rt",
        "topo",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    let started = std::time::Instant::now();
    for bin in bins {
        println!("\n============================================================");
        println!("==== {bin}");
        println!("============================================================");
        let t0 = std::time::Instant::now();
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        println!("[wall] {bin}: {:.2} s", t0.elapsed().as_secs_f64());
    }
    // Each sub-binary prints its own `[engine] ... events/sec` line above;
    // this is the end-to-end total.
    println!(
        "\nAll experiments regenerated in {:.2} s wall-clock.",
        started.elapsed().as_secs_f64()
    );
}
