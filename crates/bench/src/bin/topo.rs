//! Topology sweep: one-word RTT and streaming bandwidth on single-frame
//! vs multi-frame machines (§1.2), plus the traced latency breakdown of a
//! cross-frame round trip showing the extra switch stage as its own
//! `inter-frame hop` segments, plus the hot-spot congestion experiment
//! comparing the round-robin and adaptive routing policies.
//!
//! ```text
//! cargo run --bin topo
//! cargo run --bin topo -- --parallel 4
//! ```
//!
//! `--parallel N` runs only the dead-cable fault-latency experiment, once
//! serial and once sharded N ways on the conservative-parallel engine, and
//! fails (exit 1) unless every headline metric — post-kill round-trip
//! digest, sample count, and fabric drops — matches exactly. This is the
//! CI guard that fault injection plus mid-run world events replay
//! identically under sharding.
//!
//! Set `SP_BENCH_TOPO_JSON=<path>` to write the congestion metrics as JSON
//! lines, and `SP_BENCH_TOPO_BASELINE=<path>` to compare against a saved
//! baseline (CI fails the run only on an order-of-magnitude regression,
//! mirroring `SP_BENCH_ENGINE_BASELINE`).

use sp_bench::topo_exp::CongestionPoint;
use sp_bench::{quick, topo_exp};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--parallel") {
        let shards: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("topo: --parallel needs a shard count");
                std::process::exit(1);
            });
        if !parallel_fault_check(shards) {
            std::process::exit(1);
        }
        sp_bench::print_engine_summary();
        return;
    }
    let points = topo_exp::run(quick());

    println!("one-word RTT and streaming bandwidth vs topology (node 0 <-> far node)\n");
    println!(
        "{:<20} {:>6} {:>6} {:>5} {:>10} {:>14} {:>10}",
        "machine", "frames", "nodes", "hops", "rtt (us)", "fabric (us)", "bw (MB/s)"
    );
    println!("{}", "-".repeat(78));
    for p in &points {
        println!(
            "{:<20} {:>6} {:>6} {:>5} {:>10.2} {:>14.2} {:>10.1}",
            p.label,
            p.frames,
            p.nodes,
            p.hops,
            p.rtt_ns as f64 / 1_000.0,
            p.wire_switch_ns as f64 / 1_000.0,
            p.store_bw_mb_s,
        );
    }

    let single = &points[0];
    let multi = &points[1];
    println!(
        "\ncross-frame fabric premium: {:+.2} us RTT, {:+.2} us of it in switch stages",
        (multi.rtt_ns as f64 - single.rtt_ns as f64) / 1_000.0,
        (multi.wire_switch_ns as f64 - single.wire_switch_ns as f64) / 1_000.0,
    );

    // Full attribution of a cross-frame round trip: the inter-frame hop
    // shows up as its own pair of segments, each one hop_latency.
    let (label, cfg, dst) = topo_exp::configs().remove(1);
    println!("\n==== breakdown: {label} ====");
    println!("{}", topo_exp::traced_round_trip(&cfg, dst, 4));

    // Hot-spot congestion: k frame-0 senders hammer one frame pair, under
    // both routing policies.
    let (rr, ad) = topo_exp::congestion(quick());
    println!(
        "==== hot-spot congestion: {} senders x 1 frame pair ====\n",
        rr.senders
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "policy",
        "samples",
        "p50 (us)",
        "p99 (us)",
        "p999 (us)",
        "max (us)",
        "lane spread",
        "dodges"
    );
    println!("{}", "-".repeat(88));
    for p in [&rr, &ad] {
        println!(
            "{:<12} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12.3} {:>8}",
            p.policy,
            p.samples,
            p.rtt_p50_ns as f64 / 1_000.0,
            p.rtt_p99_ns as f64 / 1_000.0,
            p.rtt_p999_ns as f64 / 1_000.0,
            p.rtt_max_ns as f64 / 1_000.0,
            p.lane_spread,
            p.adaptive_picks,
        );
        report_truncation(p.policy, p.trace_dropped);
    }
    println!(
        "\nadaptive vs round-robin: p99 {:+.1}%, lane spread {:+.1}%",
        (ad.rtt_p99_ns as f64 / rr.rtt_p99_ns as f64 - 1.0) * 100.0,
        (ad.lane_spread / rr.lane_spread - 1.0) * 100.0,
    );

    // Virtual-time gauges from the sampler: how the congestion builds and
    // where the adaptive policy spreads it.
    for p in [&rr, &ad] {
        println!("\ngauges over virtual time ({}, 25 us bins):", p.policy);
        print_sparklines(&p.series);
    }

    // Fault latency: the same machine, but cable lane 0 dies mid-run.
    let (frr, fad) = topo_exp::fault_latency(quick());
    println!(
        "\n==== fault latency: cable lane 0 killed at {} us ====\n",
        topo_exp::FAULT_KILL_AT_NS as f64 / 1_000.0
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "policy", "samples", "p50 (us)", "p99 (us)", "p999 (us)", "max (us)", "dropped"
    );
    println!("{}", "-".repeat(76));
    for p in [&frr, &fad] {
        println!(
            "{:<12} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>9}",
            p.policy,
            p.samples_after,
            p.rtt_p50_ns as f64 / 1_000.0,
            p.rtt_p99_ns as f64 / 1_000.0,
            p.rtt_p999_ns as f64 / 1_000.0,
            p.rtt_max_ns as f64 / 1_000.0,
            p.dropped,
        );
        report_truncation(p.policy, p.trace_dropped);
    }
    // Recovery visualised: the cumulative retransmit counter climbs in
    // bursts after the kill under round-robin, and stays flat (so the
    // sampler emits no series) under adaptive routing.
    for p in [&frr, &fad] {
        if let Some(retx) = p.series.get("retransmits (cum)") {
            println!(
                "\nretransmits over virtual time ({}): {}  (total {})",
                p.policy,
                retx.sparkline(),
                retx.max()
            );
        }
    }
    println!(
        "\nadaptive vs round-robin with a dead cable: p99 {:+.1}%, drops {:+.1}%",
        (fad.rtt_p99_ns as f64 / frr.rtt_p99_ns as f64 - 1.0) * 100.0,
        (fad.dropped as f64 / frr.dropped as f64 - 1.0) * 100.0,
    );

    // Loss recovery: the same seeded 15% drop window crossed by a bulk
    // store under the legacy go-back-N and the adaptive RTO+SACK modes.
    let (leg, adp) = topo_exp::loss_recovery(quick());
    println!("\n==== loss recovery: seeded 15% drop window, legacy vs adaptive ====\n");
    println!(
        "{:<10} {:>12} {:>10} {:>8} {:>6} {:>9} {:>18}",
        "mode", "recover (us)", "msgs/ms", "rtx", "drops", "spurious", "cause t/s/k"
    );
    println!("{}", "-".repeat(78));
    for p in [&leg, &adp] {
        println!(
            "{:<10} {:>12.1} {:>10.1} {:>8} {:>6} {:>9} {:>18}",
            p.mode,
            p.recover_ns as f64 / 1_000.0,
            p.goodput_msgs_ms,
            p.retransmits,
            p.dropped,
            p.spurious_rtx,
            format!("{}/{}/{}", p.rtx_timeout, p.rtx_sack_gap, p.rtx_keepalive),
        );
    }
    println!(
        "\nadaptive vs legacy under loss: recovery {:+.1}%, spurious rtx {:+.1}%",
        (adp.recover_ns as f64 / leg.recover_ns as f64 - 1.0) * 100.0,
        (adp.spurious_rtx as f64 / leg.spurious_rtx.max(1) as f64 - 1.0) * 100.0,
    );
    if adp.recover_ns >= leg.recover_ns || adp.spurious_rtx >= leg.spurious_rtx {
        println!("LOSS RECOVERY CHECK FAILED: adaptive must strictly beat legacy on both");
        std::process::exit(1);
    }

    let mut metrics = collect_metrics(&rr, &ad);
    for p in [&frr, &fad] {
        metrics.push((
            format!("topo/fault-{}-p50-rtt-ns", p.policy),
            p.rtt_p50_ns as f64,
        ));
        metrics.push((
            format!("topo/fault-{}-p99-rtt-ns", p.policy),
            p.rtt_p99_ns as f64,
        ));
        metrics.push((format!("topo/fault-{}-dropped", p.policy), p.dropped as f64));
    }
    for p in [&leg, &adp] {
        metrics.push((
            format!("topo/loss-{}-recover-ns", p.mode),
            p.recover_ns as f64,
        ));
        metrics.push((
            format!("topo/loss-{}-spurious-rtx", p.mode),
            p.spurious_rtx as f64,
        ));
    }
    if let Ok(path) = std::env::var("SP_BENCH_TOPO_JSON") {
        write_json(&path, &metrics);
        println!("wrote {} metrics to {path}", metrics.len());
    }
    if let Ok(path) = std::env::var("SP_BENCH_TOPO_SERIES") {
        std::fs::write(&path, ad.series.to_json()).expect("write SP_BENCH_TOPO_SERIES file");
        println!("wrote adaptive congestion gauge series to {path}");
    }
    if let Ok(path) = std::env::var("SP_BENCH_TOPO_BASELINE") {
        if !compare_baseline(&path, &metrics) {
            std::process::exit(1);
        }
    }

    sp_bench::print_engine_summary();
}

/// The dead-cable experiment, serial vs `shards`-way sharded, round-robin
/// routing (the policy the sharded engine supports). Every headline
/// metric must match exactly: the cable kill is a broadcast world event
/// and the per-link drop injectors classify at the cables' owning shard,
/// so divergence here means the conservative-parallel engine broke
/// serial-equivalence under faults.
fn parallel_fault_check(shards: usize) -> bool {
    let iters = if quick() { 12 } else { 32 };
    let rr = sp_adapter::RoutePolicy::RoundRobin;
    let serial = topo_exp::fault_run(rr, 8, iters);
    let sharded = topo_exp::fault_run_sharded(rr, 8, iters, shards);
    println!(
        "==== parallel fault check: cable lane 0 killed at {} us, {shards} shards ====\n",
        topo_exp::FAULT_KILL_AT_NS as f64 / 1_000.0
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "engine", "samples", "p50 (us)", "p99 (us)", "p999 (us)", "max (us)", "dropped"
    );
    println!("{}", "-".repeat(76));
    for (name, p) in [("serial", &serial), ("sharded", &sharded)] {
        println!(
            "{:<12} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>9}",
            name,
            p.samples_after,
            p.rtt_p50_ns as f64 / 1_000.0,
            p.rtt_p99_ns as f64 / 1_000.0,
            p.rtt_p999_ns as f64 / 1_000.0,
            p.rtt_max_ns as f64 / 1_000.0,
            p.dropped,
        );
    }
    let same = [
        serial.samples_after as u64 == sharded.samples_after as u64,
        serial.rtt_p50_ns == sharded.rtt_p50_ns,
        serial.rtt_p99_ns == sharded.rtt_p99_ns,
        serial.rtt_p999_ns == sharded.rtt_p999_ns,
        serial.rtt_max_ns == sharded.rtt_max_ns,
        serial.dropped == sharded.dropped,
    ]
    .iter()
    .all(|b| *b);
    if same {
        println!("\nserial and {shards}-shard runs agree on every metric");
    } else {
        println!("\nPARALLEL FAULT CHECK FAILED: sharded run diverged from serial");
    }
    same
}

/// Flag ring overflow next to the table it would silently skew.
fn report_truncation(policy: &str, dropped: u64) {
    if dropped > 0 {
        println!("  ({policy}: trace truncated, {dropped} records lost to ring overflow)");
    }
}

/// Print the headline gauge sparklines of a sampled run: the shared-cable
/// busy percentages and the aggregate in-flight packet count. Per-node
/// FIFO-depth gauges stay in the JSON export — sixteen near-identical
/// lines add nothing to a terminal summary.
fn print_sparklines(series: &sp_trace::TimeSeries) {
    for s in series.series.iter() {
        let keep = s.name.contains("xlink") || s.name == "in-flight packets";
        if !keep {
            continue;
        }
        println!("  {:<24} {}  (max {})", s.name, s.sparkline(), s.max());
    }
}

/// The congestion metrics that go into `BENCH_topo.json`. All are
/// lower-is-better, so the baseline comparison fails on a 10x increase.
fn collect_metrics(rr: &CongestionPoint, ad: &CongestionPoint) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for p in [rr, ad] {
        out.push((format!("topo/{}-p50-rtt-ns", p.policy), p.rtt_p50_ns as f64));
        out.push((format!("topo/{}-p99-rtt-ns", p.policy), p.rtt_p99_ns as f64));
        out.push((format!("topo/{}-lane-spread", p.policy), p.lane_spread));
    }
    out
}

fn write_json(path: &str, metrics: &[(String, f64)]) {
    let mut f = std::fs::File::create(path).expect("create SP_BENCH_TOPO_JSON file");
    for (id, value) in metrics {
        writeln!(f, "{{\"id\":\"{id}\",\"value\":{value:.3}}}").expect("write metric");
    }
}

/// Pull `"key":<number>` out of a JSON line (hand-rolled, like the engine
/// bench: the workspace has no JSON dependency).
fn json_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull `"key":"<string>"` out of a JSON line.
fn json_string<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Compare against a saved baseline. Only an order-of-magnitude regression
/// (metric grew 10x; all topo metrics are lower-is-better) fails the run —
/// same guardrail philosophy as `SP_BENCH_ENGINE_BASELINE`.
fn compare_baseline(path: &str, metrics: &[(String, f64)]) -> bool {
    let base = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            println!("\nno topo baseline at {path} ({e}); skipping comparison");
            return true;
        }
    };
    println!("\ncomparison vs baseline {path} (fail = metric grew 10x):");
    let mut ok = true;
    for line in base.lines().filter(|l| !l.trim().is_empty()) {
        let (Some(id), Some(old)) = (json_string(line, "id"), json_number(line, "value")) else {
            continue;
        };
        let Some((_, cur)) = metrics.iter().find(|(i, _)| i == id) else {
            println!("  {id:<28} missing from current run");
            continue;
        };
        let ratio = if old > 0.0 { cur / old } else { 1.0 };
        let verdict = if ratio > 10.0 {
            ok = false;
            "FAIL"
        } else {
            "ok"
        };
        println!("  {id:<28} base {old:>12.1}  cur {cur:>12.1}  x{ratio:<6.2} {verdict}");
    }
    if !ok {
        println!("topo congestion metrics regressed by more than an order of magnitude");
    }
    ok
}
