//! Topology sweep: one-word RTT and streaming bandwidth on single-frame
//! vs multi-frame machines (§1.2), plus the traced latency breakdown of a
//! cross-frame round trip showing the extra switch stage as its own
//! `inter-frame hop` segments.
//!
//! ```text
//! cargo run --bin topo
//! ```

use sp_bench::{quick, topo_exp};

fn main() {
    let points = topo_exp::run(quick());

    println!("one-word RTT and streaming bandwidth vs topology (node 0 <-> far node)\n");
    println!(
        "{:<20} {:>6} {:>6} {:>5} {:>10} {:>14} {:>10}",
        "machine", "frames", "nodes", "hops", "rtt (us)", "fabric (us)", "bw (MB/s)"
    );
    println!("{}", "-".repeat(78));
    for p in &points {
        println!(
            "{:<20} {:>6} {:>6} {:>5} {:>10.2} {:>14.2} {:>10.1}",
            p.label,
            p.frames,
            p.nodes,
            p.hops,
            p.rtt_ns as f64 / 1_000.0,
            p.wire_switch_ns as f64 / 1_000.0,
            p.store_bw_mb_s,
        );
    }

    let single = &points[0];
    let multi = &points[1];
    println!(
        "\ncross-frame fabric premium: {:+.2} us RTT, {:+.2} us of it in switch stages",
        (multi.rtt_ns as f64 - single.rtt_ns as f64) / 1_000.0,
        (multi.wire_switch_ns as f64 - single.wire_switch_ns as f64) / 1_000.0,
    );

    // Full attribution of a cross-frame round trip: the inter-frame hop
    // shows up as its own pair of segments, each one hop_latency.
    let (label, cfg, dst) = topo_exp::configs().remove(1);
    println!("\n==== breakdown: {label} ====");
    println!("{}", topo_exp::traced_round_trip(&cfg, dst, 4));

    sp_bench::print_engine_summary();
}
