//! Ablation study of the paper's design decisions (DESIGN.md §"design
//! choices"): what happens to bandwidth/latency when each protocol knob is
//! moved off the paper's value.

use sp_adapter::SpConfig;
use sp_am::AmConfig;
use sp_bench::ablation;

fn main() {
    println!("Ablations of SP AM / MPI-AM design choices\n");

    // ---- chunk size (paper: 36 packets = 8064 bytes) -------------------
    println!("chunk size (window = 2 chunks):");
    println!(
        "{:>10}  {:>12}  {:>16}",
        "packets", "bw (MB/s)", "64KB store (us)"
    );
    for chunk in [9u32, 18, 36, 72] {
        let cfg = AmConfig {
            chunk_packets: chunk,
            window_request: 2 * chunk,
            window_reply: 2 * chunk + 4,
            ..AmConfig::default()
        };
        let (bw, lat) = ablation::am_profile(SpConfig::thin(2), cfg);
        let mark = if chunk == 36 { "  <- paper" } else { "" };
        println!("{chunk:>10}  {bw:>12.2}  {lat:>16.0}{mark}");
    }
    println!("below ~18 packets the per-chunk ack round trip can no longer hide inside");
    println!("the chunk's injection time and the pipeline drains; past 36 the wire is");
    println!("already saturated, while a 72-packet chunk needs a window exceeding the");
    println!("receive FIFO's 64-entries-per-node share (riskier under load).\n");

    // ---- window size (paper: 72 request packets) -----------------------
    println!("request window (chunk = 36 packets):");
    println!(
        "{:>10}  {:>12}  {:>16}",
        "packets", "bw (MB/s)", "64KB store (us)"
    );
    for window in [36u32, 72, 144] {
        let cfg = AmConfig {
            window_request: window,
            window_reply: window + 4,
            ..AmConfig::default()
        };
        let (bw, lat) = ablation::am_profile(SpConfig::thin(2), cfg);
        let mark = if window == 72 { "  <- paper" } else { "" };
        println!("{window:>10}  {bw:>12.2}  {lat:>16.0}{mark}");
    }
    println!("one chunk of window serializes chunk-ack-chunk; beyond two chunks there");
    println!("is nothing left to overlap, so 72 is the sweet spot (§2.2).\n");

    // ---- doorbell batching (paper: batch the length-array stores) ------
    println!("doorbell batching (MicroChannel length stores per batch):");
    println!(
        "{:>10}  {:>12}  {:>16}",
        "batch", "bw (MB/s)", "64KB store (us)"
    );
    for batch in [1usize, 4, 8, 16] {
        let cfg = AmConfig {
            doorbell_batch: batch,
            ..AmConfig::default()
        };
        let (bw, lat) = ablation::am_profile(SpConfig::thin(2), cfg);
        let mark = if batch == 8 { "  <- default" } else { "" };
        println!("{batch:>10}  {bw:>12.2}  {lat:>16.0}{mark}");
    }
    println!("at this calibration the host path (5.9 us/packet) keeps ~0.6 us headroom");
    println!("under the 6.5 us wire rate, so batching is nearly neutral and mostly trades");
    println!("publish latency; it becomes decisive when the host is the bottleneck — the");
    println!("situation the paper's bulk path faced (§2.1).\n");

    // ---- explicit-ACK threshold (paper: quarter window) ----------------
    println!("explicit-ACK threshold (window / div), 200-request stream:");
    println!(
        "{:>10}  {:>14}  {:>14}",
        "div", "explicit acks", "done at (us)"
    );
    for div in [2u32, 4, 8, 16] {
        let (acks, t) = ablation::ack_threshold_profile(div);
        let mark = if div == 4 { "  <- paper" } else { "" };
        println!("{div:>10}  {acks:>14}  {t:>14.0}{mark}");
    }
    println!("larger thresholds (small div) send fewer explicit-ACK packets and finish");
    println!("sooner here; the paper's quarter-window choice spends a little bandwidth to");
    println!("keep the sender's window from stalling on bursts (§2.2).\n");

    // ---- MPI binned allocator (paper §4.2) ------------------------------
    println!("MPI buffered-protocol allocator (256-byte messages):");
    let ff = ablation::allocator_profile(false);
    let bins = ablation::allocator_profile(true);
    println!("{:>20}  {:>14}", "allocator", "us/message");
    println!("{:>20}  {:>14.2}", "first-fit", ff);
    println!(
        "{:>20}  {:>14.2}  <- paper's optimization",
        "8 x 1KB bins", bins
    );
    println!();

    // ---- tuned collectives (paper §4.4 future work) ---------------------
    println!("FT kernel (16 ranks): generic MPICH Alltoall vs SP-tuned schedule:");
    let (generic, tuned) = ablation::collective_profile();
    println!("{:>20}  {:>12}", "alltoall", "FT time (s)");
    println!("{:>20}  {:>12.3}", "generic (MPICH)", generic);
    println!(
        "{:>20}  {:>12.3}  <- the paper's proposed fix",
        "staggered", tuned
    );
    println!();

    // ---- polling vs interrupts (paper §1.1) ------------------------------
    println!("message reception mode (server side of a ping-pong):");
    let ((poll_rtt, poll_polls), (int_rtt, int_polls)) = ablation::reception_profile();
    println!("{:>12}  {:>10}  {:>12}", "mode", "RTT (us)", "server polls");
    println!(
        "{:>12}  {:>10.1}  {:>12}  <- the paper's choice",
        "polling", poll_rtt, poll_polls
    );
    println!("{:>12}  {:>10.1}  {:>12}", "interrupts", int_rtt, int_polls);
    println!("interrupt dispatch (~35 us on AIX) dwarfs the 1.3 us poll — the reason");
    println!("the paper analyzes polling mode only (§1.1).");
    sp_bench::print_engine_summary();
}
