//! Regenerates Figure 10: MPI point-to-point per-hop latencies on wide
//! nodes.

use sp_bench::fmt::print_series;

fn main() {
    let quick = sp_bench::quick();
    let series = sp_bench::mpi_exp::fig_latency(true, quick);
    println!("Figure 10: MPI per-hop latency on wide SP nodes (us)\n");
    print_series("bytes", &series);
    println!("\nexpected shape (paper): as Figure 8, but MPI-F (tuned for wide nodes)");
    println!("competitive below ~100 bytes and slower above.");
    sp_bench::print_engine_summary();
}
