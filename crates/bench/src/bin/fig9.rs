//! Regenerates Figure 9: MPI point-to-point bandwidths on thin nodes.

use sp_bench::fmt::print_series;

fn main() {
    let quick = sp_bench::quick();
    let series = sp_bench::mpi_exp::fig_bandwidth(false, quick);
    println!("Figure 9: MPI per-hop bandwidth on thin SP nodes (MB/s)\n");
    print_series("bytes", &series);
    println!("\nexpected shape (paper): optimized AM MPI 10-30% above MPI-F for medium");
    println!("(8-32 KB) messages — the hybrid protocol avoids MPI-F's rendezvous dip;");
    println!("all converge at 1 MB.");
    sp_bench::print_engine_summary();
}
