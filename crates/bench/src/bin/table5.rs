//! Regenerates Table 5: absolute Split-C benchmark execution times on
//! eight processors across the five platforms.

use sp_splitc::Platform;

fn main() {
    let quick = sp_bench::quick();
    let data = sp_bench::splitc_exp::table5(quick);
    println!("Table 5: Split-C benchmark execution times, 8 processors (seconds, scaled class)\n");
    print!("{:>12}", "Benchmark");
    for p in Platform::all() {
        print!("  {:>14}", p.name());
    }
    println!();
    println!("{}", "-".repeat(95));
    for (app, row) in &data {
        print!("{:>12}", app.label());
        for (_, t) in row {
            print!("  {:>13.3}s", t.total.as_secs());
        }
        println!();
    }
    println!("\nexpected shape (paper): SP AM fastest or tied everywhere; SP MPL ~equal for");
    println!("mm 128 and bulk sorts, 2-4x slower for the fine-grain (sm) variants; CM-5");
    println!("slowest cpu but competitive comm; CS-2/U-Net in between.");

    // Figure 4 from the same data (normalized to SP AM, cpu/net split) —
    // printed here so `repro-all` doesn't pay for the sweep twice.
    println!("\nFigure 4: the same runs normalized to SP AM (cpu / net split)\n");
    for (app, row) in &data {
        let sp_total = row
            .iter()
            .find(|(p, _)| *p == Platform::SpAm)
            .expect("SP AM row")
            .1
            .total
            .as_secs();
        println!("{}:", app.label());
        println!(
            "{:>16}  {:>8}  {:>8}  {:>8}",
            "platform", "cpu", "net", "total"
        );
        for (p, t) in row {
            println!(
                "{:>16}  {:>8.2}  {:>8.2}  {:>8.2}",
                p.name(),
                t.cpu().as_secs() / sp_total,
                t.comm.as_secs() / sp_total,
                t.total.as_secs() / sp_total
            );
        }
        println!();
    }
    println!("expected shape (paper): SP bars lowest cpu (fastest processor); SP AM net");
    println!("below SP MPL net everywhere, drastically so for the sm sort variants.");
    sp_bench::print_engine_summary();
}
