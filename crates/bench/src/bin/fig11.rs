//! Regenerates Figure 11: MPI point-to-point bandwidths on wide nodes.

use sp_bench::fmt::print_series;

fn main() {
    let quick = sp_bench::quick();
    let series = sp_bench::mpi_exp::fig_bandwidth(true, quick);
    println!("Figure 11: MPI per-hop bandwidth on wide SP nodes (MB/s)\n");
    print_series("bytes", &series);
    println!("\nexpected shape (paper): as Figure 9 with the faster wide-node memory");
    println!("system lifting all curves.");
    sp_bench::print_engine_summary();
}
