//! Regenerates Figures 5 and 6 (the rendezvous and buffered protocol
//! diagrams) from *traced* protocol events: three MPI sends — buffered,
//! rendezvous with the receive pre-posted, rendezvous with the receive
//! posted late — printed as two-node timelines.

use parking_lot::Mutex;
use sp_adapter::SpConfig;
use sp_am::{Am, AmConfig, AmMachine};
use sp_mpi::{Mpi, MpiAm, MpiAmConfig, MpiSt};
use std::sync::Arc;

type Log = Vec<(sp_sim::Time, usize, &'static str)>;

fn run_scenario(
    title: &str,
    sender: impl Fn(&mut MpiAm<'_, '_>) + Send + Sync + 'static,
    receiver: impl Fn(&mut MpiAm<'_, '_>) + Send + Sync + 'static,
) {
    let cfg = MpiAmConfig {
        trace_protocol: true,
        ..MpiAmConfig::unoptimized()
    };
    let sp = SpConfig::thin(2);
    let cost = sp.cost.clone();
    let mut m = AmMachine::new(sp, AmConfig::default(), 11);
    let log: Arc<Mutex<Log>> = Arc::new(Mutex::new(Vec::new()));
    let sender = Arc::new(sender);
    let receiver = Arc::new(receiver);
    for rank in 0..2usize {
        let cfg = cfg.clone();
        let st = MpiSt::new(&cfg, rank, 2, &cost);
        let log = log.clone();
        let sender = sender.clone();
        let receiver = receiver.clone();
        m.spawn(format!("r{rank}"), st, move |am: &mut Am<'_, MpiSt>| {
            let mut mpi = MpiAm::new(am, cfg);
            if rank == 0 {
                sender(&mut mpi);
            } else {
                receiver(&mut mpi);
            }
            mpi.barrier();
            log.lock().extend_from_slice(mpi.protocol_log());
        });
    }
    m.run().expect("scenario completes");
    let mut log = log.lock().clone();
    log.sort_by_key(|&(t, _, _)| t);
    println!("--- {title} ---");
    println!("{:>12}  {:>6}  event", "time (us)", "node");
    for (t, node, what) in log {
        println!("{:>12.1}  {:>6}  {what}", t.as_us(), node);
    }
    println!();
}

fn main() {
    println!("Figures 5/6: buffered and rendezvous protocols over AM (traced)\n");

    run_scenario(
        "Figure 6 (left): buffered protocol — small message",
        |mpi| {
            mpi.send(&[0u8; 600], 1, 1);
        },
        |mpi| {
            let _ = mpi.recv(Some(0), Some(1));
        },
    );

    run_scenario(
        "Figure 5 (left): rendezvous — receive posted before the send",
        |mpi| {
            // Give the receiver time to post.
            mpi.work(sp_sim::Dur::us(200.0));
            mpi.send(&vec![0u8; 40_000], 1, 1);
        },
        |mpi| {
            let r = mpi.irecv(Some(0), Some(1));
            mpi.wait(r);
        },
    );

    run_scenario(
        "Figure 5 (right): rendezvous — receive posted after the send",
        |mpi| {
            let r = mpi.isend(&vec![0u8; 40_000], 1, 1);
            mpi.wait(r);
        },
        |mpi| {
            // Post late: keep polling (so the request is *handled* and
            // recorded as unexpected) before the receive appears — the
            // grant then travels as a fresh request.
            let t0 = mpi.now();
            while (mpi.now() - t0) < sp_sim::Dur::ms(1.0) {
                mpi.progress();
            }
            let r = mpi.irecv(Some(0), Some(1));
            mpi.wait(r);
        },
    );

    println!("Shapes match the paper's diagrams: the buffered path is one store plus a");
    println!("free reply; pre-posted rendezvous grants from the request handler's reply;");
    println!("late-posted rendezvous records the request and grants when the receive is");
    println!("posted — and the data store always launches from a poll, never from the");
    println!("grant handler (the ADI restriction the paper describes).");
    sp_bench::print_engine_summary();
}
