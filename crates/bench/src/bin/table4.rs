//! Regenerates Table 4: performance characteristics of the TMC CM-5,
//! Meiko CS-2, U-Net/ATM cluster, and IBM SP.

fn main() {
    let quick = sp_bench::quick();
    let iters = if quick { 40 } else { 120 };
    let (sp_rtt, _) = sp_bench::micro::am_round_trip(1, iters);
    let sp_bw = sp_bench::micro::bandwidth(sp_bench::micro::BwMode::AsyncStore, 1 << 16, 1 << 19);
    let rows = sp_bench::splitc_exp::table4(sp_rtt, sp_bw);
    println!("Table 4: machine performance characteristics\n");
    println!(
        "{:>12}  {:>20}  {:>12}  {:>14}  {:>10}",
        "Machine", "CPU", "Msg overhead", "RT latency", "Bandwidth"
    );
    println!("{}", "-".repeat(80));
    for r in rows {
        println!(
            "{:>12}  {:>20}  {:>10.1}us  {:>12.1}us  {:>6.1}MB/s",
            r.name, r.cpu, r.overhead_us, r.rtt_us, r.bandwidth_mb_s
        );
    }
    println!("\npaper: CM-5 3us/12us/10MB/s; CS-2 11us/55us*/39MB/s; U-Net 13us*/66us/14MB/s;");
    println!("       SP ~6us/51us/34MB/s   (* OCR-reconstructed, see DESIGN.md)");
    sp_bench::print_engine_summary();
}
