//! Regenerates Table 3 (performance summary of SP AM vs IBM MPL) plus the
//! §2.3 round-trip details.

fn main() {
    let quick = sp_bench::quick();
    let t = sp_bench::micro::table3(quick);
    println!("Table 3: Performance Summary of SP AM and IBM MPL\n");
    println!("{:>42}  {:>10}  {:>10}", "Metric", "AM", "MPL");
    println!("{}", "-".repeat(68));
    println!(
        "{:>42}  {:>10.1}  {:>10.1}",
        "One-word round-trip latency (us)", t.am_rtt, t.mpl_rtt
    );
    println!(
        "{:>42}  {:>10.2}  {:>10.2}",
        "Asymptotic bandwidth r_inf (MB/s)", t.am_rinf, t.mpl_rinf
    );
    println!(
        "{:>42}  {:>10.0}  {:>10.0}",
        "Half-power point n1/2, non-blocking (bytes)", t.am_n_half_async, t.mpl_n_half_async
    );
    println!(
        "{:>42}  {:>10.0}  {:>10.0}",
        "Half-power point n1/2, blocking (bytes)", t.am_n_half_sync, t.mpl_n_half_sync
    );
    println!();
    println!(
        "raw (no protocol) round trip: {:.1} us (paper: ~47)",
        t.raw_rtt
    );
    println!(
        "AM software overhead over raw: {:.1} us (paper: ~4)",
        t.am_rtt - t.raw_rtt
    );
    // Per-word growth (§2.3: ~0.5 us per extra word).
    let (rtt1, _) = sp_bench::micro::am_round_trip(1, 60);
    let (rtt4, _) = sp_bench::micro::am_round_trip(4, 60);
    println!(
        "per-word round-trip growth: {:.2} us/word (paper: ~0.5)",
        (rtt4 - rtt1) / 3.0
    );
    let ex = sp_bench::micro::exchange_bandwidth(1 << 16, 1 << 19);
    println!("exchange (bidirectional) aggregate bandwidth: {ex:.2} MB/s");
    println!("\npaper: RTT 51.0 vs 88.0; r_inf 34.3 vs 34.6; n1/2 async 260 vs ~2400*;");
    println!("       n1/2 blocking 2800 vs >3200*   (* OCR-reconstructed, see DESIGN.md)");
    sp_bench::print_engine_summary();
}
