//! Ablations of the paper's design choices: chunk size, window size,
//! doorbell batching, explicit-ACK threshold, lazy-pop batching, the MPI
//! binned allocator, tuned collectives, and polling vs interrupts.

use parking_lot::Mutex;
use sp_adapter::SpConfig;
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, GlobalPtr};
use sp_mpi::runner::MpiImpl;
use sp_mpi::{Mpi, MpiAm, MpiAmConfig, MpiSt};
use sp_nas::{run_kernel, Kernel};
use std::sync::Arc;

#[derive(Default)]
struct St {
    count: u32,
}

fn bump(env: &mut AmEnv<'_, St>, _args: AmArgs) {
    env.state.count += 1;
}

/// Async-store bandwidth (MB/s) and blocking 64 KB store latency (µs)
/// under a given protocol/hardware configuration.
pub fn am_profile(sp: SpConfig, am_cfg: AmConfig) -> (f64, f64) {
    let out = Arc::new(Mutex::new((0.0f64, 0.0f64)));
    let out2 = out.clone();
    let mut m = AmMachine::new(sp, am_cfg, 17);
    m.mem().alloc(1, 1 << 17);
    m.spawn("tx", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump);
        // Bandwidth: 512 KB in pipelined 64 KB async stores.
        let data = vec![0x3Cu8; 1 << 16];
        am.barrier();
        let t0 = am.now();
        let handles: Vec<_> = (0..8)
            .map(|_| am.store_async(GlobalPtr { node: 1, addr: 0 }, &data, None, &[], None))
            .collect();
        for h in handles {
            am.wait_bulk(h);
        }
        let bw = (8 << 16) as f64 / (am.now() - t0).as_secs() / 1e6;
        // Latency: one blocking 64 KB store.
        let t1 = am.now();
        am.store(GlobalPtr { node: 1, addr: 0 }, &data, None, &[]);
        let lat = (am.now() - t1).as_us();
        *out2.lock() = (bw, lat);
        am.barrier();
    });
    m.spawn("rx", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump);
        am.barrier();
        am.barrier();
    });
    m.run().expect("ablation run completes");
    let v = *out.lock();
    v
}

/// Explicit-ACK packets sent by the receiver for a fixed request stream,
/// plus the stream's completion time (µs).
pub fn ack_threshold_profile(div: u32) -> (u64, f64) {
    let cfg = AmConfig {
        ack_threshold_div: div,
        ..AmConfig::default()
    };
    let out = Arc::new(Mutex::new((0u64, 0.0f64)));
    let out2 = out.clone();
    let mut m = AmMachine::new(SpConfig::thin(2), cfg, 17);
    m.spawn("tx", St::default(), |am: &mut Am<'_, St>| {
        am.register(bump);
        let t0 = am.now();
        for _ in 0..200u32 {
            am.request_1(1, 0, 0);
        }
        am.quiesce();
        let dt = (am.now() - t0).as_us();
        am.barrier();
        // Stash the time via state? Use the shared cell on the rx side.
        let _ = dt;
    });
    m.spawn("rx", St::default(), move |am: &mut Am<'_, St>| {
        am.register(bump);
        am.poll_until(|s| s.count >= 200);
        am.barrier();
        *out2.lock() = (am.stats().explicit_acks_sent, am.now().as_us());
    });
    m.run().expect("ack ablation completes");
    let v = *out.lock();
    v
}

/// MPI 256-byte eager send+recv per-message time (µs) with/without the
/// binned allocator (everything else optimized).
pub fn allocator_profile(binned: bool) -> f64 {
    let cfg = MpiAmConfig {
        binned_allocator: binned,
        ..MpiAmConfig::optimized()
    };
    let out = Arc::new(Mutex::new(0.0f64));
    let sp = SpConfig::thin(2);
    let cost = sp.cost.clone();
    let mut m = AmMachine::new(sp, AmConfig::default(), 23);
    for rank in 0..2usize {
        let out = out.clone();
        let cfg = cfg.clone();
        let st = MpiSt::new(&cfg, rank, 2, &cost);
        m.spawn(format!("r{rank}"), st, move |am: &mut Am<'_, MpiSt>| {
            let mut mpi = MpiAm::new(am, cfg);
            let iters = 300u32;
            if rank == 0 {
                let data = vec![0x11u8; 256];
                mpi.barrier();
                let t0 = mpi.now();
                for i in 0..iters {
                    mpi.send(&data, 1, i as i32);
                }
                let _ = mpi.recv(Some(1), Some(-1));
                *out.lock() = (mpi.now() - t0).as_us() / iters as f64;
                mpi.barrier();
            } else {
                mpi.barrier();
                for i in 0..iters {
                    let _ = mpi.recv(Some(0), Some(i as i32));
                }
                mpi.send(&[], 0, -1);
                mpi.barrier();
            }
        });
    }
    m.run().expect("allocator ablation completes");
    let v = *out.lock();
    v
}

/// FT kernel time (s) with the generic vs tuned all-to-all.
pub fn collective_profile() -> (f64, f64) {
    let generic = run_kernel(Kernel::Ft, MpiImpl::AmOptimized, 16, 5);
    let tuned = run_kernel(Kernel::Ft, MpiImpl::AmTuned, 16, 5);
    assert!(
        (generic.checksum - tuned.checksum).abs() <= 1e-9 * generic.checksum.abs(),
        "tuned collectives changed the numerics"
    );
    (generic.time.as_secs(), tuned.time.as_secs())
}

/// Polling vs interrupt-driven server RTT (µs) and server poll counts.
pub fn reception_profile() -> ((f64, u64), (f64, u64)) {
    let run = |interrupts: bool| {
        let out = Arc::new(Mutex::new((0.0f64, 0u64)));
        let out2 = out.clone();
        let out3 = out.clone();
        let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 42);
        let iters = 60u32;
        m.spawn("client", St::default(), move |am: &mut Am<'_, St>| {
            am.register(pong);
            am.register(bump);
            am.request_1(1, 0, 0);
            am.poll_until(|s| s.count >= 1);
            let t0 = am.now();
            for i in 0..iters {
                am.request_1(1, 0, 0);
                am.poll_until(move |s| s.count >= i + 2);
            }
            out2.lock().0 = (am.now() - t0).as_us() / iters as f64;
        });
        m.spawn("server", St::default(), move |am: &mut Am<'_, St>| {
            am.register(pong);
            am.register(bump);
            if interrupts {
                am.wait_until(move |s| s.count > iters);
            } else {
                am.poll_until(move |s| s.count > iters);
            }
            out3.lock().1 = am.stats().polls;
        });
        m.run().expect("reception ablation completes");
        let v = *out.lock();
        v
    };
    fn pong(env: &mut AmEnv<'_, St>, _args: AmArgs) {
        env.state.count += 1;
        env.reply_1(1, 0);
    }
    (run(false), run(true))
}
