//! Measured latency breakdown of the one-word AM round trip (§2.3).
//!
//! The paper *derives* the 51 µs round trip by attributing costs to the
//! request/reply software paths, the MicroChannel crossings, the firmware
//! and the switch. This module reproduces that attribution from
//! *measurement*: it runs a ping-pong under the unified trace recorder
//! ([`sp_trace`]), walks the causal chain of spans through one round trip,
//! and diffs every measured component against the cost-model constant it
//! should equal. Gaps between consecutive causal spans (firmware scan
//! delay, the receiver's poll loop catching the arrival) are attributed
//! explicitly, so the segments sum to the round trip exactly.

use sp_adapter::{AdapterConfig, SpConfig};
use sp_am::{Am, AmArgs, AmConfig, AmEnv, AmMachine, AmReport};
use sp_machine::CostModel;
use sp_switch::SwitchConfig;
use sp_trace::{Kind, Record, Track};

/// Per-node trace ring capacity used by the round-trip run: small enough
/// to stay cheap, large enough that a few hundred iterations never wrap.
pub const RING_CAPACITY: usize = 1 << 16;

#[derive(Default)]
struct PingState {
    pings: u32,
    pongs: u32,
}

fn pong_handler(env: &mut AmEnv<'_, PingState>, args: AmArgs) {
    env.state.pings += 1;
    env.reply_1(args.a[0] as u16, 0);
}

fn done_handler(env: &mut AmEnv<'_, PingState>, _args: AmArgs) {
    env.state.pongs += 1;
}

/// Run `iters` one-word round trips between two thin nodes with tracing
/// enabled. Each measured iteration is bracketed by a [`Kind::UserSpan`]
/// on node 0's program track whose `arg` is the iteration index; a warmup
/// round precedes the first measured one. Returns the merged, time-sorted
/// trace and the machine report.
pub fn run_one_word(iters: u32) -> (Vec<Record>, AmReport) {
    let mut m = AmMachine::new(SpConfig::thin(2), AmConfig::default(), 42);
    let tracer = m.enable_tracing(RING_CAPACITY);
    let t2 = tracer.clone();
    m.spawn(
        "pinger",
        PingState::default(),
        move |am: &mut Am<'_, PingState>| {
            am.register(pong_handler);
            let done = am.register(done_handler);
            // Warmup round: populates caches-of-the-model (channel state),
            // so measured iterations are steady state.
            am.request_1(1, 0, done as u32);
            am.poll_until(|s| s.pongs >= 1);
            for i in 0..iters {
                let t0 = am.now();
                am.request_1(1, 0, done as u32);
                am.poll_until(move |s| s.pongs >= i + 2);
                t2.span(
                    t0.as_ns(),
                    am.now().as_ns(),
                    Track::program(0),
                    Kind::UserSpan,
                    i as u64,
                );
            }
        },
    );
    m.spawn(
        "ponger",
        PingState::default(),
        move |am: &mut Am<'_, PingState>| {
            am.register(pong_handler);
            am.register(done_handler);
            am.poll_until(move |s| s.pings > iters);
        },
    );
    let report = m.run().expect("round-trip run completes");
    (tracer.snapshot(), report)
}

/// One attributed segment of the round trip: a causal span (or the gap
/// before one), its measured duration, and — where the segment is a pure
/// model cost — the constant it must equal.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Human label, e.g. `"reply cpu (n1)"` or `"fw scan delay (n0)"`.
    pub label: String,
    /// Measured duration in virtual nanoseconds.
    pub measured_ns: u64,
    /// The cost-model value this segment should equal, if it is a modeled
    /// constant (`None` for scheduling waits like the receiver poll loop).
    pub expected_ns: Option<u64>,
}

/// The measured cost attribution of one round trip. Segments are in causal
/// order and sum to `rtt_ns` exactly.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Which measured iteration this is (the `UserSpan` arg).
    pub iteration: u64,
    /// End-to-end round trip in virtual nanoseconds.
    pub rtt_ns: u64,
    /// The attributed segments, causal order.
    pub segments: Vec<Segment>,
}

impl Breakdown {
    /// Sum of all segment durations (equals `rtt_ns` by construction).
    pub fn sum_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.measured_ns).sum()
    }
}

/// One step of the causal chain: which record to look for next, how to
/// label it, and the model cost it should equal given its `arg` (usually
/// the wire byte count the layer recorded).
struct Step {
    kind: Kind,
    track: Track,
    label: &'static str,
    expected: Box<dyn Fn(u64) -> Option<u64>>,
    gap_label: Option<&'static str>,
    gap_expected: Option<u64>,
}

fn chain(
    cost: &CostModel,
    am: &AmConfig,
    adapter: &AdapterConfig,
    sw: &SwitchConfig,
    wire: u64,
) -> Vec<Step> {
    let cost0 = cost.clone();
    let cost1 = cost.clone();
    let cost2 = cost.clone();
    let ad0 = adapter.clone();
    let ad1 = adapter.clone();
    let ad2 = adapter.clone();
    let ad3 = adapter.clone();
    let scan = adapter.fw_scan_delay.as_ns();
    // Uncontended single-hop transit: serialization (for_bytes + packet
    // gap) plus the fabric hop. `wire` is the one-word packet's measured
    // wire size (the SwitchHop record's arg carries the destination, so
    // the byte count comes from the adjacent firmware spans).
    let hop = (sp_sim::Dur::for_bytes(wire, sw.link_mb_s) + sw.packet_gap + sw.hop_latency).as_ns();
    let pio = cost.pio_write.as_ns();
    vec![
        Step {
            kind: Kind::AmRequest,
            track: Track::program(0),
            label: "request cpu (n0)",
            expected: Box::new({
                let d = am.request_cpu.as_ns();
                move |_| Some(d)
            }),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::HostWrite,
            track: Track::program(0),
            label: "fifo write+flush (n0)",
            expected: Box::new(move |b| Some(cost0.packet_host_cost(b as usize).as_ns())),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::HostDoorbell,
            track: Track::program(0),
            label: "doorbell pio (n0)",
            expected: Box::new(move |_| Some(pio)),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::FwSend,
            track: Track::adapter(0),
            label: "fw send+dma (n0)",
            expected: Box::new(move |b| {
                Some((ad0.fw_send_per_packet + ad0.dma(b as usize)).as_ns())
            }),
            gap_label: Some("fw scan delay (n0)"),
            gap_expected: Some(scan),
        },
        Step {
            kind: Kind::SwitchHop,
            track: Track::switch_inj(0),
            label: "wire+switch (0->1)",
            expected: Box::new(move |_| Some(hop)),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::FwRecv,
            track: Track::adapter(1),
            label: "fw recv+dma (n1)",
            expected: Box::new(move |b| {
                Some((ad1.fw_recv_per_packet + ad1.dma(b as usize)).as_ns())
            }),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::HostPollHit,
            track: Track::program(1),
            label: "fifo copy-out (n1)",
            expected: Box::new(move |b| Some(cost1.packet_host_cost(b as usize).as_ns())),
            gap_label: Some("receiver poll wait (n1)"),
            gap_expected: None,
        },
        Step {
            kind: Kind::AmDispatch,
            track: Track::program(1),
            label: "dispatch cpu (n1)",
            expected: Box::new({
                let d = am.dispatch_cpu.as_ns();
                move |_| Some(d)
            }),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::AmReply,
            track: Track::program(1),
            label: "reply cpu (n1)",
            expected: Box::new({
                let d = am.reply_cpu.as_ns();
                move |_| Some(d)
            }),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::HostWrite,
            track: Track::program(1),
            label: "fifo write+flush (n1)",
            expected: Box::new(move |b| Some(cost2.packet_host_cost(b as usize).as_ns())),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::HostDoorbell,
            track: Track::program(1),
            label: "doorbell pio (n1)",
            expected: Box::new(move |_| Some(pio)),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::FwSend,
            track: Track::adapter(1),
            label: "fw send+dma (n1)",
            expected: Box::new(move |b| {
                Some((ad2.fw_send_per_packet + ad2.dma(b as usize)).as_ns())
            }),
            gap_label: Some("fw scan delay (n1)"),
            gap_expected: Some(scan),
        },
        Step {
            kind: Kind::SwitchHop,
            track: Track::switch_inj(1),
            label: "wire+switch (1->0)",
            expected: Box::new(move |_| Some(hop)),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::FwRecv,
            track: Track::adapter(0),
            label: "fw recv+dma (n0)",
            expected: Box::new(move |b| {
                Some((ad3.fw_recv_per_packet + ad3.dma(b as usize)).as_ns())
            }),
            gap_label: None,
            gap_expected: None,
        },
        Step {
            kind: Kind::HostPollHit,
            track: Track::program(0),
            label: "fifo copy-out (n0)",
            expected: Box::new({
                let c = cost.clone();
                move |b| Some(c.packet_host_cost(b as usize).as_ns())
            }),
            gap_label: Some("sender poll wait (n0)"),
            gap_expected: None,
        },
        Step {
            kind: Kind::AmDispatch,
            track: Track::program(0),
            label: "dispatch cpu (n0)",
            expected: Box::new({
                let d = am.dispatch_cpu.as_ns();
                move |_| Some(d)
            }),
            gap_label: None,
            gap_expected: None,
        },
    ]
}

/// Reconstruct the cost attribution of measured iteration `iteration` from
/// a trace produced by [`run_one_word`], using the default configuration's
/// cost constants as the expectations (the same defaults `run_one_word`
/// simulates with).
///
/// Panics if the trace does not contain the expected causal chain — that
/// means an instrumentation point regressed, which is exactly what the
/// accompanying tests exist to catch.
pub fn breakdown(records: &[Record], iteration: u64) -> Breakdown {
    let cost = CostModel::thin();
    let amc = AmConfig::default();
    let adc = AdapterConfig::default();
    let swc = SwitchConfig::default();

    let window = records
        .iter()
        .find(|r| r.kind == Kind::UserSpan && r.arg == iteration)
        .unwrap_or_else(|| panic!("no UserSpan for iteration {iteration} in trace"));
    let (begin, end) = (window.at, window.end());

    let wire = records
        .iter()
        .find(|r| r.kind == Kind::FwSend && r.at >= begin)
        .map(|r| r.arg)
        .expect("one-word trace contains a firmware send");
    let steps = chain(&cost, &amc, &adc, &swc, wire);

    let mut segments = Vec::new();
    let mut cursor = begin;
    for step in &steps {
        let rec = records
            .iter()
            .find(|r| r.kind == step.kind && r.track == step.track && r.at >= cursor && r.at < end)
            .unwrap_or_else(|| {
                panic!(
                    "causal chain broken: no {:?} on {} after {} ns",
                    step.kind,
                    step.track.label(),
                    cursor
                )
            });
        if rec.at > cursor {
            segments.push(Segment {
                label: step
                    .gap_label
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("wait before {}", step.label)),
                measured_ns: rec.at - cursor,
                expected_ns: step.gap_expected,
            });
        }
        segments.push(Segment {
            label: step.label.to_owned(),
            measured_ns: rec.dur,
            expected_ns: (step.expected)(rec.arg),
        });
        cursor = rec.end();
    }
    if end > cursor {
        segments.push(Segment {
            label: "poll epilogue + handler (n0)".to_owned(),
            measured_ns: end - cursor,
            expected_ns: None,
        });
    }
    Breakdown {
        iteration,
        rtt_ns: end - begin,
        segments,
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "one-word round trip, iteration {}: {:.2} us measured",
            self.iteration,
            self.rtt_ns as f64 / 1_000.0
        )?;
        writeln!(
            f,
            "{:<28} {:>10} {:>10} {:>8}",
            "segment", "meas (us)", "model (us)", "diff"
        )?;
        writeln!(f, "{}", "-".repeat(60))?;
        for s in &self.segments {
            let meas = s.measured_ns as f64 / 1_000.0;
            match s.expected_ns {
                Some(e) => {
                    let exp = e as f64 / 1_000.0;
                    let diff = if e == 0 {
                        0.0
                    } else {
                        (s.measured_ns as f64 - e as f64) / e as f64 * 100.0
                    };
                    writeln!(f, "{:<28} {meas:>10.3} {exp:>10.3} {diff:>+7.1}%", s.label)?;
                }
                None => writeln!(f, "{:<28} {meas:>10.3} {:>10} {:>8}", s.label, "-", "-")?,
            }
        }
        writeln!(f, "{}", "-".repeat(60))?;
        writeln!(
            f,
            "{:<28} {:>10.3}  (= sum of segments)",
            "total",
            self.sum_ns() as f64 / 1_000.0
        )
    }
}
